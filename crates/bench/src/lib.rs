//! # acc-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V) from
//! the simulated system, plus the ablations DESIGN.md calls out:
//!
//! * [`table1`] — the machine settings (Table I);
//! * [`table2`] — application characteristics (Table II): device-memory
//!   footprint, parallel loops, kernel executions, `localaccess` ratio;
//! * [`fig7`] — relative performance normalised to OpenMP, all program
//!   versions on both machines;
//! * [`fig8`] — execution-time breakdown (KERNELS / CPU-GPU / GPU-GPU)
//!   normalised to the single-GPU total;
//! * [`fig9`] — per-GPU device-memory usage (User / System) normalised to
//!   the single-GPU usage;
//! * [`ablation_chunk`] — second-level dirty-bit chunk-size sweep
//!   (§IV-D1 fixes 1 MB experimentally);
//! * [`ablation_layout`] — the 2-D layout transform on/off (§IV-B4);
//! * [`ablation_placement`] — distribution-based placement vs
//!   replica-everything (§IV-C).
//!
//! All entry points return plain data; the `figures` binary renders them
//! as text tables and optionally JSON (via `acc_obs::json`).

pub mod diff;

use acc_apps::{run_app, App, Scale, Version};
use acc_compiler::CompileOptions;
use acc_gpusim::{Machine, MachineKind};
use acc_runtime::{run_program, ExecConfig, Schedule};

pub use diff::{bench_diff, BenchFile, DiffReport, DEFAULT_WALL_TOLERANCE};

/// Compile-checks (and runs) the code examples embedded in the README.
#[doc = include_str!("../../../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

/// Versions evaluated on a machine (paper Fig. 7 legend).
pub fn versions_for(kind: MachineKind) -> Vec<Version> {
    let mut v = vec![
        Version::OpenMP,
        Version::PgiAcc,
        Version::Cuda,
        Version::Proposal(1),
        Version::Proposal(2),
    ];
    if kind.max_gpus() >= 3 {
        v.push(Version::Proposal(3));
    }
    v
}

/// One Table I column.
#[derive(Debug)]
pub struct MachineRow {
    pub machine: String,
    pub cpu: String,
    pub omp_threads: u32,
    pub gpus: String,
    pub gpu_mem_gb: f64,
    pub h2d_gbs: f64,
    pub p2p_gbs: f64,
}

/// Table I: the machine settings.
pub fn table1() -> Vec<MachineRow> {
    [MachineKind::Desktop, MachineKind::SupercomputerNode]
        .into_iter()
        .map(|k| {
            let m = Machine::with_kind(k);
            MachineRow {
                machine: k.label().to_string(),
                cpu: m.cpu.name.clone(),
                omp_threads: m.cpu.omp_threads,
                gpus: format!("{} x{}", m.gpus[0].spec.name, m.n_gpus()),
                gpu_mem_gb: m.gpus[0].spec.mem_bytes as f64 / (1u64 << 30) as f64,
                h2d_gbs: m.bus.h2d_bw / 1e9,
                p2p_gbs: m.bus.p2p_bw / 1e9,
            }
        })
        .collect()
}

/// One Table II row.
#[derive(Debug)]
pub struct AppRow {
    pub app: String,
    pub description: String,
    pub input: String,
    /// A: total device memory in single-GPU execution, MB.
    pub device_mb: f64,
    /// B: number of parallel loops.
    pub parallel_loops: usize,
    /// C: number of kernel executions.
    pub kernel_execs: usize,
    /// D: arrays with localaccess / arrays used in parallel loops.
    pub localaccess: String,
    pub correct: bool,
}

/// Table II: application characteristics, measured on single-GPU runs.
pub fn table2(scale: Scale) -> Vec<AppRow> {
    App::ALL
        .iter()
        .map(|&app| {
            let mut m = Machine::desktop();
            let r = run_app(app, Version::Proposal(1), &mut m, scale, 42).expect("run");
            let prog = acc_apps::runner::compile_app(app, Version::Proposal(1)).unwrap();
            let desc = match app {
                App::Md => "Simulation",
                App::Kmeans => "Clustering",
                App::Bfs => "Graph Traversal",
                App::Spmv => "Sparse Linear Algebra",
                App::Heat2d => "Stencil",
                App::Pagerank => "Graph Ranking",
                App::Heat2dHalo2 => "Stencil (deep)",
            };
            AppRow {
                app: app.name().to_uppercase(),
                description: desc.to_string(),
                input: input_label(app, scale),
                device_mb: r.mem[0].user_peak as f64 / 1e6,
                parallel_loops: prog.n_parallel_loops(),
                kernel_execs: r.kernel_launches,
                localaccess: format!("{}/{}", r.localaccess_ratio.0, r.localaccess_ratio.1),
                correct: r.correct,
            }
        })
        .collect()
}

fn input_label(app: App, scale: Scale) -> String {
    match app {
        App::Md => {
            let c = md_config(scale);
            format!("{} Atom", c.natoms())
        }
        App::Kmeans => match scale {
            Scale::Paper => "kddcup".into(),
            _ => "kddcup-shaped (scaled)".into(),
        },
        App::Bfs => {
            let c = bfs_config(scale);
            format!("{} node / {} edge", c.nnodes(), c.nedges())
        }
        App::Spmv => {
            let c = spmv_config(scale);
            format!("{} row / ~{} nnz/row", c.nrows, c.nnz_per_row)
        }
        App::Heat2d => {
            let c = heat2d_config(scale);
            format!("{}x{} plate / {} iter", c.rows, c.cols, c.iters)
        }
        App::Pagerank => {
            let c = pagerank_config(scale);
            format!("{} page / {} iter", c.n, c.iters)
        }
        App::Heat2dHalo2 => {
            let c = heat2d_halo2_config(scale);
            format!("{}x{} plate / {} iter", c.rows, c.cols, c.iters)
        }
    }
}

/// MD workload config for a scale (the Scaled point keeps the neighbor
/// structure and shrinks the lattice).
pub fn md_config(scale: Scale) -> acc_apps::md::MdConfig {
    match scale {
        Scale::Small => acc_apps::md::MdConfig::small(),
        Scale::Scaled => acc_apps::md::MdConfig {
            nx: 24,
            ny: 24,
            nz: 16,
            ..acc_apps::md::MdConfig::paper()
        },
        Scale::Paper => acc_apps::md::MdConfig::paper(),
    }
}

/// KMEANS workload config for a scale.
pub fn kmeans_config(scale: Scale) -> acc_apps::kmeans::KmeansConfig {
    match scale {
        Scale::Small => acc_apps::kmeans::KmeansConfig::small(),
        Scale::Scaled => acc_apps::kmeans::KmeansConfig {
            npoints: 24_700,
            ..acc_apps::kmeans::KmeansConfig::paper()
        },
        Scale::Paper => acc_apps::kmeans::KmeansConfig::paper(),
    }
}

/// BFS workload config for a scale.
pub fn bfs_config(scale: Scale) -> acc_apps::bfs::BfsConfig {
    match scale {
        Scale::Small => acc_apps::bfs::BfsConfig::small(),
        Scale::Scaled => acc_apps::bfs::BfsConfig::scaled(),
        Scale::Paper => acc_apps::bfs::BfsConfig::paper(),
    }
}

/// SPMV workload config for a scale (no published paper size: Paper maps
/// to Scaled).
pub fn spmv_config(scale: Scale) -> acc_apps::spmv::SpmvConfig {
    match scale {
        Scale::Small => acc_apps::spmv::SpmvConfig::small(),
        Scale::Scaled | Scale::Paper => acc_apps::spmv::SpmvConfig::scaled(),
    }
}

/// HEAT2D workload config for a scale (no published paper size: Paper
/// maps to Scaled).
pub fn heat2d_config(scale: Scale) -> acc_apps::heat2d::Heat2dConfig {
    match scale {
        Scale::Small => acc_apps::heat2d::Heat2dConfig::small(),
        Scale::Scaled | Scale::Paper => acc_apps::heat2d::Heat2dConfig::scaled(),
    }
}

/// PAGERANK workload config for a scale (no published paper size: Paper
/// maps to Scaled).
pub fn pagerank_config(scale: Scale) -> acc_apps::pagerank::PagerankConfig {
    match scale {
        Scale::Small => acc_apps::pagerank::PagerankConfig::small(),
        Scale::Scaled | Scale::Paper => acc_apps::pagerank::PagerankConfig::scaled(),
    }
}

/// HEAT2D-HALO2 workload config for a scale (a post-paper app, so Paper
/// maps to Scaled). Its bench rows are the *wavefront* points: the
/// runner auto-selects `Schedule::Wavefront` for the deep in-place
/// stencil, so `bench-diff` pins the pipelined schedule's simulated
/// times alongside every other app's.
pub fn heat2d_halo2_config(scale: Scale) -> acc_apps::heat2d_halo2::Halo2Config {
    match scale {
        Scale::Small => acc_apps::heat2d_halo2::Halo2Config::small(),
        Scale::Scaled | Scale::Paper => acc_apps::heat2d_halo2::Halo2Config::scaled(),
    }
}

/// One run of the full evaluation matrix: every (machine × app × version)
/// combination, executed once and shared by Figs. 7, 8 and 9.
#[derive(Debug)]
pub struct MatrixEntry {
    pub machine: MachineKind,
    pub app: App,
    pub version: Version,
    pub result: acc_apps::AppResult,
}

/// Execute the evaluation matrix. With `progress`, prints one line per
/// configuration to stderr (runs take a while at paper scale).
pub fn run_matrix(scale: Scale, seed: u64, progress: bool) -> Vec<MatrixEntry> {
    let mut out = Vec::new();
    for kind in [MachineKind::Desktop, MachineKind::SupercomputerNode] {
        for &app in &App::ALL {
            for v in versions_for(kind) {
                if progress {
                    eprintln!("running {} / {} / {} ...", kind.label(), app.name(), v.label());
                }
                let mut m = Machine::with_kind(kind);
                let result = run_app(app, v, &mut m, scale, seed).expect("run");
                out.push(MatrixEntry {
                    machine: kind,
                    app,
                    version: v,
                    result,
                });
            }
        }
    }
    out
}

/// One Fig. 7 bar: relative performance vs OpenMP (higher = faster).
#[derive(Debug)]
pub struct Fig7Bar {
    pub machine: String,
    pub app: String,
    pub version: String,
    pub relative_perf: f64,
    pub correct: bool,
}

/// Fig. 7 from a computed matrix: every version normalised to OpenMP.
pub fn fig7_from(matrix: &[MatrixEntry]) -> Vec<Fig7Bar> {
    let mut out = Vec::new();
    for e in matrix {
        let base = matrix
            .iter()
            .find(|b| {
                b.machine == e.machine && b.app == e.app && b.version == Version::OpenMP
            })
            .expect("OpenMP baseline present")
            .result
            .time
            .parallel_region();
        out.push(Fig7Bar {
            machine: e.machine.label().to_string(),
            app: e.app.name().to_string(),
            version: e.version.label(),
            relative_perf: base / e.result.time.parallel_region(),
            correct: e.result.correct,
        });
    }
    out
}

/// Fig. 7: performance of every version normalised to OpenMP.
pub fn fig7(scale: Scale, seed: u64) -> Vec<Fig7Bar> {
    fig7_from(&run_matrix(scale, seed, false))
}

/// One Fig. 8 stacked bar: phase times normalised to the 1-GPU total.
#[derive(Debug)]
pub struct Fig8Bar {
    pub machine: String,
    pub app: String,
    pub ngpus: usize,
    pub kernels: f64,
    pub cpu_gpu: f64,
    pub gpu_gpu: f64,
}

/// Fig. 8 from a computed matrix: proposal breakdown on 1..max GPUs.
pub fn fig8_from(matrix: &[MatrixEntry]) -> Vec<Fig8Bar> {
    let mut out = Vec::new();
    for e in matrix {
        let Version::Proposal(n) = e.version else {
            continue;
        };
        let base = matrix
            .iter()
            .find(|b| {
                b.machine == e.machine && b.app == e.app && b.version == Version::Proposal(1)
            })
            .expect("1-GPU run present")
            .result
            .time
            .parallel_region();
        out.push(Fig8Bar {
            machine: e.machine.label().to_string(),
            app: e.app.name().to_string(),
            ngpus: n,
            kernels: e.result.time.kernels / base,
            cpu_gpu: e.result.time.cpu_gpu / base,
            gpu_gpu: e.result.time.gpu_gpu / base,
        });
    }
    out
}

/// Fig. 8: execution-time breakdown of the proposal on 1..max GPUs.
pub fn fig8(scale: Scale, seed: u64) -> Vec<Fig8Bar> {
    fig8_from(&run_matrix(scale, seed, false))
}

/// One Fig. 9 stacked bar: summed per-GPU peak memory normalised to the
/// 1-GPU usage.
#[derive(Debug)]
pub struct Fig9Bar {
    pub machine: String,
    pub app: String,
    pub ngpus: usize,
    pub user: f64,
    pub system: f64,
}

/// Fig. 9 from a computed matrix.
pub fn fig9_from(matrix: &[MatrixEntry]) -> Vec<Fig9Bar> {
    let mut out = Vec::new();
    for e in matrix {
        let Version::Proposal(n) = e.version else {
            continue;
        };
        let base = matrix
            .iter()
            .find(|b| {
                b.machine == e.machine && b.app == e.app && b.version == Version::Proposal(1)
            })
            .expect("1-GPU run present")
            .result
            .mem
            .iter()
            .map(|g| g.user_peak)
            .sum::<u64>()
            .max(1);
        let user: u64 = e.result.mem.iter().map(|g| g.user_peak).sum();
        let system: u64 = e.result.mem.iter().map(|g| g.system_peak).sum();
        out.push(Fig9Bar {
            machine: e.machine.label().to_string(),
            app: e.app.name().to_string(),
            ngpus: n,
            user: user as f64 / base as f64,
            system: system as f64 / base as f64,
        });
    }
    out
}

/// Fig. 9: device memory usage of the proposal on 1..max GPUs.
pub fn fig9(scale: Scale, seed: u64) -> Vec<Fig9Bar> {
    fig9_from(&run_matrix(scale, seed, false))
}

/// One chunk-size ablation point.
#[derive(Debug)]
pub struct ChunkPoint {
    pub workload: String,
    pub chunk_kb: usize,
    pub gpu_gpu_time: f64,
    pub total_time: f64,
    pub dirty_chunks_sent: u64,
    pub p2p_mb: f64,
}

/// Synthetic replica-sync workload with *clustered* writes: each GPU's
/// iterations scatter into a small window near its own block of a
/// replicated array. Small chunks ship only the written windows; large
/// chunks ship mostly-clean data — the case the two-level scheme's
/// chunking exists for.
const CLUSTERED_SRC: &str = "void clustered(int n, int *idx, int *flags) {\n\
#pragma acc data copyin(idx[0:n]) copy(flags[0:n])\n\
{\n\
#pragma acc localaccess(idx) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) flags[idx[i]] = flags[idx[i]] + 1;\n\
}\n\
}";

/// §IV-D1 ablation: sweep the second-level dirty-bit chunk size.
///
/// Two workloads with opposite write distributions:
/// * **bfs** (scattered) — frontier writes land everywhere, so nearly
///   every chunk is dirty and chunking cannot reduce the shipped bytes;
///   small chunks only add per-transfer overhead;
/// * **clustered** — writes are dense in small windows, so small chunks
///   cut the traffic dramatically.
///
/// The paper's 1 MB is the compromise between the two regimes.
pub fn ablation_chunk(scale: Scale, seed: u64) -> Vec<ChunkPoint> {
    let mut out = Vec::new();
    let sizes = [64usize, 256, 1024, 4096, 16384];

    // Scattered: BFS on the node with all three GPUs.
    let prog = acc_apps::runner::compile_app(App::Bfs, Version::Proposal(3)).unwrap();
    let input = acc_apps::bfs::generate(&bfs_config(scale), seed);
    for &kb in &sizes {
        let mut m = Machine::supercomputer_node();
        let ec = ExecConfig::gpus(3).chunk_bytes(kb * 1024);
        let (scalars, arrays) = acc_apps::bfs::inputs(&input);
        let r = run_program(&mut m, &ec, &prog, scalars, arrays).expect("run");
        out.push(ChunkPoint {
            workload: "bfs (scattered)".into(),
            chunk_kb: kb,
            gpu_gpu_time: r.profile.time.gpu_gpu,
            total_time: r.profile.time.parallel_region(),
            dirty_chunks_sent: r.profile.dirty_chunks_sent,
            p2p_mb: r.profile.p2p_bytes as f64 / 1e6,
        });
    }

    // Clustered: synthetic, 16 MB replicated array, writes confined to a
    // 64 KB window per GPU block.
    let n: usize = match scale {
        Scale::Small => 1 << 18,
        _ => 4 << 20,
    };
    // Each GPU's block of iterations scatters into one 16K-element window
    // at the start of its own third of the array: per GPU only ~64 KB of
    // the replicated array is ever dirty.
    let window = (16 * 1024usize).min(n / 4);
    let blk = n.div_ceil(3);
    let idx: Vec<i32> = (0..n)
        .map(|i| {
            let base = (i / blk) * blk;
            let off = (i as u64).wrapping_mul(2654435761) as usize % window;
            ((base + off) % n) as i32
        })
        .collect();
    let prog = acc_compiler::compile_source(CLUSTERED_SRC, "clustered", &CompileOptions::proposal())
        .unwrap();
    for &kb in &sizes {
        let mut m = Machine::supercomputer_node();
        let ec = ExecConfig::gpus(3).chunk_bytes(kb * 1024);
        let arrays = vec![
            acc_kernel_ir::Buffer::from_i32(&idx),
            acc_kernel_ir::Buffer::zeroed(acc_kernel_ir::Ty::I32, n),
        ];
        let r = run_program(
            &mut m,
            &ec,
            &prog,
            vec![acc_kernel_ir::Value::I32(n as i32)],
            arrays,
        )
        .expect("run");
        out.push(ChunkPoint {
            workload: "clustered".into(),
            chunk_kb: kb,
            gpu_gpu_time: r.profile.time.gpu_gpu,
            total_time: r.profile.time.parallel_region(),
            dirty_chunks_sent: r.profile.dirty_chunks_sent,
            p2p_mb: r.profile.p2p_bytes as f64 / 1e6,
        });
    }
    out
}

/// One layout-transform ablation point.
#[derive(Debug)]
pub struct LayoutPoint {
    pub app: String,
    pub transform: bool,
    pub kernels_time: f64,
    pub total_time: f64,
}

/// §IV-B4 ablation: the 2-D layout transform on/off, for the two apps
/// with strided `localaccess` reads.
pub fn ablation_layout(scale: Scale, seed: u64) -> Vec<LayoutPoint> {
    let mut out = Vec::new();
    for app in [App::Md, App::Kmeans] {
        for transform in [true, false] {
            let opts = CompileOptions {
                layout_transform: transform,
                ..CompileOptions::proposal()
            };
            let prog = acc_compiler::compile_source(app.source(), app.function(), &opts).unwrap();
            let mut m = Machine::desktop();
            let (scalars, arrays) = app_inputs(app, scale, seed);
            let r = run_program(&mut m, &ExecConfig::gpus(2), &prog, scalars, arrays).unwrap();
            out.push(LayoutPoint {
                app: app.name().to_string(),
                transform,
                kernels_time: r.profile.time.kernels,
                total_time: r.profile.time.parallel_region(),
            });
        }
    }
    out
}

/// One placement ablation point.
#[derive(Debug)]
pub struct PlacementPoint {
    pub app: String,
    pub distribution: bool,
    pub h2d_mb: f64,
    pub total_time: f64,
    pub user_mem_mb: f64,
}

/// §IV-C ablation: distribution-based placement (localaccess honored) vs
/// replica-everything, on 2 GPUs.
pub fn ablation_placement(scale: Scale, seed: u64) -> Vec<PlacementPoint> {
    let mut out = Vec::new();
    for &app in &App::ALL {
        for dist in [true, false] {
            let opts = CompileOptions {
                honor_extensions: dist,
                layout_transform: dist,
                instrument: true,
                infer_localaccess: false,
                optimize_kernels: false,
                infer_reductions: false,
            };
            let prog = acc_compiler::compile_source(app.source(), app.function(), &opts).unwrap();
            let mut m = Machine::desktop();
            let (scalars, arrays) = app_inputs(app, scale, seed);
            let r = run_program(&mut m, &ExecConfig::gpus(2), &prog, scalars, arrays).unwrap();
            out.push(PlacementPoint {
                app: app.name().to_string(),
                distribution: dist,
                h2d_mb: r.profile.h2d_bytes as f64 / 1e6,
                total_time: r.profile.time.parallel_region(),
                user_mem_mb: r.mem.iter().map(|g| g.user_peak).sum::<u64>() as f64 / 1e6,
            });
        }
    }
    out
}

/// One loader-reuse ablation point.
#[derive(Debug)]
pub struct ReusePoint {
    pub app: String,
    pub reuse: bool,
    pub h2d_mb: f64,
    pub cpu_gpu_time: f64,
    pub total_time: f64,
}

/// §IV-C ablation: the loader's reload-skipping for iterative kernels,
/// on the two iterative apps (KMEANS relaunches 74 times, BFS ~10).
pub fn ablation_loader_reuse(scale: Scale, seed: u64) -> Vec<ReusePoint> {
    let mut out = Vec::new();
    for app in [App::Kmeans, App::Bfs] {
        for reuse in [true, false] {
            let prog = acc_apps::runner::compile_app(app, Version::Proposal(2)).unwrap();
            let mut m = Machine::desktop();
            let ec = ExecConfig::gpus(2).loader_reuse(reuse);
            let (scalars, arrays) = app_inputs(app, scale, seed);
            let r = run_program(&mut m, &ec, &prog, scalars, arrays).unwrap();
            out.push(ReusePoint {
                app: app.name().to_string(),
                reuse,
                h2d_mb: r.profile.h2d_bytes as f64 / 1e6,
                cpu_gpu_time: r.profile.time.cpu_gpu,
                total_time: r.profile.time.parallel_region(),
            });
        }
    }
    out
}

/// One stencil-extension point (paper §VI future work).
#[derive(Debug)]
pub struct StencilPoint {
    pub machine: String,
    pub ngpus: usize,
    pub relative_perf_vs_1gpu: f64,
    pub kernels_time: f64,
    pub cpu_gpu_time: f64,
    pub gpu_gpu_time: f64,
    pub p2p_mb: f64,
    pub miss_checks: u64,
    pub correct: bool,
}

/// §VI extension experiment: the 2-D heat stencil run through the 1-D
/// `localaccess` row distribution. Demonstrates (a) that the system runs
/// stencils correctly on any GPU count via halo rows, and (b) the paper's
/// stated limitation — per-iteration halo refresh plus unelidable miss
/// checks keep multi-GPU gains modest.
pub fn extension_stencil(scale: Scale, seed: u64) -> Vec<StencilPoint> {
    use acc_apps::heat2d;
    let cfg = match scale {
        Scale::Small => heat2d::Heat2dConfig::small(),
        _ => heat2d::Heat2dConfig::scaled(),
    };
    let input = heat2d::generate(&cfg, seed);
    let expect = heat2d::reference(&input);
    let prog = acc_compiler::compile_source(
        heat2d::SOURCE,
        heat2d::FUNCTION,
        &CompileOptions::proposal(),
    )
    .unwrap();
    let mut out = Vec::new();
    for kind in [MachineKind::Desktop, MachineKind::SupercomputerNode] {
        let mut base = None;
        for n in 1..=kind.max_gpus() {
            let mut m = Machine::with_kind(kind);
            let (scalars, arrays) = heat2d::inputs(&input);
            let r = run_program(&mut m, &ExecConfig::gpus(n), &prog, scalars, arrays).unwrap();
            let t = r.profile.time.parallel_region();
            let base1 = *base.get_or_insert(t);
            let err =
                heat2d::max_error(&r.arrays[heat2d::PLATE_ARRAY].to_f64_vec(), &expect);
            out.push(StencilPoint {
                machine: kind.label().to_string(),
                ngpus: n,
                relative_perf_vs_1gpu: base1 / t,
                kernels_time: r.profile.time.kernels,
                cpu_gpu_time: r.profile.time.cpu_gpu,
                gpu_gpu_time: r.profile.time.gpu_gpu,
                p2p_mb: r.profile.p2p_bytes as f64 / 1e6,
                miss_checks: r.profile.kernel_counters.miss_checks,
                correct: err < 1e-9,
            });
        }
    }
    out
}

/// One wall-clock measurement for the `bench` target: how long the
/// simulator itself takes to run an app on N GPUs, as opposed to the
/// simulated time it reports. This is the number the runtime's host-side
/// optimisations (interpreter fast path, parallel communication phase)
/// move, and the one `BENCH_runtime.json` tracks across commits.
#[derive(Debug, Clone)]
pub struct RuntimePoint {
    pub app: String,
    pub ngpus: usize,
    /// Best wall-clock over `reps` runs, seconds. Minimum, not mean: the
    /// minimum of repeated identical runs is the least noisy estimator
    /// of intrinsic cost on a shared machine.
    pub wall_best_s: f64,
    /// Mean wall-clock over `reps` runs, seconds.
    pub wall_mean_s: f64,
    /// Simulated parallel-region time, seconds. Must not change when
    /// host-side optimisations do (the equivalence tests enforce this;
    /// the field is recorded so a regression is visible in the artifact).
    pub sim_s: f64,
    /// Simulated GPU-GPU communication-phase time, seconds (a component
    /// of `sim_s`). Recorded separately so comm-phase optimisations —
    /// elision, inferred distribution — are visible per point.
    pub comm_sim_s: f64,
    /// Host wall-clock seconds spent inside the communication phase on
    /// the *best-wall* rep. Tracks what the parallel comm phase and the
    /// staging pool actually cost on the host.
    pub comm_wall_s: f64,
    pub correct: bool,
    pub reps: usize,
}

/// Measure end-to-end wall-clock for every app × GPU count on the
/// supercomputer node. Each configuration runs `reps` times. The
/// `heat2d-halo2` points double as the wavefront rows: the runner
/// executes that app under `Schedule::Wavefront`, so its multi-GPU
/// `sim_s`/`comm_sim_s` values pin the pipelined schedule's pricing.
pub fn bench_runtime(scale: Scale, seed: u64, reps: usize, progress: bool) -> Vec<RuntimePoint> {
    let reps = reps.max(1);
    let mut out = Vec::new();
    for &app in &App::ALL {
        for ngpus in 1..=3 {
            let v = Version::Proposal(ngpus);
            if progress {
                eprintln!("  bench: {} x{} ({} reps)", app.name(), ngpus, reps);
            }
            let mut walls = Vec::with_capacity(reps);
            let mut sim_s = 0.0;
            let mut comm_sim_s = 0.0;
            let mut comm_wall_s = f64::INFINITY;
            let mut correct = true;
            for _ in 0..reps {
                let mut m = Machine::supercomputer_node();
                let t0 = std::time::Instant::now();
                let r = acc_apps::run_app(app, v, &mut m, scale, seed).expect("app run");
                walls.push(t0.elapsed().as_secs_f64());
                sim_s = r.time.parallel_region();
                comm_sim_s = r.time.gpu_gpu;
                comm_wall_s = comm_wall_s.min(r.comm_wall_s);
                correct &= r.correct;
            }
            let best = walls.iter().cloned().fold(f64::INFINITY, f64::min);
            let mean = walls.iter().sum::<f64>() / walls.len() as f64;
            out.push(RuntimePoint {
                app: app.name().to_string(),
                ngpus,
                wall_best_s: best,
                wall_mean_s: mean,
                sim_s,
                comm_sim_s,
                comm_wall_s,
                correct,
                reps,
            });
        }
    }
    // The skewed power-law BFS rides along as two extra points at the
    // full GPU count — the equal static division vs the cost-model
    // mapper on the same input. It is not part of `App::ALL` (that list
    // reproduces the paper's Table II); these rows exist so the
    // artifact records the mapper's simulated-time margin, and CI's
    // bench-diff notices if the win erodes.
    for (label, sched) in [
        ("bfs-skew", Schedule::Equal),
        ("bfs-skew-cm", Schedule::CostModel),
    ] {
        if progress {
            eprintln!("  bench: {label} x3 ({reps} reps)");
        }
        let cfg = bfs_skew_config(scale);
        let input = acc_apps::bfs_skew::generate(&cfg, seed);
        let expect = acc_apps::bfs_skew::reference(&input);
        let prog = acc_compiler::compile_source(
            acc_apps::bfs_skew::SOURCE,
            acc_apps::bfs_skew::FUNCTION,
            &acc_compiler::CompileOptions::proposal(),
        )
        .expect("bfs_skew compiles");
        let mut walls = Vec::with_capacity(reps);
        let mut sim_s = 0.0;
        let mut comm_sim_s = 0.0;
        let mut comm_wall_s = f64::INFINITY;
        let mut correct = true;
        for _ in 0..reps {
            let mut m = Machine::supercomputer_node();
            let (scalars, arrays) = acc_apps::bfs_skew::inputs(&input);
            let t0 = std::time::Instant::now();
            let r = acc_runtime::run_program(
                &mut m,
                &acc_runtime::ExecConfig::gpus(3).schedule(sched),
                &prog,
                scalars,
                arrays,
            )
            .expect("bfs_skew run");
            walls.push(t0.elapsed().as_secs_f64());
            sim_s = r.profile.time.parallel_region();
            comm_sim_s = r.profile.time.gpu_gpu;
            comm_wall_s = comm_wall_s.min(r.profile.comm_wall_s);
            correct &= r.arrays[acc_apps::bfs_skew::LEVELS_ARRAY].to_i32_vec() == expect;
        }
        let best = walls.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = walls.iter().sum::<f64>() / walls.len() as f64;
        out.push(RuntimePoint {
            app: label.to_string(),
            ngpus: 3,
            wall_best_s: best,
            wall_mean_s: mean,
            sim_s,
            comm_sim_s,
            comm_wall_s,
            correct,
            reps,
        });
    }
    // Register-VM rows: the same proposal runs at the full GPU count,
    // executed through the SSA-optimizing register VM instead of the
    // fused bytecode interpreter. The contract is that only host wall
    // time may move — `sim_s` must match the bytecode rows above (the
    // differential tests enforce bit-identity; the artifact records
    // both so a divergence is visible), and `wall_best_s` is the number
    // the optimizer pipeline is supposed to improve.
    for &app in &[App::Bfs, App::Heat2d] {
        let label = format!("{}-regvm", app.name());
        if progress {
            eprintln!("  bench: {label} x3 ({reps} reps)");
        }
        let v = Version::Proposal(3);
        let cfg = v.exec_config().kernel_vm(acc_runtime::KernelVm::Register);
        let mut walls = Vec::with_capacity(reps);
        let mut sim_s = 0.0;
        let mut comm_sim_s = 0.0;
        let mut comm_wall_s = f64::INFINITY;
        let mut correct = true;
        for _ in 0..reps {
            let mut m = Machine::supercomputer_node();
            let t0 = std::time::Instant::now();
            let r = acc_apps::run_app_with_config(app, v, &mut m, scale, seed, &cfg)
                .expect("regvm app run");
            walls.push(t0.elapsed().as_secs_f64());
            sim_s = r.time.parallel_region();
            comm_sim_s = r.time.gpu_gpu;
            comm_wall_s = comm_wall_s.min(r.comm_wall_s);
            correct &= r.correct;
        }
        let best = walls.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = walls.iter().sum::<f64>() / walls.len() as f64;
        out.push(RuntimePoint {
            app: label,
            ngpus: 3,
            wall_best_s: best,
            wall_mean_s: mean,
            sim_s,
            comm_sim_s,
            comm_wall_s,
            correct,
            reps,
        });
    }
    out
}

/// The skewed-BFS input behind the `bfs-skew` bench rows.
pub fn bfs_skew_config(scale: Scale) -> acc_apps::bfs_skew::BfsSkewConfig {
    match scale {
        Scale::Small => acc_apps::bfs_skew::BfsSkewConfig::stress(),
        _ => acc_apps::bfs_skew::BfsSkewConfig::scaled(),
    }
}

/// Generate inputs for an app at a scale (shared by the ablations).
pub fn app_inputs(
    app: App,
    scale: Scale,
    seed: u64,
) -> (Vec<acc_kernel_ir::Value>, Vec<acc_kernel_ir::Buffer>) {
    match app {
        App::Md => acc_apps::md::inputs(&acc_apps::md::generate(&md_config(scale), seed)),
        App::Kmeans => {
            acc_apps::kmeans::inputs(&acc_apps::kmeans::generate(&kmeans_config(scale), seed))
        }
        App::Bfs => acc_apps::bfs::inputs(&acc_apps::bfs::generate(&bfs_config(scale), seed)),
        App::Spmv => acc_apps::spmv::inputs(&acc_apps::spmv::generate(&spmv_config(scale), seed)),
        App::Heat2d => {
            acc_apps::heat2d::inputs(&acc_apps::heat2d::generate(&heat2d_config(scale), seed))
        }
        App::Pagerank => acc_apps::pagerank::inputs(&acc_apps::pagerank::generate(
            &pagerank_config(scale),
            seed,
        )),
        App::Heat2dHalo2 => acc_apps::heat2d_halo2::inputs(&acc_apps::heat2d_halo2::generate(
            &heat2d_halo2_config(scale),
            seed,
        )),
    }
}

/// Drop every hand-written `localaccess` pragma line from a source.
/// Shared by the golden inference tests and [`bench_comm`], which both
/// need the "programmer forgot to annotate" variant of an app.
pub fn strip_localaccess(src: &str) -> String {
    src.lines()
        .filter(|l| !l.contains("#pragma acc localaccess"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// One comm-phase measurement of the `bench` target's
/// `comm_experiments` section: an app × compile/run mode, always at the
/// full GPU count.
#[derive(Debug, Clone)]
pub struct CommPoint {
    pub app: String,
    /// `annotated` (hand pragmas, the baseline), `stripped` (pragmas
    /// removed → replica placement everywhere), `stripped-elide`
    /// (stripped + runtime comm elision), `inferred` (stripped +
    /// whole-program `localaccess` inference).
    pub mode: String,
    pub ngpus: usize,
    /// Simulated GPU-GPU communication-phase seconds.
    pub comm_sim_s: f64,
    /// Host wall-clock seconds inside the communication phase.
    pub comm_wall_s: f64,
    pub p2p_bytes: u64,
    /// Replica syncs the runtime skipped on static facts.
    pub comm_elisions: u64,
    /// Final arrays bit-identical to the annotated baseline run. This
    /// is a strict all-arrays comparison: scratch arrays (e.g. the
    /// heat2d ping-pong buffer) can legitimately hold different
    /// copy-out content across placements even when every output array
    /// is bit-exact, so `false` here is only meaningful per mode — the
    /// guarded invariant is that it never regresses from `true`.
    pub matches_annotated: bool,
}

/// Measure the communication phase across the annotation/inference/
/// elision modes for the comm-heavy apps. This is the artifact section
/// behind the claim that inference and static elision reduce the comm
/// phase: `stripped` is what a lazy port costs, `inferred` recovers the
/// hand-annotated distribution, and `stripped-elide` shows what the
/// runtime can still skip when distribution is impossible.
pub fn bench_comm(scale: Scale, seed: u64, progress: bool) -> Vec<CommPoint> {
    let ngpus = 3;
    let infer_opts = CompileOptions {
        infer_localaccess: true,
        optimize_kernels: false,
        ..CompileOptions::proposal()
    };
    let mut out = Vec::new();
    for &app in &[App::Heat2d, App::Spmv, App::Kmeans] {
        let stripped_src = strip_localaccess(app.source());
        let annotated =
            acc_compiler::compile_source(app.source(), app.function(), &CompileOptions::proposal())
                .expect("annotated source compiles");
        let stripped =
            acc_compiler::compile_source(&stripped_src, app.function(), &CompileOptions::proposal())
                .expect("stripped source compiles");
        let inferred = acc_compiler::compile_source(&stripped_src, app.function(), &infer_opts)
            .expect("stripped source compiles under inference");
        let base = ExecConfig::gpus(ngpus);
        let runs = [
            ("annotated", &annotated, base.clone()),
            ("stripped", &stripped, base.clone()),
            ("stripped-elide", &stripped, base.clone().comm_elision(true)),
            ("inferred", &inferred, base),
        ];
        let mut baseline_arrays = None;
        for (mode, prog, cfg) in runs {
            if progress {
                eprintln!("  bench: comm {} {} x{}", app.name(), mode, ngpus);
            }
            let (scalars, arrays) = app_inputs(app, scale, seed);
            let mut m = Machine::supercomputer_node();
            let r = run_program(&mut m, &cfg, prog, scalars, arrays).expect("comm bench run");
            let matches_annotated = match &baseline_arrays {
                None => {
                    baseline_arrays = Some(r.arrays.clone());
                    true
                }
                Some(b) => *b == r.arrays,
            };
            out.push(CommPoint {
                app: app.name().to_string(),
                mode: mode.to_string(),
                ngpus,
                comm_sim_s: r.profile.time.gpu_gpu,
                comm_wall_s: r.profile.comm_wall_s,
                p2p_bytes: r.profile.p2p_bytes,
                comm_elisions: r.profile.comm_elisions,
                matches_annotated,
            });
        }
    }
    out
}

/// One simulated-time measurement of the `bench` target's `scaling`
/// section: a halo/reduction-heavy app at a GPU count well past one
/// PCIe bus, on one interconnect model. Unlike [`RuntimePoint`] the
/// interesting numbers here are *simulated* seconds: the section is the
/// artifact behind the claim that the hierarchical topology (island
/// links + per-node roots + inter-node fabric), the topology-aware
/// reduction tree and the double-buffered halo overlap reduce
/// communication cost at 8/16/64 GPUs — `bench-diff` pins every value.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    pub app: String,
    pub ngpus: usize,
    /// `flat` = the seed's single-root PCIe model
    /// (`Machine::supercomputer_node_with_gpus`); `cluster` = 8-GPU
    /// islands, 16-GPU nodes, inter-node fabric (`Machine::cluster`).
    pub topo: String,
    /// Double-buffered halo overlap armed (`ExecConfig::overlap`).
    pub overlap: bool,
    /// Simulated parallel-region seconds.
    pub sim_s: f64,
    /// Simulated GPU-GPU communication-phase seconds (a component of
    /// `sim_s`; reduction merges and replica syncs).
    pub comm_sim_s: f64,
    /// Simulated loader (CPU-GPU) phase seconds (a component of
    /// `sim_s`; halo fills land here, so this is what overlap shrinks).
    pub cpu_gpu_s: f64,
    /// Loader seconds hidden behind the kernel phase by overlap
    /// windows (from the `overlap_hidden_ns` counter).
    pub overlap_hidden_s: f64,
    pub p2p_mb: f64,
    pub correct: bool,
}

/// The scaling section's workload configs. At 64-way row distribution
/// the plain `small` inputs are too thin (48 heat2d rows, a 400-node
/// graph), so `Scale::Small` gets dedicated minimum sizes that still
/// run in well under a second; larger scales reuse the shared configs.
pub fn scaling_heat2d_config(scale: Scale) -> acc_apps::heat2d::Heat2dConfig {
    match scale {
        Scale::Small => acc_apps::heat2d::Heat2dConfig { rows: 256, cols: 64, iters: 3 },
        _ => heat2d_config(scale),
    }
}

/// See [`scaling_heat2d_config`].
pub fn scaling_pagerank_config(scale: Scale) -> acc_apps::pagerank::PagerankConfig {
    match scale {
        Scale::Small => acc_apps::pagerank::PagerankConfig {
            n: 4096,
            min_degree: 2,
            max_degree: 40,
            iters: 5,
        },
        _ => pagerank_config(scale),
    }
}

/// Measure simulated communication cost for the scaling apps at 8, 16
/// and 64 GPUs on the flat bus, the cluster topology, and the cluster
/// topology with halo overlap armed. Simulated time is deterministic,
/// so one run per point suffices (no reps).
pub fn bench_scaling(scale: Scale, seed: u64, progress: bool) -> Vec<ScalingPoint> {
    use acc_apps::{heat2d, pagerank};
    const GPU_COUNTS: [usize; 3] = [8, 16, 64];
    const MODES: [(&str, bool); 3] = [("flat", false), ("cluster", false), ("cluster", true)];

    let heat_in = heat2d::generate(&scaling_heat2d_config(scale), seed);
    let heat_ref = heat2d::reference(&heat_in);
    let heat_prog = acc_compiler::compile_source(
        heat2d::SOURCE,
        heat2d::FUNCTION,
        &CompileOptions::proposal(),
    )
    .expect("heat2d compiles");
    let pr_in = pagerank::generate(&scaling_pagerank_config(scale), seed);
    let pr_ref = pagerank::reference(&pr_in);
    let pr_prog = acc_compiler::compile_source(
        pagerank::SOURCE,
        pagerank::FUNCTION,
        &CompileOptions::proposal(),
    )
    .expect("pagerank compiles");

    let mut out = Vec::new();
    for app in ["heat2d", "pagerank"] {
        for &ngpus in &GPU_COUNTS {
            for (topo, overlap) in MODES {
                if progress {
                    eprintln!(
                        "  bench: scaling {app} x{ngpus} {topo}{}",
                        if overlap { "+overlap" } else { "" }
                    );
                }
                let mut m = match topo {
                    "cluster" => Machine::cluster(ngpus),
                    _ => Machine::supercomputer_node_with_gpus(ngpus),
                };
                let cfg = ExecConfig::gpus(ngpus).overlap(overlap);
                let (prog, scalars, arrays) = if app == "heat2d" {
                    let (s, a) = heat2d::inputs(&heat_in);
                    (&heat_prog, s, a)
                } else {
                    let (s, a) = pagerank::inputs(&pr_in);
                    (&pr_prog, s, a)
                };
                let r = run_program(&mut m, &cfg, prog, scalars, arrays)
                    .expect("scaling bench run");
                // The hierarchical reduction tree reassociates the
                // pagerank merges, so its oracle gets the usual
                // floating-point slack; heat2d's halo copies are exact.
                let correct = if app == "heat2d" {
                    heat2d::max_error(&r.arrays[heat2d::PLATE_ARRAY].to_f64_vec(), &heat_ref)
                        < 1e-9
                } else {
                    pagerank::max_error(&r.arrays[pagerank::RANK_ARRAY].to_f64_vec(), &pr_ref)
                        < 1e-6
                };
                out.push(ScalingPoint {
                    app: app.to_string(),
                    ngpus,
                    topo: topo.to_string(),
                    overlap,
                    sim_s: r.profile.time.parallel_region(),
                    comm_sim_s: r.profile.time.gpu_gpu,
                    cpu_gpu_s: r.profile.time.cpu_gpu,
                    overlap_hidden_s: r.trace.counters().overlap_hidden_ns as f64 / 1e9,
                    p2p_mb: r.profile.p2p_bytes as f64 / 1e6,
                    correct,
                });
            }
        }
    }
    out
}

/// One throughput measurement of the `bench` target's `serve` section:
/// `tenants` concurrent clients each pushing `jobs_per_tenant` mixed
/// jobs through one in-process [`acc_serve::Server`].
#[derive(Debug, Clone)]
pub struct ServePoint {
    pub tenants: usize,
    pub jobs_per_tenant: usize,
    /// Jobs submitted (`tenants * jobs_per_tenant`).
    pub jobs_total: usize,
    /// Jobs that completed with a summary.
    pub jobs_ok: usize,
    /// Every completed job passed its oracle.
    pub all_correct: bool,
    /// End-to-end wall-clock for the whole fleet, seconds.
    pub wall_s: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_s: f64,
    /// Median per-job latency (submit → summary), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-job latency, milliseconds.
    pub p99_ms: f64,
    /// Fraction of jobs whose compile was a request-cache hit.
    pub cache_hit_rate: f64,
}

/// Measure daemon throughput in-process (no socket: the numbers track
/// queueing + engine cost, not loopback TCP). Tenants cycle through the
/// cheap communication-diverse apps (HEAT2D, BFS, MD) at `Scale::Small`
/// and GPU counts 1–3, so a fleet of `tenants * jobs_per_tenant` jobs
/// needs exactly three compiles — every later job must be a cache hit.
pub fn bench_serve(tenants: usize, jobs_per_tenant: usize, progress: bool) -> ServePoint {
    use acc_serve::{JobRequest, Server, ServerConfig};

    let apps = [App::Heat2d, App::Bfs, App::Md];
    let jobs_total = tenants * jobs_per_tenant;
    if progress {
        eprintln!("  bench: serve {tenants} tenants x {jobs_per_tenant} jobs");
    }
    let server = Server::new(ServerConfig {
        workers: tenants,
        queue_cap: jobs_total.max(1),
        default_timeout_ms: 600_000,
        ..ServerConfig::default()
    });
    let workers = server.spawn_workers(tenants);
    let t0 = std::time::Instant::now();
    let tenant_threads: Vec<_> = (0..tenants)
        .map(|t| {
            let srv = std::sync::Arc::clone(&server);
            std::thread::spawn(move || {
                let mut lat_ms = Vec::with_capacity(jobs_per_tenant);
                let mut hits = 0usize;
                let mut ok = 0usize;
                let mut correct = true;
                for i in 0..jobs_per_tenant {
                    let mut req = JobRequest::new(apps[(t + i) % apps.len()], 1 + (t + i) % 3);
                    req.seed = 42;
                    let j0 = std::time::Instant::now();
                    match srv.run_sync(req) {
                        Ok(summary) => {
                            lat_ms.push(j0.elapsed().as_secs_f64() * 1e3);
                            ok += 1;
                            hits += summary.cache_hit as usize;
                            correct &= summary.correct;
                        }
                        Err(_) => correct = false,
                    }
                }
                (lat_ms, hits, ok, correct)
            })
        })
        .collect();
    let mut lat_ms = Vec::with_capacity(jobs_total);
    let mut hits = 0usize;
    let mut jobs_ok = 0usize;
    let mut all_correct = true;
    for t in tenant_threads {
        let (l, h, o, c) = t.join().expect("tenant thread");
        lat_ms.extend(l);
        hits += h;
        jobs_ok += o;
        all_correct &= c;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    server.shutdown();
    for w in workers {
        let _ = w.join();
    }
    lat_ms.sort_by(|a, b| a.total_cmp(b));
    // Nearest-rank percentile on the completed-job latencies.
    let pct = |q: f64| -> f64 {
        if lat_ms.is_empty() {
            return 0.0;
        }
        let rank = ((q * lat_ms.len() as f64).ceil() as usize).clamp(1, lat_ms.len());
        lat_ms[rank - 1]
    };
    ServePoint {
        tenants,
        jobs_per_tenant,
        jobs_total,
        jobs_ok,
        all_correct,
        wall_s,
        jobs_per_s: if wall_s > 0.0 { jobs_ok as f64 / wall_s } else { 0.0 },
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        cache_hit_rate: if jobs_ok > 0 { hits as f64 / jobs_ok as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_both_machines() {
        let t = table1();
        assert_eq!(t.len(), 2);
        assert!(t[0].machine.contains("Desktop"));
        assert_eq!(t[1].gpus, "Tesla M2050 x3");
    }

    #[test]
    fn versions_per_machine() {
        assert_eq!(versions_for(MachineKind::Desktop).len(), 5);
        assert_eq!(versions_for(MachineKind::SupercomputerNode).len(), 6);
    }

    #[test]
    fn figure_extractors_normalise_correctly() {
        // Build a 3-entry matrix by hand (OpenMP + proposal on 1/2 GPUs
        // for one app) and check the normalisations.
        let mk = |v: Version| {
            let mut m = Machine::desktop();
            MatrixEntry {
                machine: MachineKind::Desktop,
                app: App::Md,
                version: v,
                result: acc_apps::run_app(App::Md, v, &mut m, Scale::Small, 3).unwrap(),
            }
        };
        let matrix = vec![mk(Version::OpenMP), mk(Version::Proposal(1)), mk(Version::Proposal(2))];
        let f7 = fig7_from(&matrix);
        assert_eq!(f7.len(), 3);
        assert!((f7[0].relative_perf - 1.0).abs() < 1e-12, "OpenMP bar is 1.0");
        let f8 = fig8_from(&matrix);
        assert_eq!(f8.len(), 2); // proposal entries only
        let one_gpu = &f8[0];
        assert!((one_gpu.kernels + one_gpu.cpu_gpu + one_gpu.gpu_gpu - 1.0).abs() < 1e-9);
        let f9 = fig9_from(&matrix);
        assert_eq!(f9.len(), 2);
        assert!((f9[0].user - 1.0).abs() < 1e-12, "1-GPU user bar is the base");
        assert_eq!(f9[0].system, 0.0, "single GPU has no system memory");
    }

    #[test]
    fn table2_small_scale_runs() {
        let rows = table2(Scale::Small);
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|r| r.correct));
        assert_eq!(rows[0].parallel_loops, 1); // MD
        assert_eq!(rows[1].parallel_loops, 2); // KMEANS
        assert_eq!(rows[2].parallel_loops, 1); // BFS
        assert_eq!(rows[3].parallel_loops, 1); // SPMV
        assert_eq!(rows[4].parallel_loops, 2); // HEAT2D
        assert_eq!(rows[5].parallel_loops, 4); // PAGERANK
        assert_eq!(rows[6].parallel_loops, 1); // HEAT2D-HALO2
        assert_eq!(rows[0].localaccess, "2/3");
        assert_eq!(rows[1].localaccess, "2/5");
        assert_eq!(rows[2].localaccess, "2/3");
        assert_eq!(rows[3].localaccess, "2/5");
        assert_eq!(rows[4].localaccess, "2/2");
        assert_eq!(rows[5].localaccess, "6/6");
        assert_eq!(rows[6].localaccess, "1/1");
    }
}
