//! `figures` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p acc-bench --bin figures -- all
//! cargo run --release -p acc-bench --bin figures -- fig7 --scale scaled
//! cargo run --release -p acc-bench --bin figures -- table2 --scale paper --json out.json
//! cargo run --release -p acc-bench --bin figures -- trace --json heat2d.trace.json
//! ```
//!
//! Targets: `table1`, `table2`, `fig7`, `fig8`, `fig9`, `ablation-chunk`,
//! `ablation-layout`, `ablation-placement`, `ablation-loader-reuse`,
//! `extension-stencil`, `trace`, `bench`, `bench-diff`, `all`.
//! Scales: `small` (seconds), `scaled` (default; structure-preserving
//! reductions of the paper inputs), `paper` (full published sizes).
//!
//! The `trace` target runs the heat2d stencil on 3 simulated GPUs with
//! full span tracing and writes a Chrome trace-event file (open it in
//! `chrome://tracing` or <https://ui.perfetto.dev>) next to the phase
//! summary table.
//!
//! The `bench` target measures the simulator's own wall-clock (not
//! simulated time) for every app × GPU count and writes
//! `BENCH_runtime.json` (see `docs/benchmarks.md`); `--reps N` controls
//! repetitions per configuration. `bench-diff <old.json> <new.json>`
//! compares two such artifacts and exits non-zero on a wall-clock
//! regression over tolerance (`--wall-tolerance F`, default 0.15) at
//! fixed scale/seed or any simulated-time drift.

use acc_apps::Scale;
use acc_bench::*;
use acc_obs::json::Value;
use std::fmt::Write as _;

struct Args {
    target: String,
    scale: Scale,
    json: Option<String>,
    seed: u64,
    reps: usize,
    /// Wall-clock regression tolerance for `bench-diff` (fraction, e.g.
    /// 0.15). CI passes a generous value because its runners are noisy.
    wall_tolerance: f64,
    /// Positional arguments after the target (`bench-diff` file paths).
    free: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        target: "all".to_string(),
        scale: Scale::Scaled,
        json: None,
        seed: 42,
        reps: 3,
        wall_tolerance: DEFAULT_WALL_TOLERANCE,
        free: Vec::new(),
    };
    let mut have_target = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = match it.next().as_deref() {
                    Some("small") => Scale::Small,
                    Some("scaled") => Scale::Scaled,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => args.json = it.next(),
            "--seed" => args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            "--reps" => args.reps = it.next().and_then(|s| s.parse().ok()).unwrap_or(3),
            "--wall-tolerance" => {
                let raw = it.next();
                args.wall_tolerance = match raw.as_deref().map(str::parse::<f64>) {
                    Some(Ok(t)) if t >= 0.0 && t.is_finite() => t,
                    _ => {
                        eprintln!("bad --wall-tolerance {raw:?} (want a non-negative fraction)");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [table1|table2|fig7|fig8|fig9|ablation-chunk|\
                     ablation-layout|ablation-placement|ablation-loader-reuse|\
                     extension-stencil|trace|bench|all] [--scale small|scaled|paper] \
                     [--json FILE] [--seed N] [--reps N]\n\
                     \x20      figures bench-diff <old.json> <new.json> [--wall-tolerance F]"
                );
                std::process::exit(0);
            }
            t if !have_target => {
                args.target = t.to_string();
                have_target = true;
            }
            t => args.free.push(t.to_string()),
        }
    }
    args
}

/// The `bench-diff` target: compare two `BENCH_runtime.json` artifacts.
/// Exit 0 when clean, 1 on a regression (wall-clock over tolerance,
/// simulated-time drift, missing point, scale/seed mismatch, wrong
/// result), 2 on malformed input.
fn run_bench_diff_target(args: &Args) -> ! {
    let [old_path, new_path] = args.free.as_slice() else {
        eprintln!("usage: figures bench-diff <old.json> <new.json>");
        std::process::exit(2);
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("bench-diff: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let (old_doc, new_doc) = (read(old_path), read(new_path));
    match bench_diff(&old_doc, &new_doc, args.wall_tolerance) {
        Ok(report) => {
            print!("{}", report.render());
            std::process::exit(if report.failed() { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("bench-diff: {e}");
            std::process::exit(2);
        }
    }
}

/// The `trace` target: heat2d on 3 simulated GPUs with span-level
/// tracing; prints the summary table and writes the Chrome trace.
fn run_trace_target(args: &Args) {
    use acc_compiler::CompileOptions;
    use acc_gpusim::Machine;
    use acc_runtime::prelude::*;

    let cfg = match args.scale {
        Scale::Small => acc_apps::heat2d::Heat2dConfig::small(),
        _ => acc_apps::heat2d::Heat2dConfig::scaled(),
    };
    let input = acc_apps::heat2d::generate(&cfg, args.seed);
    let prog = acc_compiler::compile_source(
        acc_apps::heat2d::SOURCE,
        acc_apps::heat2d::FUNCTION,
        &CompileOptions::proposal(),
    )
    .unwrap();
    let mut m = Machine::supercomputer_node();
    let (scalars, arrays) = acc_apps::heat2d::inputs(&input);
    let ec = ExecConfig::gpus(3).tracing(TraceLevel::Spans);
    let r = match run_program(&mut m, &ec, &prog, scalars, arrays) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("figures: trace run failed: [{}] {e}", e.code());
            std::process::exit(1);
        }
    };
    print!("{}", r.trace.summary_table());
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "heat2d.trace.json".to_string());
    std::fs::write(&path, r.trace.chrome_trace()).expect("write trace");
    eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
}

/// The `bench` target: the simulator's own wall-clock per app × GPU
/// count, written as `BENCH_runtime.json` so the host-side cost of the
/// runtime can be tracked across commits (simulated times are recorded
/// alongside and must not move).
fn run_bench_target(args: &Args) {
    let scale_name = match args.scale {
        Scale::Small => "small",
        Scale::Scaled => "scaled",
        Scale::Paper => "paper",
    };
    eprintln!("measuring wall-clock at scale `{scale_name}`, {} reps each", args.reps);
    let points = bench_runtime(args.scale, args.seed, args.reps, true);
    println!(
        "  {:<8} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "App", "GPUs", "wall best", "wall mean", "sim time", "comm sim", "comm wall", "correct"
    );
    for p in &points {
        println!(
            "  {:<8} {:>5} {:>11.3}s {:>11.3}s {:>11.6}s {:>11.6}s {:>11.4}s {:>8}",
            p.app, p.ngpus, p.wall_best_s, p.wall_mean_s, p.sim_s, p.comm_sim_s, p.comm_wall_s,
            p.correct
        );
    }
    let comm = bench_comm(args.scale, args.seed, true);
    println!(
        "  {:<8} {:<15} {:>5} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "App", "Mode", "GPUs", "comm sim", "comm wall", "p2p MB", "elided", "matches"
    );
    for c in &comm {
        println!(
            "  {:<8} {:<15} {:>5} {:>11.6}s {:>11.4}s {:>10.2} {:>8} {:>8}",
            c.app,
            c.mode,
            c.ngpus,
            c.comm_sim_s,
            c.comm_wall_s,
            c.p2p_bytes as f64 / 1e6,
            c.comm_elisions,
            c.matches_annotated
        );
    }
    let scaling = bench_scaling(args.scale, args.seed, true);
    println!(
        "  {:<8} {:>5} {:<8} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "App", "GPUs", "Topo", "overlap", "sim time", "comm sim", "cpu-gpu", "hidden", "p2p MB",
        "correct"
    );
    for s in &scaling {
        println!(
            "  {:<8} {:>5} {:<8} {:>8} {:>11.6}s {:>11.6}s {:>11.6}s {:>11.6}s {:>10.2} {:>8}",
            s.app,
            s.ngpus,
            s.topo,
            s.overlap,
            s.sim_s,
            s.comm_sim_s,
            s.cpu_gpu_s,
            s.overlap_hidden_s,
            s.p2p_mb,
            s.correct
        );
    }
    let serve = bench_serve(8, 6, true);
    println!(
        "  serve: {} tenants x {} jobs: {:.1} jobs/s, p50 {:.1} ms, p99 {:.1} ms, \
         cache hit rate {:.1}%, correct {}",
        serve.tenants,
        serve.jobs_per_tenant,
        serve.jobs_per_s,
        serve.p50_ms,
        serve.p99_ms,
        serve.cache_hit_rate * 100.0,
        serve.all_correct
    );
    let json = Value::obj([
        ("scale", Value::str(scale_name)),
        ("seed", Value::num(args.seed as f64)),
        (
            "points",
            Value::Arr(
                points
                    .iter()
                    .map(|p| {
                        Value::obj([
                            ("app", Value::str(&p.app)),
                            ("ngpus", Value::num(p.ngpus as f64)),
                            ("wall_best_s", Value::num(p.wall_best_s)),
                            ("wall_mean_s", Value::num(p.wall_mean_s)),
                            ("sim_s", Value::num(p.sim_s)),
                            ("comm_sim_s", Value::num(p.comm_sim_s)),
                            ("comm_wall_s", Value::num(p.comm_wall_s)),
                            ("correct", Value::Bool(p.correct)),
                            ("reps", Value::num(p.reps as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "comm_experiments",
            Value::Arr(
                comm.iter()
                    .map(|c| {
                        Value::obj([
                            ("app", Value::str(&c.app)),
                            ("mode", Value::str(&c.mode)),
                            ("ngpus", Value::num(c.ngpus as f64)),
                            ("comm_sim_s", Value::num(c.comm_sim_s)),
                            ("comm_wall_s", Value::num(c.comm_wall_s)),
                            ("p2p_bytes", Value::num(c.p2p_bytes as f64)),
                            ("comm_elisions", Value::num(c.comm_elisions as f64)),
                            ("matches_annotated", Value::Bool(c.matches_annotated)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "scaling",
            Value::Arr(
                scaling
                    .iter()
                    .map(|s| {
                        Value::obj([
                            ("app", Value::str(&s.app)),
                            ("ngpus", Value::num(s.ngpus as f64)),
                            ("topo", Value::str(&s.topo)),
                            ("overlap", Value::Bool(s.overlap)),
                            ("sim_s", Value::num(s.sim_s)),
                            ("comm_sim_s", Value::num(s.comm_sim_s)),
                            ("cpu_gpu_s", Value::num(s.cpu_gpu_s)),
                            ("overlap_hidden_s", Value::num(s.overlap_hidden_s)),
                            ("p2p_mb", Value::num(s.p2p_mb)),
                            ("correct", Value::Bool(s.correct)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "serve",
            Value::obj([
                ("tenants", Value::num(serve.tenants as f64)),
                ("jobs_per_tenant", Value::num(serve.jobs_per_tenant as f64)),
                ("jobs_total", Value::num(serve.jobs_total as f64)),
                ("jobs_ok", Value::num(serve.jobs_ok as f64)),
                ("wall_s", Value::num(serve.wall_s)),
                ("jobs_per_s", Value::num(serve.jobs_per_s)),
                ("p50_ms", Value::num(serve.p50_ms)),
                ("p99_ms", Value::num(serve.p99_ms)),
                ("cache_hit_rate", Value::num(serve.cache_hit_rate)),
                ("all_correct", Value::Bool(serve.all_correct)),
            ]),
        ),
    ])
    .to_string_pretty();
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    eprintln!("wrote {path}");
}

fn main() {
    let args = parse_args();
    if args.target == "trace" {
        run_trace_target(&args);
        return;
    }
    if args.target == "bench" {
        run_bench_target(&args);
        return;
    }
    if args.target == "bench-diff" {
        run_bench_diff_target(&args);
    }
    let mut out: Vec<(&'static str, Value)> = Vec::new();
    let all = args.target == "all";
    let mut text = String::new();

    if all || args.target == "table1" {
        let t = table1();
        let _ = writeln!(text, "== Table I: machine settings ==");
        for r in &t {
            let _ = writeln!(
                text,
                "  {:<20} CPU: {:<28} OMP threads: {:<3} GPUs: {:<18} {:>4.1} GB each  \
                 PCIe {:.1}/{:.1} GB/s (h2d/p2p)",
                r.machine, r.cpu, r.omp_threads, r.gpus, r.gpu_mem_gb, r.h2d_gbs, r.p2p_gbs
            );
        }
        out.push((
            "table1",
            Value::Arr(
                t.iter()
                    .map(|r| {
                        Value::obj([
                            ("machine", Value::str(&r.machine)),
                            ("cpu", Value::str(&r.cpu)),
                            ("omp_threads", Value::num(r.omp_threads as f64)),
                            ("gpus", Value::str(&r.gpus)),
                            ("gpu_mem_gb", Value::num(r.gpu_mem_gb)),
                            ("h2d_gbs", Value::num(r.h2d_gbs)),
                            ("p2p_gbs", Value::num(r.p2p_gbs)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if all || args.target == "table2" {
        let t = table2(args.scale);
        let _ = writeln!(text, "\n== Table II: application characteristics ==");
        let _ = writeln!(
            text,
            "  {:<8} {:<16} {:<28} {:>10} {:>3} {:>4} {:>6} {:>8}",
            "App", "Description", "Input", "A(MB)", "B", "C", "D", "correct"
        );
        for r in &t {
            let _ = writeln!(
                text,
                "  {:<8} {:<16} {:<28} {:>10.1} {:>3} {:>4} {:>6} {:>8}",
                r.app,
                r.description,
                r.input,
                r.device_mb,
                r.parallel_loops,
                r.kernel_execs,
                r.localaccess,
                r.correct
            );
        }
        out.push((
            "table2",
            Value::Arr(
                t.iter()
                    .map(|r| {
                        Value::obj([
                            ("app", Value::str(&r.app)),
                            ("description", Value::str(&r.description)),
                            ("input", Value::str(&r.input)),
                            ("device_mb", Value::num(r.device_mb)),
                            ("parallel_loops", Value::num(r.parallel_loops as f64)),
                            ("kernel_execs", Value::num(r.kernel_execs as f64)),
                            ("localaccess", Value::str(&r.localaccess)),
                            ("correct", Value::Bool(r.correct)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    // Figs. 7–9 share one evaluation matrix (every machine × app ×
    // version run exactly once).
    let matrix = if all || ["fig7", "fig8", "fig9"].contains(&args.target.as_str()) {
        Some(run_matrix(args.scale, args.seed, true))
    } else {
        None
    };

    if all || args.target == "fig7" {
        let t = fig7_from(matrix.as_deref().unwrap());
        let _ = writeln!(
            text,
            "\n== Fig. 7: relative performance (normalised to OpenMP) =="
        );
        let mut cur = String::new();
        for b in &t {
            let hdr = format!("{} / {}", b.machine, b.app);
            if hdr != cur {
                let _ = writeln!(text, "  -- {hdr} --");
                cur = hdr;
            }
            let _ = writeln!(
                text,
                "    {:<18} {:>6.2}x {}",
                b.version,
                b.relative_perf,
                if b.correct { "" } else { "  !! WRONG RESULT" }
            );
        }
        out.push((
            "fig7",
            Value::Arr(
                t.iter()
                    .map(|b| {
                        Value::obj([
                            ("machine", Value::str(&b.machine)),
                            ("app", Value::str(&b.app)),
                            ("version", Value::str(&b.version)),
                            ("relative_perf", Value::num(b.relative_perf)),
                            ("correct", Value::Bool(b.correct)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if all || args.target == "fig8" {
        let t = fig8_from(matrix.as_deref().unwrap());
        let _ = writeln!(
            text,
            "\n== Fig. 8: execution-time breakdown (normalised to 1-GPU total) =="
        );
        let mut cur = String::new();
        for b in &t {
            let hdr = format!("{} / {}", b.machine, b.app);
            if hdr != cur {
                let _ = writeln!(text, "  -- {hdr} --");
                cur = hdr;
            }
            let _ = writeln!(
                text,
                "    {} GPU: KERNELS {:>5.2}  CPU-GPU {:>5.2}  GPU-GPU {:>5.2}  | total {:>5.2}",
                b.ngpus,
                b.kernels,
                b.cpu_gpu,
                b.gpu_gpu,
                b.kernels + b.cpu_gpu + b.gpu_gpu
            );
        }
        out.push((
            "fig8",
            Value::Arr(
                t.iter()
                    .map(|b| {
                        Value::obj([
                            ("machine", Value::str(&b.machine)),
                            ("app", Value::str(&b.app)),
                            ("ngpus", Value::num(b.ngpus as f64)),
                            ("kernels", Value::num(b.kernels)),
                            ("cpu_gpu", Value::num(b.cpu_gpu)),
                            ("gpu_gpu", Value::num(b.gpu_gpu)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if all || args.target == "fig9" {
        let t = fig9_from(matrix.as_deref().unwrap());
        let _ = writeln!(
            text,
            "\n== Fig. 9: device memory usage (normalised to 1-GPU user data) =="
        );
        let mut cur = String::new();
        for b in &t {
            let hdr = format!("{} / {}", b.machine, b.app);
            if hdr != cur {
                let _ = writeln!(text, "  -- {hdr} --");
                cur = hdr;
            }
            let _ = writeln!(
                text,
                "    {} GPU: User {:>6.3}  System {:>7.4} ({:.2}% of 1-GPU user data)",
                b.ngpus,
                b.user,
                b.system,
                b.system * 100.0
            );
        }
        out.push((
            "fig9",
            Value::Arr(
                t.iter()
                    .map(|b| {
                        Value::obj([
                            ("machine", Value::str(&b.machine)),
                            ("app", Value::str(&b.app)),
                            ("ngpus", Value::num(b.ngpus as f64)),
                            ("user", Value::num(b.user)),
                            ("system", Value::num(b.system)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if all || args.target == "ablation-chunk" {
        let t = ablation_chunk(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Ablation §IV-D1: dirty-bit chunk size (BFS, node, 3 GPUs) =="
        );
        let mut cur = String::new();
        for p in &t {
            if p.workload != cur {
                let _ = writeln!(text, "  -- {} --", p.workload);
                cur = p.workload.clone();
            }
            let _ = writeln!(
                text,
                "    chunk {:>6} KB: GPU-GPU {:>9.5}s  total {:>9.4}s  chunks sent {:>8}  p2p {:>8.2} MB",
                p.chunk_kb, p.gpu_gpu_time, p.total_time, p.dirty_chunks_sent, p.p2p_mb
            );
        }
        out.push((
            "ablation_chunk",
            Value::Arr(
                t.iter()
                    .map(|p| {
                        Value::obj([
                            ("workload", Value::str(&p.workload)),
                            ("chunk_kb", Value::num(p.chunk_kb as f64)),
                            ("gpu_gpu_time", Value::num(p.gpu_gpu_time)),
                            ("total_time", Value::num(p.total_time)),
                            ("dirty_chunks_sent", Value::num(p.dirty_chunks_sent as f64)),
                            ("p2p_mb", Value::num(p.p2p_mb)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if all || args.target == "ablation-layout" {
        let t = ablation_layout(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Ablation §IV-B4: 2-D layout transform (desktop, 2 GPUs) =="
        );
        for p in &t {
            let _ = writeln!(
                text,
                "  {:<8} transform={:<5}  kernels {:>9.4}s  total {:>9.4}s",
                p.app, p.transform, p.kernels_time, p.total_time
            );
        }
        out.push((
            "ablation_layout",
            Value::Arr(
                t.iter()
                    .map(|p| {
                        Value::obj([
                            ("app", Value::str(&p.app)),
                            ("transform", Value::Bool(p.transform)),
                            ("kernels_time", Value::num(p.kernels_time)),
                            ("total_time", Value::num(p.total_time)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if all || args.target == "ablation-placement" {
        let t = ablation_placement(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Ablation §IV-C: distribution vs replica placement (desktop, 2 GPUs) =="
        );
        for p in &t {
            let _ = writeln!(
                text,
                "  {:<8} distribution={:<5}  h2d {:>8.1} MB  user mem {:>8.1} MB  total {:>9.4}s",
                p.app, p.distribution, p.h2d_mb, p.user_mem_mb, p.total_time
            );
        }
        out.push((
            "ablation_placement",
            Value::Arr(
                t.iter()
                    .map(|p| {
                        Value::obj([
                            ("app", Value::str(&p.app)),
                            ("distribution", Value::Bool(p.distribution)),
                            ("h2d_mb", Value::num(p.h2d_mb)),
                            ("total_time", Value::num(p.total_time)),
                            ("user_mem_mb", Value::num(p.user_mem_mb)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if all || args.target == "ablation-loader-reuse" {
        let t = ablation_loader_reuse(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Ablation §IV-C: loader reload-skipping (desktop, 2 GPUs) =="
        );
        for p in &t {
            let _ = writeln!(
                text,
                "  {:<8} reuse={:<5}  h2d {:>8.1} MB  cpu-gpu {:>9.4}s  total {:>9.4}s",
                p.app, p.reuse, p.h2d_mb, p.cpu_gpu_time, p.total_time
            );
        }
        out.push((
            "ablation_loader_reuse",
            Value::Arr(
                t.iter()
                    .map(|p| {
                        Value::obj([
                            ("app", Value::str(&p.app)),
                            ("reuse", Value::Bool(p.reuse)),
                            ("h2d_mb", Value::num(p.h2d_mb)),
                            ("cpu_gpu_time", Value::num(p.cpu_gpu_time)),
                            ("total_time", Value::num(p.total_time)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if all || args.target == "extension-stencil" {
        let t = extension_stencil(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Extension §VI: 2-D heat stencil via 1-D row distribution =="
        );
        let mut cur = String::new();
        for p in &t {
            if p.machine != cur {
                let _ = writeln!(text, "  -- {} --", p.machine);
                cur = p.machine.clone();
            }
            let _ = writeln!(
                text,
                "    {} GPU: {:>5.2}x vs 1 GPU | kernels {:>8.4}s cpu-gpu {:>8.4}s \
                 gpu-gpu {:>8.4}s | halo p2p {:>7.1} MB | miss checks {:>9}{}",
                p.ngpus,
                p.relative_perf_vs_1gpu,
                p.kernels_time,
                p.cpu_gpu_time,
                p.gpu_gpu_time,
                p.p2p_mb,
                p.miss_checks,
                if p.correct { "" } else { "  !! WRONG" }
            );
        }
        out.push((
            "extension_stencil",
            Value::Arr(
                t.iter()
                    .map(|p| {
                        Value::obj([
                            ("machine", Value::str(&p.machine)),
                            ("ngpus", Value::num(p.ngpus as f64)),
                            ("relative_perf_vs_1gpu", Value::num(p.relative_perf_vs_1gpu)),
                            ("kernels_time", Value::num(p.kernels_time)),
                            ("cpu_gpu_time", Value::num(p.cpu_gpu_time)),
                            ("gpu_gpu_time", Value::num(p.gpu_gpu_time)),
                            ("p2p_mb", Value::num(p.p2p_mb)),
                            ("miss_checks", Value::num(p.miss_checks as f64)),
                            ("correct", Value::Bool(p.correct)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    print!("{text}");
    if let Some(path) = args.json {
        let json = Value::obj(out).to_string_pretty();
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
