//! `figures` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p acc-bench --bin figures -- all
//! cargo run --release -p acc-bench --bin figures -- fig7 --scale scaled
//! cargo run --release -p acc-bench --bin figures -- table2 --scale paper --json out.json
//! ```
//!
//! Targets: `table1`, `table2`, `fig7`, `fig8`, `fig9`, `ablation-chunk`,
//! `ablation-layout`, `ablation-placement`, `all`.
//! Scales: `small` (seconds), `scaled` (default; structure-preserving
//! reductions of the paper inputs), `paper` (full published sizes).

use acc_apps::Scale;
use acc_bench::*;
use serde::Serialize;
use std::fmt::Write as _;

struct Args {
    target: String,
    scale: Scale,
    json: Option<String>,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        target: "all".to_string(),
        scale: Scale::Scaled,
        json: None,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = match it.next().as_deref() {
                    Some("small") => Scale::Small,
                    Some("scaled") => Scale::Scaled,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => args.json = it.next(),
            "--seed" => args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [table1|table2|fig7|fig8|fig9|ablation-chunk|\
                     ablation-layout|ablation-placement|all] [--scale small|scaled|paper] \
                     [--json FILE] [--seed N]"
                );
                std::process::exit(0);
            }
            t => args.target = t.to_string(),
        }
    }
    args
}

#[derive(Serialize, Default)]
struct AllOutputs {
    #[serde(skip_serializing_if = "Option::is_none")]
    table1: Option<Vec<MachineRow>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    table2: Option<Vec<AppRow>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    fig7: Option<Vec<Fig7Bar>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    fig8: Option<Vec<Fig8Bar>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    fig9: Option<Vec<Fig9Bar>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    ablation_chunk: Option<Vec<ChunkPoint>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    ablation_layout: Option<Vec<LayoutPoint>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    ablation_placement: Option<Vec<PlacementPoint>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    ablation_loader_reuse: Option<Vec<ReusePoint>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    extension_stencil: Option<Vec<StencilPoint>>,
}

fn main() {
    let args = parse_args();
    let mut out = AllOutputs::default();
    let all = args.target == "all";
    let mut text = String::new();

    if all || args.target == "table1" {
        let t = table1();
        let _ = writeln!(text, "== Table I: machine settings ==");
        for r in &t {
            let _ = writeln!(
                text,
                "  {:<20} CPU: {:<28} OMP threads: {:<3} GPUs: {:<18} {:>4.1} GB each  \
                 PCIe {:.1}/{:.1} GB/s (h2d/p2p)",
                r.machine, r.cpu, r.omp_threads, r.gpus, r.gpu_mem_gb, r.h2d_gbs, r.p2p_gbs
            );
        }
        out.table1 = Some(t);
    }

    if all || args.target == "table2" {
        let t = table2(args.scale);
        let _ = writeln!(text, "\n== Table II: application characteristics ==");
        let _ = writeln!(
            text,
            "  {:<8} {:<16} {:<28} {:>10} {:>3} {:>4} {:>6} {:>8}",
            "App", "Description", "Input", "A(MB)", "B", "C", "D", "correct"
        );
        for r in &t {
            let _ = writeln!(
                text,
                "  {:<8} {:<16} {:<28} {:>10.1} {:>3} {:>4} {:>6} {:>8}",
                r.app,
                r.description,
                r.input,
                r.device_mb,
                r.parallel_loops,
                r.kernel_execs,
                r.localaccess,
                r.correct
            );
        }
        out.table2 = Some(t);
    }

    // Figs. 7–9 share one evaluation matrix (every machine × app ×
    // version run exactly once).
    let matrix = if all || ["fig7", "fig8", "fig9"].contains(&args.target.as_str()) {
        Some(run_matrix(args.scale, args.seed, true))
    } else {
        None
    };

    if all || args.target == "fig7" {
        let t = fig7_from(matrix.as_deref().unwrap());
        let _ = writeln!(
            text,
            "\n== Fig. 7: relative performance (normalised to OpenMP) =="
        );
        let mut cur = String::new();
        for b in &t {
            let hdr = format!("{} / {}", b.machine, b.app);
            if hdr != cur {
                let _ = writeln!(text, "  -- {hdr} --");
                cur = hdr;
            }
            let _ = writeln!(
                text,
                "    {:<18} {:>6.2}x {}",
                b.version,
                b.relative_perf,
                if b.correct { "" } else { "  !! WRONG RESULT" }
            );
        }
        out.fig7 = Some(t);
    }

    if all || args.target == "fig8" {
        let t = fig8_from(matrix.as_deref().unwrap());
        let _ = writeln!(
            text,
            "\n== Fig. 8: execution-time breakdown (normalised to 1-GPU total) =="
        );
        let mut cur = String::new();
        for b in &t {
            let hdr = format!("{} / {}", b.machine, b.app);
            if hdr != cur {
                let _ = writeln!(text, "  -- {hdr} --");
                cur = hdr;
            }
            let _ = writeln!(
                text,
                "    {} GPU: KERNELS {:>5.2}  CPU-GPU {:>5.2}  GPU-GPU {:>5.2}  | total {:>5.2}",
                b.ngpus,
                b.kernels,
                b.cpu_gpu,
                b.gpu_gpu,
                b.kernels + b.cpu_gpu + b.gpu_gpu
            );
        }
        out.fig8 = Some(t);
    }

    if all || args.target == "fig9" {
        let t = fig9_from(matrix.as_deref().unwrap());
        let _ = writeln!(
            text,
            "\n== Fig. 9: device memory usage (normalised to 1-GPU user data) =="
        );
        let mut cur = String::new();
        for b in &t {
            let hdr = format!("{} / {}", b.machine, b.app);
            if hdr != cur {
                let _ = writeln!(text, "  -- {hdr} --");
                cur = hdr;
            }
            let _ = writeln!(
                text,
                "    {} GPU: User {:>6.3}  System {:>7.4} ({:.2}% of 1-GPU user data)",
                b.ngpus,
                b.user,
                b.system,
                b.system * 100.0
            );
        }
        out.fig9 = Some(t);
    }

    if all || args.target == "ablation-chunk" {
        let t = ablation_chunk(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Ablation §IV-D1: dirty-bit chunk size (BFS, node, 3 GPUs) =="
        );
        let mut cur = String::new();
        for p in &t {
            if p.workload != cur {
                let _ = writeln!(text, "  -- {} --", p.workload);
                cur = p.workload.clone();
            }
            let _ = writeln!(
                text,
                "    chunk {:>6} KB: GPU-GPU {:>9.5}s  total {:>9.4}s  chunks sent {:>8}  p2p {:>8.2} MB",
                p.chunk_kb, p.gpu_gpu_time, p.total_time, p.dirty_chunks_sent, p.p2p_mb
            );
        }
        out.ablation_chunk = Some(t);
    }

    if all || args.target == "ablation-layout" {
        let t = ablation_layout(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Ablation §IV-B4: 2-D layout transform (desktop, 2 GPUs) =="
        );
        for p in &t {
            let _ = writeln!(
                text,
                "  {:<8} transform={:<5}  kernels {:>9.4}s  total {:>9.4}s",
                p.app, p.transform, p.kernels_time, p.total_time
            );
        }
        out.ablation_layout = Some(t);
    }

    if all || args.target == "ablation-placement" {
        let t = ablation_placement(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Ablation §IV-C: distribution vs replica placement (desktop, 2 GPUs) =="
        );
        for p in &t {
            let _ = writeln!(
                text,
                "  {:<8} distribution={:<5}  h2d {:>8.1} MB  user mem {:>8.1} MB  total {:>9.4}s",
                p.app, p.distribution, p.h2d_mb, p.user_mem_mb, p.total_time
            );
        }
        out.ablation_placement = Some(t);
    }

    if all || args.target == "ablation-loader-reuse" {
        let t = ablation_loader_reuse(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Ablation §IV-C: loader reload-skipping (desktop, 2 GPUs) =="
        );
        for p in &t {
            let _ = writeln!(
                text,
                "  {:<8} reuse={:<5}  h2d {:>8.1} MB  cpu-gpu {:>9.4}s  total {:>9.4}s",
                p.app, p.reuse, p.h2d_mb, p.cpu_gpu_time, p.total_time
            );
        }
        out.ablation_loader_reuse = Some(t);
    }

    if all || args.target == "extension-stencil" {
        let t = extension_stencil(args.scale, args.seed);
        let _ = writeln!(
            text,
            "\n== Extension §VI: 2-D heat stencil via 1-D row distribution =="
        );
        let mut cur = String::new();
        for p in &t {
            if p.machine != cur {
                let _ = writeln!(text, "  -- {} --", p.machine);
                cur = p.machine.clone();
            }
            let _ = writeln!(
                text,
                "    {} GPU: {:>5.2}x vs 1 GPU | kernels {:>8.4}s cpu-gpu {:>8.4}s \
                 gpu-gpu {:>8.4}s | halo p2p {:>7.1} MB | miss checks {:>9}{}",
                p.ngpus,
                p.relative_perf_vs_1gpu,
                p.kernels_time,
                p.cpu_gpu_time,
                p.gpu_gpu_time,
                p.p2p_mb,
                p.miss_checks,
                if p.correct { "" } else { "  !! WRONG" }
            );
        }
        out.extension_stencil = Some(t);
    }

    print!("{text}");
    if let Some(path) = args.json {
        let json = serde_json::to_string_pretty(&out).expect("serialise");
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
