//! `bench-diff` — compare two `BENCH_runtime.json` artifacts (see
//! [`crate::bench_runtime`]) and decide whether the newer one represents
//! a host-side performance regression or, worse, a simulated-semantics
//! change.
//!
//! The contract it enforces across commits:
//!
//! * both artifacts must come from the same configuration (`scale` and
//!   `seed` equal) — wall-clock numbers at different scales are not
//!   comparable;
//! * every point (app × GPU count) of the old artifact must still exist;
//! * `sim_s` must match *exactly* per point: simulated time is
//!   deterministic, so any drift means the runtime changed observable
//!   semantics, not just host speed;
//! * `wall_best_s` may regress by at most the tolerance (15% by
//!   default), with a small absolute floor so microsecond-scale jitter
//!   on near-instant configurations cannot trip it;
//! * every point of the new artifact must be `correct`.
//!
//! [`bench_diff`] returns `Err` only for malformed input; comparison
//! failures are collected in [`DiffReport::problems`] so the CLI can
//! print the full table before exiting non-zero.

use acc_obs::json::{self, Value};

/// Default allowed relative wall-clock regression (`0.15` = +15%).
pub const DEFAULT_WALL_TOLERANCE: f64 = 0.15;

/// Absolute slack (seconds) under which a relative wall regression is
/// ignored: a 0.3 ms → 0.4 ms move is +33% but pure scheduler noise.
const WALL_ABS_FLOOR_S: f64 = 1e-3;

/// Relative slack for the `sim_s` equality check — covers only decimal
/// round-tripping through the JSON writer, not real drift.
const SIM_REL_EPS: f64 = 1e-9;

/// One parsed measurement point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    pub app: String,
    pub ngpus: usize,
    pub wall_best_s: f64,
    pub wall_mean_s: f64,
    pub sim_s: f64,
    /// Simulated comm-phase seconds. `None` for artifacts written before
    /// the column existed; present on both sides it is held to the same
    /// exact-match contract as `sim_s`.
    pub comm_sim_s: Option<f64>,
    pub correct: bool,
}

/// One parsed `comm_experiments` entry (app × compile/run mode).
#[derive(Debug, Clone, PartialEq)]
pub struct CommExpPoint {
    pub app: String,
    pub mode: String,
    pub comm_sim_s: f64,
    pub comm_elisions: u64,
    pub matches_annotated: bool,
}

/// One parsed `scaling` entry (app × GPU count × topology × overlap;
/// see `acc_bench::bench_scaling`). All four time fields are simulated
/// seconds and therefore deterministic: present on both sides they are
/// held to the same exact-match contract as `sim_s` in `points`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingSecPoint {
    pub app: String,
    pub ngpus: usize,
    pub topo: String,
    pub overlap: bool,
    pub sim_s: f64,
    pub comm_sim_s: f64,
    pub cpu_gpu_s: f64,
    pub overlap_hidden_s: f64,
    pub correct: bool,
}

/// The parsed `serve` section: one in-process daemon throughput
/// measurement (see `acc_bench::bench_serve`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSection {
    pub tenants: usize,
    pub jobs_total: usize,
    pub jobs_per_s: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub cache_hit_rate: f64,
    pub all_correct: bool,
}

/// One parsed `BENCH_runtime.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    pub scale: String,
    pub seed: u64,
    pub points: Vec<BenchPoint>,
    /// Empty for artifacts written before the section existed.
    pub comm_experiments: Vec<CommExpPoint>,
    /// Empty for artifacts written before the topology scaling section
    /// existed.
    pub scaling: Vec<ScalingSecPoint>,
    /// `None` for artifacts written before the daemon existed.
    pub serve: Option<ServeSection>,
}

/// Parse a `BENCH_runtime.json` document.
pub fn parse_bench_file(src: &str, which: &str) -> Result<BenchFile, String> {
    let doc = json::parse(src).map_err(|e| format!("{which}: {e}"))?;
    let field = |v: &Value, key: &str| -> Result<Value, String> {
        v.get(key)
            .cloned()
            .ok_or_else(|| format!("{which}: missing field `{key}`"))
    };
    let scale = field(&doc, "scale")?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{which}: `scale` is not a string"))?;
    let seed = field(&doc, "seed")?
        .as_f64()
        .ok_or_else(|| format!("{which}: `seed` is not a number"))? as u64;
    let raw = field(&doc, "points")?;
    let arr = raw
        .as_arr()
        .ok_or_else(|| format!("{which}: `points` is not an array"))?;
    let mut points = Vec::with_capacity(arr.len());
    for (i, p) in arr.iter().enumerate() {
        let num = |key: &str| -> Result<f64, String> {
            p.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{which}: points[{i}]: bad `{key}`"))
        };
        let correct = match p.get("correct") {
            Some(Value::Bool(b)) => *b,
            _ => return Err(format!("{which}: points[{i}]: bad `correct`")),
        };
        points.push(BenchPoint {
            app: p
                .get("app")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{which}: points[{i}]: bad `app`"))?
                .to_string(),
            ngpus: num("ngpus")? as usize,
            wall_best_s: num("wall_best_s")?,
            wall_mean_s: num("wall_mean_s")?,
            sim_s: num("sim_s")?,
            comm_sim_s: p.get("comm_sim_s").and_then(Value::as_f64),
            correct,
        });
    }
    // `comm_experiments` appeared after the first artifacts were
    // committed: absent means "old format", not malformed — but a
    // present section must parse fully.
    let mut comm_experiments = Vec::new();
    if let Some(raw) = doc.get("comm_experiments") {
        let arr = raw
            .as_arr()
            .ok_or_else(|| format!("{which}: `comm_experiments` is not an array"))?;
        for (i, c) in arr.iter().enumerate() {
            let sfield = |key: &str| -> Result<String, String> {
                c.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("{which}: comm_experiments[{i}]: bad `{key}`"))
            };
            let num = |key: &str| -> Result<f64, String> {
                c.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{which}: comm_experiments[{i}]: bad `{key}`"))
            };
            let matches_annotated = match c.get("matches_annotated") {
                Some(Value::Bool(b)) => *b,
                _ => {
                    return Err(format!(
                        "{which}: comm_experiments[{i}]: bad `matches_annotated`"
                    ))
                }
            };
            comm_experiments.push(CommExpPoint {
                app: sfield("app")?,
                mode: sfield("mode")?,
                comm_sim_s: num("comm_sim_s")?,
                comm_elisions: num("comm_elisions")? as u64,
                matches_annotated,
            });
        }
    }
    // The `scaling` section postdates the flat-bus artifacts: absent
    // means "old format", a present section must parse fully.
    let mut scaling = Vec::new();
    if let Some(raw) = doc.get("scaling") {
        let arr = raw
            .as_arr()
            .ok_or_else(|| format!("{which}: `scaling` is not an array"))?;
        for (i, s) in arr.iter().enumerate() {
            let sfield = |key: &str| -> Result<String, String> {
                s.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("{which}: scaling[{i}]: bad `{key}`"))
            };
            let num = |key: &str| -> Result<f64, String> {
                s.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{which}: scaling[{i}]: bad `{key}`"))
            };
            let flag = |key: &str| -> Result<bool, String> {
                match s.get(key) {
                    Some(Value::Bool(b)) => Ok(*b),
                    _ => Err(format!("{which}: scaling[{i}]: bad `{key}`")),
                }
            };
            scaling.push(ScalingSecPoint {
                app: sfield("app")?,
                ngpus: num("ngpus")? as usize,
                topo: sfield("topo")?,
                overlap: flag("overlap")?,
                sim_s: num("sim_s")?,
                comm_sim_s: num("comm_sim_s")?,
                cpu_gpu_s: num("cpu_gpu_s")?,
                overlap_hidden_s: num("overlap_hidden_s")?,
                correct: flag("correct")?,
            });
        }
    }
    // Like `comm_experiments`, the `serve` section postdates the first
    // committed artifacts: an old baseline without it is "section not
    // yet recorded", never a mismatch. A present section must parse.
    let serve = match doc.get("serve") {
        None | Some(Value::Null) => None,
        Some(s) => {
            let num = |key: &str| -> Result<f64, String> {
                s.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{which}: serve: bad `{key}`"))
            };
            let all_correct = match s.get("all_correct") {
                Some(Value::Bool(b)) => *b,
                _ => return Err(format!("{which}: serve: bad `all_correct`")),
            };
            Some(ServeSection {
                tenants: num("tenants")? as usize,
                jobs_total: num("jobs_total")? as usize,
                jobs_per_s: num("jobs_per_s")?,
                p50_ms: num("p50_ms")?,
                p99_ms: num("p99_ms")?,
                cache_hit_rate: num("cache_hit_rate")?,
                all_correct,
            })
        }
    };
    Ok(BenchFile { scale, seed, points, comm_experiments, scaling, serve })
}

/// One old-vs-new point comparison.
#[derive(Debug, Clone)]
pub struct DiffLine {
    pub app: String,
    pub ngpus: usize,
    pub old_wall_s: f64,
    pub new_wall_s: f64,
    /// `new / old`; > 1 is slower.
    pub ratio: f64,
    pub sim_matches: bool,
    pub regressed: bool,
}

/// The full comparison result.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub lines: Vec<DiffLine>,
    /// Human-readable failures; non-empty means the diff should fail.
    pub problems: Vec<String>,
    /// Informational observations (e.g. a section the old baseline
    /// predates); never fail the diff.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// True when the new artifact must be rejected.
    pub fn failed(&self) -> bool {
        !self.problems.is_empty()
    }

    /// Render the per-point table plus any problems.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<8} {:>5} {:>12} {:>12} {:>8}  verdict",
            "App", "GPUs", "old wall", "new wall", "ratio"
        );
        for l in &self.lines {
            let verdict = if !l.sim_matches {
                "SIM MISMATCH"
            } else if l.regressed {
                "REGRESSED"
            } else if l.ratio < 1.0 {
                "faster"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {:<8} {:>5} {:>11.3}s {:>11.3}s {:>7.2}x  {}",
                l.app, l.ngpus, l.old_wall_s, l.new_wall_s, l.ratio, verdict
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "NOTE: {n}");
        }
        for p in &self.problems {
            let _ = writeln!(out, "FAIL: {p}");
        }
        if !self.failed() {
            let _ = writeln!(out, "OK: no wall-clock regression, simulated times unchanged");
        }
        out
    }
}

/// Compare two parsed artifacts. `wall_tolerance` is the allowed
/// relative `wall_best_s` regression (e.g. `0.15`).
pub fn diff_bench(old: &BenchFile, new: &BenchFile, wall_tolerance: f64) -> DiffReport {
    let mut r = DiffReport::default();
    if old.scale != new.scale {
        r.problems.push(format!(
            "scale mismatch: old `{}` vs new `{}` (wall times are only comparable at a fixed scale)",
            old.scale, new.scale
        ));
    }
    if old.seed != new.seed {
        r.problems.push(format!(
            "seed mismatch: old {} vs new {}",
            old.seed, new.seed
        ));
    }
    for op in &old.points {
        let Some(np) = new
            .points
            .iter()
            .find(|p| p.app == op.app && p.ngpus == op.ngpus)
        else {
            r.problems.push(format!(
                "point {} x{} present in old but missing from new",
                op.app, op.ngpus
            ));
            continue;
        };
        let sim_matches = (np.sim_s - op.sim_s).abs()
            <= SIM_REL_EPS * op.sim_s.abs().max(np.sim_s.abs());
        if !sim_matches {
            r.problems.push(format!(
                "simulated time moved for {} x{}: {} -> {} (host-side changes must not alter simulated semantics)",
                op.app, op.ngpus, op.sim_s, np.sim_s
            ));
        }
        // The comm-phase column is a component of `sim_s` and equally
        // deterministic; compare only when both artifacts carry it.
        if let (Some(oc), Some(nc)) = (op.comm_sim_s, np.comm_sim_s) {
            if (nc - oc).abs() > SIM_REL_EPS * oc.abs().max(nc.abs()) {
                r.problems.push(format!(
                    "simulated comm-phase time moved for {} x{}: {oc} -> {nc}",
                    op.app, op.ngpus
                ));
            }
        }
        // A zero, negative or non-finite baseline wall time cannot
        // anchor a ratio — dividing by it yields inf/NaN, and silently
        // substituting 1.0 would wave any regression through. Reject the
        // baseline loudly instead.
        let ratio = if op.wall_best_s.is_finite() && op.wall_best_s > 0.0 {
            np.wall_best_s / op.wall_best_s
        } else {
            r.problems.push(format!(
                "unusable baseline for {} x{}: old wall_best_s = {} (must be finite and > 0; re-record the baseline artifact)",
                op.app, op.ngpus, op.wall_best_s
            ));
            1.0
        };
        let regressed = ratio > 1.0 + wall_tolerance
            && np.wall_best_s - op.wall_best_s > WALL_ABS_FLOOR_S;
        if regressed {
            r.problems.push(format!(
                "wall-clock regression for {} x{}: {:.3}s -> {:.3}s ({:+.1}%, tolerance {:.0}%)",
                op.app,
                op.ngpus,
                op.wall_best_s,
                np.wall_best_s,
                (ratio - 1.0) * 100.0,
                wall_tolerance * 100.0
            ));
        }
        if !np.correct {
            r.problems
                .push(format!("new point {} x{} reports correct=false", np.app, np.ngpus));
        }
        r.lines.push(DiffLine {
            app: op.app.clone(),
            ngpus: op.ngpus,
            old_wall_s: op.wall_best_s,
            new_wall_s: np.wall_best_s,
            ratio,
            sim_matches,
            regressed,
        });
    }
    // The comm-experiments section guards the inference/elision wins:
    // a recorded mode must not vanish, its simulated comm time is
    // deterministic, an elision count that drops means facts were lost,
    // and a run that used to match the annotated baseline bit-for-bit
    // must keep matching.
    for oc in &old.comm_experiments {
        let Some(nc) = new
            .comm_experiments
            .iter()
            .find(|c| c.app == oc.app && c.mode == oc.mode)
        else {
            r.problems.push(format!(
                "comm experiment {}/{} present in old but missing from new",
                oc.app, oc.mode
            ));
            continue;
        };
        if (nc.comm_sim_s - oc.comm_sim_s).abs()
            > SIM_REL_EPS * oc.comm_sim_s.abs().max(nc.comm_sim_s.abs())
        {
            r.problems.push(format!(
                "comm experiment {}/{}: simulated comm time moved: {} -> {}",
                oc.app, oc.mode, oc.comm_sim_s, nc.comm_sim_s
            ));
        }
        if nc.comm_elisions < oc.comm_elisions {
            r.problems.push(format!(
                "comm experiment {}/{}: elided syncs dropped {} -> {} (static facts lost)",
                oc.app, oc.mode, oc.comm_elisions, nc.comm_elisions
            ));
        }
        if oc.matches_annotated && !nc.matches_annotated {
            r.problems.push(format!(
                "comm experiment {}/{}: no longer bit-identical to the annotated baseline",
                oc.app, oc.mode
            ));
        }
    }
    diff_scaling(old, new, &mut r);
    diff_serve(old, new, &mut r);
    r
}

/// Compare the `scaling` sections. Every recorded point (app × GPUs ×
/// topology × overlap) must persist, its simulated times are
/// deterministic and pinned exactly, and `correct` must stay true. A
/// baseline that predates the section gets a note, like `serve`.
fn diff_scaling(old: &BenchFile, new: &BenchFile, r: &mut DiffReport) {
    if old.scaling.is_empty() && !new.scaling.is_empty() {
        r.notes.push(format!(
            "scaling section added ({} points: app x GPUs x topology x overlap)",
            new.scaling.len()
        ));
    }
    for np in &new.scaling {
        if !np.correct {
            r.problems.push(format!(
                "scaling point {} x{} {}{} reports correct=false",
                np.app,
                np.ngpus,
                np.topo,
                if np.overlap { "+overlap" } else { "" }
            ));
        }
    }
    for op in &old.scaling {
        let key = format!(
            "{} x{} {}{}",
            op.app,
            op.ngpus,
            op.topo,
            if op.overlap { "+overlap" } else { "" }
        );
        let Some(np) = new.scaling.iter().find(|p| {
            p.app == op.app && p.ngpus == op.ngpus && p.topo == op.topo && p.overlap == op.overlap
        }) else {
            r.problems
                .push(format!("scaling point {key} present in old but missing from new"));
            continue;
        };
        for (name, o, n) in [
            ("sim_s", op.sim_s, np.sim_s),
            ("comm_sim_s", op.comm_sim_s, np.comm_sim_s),
            ("cpu_gpu_s", op.cpu_gpu_s, np.cpu_gpu_s),
            ("overlap_hidden_s", op.overlap_hidden_s, np.overlap_hidden_s),
        ] {
            if (n - o).abs() > SIM_REL_EPS * o.abs().max(n.abs()) {
                r.problems.push(format!(
                    "scaling point {key}: simulated `{name}` moved: {o} -> {n}"
                ));
            }
        }
    }
}

/// Hit rate below which the serve section fails the diff: repeated
/// mixed jobs over three programs must be nearly all cache hits.
const SERVE_MIN_HIT_RATE: f64 = 0.90;

/// Compare the `serve` sections. A baseline that predates the section
/// gets a note, not a failure — the section being *added* is the
/// expected one-time event, only its *removal* is a regression.
fn diff_serve(old: &BenchFile, new: &BenchFile, r: &mut DiffReport) {
    let (os, ns) = match (&old.serve, &new.serve) {
        (None, None) => return,
        (None, Some(ns)) => {
            r.notes.push(format!(
                "serve section added ({} tenants, {} jobs, {:.1} jobs/s, hit rate {:.1}%)",
                ns.tenants,
                ns.jobs_total,
                ns.jobs_per_s,
                ns.cache_hit_rate * 100.0
            ));
            // No baseline to compare against, but the absolute guards
            // below still apply to the new section.
            (None, ns)
        }
        (Some(_), None) => {
            r.problems
                .push("serve section present in old but missing from new".to_string());
            return;
        }
        (Some(os), Some(ns)) => (Some(os), ns),
    };
    if !ns.all_correct {
        r.problems
            .push("serve section reports all_correct=false".to_string());
    }
    if ns.cache_hit_rate <= SERVE_MIN_HIT_RATE {
        r.problems.push(format!(
            "serve cache hit rate {:.1}% is not above {:.0}%",
            ns.cache_hit_rate * 100.0,
            SERVE_MIN_HIT_RATE * 100.0
        ));
    }
    if let Some(os) = os {
        if ns.tenants < os.tenants {
            r.problems.push(format!(
                "serve tenants dropped {} -> {}",
                os.tenants, ns.tenants
            ));
        }
        r.notes.push(format!(
            "serve throughput {:.1} -> {:.1} jobs/s, p50 {:.1} -> {:.1} ms, p99 {:.1} -> {:.1} ms",
            os.jobs_per_s, ns.jobs_per_s, os.p50_ms, ns.p50_ms, os.p99_ms, ns.p99_ms
        ));
    }
}

/// End-to-end entry used by `figures -- bench-diff`: parse both
/// documents and compare. `Err` means malformed input (exit 2 in the
/// CLI); a returned report with [`DiffReport::failed`] means a
/// regression (exit 1).
pub fn bench_diff(old_src: &str, new_src: &str, wall_tolerance: f64) -> Result<DiffReport, String> {
    let old = parse_bench_file(old_src, "old")?;
    let new = parse_bench_file(new_src, "new")?;
    Ok(diff_bench(&old, &new, wall_tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(scale: &str, seed: u64, points: &[(&str, usize, f64, f64, bool)]) -> String {
        let pts: Vec<Value> = points
            .iter()
            .map(|(app, ngpus, wall, sim, correct)| {
                Value::obj([
                    ("app", Value::str(*app)),
                    ("ngpus", Value::num(*ngpus as f64)),
                    ("wall_best_s", Value::num(*wall)),
                    ("wall_mean_s", Value::num(*wall * 1.1)),
                    ("sim_s", Value::num(*sim)),
                    ("correct", Value::Bool(*correct)),
                    ("reps", Value::num(3.0)),
                ])
            })
            .collect();
        Value::obj([
            ("scale", Value::str(scale)),
            ("seed", Value::num(seed as f64)),
            ("points", Value::Arr(pts)),
        ])
        .to_string_pretty()
    }

    const BASE: &[(&str, usize, f64, f64, bool)] = &[
        ("md", 1, 1.0, 0.5, true),
        ("md", 2, 0.6, 0.3, true),
        ("bfs", 3, 0.4, 0.2, true),
    ];

    #[test]
    fn identical_artifacts_pass() {
        let doc = artifact("scaled", 42, BASE);
        let r = bench_diff(&doc, &doc, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!r.failed(), "{:?}", r.problems);
        assert_eq!(r.lines.len(), 3);
        assert!(r.render().contains("OK:"));
    }

    #[test]
    fn improvement_and_small_jitter_pass() {
        let old = artifact("scaled", 42, BASE);
        // md x1 40% faster, md x2 10% slower (inside tolerance).
        let new = artifact(
            "scaled",
            42,
            &[
                ("md", 1, 0.6, 0.5, true),
                ("md", 2, 0.66, 0.3, true),
                ("bfs", 3, 0.4, 0.2, true),
            ],
        );
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!r.failed(), "{:?}", r.problems);
        assert!(r.render().contains("faster"));
    }

    #[test]
    fn wall_regression_over_tolerance_fails() {
        let old = artifact("scaled", 42, BASE);
        let new = artifact(
            "scaled",
            42,
            &[
                ("md", 1, 1.3, 0.5, true), // +30% > 15%
                ("md", 2, 0.6, 0.3, true),
                ("bfs", 3, 0.4, 0.2, true),
            ],
        );
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.failed());
        assert_eq!(r.problems.len(), 1);
        assert!(r.problems[0].contains("wall-clock regression for md x1"));
        assert!(r.render().contains("REGRESSED"));
    }

    #[test]
    fn micro_scale_jitter_is_ignored() {
        // +33% relative but only 0.1 ms absolute: noise, not a regression.
        let old = artifact("small", 1, &[("md", 1, 0.0003, 0.5, true)]);
        let new = artifact("small", 1, &[("md", 1, 0.0004, 0.5, true)]);
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!r.failed(), "{:?}", r.problems);
    }

    #[test]
    fn sim_time_drift_fails_even_when_faster() {
        let old = artifact("scaled", 42, BASE);
        let new = artifact(
            "scaled",
            42,
            &[
                ("md", 1, 0.5, 0.500001, true), // faster, but sim moved
                ("md", 2, 0.6, 0.3, true),
                ("bfs", 3, 0.4, 0.2, true),
            ],
        );
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.failed());
        assert!(r.problems[0].contains("simulated time moved for md x1"));
        assert!(r.render().contains("SIM MISMATCH"));
    }

    #[test]
    fn missing_point_and_wrong_result_fail() {
        let old = artifact("scaled", 42, BASE);
        let new = artifact(
            "scaled",
            42,
            &[("md", 1, 1.0, 0.5, true), ("md", 2, 0.6, 0.3, false)],
        );
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.failed());
        assert!(r.problems.iter().any(|p| p.contains("bfs x3") && p.contains("missing")));
        assert!(r.problems.iter().any(|p| p.contains("correct=false")));
    }

    #[test]
    fn scale_and_seed_mismatch_fail() {
        let old = artifact("scaled", 42, BASE);
        let new = artifact("small", 7, BASE);
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.failed());
        assert!(r.problems.iter().any(|p| p.contains("scale mismatch")));
        assert!(r.problems.iter().any(|p| p.contains("seed mismatch")));
    }

    #[test]
    fn zero_wall_baseline_is_an_unusable_baseline() {
        // A baseline recorded as 0.0s (e.g. a truncated artifact) must
        // not silently pass as ratio 1.0.
        let old = artifact("scaled", 42, &[("md", 1, 0.0, 0.5, true)]);
        let new = artifact("scaled", 42, &[("md", 1, 1.0, 0.5, true)]);
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.failed());
        assert!(
            r.problems.iter().any(|p| p.contains("unusable baseline for md x1")),
            "{:?}",
            r.problems
        );
    }

    fn artifact_with_serve(hit_rate: f64, correct: bool, tenants: f64) -> String {
        Value::obj([
            ("scale", Value::str("small")),
            ("seed", Value::num(42.0)),
            ("points", Value::Arr(vec![])),
            (
                "serve",
                Value::obj([
                    ("tenants", Value::num(tenants)),
                    ("jobs_per_tenant", Value::num(6.0)),
                    ("jobs_total", Value::num(tenants * 6.0)),
                    ("jobs_ok", Value::num(tenants * 6.0)),
                    ("jobs_per_s", Value::num(120.0)),
                    ("p50_ms", Value::num(8.0)),
                    ("p99_ms", Value::num(30.0)),
                    ("cache_hit_rate", Value::num(hit_rate)),
                    ("all_correct", Value::Bool(correct)),
                ]),
            ),
        ])
        .to_string_pretty()
    }

    #[test]
    fn serve_section_added_is_a_note_not_a_failure() {
        // The committed baseline predates the daemon: a new artifact
        // carrying the section must pass with a note, not fail on a
        // "missing section" mismatch.
        let old = artifact("small", 42, &[("md", 1, 1.0, 0.5, true)]);
        let mut new_doc = artifact_with_serve(0.95, true, 8.0);
        // Give the new artifact the same points as the old one.
        new_doc = new_doc.replace("\"points\": []", &format!(
            "\"points\": {}",
            Value::Arr(vec![Value::obj([
                ("app", Value::str("md")),
                ("ngpus", Value::num(1.0)),
                ("wall_best_s", Value::num(1.0)),
                ("wall_mean_s", Value::num(1.1)),
                ("sim_s", Value::num(0.5)),
                ("correct", Value::Bool(true)),
            ])])
            .to_string_compact()
        ));
        let r = bench_diff(&old, &new_doc, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!r.failed(), "{:?}", r.problems);
        assert!(
            r.notes.iter().any(|n| n.contains("serve section added")),
            "{:?}",
            r.notes
        );
        assert!(r.render().contains("NOTE: serve section added"));
    }

    #[test]
    fn serve_section_removal_fails() {
        let old = artifact_with_serve(0.95, true, 8.0);
        let new = artifact("small", 42, &[]);
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.failed());
        assert!(r.problems.iter().any(|p| p.contains("missing from new")));
    }

    #[test]
    fn serve_guards_hit_rate_correctness_and_tenants() {
        let old = artifact_with_serve(0.95, true, 8.0);
        let bad_rate = artifact_with_serve(0.85, true, 8.0);
        let r = bench_diff(&old, &bad_rate, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.problems.iter().any(|p| p.contains("hit rate")), "{:?}", r.problems);

        let bad_correct = artifact_with_serve(0.95, false, 8.0);
        let r = bench_diff(&old, &bad_correct, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.problems.iter().any(|p| p.contains("all_correct=false")));

        let fewer_tenants = artifact_with_serve(0.95, true, 4.0);
        let r = bench_diff(&old, &fewer_tenants, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.problems.iter().any(|p| p.contains("tenants dropped")));

        // Hit-rate guard also applies when the old baseline lacks the
        // section entirely.
        let no_serve = artifact("small", 42, &[]);
        let r = bench_diff(&no_serve, &bad_rate, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.failed());

        let ok = artifact_with_serve(0.97, true, 8.0);
        let r = bench_diff(&old, &ok, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!r.failed(), "{:?}", r.problems);
        assert!(r.notes.iter().any(|n| n.contains("serve throughput")));
    }

    fn artifact_with_scaling(points: &[(&str, usize, &str, bool, f64, bool)]) -> String {
        Value::obj([
            ("scale", Value::str("small")),
            ("seed", Value::num(42.0)),
            ("points", Value::Arr(vec![])),
            (
                "scaling",
                Value::Arr(
                    points
                        .iter()
                        .map(|(app, ngpus, topo, overlap, sim, correct)| {
                            Value::obj([
                                ("app", Value::str(*app)),
                                ("ngpus", Value::num(*ngpus as f64)),
                                ("topo", Value::str(*topo)),
                                ("overlap", Value::Bool(*overlap)),
                                ("sim_s", Value::num(*sim)),
                                ("comm_sim_s", Value::num(*sim / 4.0)),
                                ("cpu_gpu_s", Value::num(*sim / 2.0)),
                                ("overlap_hidden_s", Value::num(0.001)),
                                ("p2p_mb", Value::num(1.5)),
                                ("correct", Value::Bool(*correct)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }

    const SCALING_BASE: &[(&str, usize, &str, bool, f64, bool)] = &[
        ("heat2d", 16, "flat", false, 0.4, true),
        ("heat2d", 16, "cluster", false, 0.3, true),
        ("heat2d", 16, "cluster", true, 0.25, true),
    ];

    #[test]
    fn scaling_section_added_is_a_note_and_identical_sections_pass() {
        let old = artifact("small", 42, &[]);
        let new = artifact_with_scaling(SCALING_BASE);
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!r.failed(), "{:?}", r.problems);
        assert!(
            r.notes.iter().any(|n| n.contains("scaling section added")),
            "{:?}",
            r.notes
        );
        let r = bench_diff(&new, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!r.failed(), "{:?}", r.problems);
        assert!(r.notes.is_empty(), "{:?}", r.notes);
    }

    #[test]
    fn scaling_sim_drift_missing_point_and_wrong_result_fail() {
        let old = artifact_with_scaling(SCALING_BASE);
        // Cluster point's sim time drifts, overlap point vanishes.
        let new = artifact_with_scaling(&[
            ("heat2d", 16, "flat", false, 0.4, true),
            ("heat2d", 16, "cluster", false, 0.31, true),
        ]);
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.failed());
        let all = r.problems.join("\n");
        assert!(all.contains("scaling point heat2d x16 cluster: simulated `sim_s` moved"), "{all}");
        assert!(all.contains("heat2d x16 cluster+overlap present in old but missing"), "{all}");

        // A wrong result fails even without a baseline for the point.
        let bad = artifact_with_scaling(&[("pagerank", 64, "cluster", true, 0.2, false)]);
        let r = bench_diff(&old, &bad, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r
            .problems
            .iter()
            .any(|p| p.contains("pagerank x64 cluster+overlap reports correct=false")));
    }

    #[test]
    fn malformed_input_is_an_error_not_a_report() {
        assert!(bench_diff("{", "{}", DEFAULT_WALL_TOLERANCE).is_err());
        assert!(bench_diff("{\"scale\": \"s\"}", "{}", DEFAULT_WALL_TOLERANCE)
            .unwrap_err()
            .contains("missing field `seed`"));
    }

    #[test]
    fn real_bench_runtime_artifact_round_trips() {
        // The writer in `figures` serialises `bench_runtime` points with
        // exactly these fields; keep the parser in sync with it.
        let points = [crate::RuntimePoint {
            app: "md".to_string(),
            ngpus: 2,
            wall_best_s: 0.25,
            wall_mean_s: 0.3,
            sim_s: 0.125,
            comm_sim_s: 0.0625,
            comm_wall_s: 0.001,
            correct: true,
            reps: 3,
        }];
        let comm = [crate::CommPoint {
            app: "heat2d".to_string(),
            mode: "inferred".to_string(),
            ngpus: 3,
            comm_sim_s: 0.01,
            comm_wall_s: 0.002,
            p2p_bytes: 1024,
            comm_elisions: 0,
            matches_annotated: true,
        }];
        let doc = Value::obj([
            ("scale", Value::str("scaled")),
            ("seed", Value::num(42.0)),
            (
                "points",
                Value::Arr(
                    points
                        .iter()
                        .map(|p| {
                            Value::obj([
                                ("app", Value::str(&p.app)),
                                ("ngpus", Value::num(p.ngpus as f64)),
                                ("wall_best_s", Value::num(p.wall_best_s)),
                                ("wall_mean_s", Value::num(p.wall_mean_s)),
                                ("sim_s", Value::num(p.sim_s)),
                                ("comm_sim_s", Value::num(p.comm_sim_s)),
                                ("comm_wall_s", Value::num(p.comm_wall_s)),
                                ("correct", Value::Bool(p.correct)),
                                ("reps", Value::num(p.reps as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "comm_experiments",
                Value::Arr(
                    comm.iter()
                        .map(|c| {
                            Value::obj([
                                ("app", Value::str(&c.app)),
                                ("mode", Value::str(&c.mode)),
                                ("ngpus", Value::num(c.ngpus as f64)),
                                ("comm_sim_s", Value::num(c.comm_sim_s)),
                                ("comm_wall_s", Value::num(c.comm_wall_s)),
                                ("p2p_bytes", Value::num(c.p2p_bytes as f64)),
                                ("comm_elisions", Value::num(c.comm_elisions as f64)),
                                ("matches_annotated", Value::Bool(c.matches_annotated)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_pretty();
        let parsed = parse_bench_file(&doc, "artifact").unwrap();
        assert_eq!(parsed.scale, "scaled");
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.points.len(), 1);
        assert_eq!(parsed.points[0].app, "md");
        assert_eq!(parsed.points[0].sim_s, 0.125);
        assert_eq!(parsed.points[0].comm_sim_s, Some(0.0625));
        assert_eq!(parsed.comm_experiments.len(), 1);
        assert_eq!(parsed.comm_experiments[0].mode, "inferred");
        assert!(parsed.comm_experiments[0].matches_annotated);
        // Identical artifacts with the comm section still diff clean.
        let r = bench_diff(&doc, &doc, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(!r.failed(), "{:?}", r.problems);
    }

    #[test]
    fn comm_experiment_regressions_fail() {
        let mk = |comm_sim: f64, elisions: f64, matches: bool, modes: &[&str]| {
            Value::obj([
                ("scale", Value::str("scaled")),
                ("seed", Value::num(42.0)),
                ("points", Value::Arr(vec![])),
                (
                    "comm_experiments",
                    Value::Arr(
                        modes
                            .iter()
                            .map(|m| {
                                Value::obj([
                                    ("app", Value::str("spmv")),
                                    ("mode", Value::str(*m)),
                                    ("ngpus", Value::num(3.0)),
                                    ("comm_sim_s", Value::num(comm_sim)),
                                    ("comm_wall_s", Value::num(0.001)),
                                    ("p2p_bytes", Value::num(4096.0)),
                                    ("comm_elisions", Value::num(elisions)),
                                    ("matches_annotated", Value::Bool(matches)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
            .to_string_pretty()
        };
        let old = mk(0.5, 10.0, true, &["stripped", "stripped-elide"]);
        // Sim drift + lost elisions + lost bit-identity, and one mode gone.
        let new = mk(0.6, 4.0, false, &["stripped"]);
        let r = bench_diff(&old, &new, DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(r.failed());
        let all = r.problems.join("\n");
        assert!(all.contains("simulated comm time moved"), "{all}");
        assert!(all.contains("elided syncs dropped"), "{all}");
        assert!(all.contains("no longer bit-identical"), "{all}");
        assert!(all.contains("missing from new"), "{all}");
    }
}
