//! End-to-end application benches: one Criterion benchmark per
//! (application × program version), at Small scale so the suite stays in
//! seconds. These complement the `figures` binary, which regenerates the
//! paper's tables/figures at realistic sizes.

use acc_apps::{run_app, App, Scale, Version};
use acc_gpusim::Machine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_apps(c: &mut Criterion) {
    for &app in &App::ALL {
        let mut g = c.benchmark_group(format!("e2e/{}", app.name()));
        g.sample_size(10);
        for v in [
            Version::OpenMP,
            Version::Cuda,
            Version::Proposal(1),
            Version::Proposal(2),
            Version::Proposal(3),
        ] {
            g.bench_function(BenchmarkId::from_parameter(v.label()), |b| {
                b.iter(|| {
                    let mut m = Machine::supercomputer_node();
                    let r = run_app(app, v, &mut m, Scale::Small, 42).expect("run");
                    assert!(r.correct);
                    black_box(r.time.parallel_region())
                })
            });
        }
        g.finish();
    }
}

fn bench_compile_pipeline(c: &mut Criterion) {
    // Wall-clock of the full simulated pipeline per kernel launch,
    // including loader and communication manager (BFS Small = 7 launches
    // with dirty-bit sync on 3 GPUs).
    let mut g = c.benchmark_group("e2e/launch_overhead");
    g.sample_size(10);
    g.bench_function("bfs_small_3gpu", |b| {
        b.iter(|| {
            let mut m = Machine::supercomputer_node();
            let r = run_app(App::Bfs, Version::Proposal(3), &mut m, Scale::Small, 1).unwrap();
            black_box(r.kernel_launches)
        })
    });
    g.finish();
}

fn bench_comm_paths(c: &mut Criterion) {
    // Host-parallel vs serial communication phase on the comm-heaviest
    // app (BFS dirties scattered chunks on all 3 GPUs every launch).
    // Simulated results are identical by construction; this measures the
    // wall-clock of the functional work alone.
    use acc_apps::runner::compile_app;
    use acc_runtime::{run_program, ExecConfig};

    let prog = compile_app(App::Bfs, Version::Proposal(3)).expect("compile bfs");
    let (scalars, arrays) = acc_bench::app_inputs(App::Bfs, Scale::Small, 42);
    let mut g = c.benchmark_group("e2e/comm_path");
    g.sample_size(10);
    for parallel in [true, false] {
        let label = if parallel { "parallel" } else { "serial" };
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut m = Machine::supercomputer_node();
                let cfg = ExecConfig::gpus(3).parallel_comm(parallel);
                let r = run_program(&mut m, &cfg, &prog, scalars.clone(), arrays.clone())
                    .expect("run");
                black_box(r.profile.time.gpu_gpu)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_apps, bench_compile_pipeline, bench_comm_paths);
criterion_main!(benches);
