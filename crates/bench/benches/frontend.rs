//! Criterion benches for the frontend and translator: lexing, parsing,
//! semantic analysis, and full compilation of the three benchmark apps.

use acc_compiler::{compile_source, CompileOptions};
use acc_minic::{lexer, parser, sema};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sources() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("md", acc_apps::md::SOURCE, acc_apps::md::FUNCTION),
        ("kmeans", acc_apps::kmeans::SOURCE, acc_apps::kmeans::FUNCTION),
        ("bfs", acc_apps::bfs::SOURCE, acc_apps::bfs::FUNCTION),
    ]
}

fn bench_lexer(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend/lex");
    for (name, src, _) in sources() {
        g.bench_with_input(BenchmarkId::from_parameter(name), src, |b, src| {
            b.iter(|| lexer::lex(black_box(src)).unwrap())
        });
    }
    g.finish();
}

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend/parse");
    for (name, src, _) in sources() {
        let toks = lexer::lex(src).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &toks, |b, toks| {
            b.iter(|| parser::parse(black_box(toks)).unwrap())
        });
    }
    g.finish();
}

fn bench_sema(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend/sema");
    for (name, src, _) in sources() {
        let ast = parser::parse(&lexer::lex(src).unwrap()).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &ast, |b, ast| {
            b.iter(|| sema::check(black_box(ast)).unwrap())
        });
    }
    g.finish();
}

fn bench_full_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("translator/compile");
    for (name, src, func) in sources() {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                compile_source(black_box(src), func, &CompileOptions::proposal()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lexer, bench_parser, bench_sema, bench_full_compile);
criterion_main!(benches);
