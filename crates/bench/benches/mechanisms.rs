//! Criterion benches for the runtime mechanisms the paper's design hinges
//! on: the kernel interpreter, the two-level dirty-bit map, the range-set
//! coherence bookkeeping, and the PCIe bus scheduler.

use acc_kernel_ir::dirty::DirtyMap;
use acc_kernel_ir::{
    run_kernel_range, BufAccess, BufId, BufParam, Buffer, ExecCtx, Expr, Kernel, LocalId,
    ScalarParam, Stmt, Ty, Value,
};
use acc_runtime::RangeSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// The saxpy kernel in IR form.
fn saxpy_kernel() -> Kernel {
    let k = Kernel {
        name: "saxpy".into(),
        params: vec![ScalarParam {
            name: "a".into(),
            ty: Ty::F64,
        }],
        bufs: vec![
            BufParam {
                name: "x".into(),
                ty: Ty::F64,
                access: BufAccess::Read,
            },
            BufParam {
                name: "y".into(),
                ty: Ty::F64,
                access: BufAccess::ReadWrite,
            },
        ],
        locals: vec![Ty::F64],
        reductions: vec![],
        body: vec![
            Stmt::Assign {
                local: LocalId(0),
                value: Expr::add(
                    Expr::mul(
                        Expr::Param(acc_kernel_ir::ParamId(0)),
                        Expr::load(BufId(0), Expr::ThreadIdx),
                    ),
                    Expr::load(BufId(1), Expr::ThreadIdx),
                ),
            },
            Stmt::Store {
                buf: BufId(1),
                idx: Expr::ThreadIdx,
                value: Expr::Local(LocalId(0)),
                dirty: false,
                checked: false,
            },
        ],
    };
    k.validate().unwrap();
    k
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp/saxpy");
    let k = saxpy_kernel();
    for n in [1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut x = Buffer::zeroed(Ty::F64, n);
            let mut y = Buffer::zeroed(Ty::F64, n);
            b.iter(|| {
                let mut ctx = ExecCtx::new(
                    &k,
                    vec![Value::F64(2.0)],
                    vec![
                        acc_kernel_ir::BufSlot::whole(&mut x),
                        acc_kernel_ir::BufSlot::whole(&mut y),
                    ],
                );
                run_kernel_range(&k, &mut ctx, 0, n as i64).unwrap();
                black_box(ctx.counters.threads)
            })
        });
    }
    g.finish();
}

fn bench_dirty_marks(c: &mut Criterion) {
    let mut g = c.benchmark_group("dirty/mark");
    let n = 1 << 20;
    g.throughput(Throughput::Elements(n as u64 / 16));
    g.bench_function("scattered", |b| {
        b.iter(|| {
            let mut dm = DirtyMap::with_default_chunks(n, 4);
            let mut i = 7usize;
            for _ in 0..n / 16 {
                dm.mark(i % n);
                i = i.wrapping_mul(2654435761) % n;
            }
            black_box(dm.dirty_count())
        })
    });
    g.finish();
}

fn bench_dirty_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("dirty/scan");
    for chunk_kb in [64usize, 1024] {
        let n = 1 << 20;
        let mut dm = DirtyMap::new(n, 4, chunk_kb * 1024);
        // 1% scattered dirty.
        let mut i = 3usize;
        for _ in 0..n / 100 {
            dm.mark(i % n);
            i = i.wrapping_mul(2654435761) % n;
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(chunk_kb),
            &dm,
            |b, dm| {
                b.iter(|| {
                    let mut total = 0usize;
                    for c in dm.dirty_chunks() {
                        total += dm.dirty_runs_in_chunk(c).len();
                    }
                    black_box(total)
                })
            },
        );
    }
    g.finish();
}

fn bench_rangeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("rangeset");
    g.bench_function("insert_fragmented", |b| {
        b.iter(|| {
            let mut rs = RangeSet::new();
            for i in 0..500i64 {
                rs.insert(i * 4, i * 4 + 2);
            }
            black_box(rs.len())
        })
    });
    g.bench_function("missing_in", |b| {
        let mut rs = RangeSet::new();
        for i in 0..500i64 {
            rs.insert(i * 4, i * 4 + 2);
        }
        b.iter(|| black_box(rs.missing_in(0, 2000).len()))
    });
    g.finish();
}

fn bench_bus(c: &mut Criterion) {
    use acc_gpusim::{Endpoint, PcieBus};
    let mut g = c.benchmark_group("bus/schedule");
    g.bench_function("1000_transfers", |b| {
        b.iter(|| {
            let mut bus = PcieBus::desktop();
            let mut t = 0.0;
            for i in 0..1000u64 {
                let (_, e) = bus.transfer(
                    Endpoint::Host,
                    Endpoint::Gpu((i % 2) as usize),
                    1 << 20,
                    t,
                );
                t = e;
            }
            black_box(t)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_dirty_marks,
    bench_dirty_scan,
    bench_rangeset,
    bench_bus
);
criterion_main!(benches);
