//! Golden and property tests for automatic `localaccess` inference.
//!
//! The whole-program analysis must reproduce every hand-written
//! annotation of the paper's applications *exactly* — same stride, left
//! and right expressions — and consuming the inferred annotations on an
//! annotation-stripped source must produce a bit-identical run (arrays
//! and simulated times). The property test drives randomly generated
//! affine kernels through a fully sanitized run: an inferred window
//! narrower than any loaded address would under-allocate the partition
//! and fail the run.

use acc_apps::{App, Scale};
use acc_bench::{app_inputs, strip_localaccess};
use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_runtime::{run_program, ExecConfig, SanitizeLevel};
use proptest::prelude::*;

fn infer_opts() -> CompileOptions {
    CompileOptions {
        infer_localaccess: true,
        optimize_kernels: false,
        ..CompileOptions::proposal()
    }
}

#[test]
fn golden_inference_reproduces_hand_annotations_exactly() {
    for app in App::ALL {
        let p = compile_source(app.source(), app.function(), &infer_opts()).unwrap();
        for k in &p.kernels {
            for cfg in &k.configs {
                // Every app array is either hand-annotated or genuinely
                // un-inferable; nothing is left for inference to add.
                assert!(
                    !cfg.inferred_used,
                    "{}: kernel `{}` array `{}` should carry a hand annotation",
                    app.name(),
                    k.kernel.name,
                    cfg.name
                );
                // A `CarriedLocal` halo annotation is a *contract*, not a
                // recoverable access pattern: the distance analysis is
                // relative to the declared stride windows, so stripping
                // the pragma decays the verdict to `Unknown` and there is
                // nothing for inference to rediscover. The lint instead
                // validates the contract and prints the machine-applyable
                // pragma in its ACC-I003 note.
                if matches!(
                    cfg.lint.verdict,
                    acc_compiler::DependVerdict::CarriedLocal { .. }
                ) {
                    assert!(cfg.inferred.is_none());
                    continue;
                }
                match &cfg.localaccess {
                    Some(hand) => assert_eq!(
                        cfg.inferred.as_ref(),
                        Some(hand),
                        "{}: kernel `{}` array `{}`: inference must reproduce \
                         the hand-written localaccess exactly",
                        app.name(),
                        k.kernel.name,
                        cfg.name
                    ),
                    None => assert!(
                        cfg.inferred.is_none(),
                        "{}: kernel `{}` array `{}`: unannotated array suddenly \
                         inferable — annotate the source (ACC-I001)",
                        app.name(),
                        k.kernel.name,
                        cfg.name
                    ),
                }
            }
        }
    }
}

#[test]
fn stripped_sources_with_inference_run_bit_identical() {
    for app in App::ALL {
        // heat2d-halo2's only annotation is the halo contract licensing
        // its carried dependence; stripped, the array falls back to a
        // replicated placement (see the golden test above), so there is
        // no inference to compare against the hand-annotated build.
        if app == App::Heat2dHalo2 {
            continue;
        }
        let hand = compile_source(app.source(), app.function(), &CompileOptions::proposal())
            .unwrap();
        let stripped = strip_localaccess(app.source());
        assert!(!stripped.contains("#pragma acc localaccess"),
            "{}: strip must remove every annotation line", app.name());
        let inferred = compile_source(&stripped, app.function(), &infer_opts()).unwrap();
        // The inferred program consumed an annotation for exactly the
        // arrays the hand-written source annotates.
        for (kh, ki) in hand.kernels.iter().zip(&inferred.kernels) {
            for (ch, ci) in kh.configs.iter().zip(&ki.configs) {
                assert_eq!(ch.localaccess, ci.localaccess,
                    "{}: kernel `{}` array `{}`", app.name(), kh.kernel.name, ch.name);
                assert_eq!(ch.placement, ci.placement);
                assert_eq!(ci.inferred_used, ch.localaccess.is_some(),
                    "{}: `{}` must come from inference in the stripped build",
                    app.name(), ch.name);
            }
        }
        // And the runs are bit-identical: same arrays, same simulated
        // phase times, same traffic.
        let ngpus = 3;
        let (scalars, arrays) = app_inputs(app, Scale::Small, 42);
        let mut m = Machine::supercomputer_node();
        let rh = run_program(&mut m, &ExecConfig::gpus(ngpus), &hand, scalars.clone(), arrays.clone())
            .unwrap();
        let mut m = Machine::supercomputer_node();
        let ri = run_program(&mut m, &ExecConfig::gpus(ngpus), &inferred, scalars, arrays).unwrap();
        assert_eq!(rh.arrays, ri.arrays, "{}: arrays differ", app.name());
        assert_eq!(rh.profile.time, ri.profile.time, "{}: times differ", app.name());
        assert_eq!(rh.profile.h2d_bytes, ri.profile.h2d_bytes);
        assert_eq!(rh.profile.p2p_bytes, ri.profile.p2p_bytes);
        assert_eq!(
            ri.profile.inferred_annotations as usize,
            inferred
                .kernels
                .iter()
                .flat_map(|k| &k.configs)
                .filter(|c| c.inferred_used)
                .count(),
            "{}: every consumed inference surfaces as an event",
            app.name()
        );
    }
}

/// Render `a*i + b` / `a*i - |b|` without relying on unary-minus parsing.
fn affine_term(a: i64, b: i64) -> String {
    if b >= 0 {
        format!("{a} * i + {b}")
    } else {
        format!("{a} * i - {}", -b)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random two-term affine reads: the inferred window (when the
    /// analysis produces one) must cover every loaded address. The
    /// fully sanitized run rejects any load outside the declared
    /// window, and the replicated (no-inference) build is the oracle.
    #[test]
    fn inferred_windows_cover_every_load(
        a1 in 1i64..4,
        b1 in -1i64..5,
        a2 in 1i64..4,
        b2 in -1i64..5,
        n in 50i64..160,
    ) {
        let m = a1.max(a2) * (n + 1) + 8;
        let src = format!(
            "void f(int n, int m, double *x, double *y) {{\n\
             #pragma acc data copyin(x[0:m]) copy(y[0:n])\n\
             {{\n\
             #pragma acc parallel loop\n\
             for (int i = 1; i < n; i++) y[i] = x[{t1}] + x[{t2}] * 0.5;\n\
             }}\n\
             }}",
            t1 = affine_term(a1, b1),
            t2 = affine_term(a2, b2),
        );
        let x: Vec<f64> = (0..m).map(|i| (i % 31) as f64 - 7.0).collect();
        let run = |opts: &CompileOptions, sanitize| {
            let prog = compile_source(&src, "f", opts)?;
            let mut mach = Machine::supercomputer_node();
            run_program(
                &mut mach,
                &ExecConfig::gpus(3).sanitize(sanitize),
                &prog,
                vec![
                    acc_kernel_ir::Value::I32(n as i32),
                    acc_kernel_ir::Value::I32(m as i32),
                ],
                vec![
                    acc_kernel_ir::Buffer::from_f64(&x),
                    acc_kernel_ir::Buffer::zeroed(acc_kernel_ir::Ty::F64, n as usize),
                ],
            )
            .map_err(|e| e.to_string())
        };
        let reference = run(&CompileOptions::proposal(), SanitizeLevel::Off)
            .expect("replicated reference run");
        // Inference on, fully sanitized: a too-narrow window would fail
        // the run (under-allocated partition / out-of-window load).
        let inferred = run(&infer_opts(), SanitizeLevel::Full)
            .map_err(|e| TestCaseError::fail(format!("sanitized inferred run failed: {e}")))?;
        prop_assert_eq!(&reference.arrays[1], &inferred.arrays[1]);
    }
}
