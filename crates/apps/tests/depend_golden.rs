//! Golden checks for the dependence analysis over the full application
//! suite, and the bit-identity guarantee behind `ACC-I002`: compiling a
//! source with its `reductiontoarray` pragmas stripped under
//! `CompileOptions::infer_reductions` must be indistinguishable — same
//! placements, same final arrays bit-for-bit, same simulated times, same
//! structured event stream — from compiling the hand-annotated source.

use acc_apps::{pagerank, App};
use acc_compiler::{
    compile_source, CompileOptions, CompiledProgram, DependVerdict, DisjointProof, Placement,
};
use acc_gpusim::Machine;
use acc_runtime::{run_program, ExecConfig, RunReport, SanitizeLevel, TraceLevel};
use proptest::prelude::*;

fn compile_app(app: App, opts: &CompileOptions) -> CompiledProgram {
    compile_source(app.source(), app.function(), opts)
        .unwrap_or_else(|e| panic!("{} fails to compile: {e:?}", app.name()))
}

fn strip_reductions(src: &str) -> String {
    src.lines()
        .filter(|l| !l.contains("#pragma acc reductiontoarray"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Every kernel×array dependence verdict across the entire published app
/// suite is safe to distribute: race-free outright, or a carried
/// dependence the distance analysis proved local to the declared halo
/// (heat2d-halo2's `u`, which the harness runs under the wavefront
/// schedule). The suite is the positive half of the static⇔dynamic
/// contract (the hazard half lives in `accrt/tests/depend_sanitize.rs`).
#[test]
fn all_app_verdicts_are_distribution_safe() {
    for app in App::ALL {
        let prog = compile_app(app, &CompileOptions::proposal());
        for k in &prog.kernels {
            for c in &k.configs {
                let carried_local = matches!(
                    c.lint.verdict,
                    DependVerdict::CarriedLocal { .. }
                ) && c.lint.carried_fits_halo();
                assert!(
                    c.lint.verdict.race_free() || carried_local,
                    "{}/{}/{}: {:?}",
                    app.name(),
                    k.kernel.name,
                    c.name,
                    c.lint.verdict
                );
            }
        }
    }
}

/// Golden snapshot of every kernel×array verdict in the suite, distance
/// intervals included. Any analysis change that *weakens* a verdict —
/// a `Disjoint` or `Reduction` decaying to `LoopCarried`/`Unknown`, a
/// proved distance interval widening — shows up here as an exact diff.
#[test]
fn verdict_snapshots_are_stable() {
    const GOLDEN: &[(&str, &str, &str, &str)] = &[
        ("md", "md_k0", "pos", "ReadOnly"),
        ("md", "md_k0", "neigh", "ReadOnly"),
        ("md", "md_k0", "force", "Disjoint(Affine)"),
        ("kmeans", "kmeans_k0", "features", "ReadOnly"),
        ("kmeans", "kmeans_k0", "clusters", "ReadOnly"),
        ("kmeans", "kmeans_k0", "membership", "Disjoint(Affine)"),
        ("kmeans", "kmeans_k1", "features", "ReadOnly"),
        ("kmeans", "kmeans_k1", "membership", "ReadOnly"),
        ("kmeans", "kmeans_k1", "new_centers", "Reduction(Add)"),
        ("kmeans", "kmeans_k1", "new_counts", "Reduction(Add)"),
        ("bfs", "bfs_k0", "src", "ReadOnly"),
        ("bfs", "bfs_k0", "dst", "ReadOnly"),
        ("bfs", "bfs_k0", "levels", "ConvergentWrites"),
        ("spmv", "spmv_k0", "row_ptr", "ReadOnly"),
        ("spmv", "spmv_k0", "col_idx", "ReadOnly"),
        ("spmv", "spmv_k0", "vals", "ReadOnly"),
        ("spmv", "spmv_k0", "x", "ReadOnly"),
        ("spmv", "spmv_k0", "y", "Disjoint(Affine)"),
        ("heat2d", "heat2d_k0", "a", "ReadOnly"),
        ("heat2d", "heat2d_k0", "b", "Disjoint(StrideWindow)"),
        ("heat2d", "heat2d_k1", "a", "Disjoint(StrideWindow)"),
        ("heat2d", "heat2d_k1", "b", "ReadOnly"),
        ("pagerank", "pagerank_k0", "row_ptr", "ReadOnly"),
        ("pagerank", "pagerank_k0", "outdeg_inv", "ReadOnly"),
        ("pagerank", "pagerank_k0", "rank", "ReadOnly"),
        ("pagerank", "pagerank_k0", "msg", "Disjoint(MonotoneWindow)"),
        ("pagerank", "pagerank_k1", "newrank", "Disjoint(Affine)"),
        ("pagerank", "pagerank_k2", "col_idx", "ReadOnly"),
        ("pagerank", "pagerank_k2", "newrank", "Reduction(Add)"),
        ("pagerank", "pagerank_k2", "msg", "ReadOnly"),
        ("pagerank", "pagerank_k3", "rank", "Disjoint(Affine)"),
        ("pagerank", "pagerank_k3", "newrank", "ReadOnly"),
        (
            "heat2d-halo2",
            "heat2d_halo2_k0",
            "u",
            "CarriedLocal { distance: Bounded { lo: -1, hi: 2 } }",
        ),
    ];
    let mut got = Vec::new();
    for app in App::ALL {
        let prog = compile_app(app, &CompileOptions::proposal());
        for k in &prog.kernels {
            for c in &k.configs {
                got.push((
                    app.name().to_string(),
                    k.kernel.name.clone(),
                    c.name.clone(),
                    format!("{:?}", c.lint.verdict),
                ));
            }
        }
    }
    let want: Vec<_> = GOLDEN
        .iter()
        .map(|&(a, k, c, v)| (a.to_string(), k.to_string(), c.to_string(), v.to_string()))
        .collect();
    assert_eq!(got, want);
}

/// The two CSR apps get their indirect accesses confined by the
/// monotone-window lattice instead of surviving on the affine
/// classifier's mercy. SPMV only *reads* through the window (`vals`),
/// so no runtime premise is needed; pagerank *writes* through it
/// (`msg`), so the disjointness verdict rests on the premise that
/// `row_ptr` is non-decreasing — registered for the launch-time audit
/// (`ACC-R011`).
#[test]
fn csr_apps_get_monotone_window_proofs() {
    for (app, array, written) in [(App::Spmv, "vals", false), (App::Pagerank, "msg", true)] {
        let prog = compile_app(app, &CompileOptions::proposal());
        let arr = prog.array_index(array).unwrap();
        let cfg = prog
            .kernels
            .iter()
            .flat_map(|k| &k.configs)
            .find(|c| c.array == arr && c.monotone_window.is_some())
            .unwrap_or_else(|| panic!("{}: no monotone window on `{array}`", app.name()));
        let row_ptr = prog.array_index("row_ptr").unwrap();
        assert_eq!(cfg.monotone_window.as_ref().unwrap().ptr_array, row_ptr);
        if written {
            assert_eq!(
                cfg.lint.verdict,
                DependVerdict::Disjoint(DisjointProof::MonotoneWindow)
            );
            assert_eq!(prog.monotone_premises, vec![row_ptr]);
        } else {
            assert_eq!(cfg.lint.verdict, DependVerdict::ReadOnly);
            assert!(prog.monotone_premises.is_empty(), "read-only window needs no premise");
        }
    }
}

/// Golden inference check: strip every hand-written `reductiontoarray`
/// and demand the dependence analysis re-derives each one — same
/// operator, same array, same kernel — with zero divergence, on every
/// app in the suite.
#[test]
fn reduction_inference_reproduces_every_hand_annotation() {
    let mut reproduced = 0;
    for app in App::ALL {
        let annotated = compile_app(app, &CompileOptions::proposal());
        let opts = CompileOptions {
            infer_reductions: true,
            ..CompileOptions::proposal()
        };
        let inferred = compile_source(&strip_reductions(app.source()), app.function(), &opts)
            .unwrap_or_else(|e| panic!("{} stripped fails: {e:?}", app.name()));
        for (ka, ki) in annotated.kernels.iter().zip(&inferred.kernels) {
            for ca in &ka.configs {
                let Placement::ReductionPrivate(op) = ca.placement else {
                    continue;
                };
                let ci = ki
                    .configs
                    .iter()
                    .find(|c| c.array == ca.array)
                    .unwrap_or_else(|| panic!("{}: `{}` lost", app.name(), ca.name));
                assert_eq!(
                    ci.inferred_reduction,
                    Some(op),
                    "{}/{}/{}: inference diverges from hand annotation",
                    app.name(),
                    ka.kernel.name,
                    ca.name
                );
                assert_eq!(ci.placement, ca.placement);
                reproduced += 1;
            }
        }
    }
    // The suite must actually exercise the rewrite (pagerank's gather).
    assert!(reproduced >= 1, "no reductiontoarray annotations in the suite");
}

fn run_pagerank(
    prog: &CompiledProgram,
    input: &pagerank::PagerankInput,
    ngpus: usize,
) -> RunReport {
    let mut m = Machine::supercomputer_node();
    let (scalars, arrays) = pagerank::inputs(input);
    run_program(
        &mut m,
        &ExecConfig::gpus(ngpus)
            .sanitize(SanitizeLevel::Full)
            .tracing(TraceLevel::Spans),
        prog,
        scalars,
        arrays,
    )
    .expect("pagerank runs clean under Full sanitize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The `ACC-I002` contract, dynamically: a stripped-and-inferred
    /// pagerank run is *bit-identical* to the hand-annotated run — every
    /// final array, every simulated phase time, and the entire
    /// structured event stream — on 1–3 GPUs, for arbitrary graphs.
    #[test]
    fn inferred_reduction_runs_bit_identical_to_annotated(
        seed in 0u64..u64::MAX,
        ngpus in 1usize..=3,
    ) {
        let annotated =
            compile_source(pagerank::SOURCE, pagerank::FUNCTION, &CompileOptions::proposal())
                .unwrap();
        let opts = CompileOptions {
            infer_reductions: true,
            ..CompileOptions::proposal()
        };
        let inferred =
            compile_source(&strip_reductions(pagerank::SOURCE), pagerank::FUNCTION, &opts)
                .unwrap();

        let mut cfg = pagerank::PagerankConfig::small();
        cfg.n = 96; // keep the 6-case sweep cheap; the windows don't care
        cfg.iters = 3;
        let input = pagerank::generate(&cfg, seed);

        let a = run_pagerank(&annotated, &input, ngpus);
        let b = run_pagerank(&inferred, &input, ngpus);
        prop_assert_eq!(&a.arrays, &b.arrays, "final arrays differ bitwise");
        prop_assert_eq!(a.total_time(), b.total_time(), "simulated time differs");
        prop_assert_eq!(
            a.trace.events(),
            b.trace.events(),
            "event streams differ"
        );
        prop_assert_eq!(a.trace.counters(), b.trace.counters());
    }
}
