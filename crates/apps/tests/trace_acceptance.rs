//! Acceptance test for the observability subsystem on a real app: the
//! 2-D heat stencil on 3 simulated GPUs must emit a valid Chrome trace
//! with kernel, H2D/D2H and P2P spans on every GPU's timeline — the
//! picture of the paper's Fig. 3 phase structure.

use acc_apps::heat2d;
use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_obs::{json, Event, TraceLevel, TransferKind};
use acc_runtime::prelude::*;

fn heat2d_3gpu_report() -> RunReport {
    let cfg = heat2d::Heat2dConfig::small();
    let input = heat2d::generate(&cfg, 7);
    let prog =
        compile_source(heat2d::SOURCE, heat2d::FUNCTION, &CompileOptions::proposal()).unwrap();
    let mut m = Machine::supercomputer_node();
    let (scalars, arrays) = heat2d::inputs(&input);
    run_program(
        &mut m,
        &ExecConfig::gpus(3).tracing(TraceLevel::Spans),
        &prog,
        scalars,
        arrays,
    )
    .unwrap()
}

#[test]
fn heat2d_on_three_gpus_traces_every_span_kind_per_gpu() {
    let r = heat2d_3gpu_report();
    for g in 0..3 {
        let kernels = r
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Launch(l) if l.gpu == g))
            .count();
        assert!(kernels > 0, "GPU {g} ran kernels");
        let transfers_of = |kind: TransferKind| {
            r.trace
                .events()
                .iter()
                .filter(
                    |e| matches!(e, Event::Transfer(t) if t.kind == kind && t.gpu() == g),
                )
                .count()
        };
        assert!(transfers_of(TransferKind::H2D) > 0, "GPU {g} loaded data");
        assert!(transfers_of(TransferKind::D2H) > 0, "GPU {g} flushed results");
        // Halo rows cross GPU boundaries every iteration, so each GPU
        // receives peer traffic.
        assert!(transfers_of(TransferKind::P2P) > 0, "GPU {g} got halo data");
    }
}

#[test]
fn heat2d_chrome_trace_is_valid_and_covers_every_gpu() {
    let r = heat2d_3gpu_report();
    let v = json::parse(&r.trace.chrome_trace()).expect("valid JSON");
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    // Spans land on the tid of the GPU that executed them; every GPU's
    // thread must carry kernel and transfer categories.
    for g in 0..3usize {
        let cats: Vec<&str> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("tid").and_then(|t| t.as_f64()) == Some(g as f64)
            })
            .filter_map(|e| e.get("cat").and_then(|c| c.as_str()))
            .collect();
        for want in ["kernel", "h2d", "d2h", "p2p"] {
            assert!(cats.contains(&want), "GPU {g} timeline has a {want} span");
        }
    }
    // Thread-name metadata names each GPU lane.
    let thread_names = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .count();
    assert!(thread_names >= 4, "host lane plus one lane per GPU");
}

/// The cost-model mapper's decisions must be visible end-to-end: one
/// typed `MapperDecision` per launch in the event stream, exported as
/// `mapper`-category instant events in the Chrome trace.
#[test]
fn bfs_skew_cost_model_mapper_decisions_reach_the_chrome_trace() {
    use acc_apps::bfs_skew;
    let input = bfs_skew::generate(&bfs_skew::BfsSkewConfig::small(), 7);
    let prog = compile_source(
        bfs_skew::SOURCE,
        bfs_skew::FUNCTION,
        &CompileOptions::proposal(),
    )
    .unwrap();
    let mut m = Machine::supercomputer_node();
    let (scalars, arrays) = bfs_skew::inputs(&input);
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(3)
            .schedule(Schedule::CostModel)
            .tracing(TraceLevel::Spans),
        &prog,
        scalars,
        arrays,
    )
    .unwrap();

    let launches = r
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, Event::Launch(l) if l.gpu == 0))
        .count();
    let decisions: Vec<_> = r
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Mapper(d) => Some(d),
            _ => None,
        })
        .collect();
    assert_eq!(decisions.len(), launches, "one mapper decision per launch");
    assert!(
        decisions.iter().skip(1).all(|d| d.from_history),
        "every launch after the first cuts from history"
    );

    let v = json::parse(&r.trace.chrome_trace()).expect("valid JSON");
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    let mapper_instants = events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("mapper")
                && e.get("ph").and_then(|p| p.as_str()) == Some("i")
        })
        .count();
    assert_eq!(
        mapper_instants,
        decisions.len(),
        "every mapper decision is an instant event in the Chrome trace"
    );
}
