//! Acceptance tests for the hierarchical-topology runtime features:
//! double-buffered halo overlap (pricing-only, `SanitizeLevel::Full`
//! re-arms the synchronous path bit-identically) and topology-aware
//! reduction collectives, on real apps at 16–64 simulated GPUs.

use acc_apps::{heat2d, pagerank};
use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_obs::Event;
use acc_runtime::prelude::*;

fn run_heat2d(machine: &mut Machine, ecfg: &ExecConfig, seed: u64) -> RunReport {
    let cfg = heat2d::Heat2dConfig::small();
    let input = heat2d::generate(&cfg, seed);
    let prog =
        compile_source(heat2d::SOURCE, heat2d::FUNCTION, &CompileOptions::proposal()).unwrap();
    let (scalars, arrays) = heat2d::inputs(&input);
    run_program(machine, ecfg, &prog, scalars, arrays).unwrap()
}

fn run_pagerank(machine: &mut Machine, ecfg: &ExecConfig, seed: u64) -> RunReport {
    let cfg = pagerank::PagerankConfig::small();
    let input = pagerank::generate(&cfg, seed);
    let prog = compile_source(
        pagerank::SOURCE,
        pagerank::FUNCTION,
        &CompileOptions::proposal(),
    )
    .unwrap();
    let (scalars, arrays) = pagerank::inputs(&input);
    run_program(machine, ecfg, &prog, scalars, arrays).unwrap()
}

#[test]
fn overlap_is_pricing_only_and_hides_loader_time() {
    // The knob must never change array contents — the functional halo
    // copies stay in program order — and on a hierarchical machine with
    // halo traffic it must actually hide loader-critical-path seconds.
    let base = ExecConfig::gpus(16);
    let on = ExecConfig::gpus(16).overlap(true);
    let r_off = run_heat2d(&mut Machine::cluster(16), &base, 5);
    let r_on = run_heat2d(&mut Machine::cluster(16), &on, 5);
    assert_eq!(
        r_off.arrays[heat2d::PLATE_ARRAY].to_f64_vec(),
        r_on.arrays[heat2d::PLATE_ARRAY].to_f64_vec(),
        "overlap changed array contents"
    );
    let c = r_on.trace.counters();
    assert!(c.overlap_windows > 0, "no overlap windows recorded");
    assert!(c.overlap_hidden_ns > 0, "overlap hid no loader time");
    assert_eq!(r_off.trace.counters().overlap_windows, 0);
    // Hiding halo fills under compute can only shorten the total.
    assert!(
        r_on.total_time() <= r_off.total_time() + 1e-12,
        "overlap lengthened the run: {} > {}",
        r_on.total_time(),
        r_off.total_time()
    );
    assert!(
        r_on.profile.time.cpu_gpu < r_off.profile.time.cpu_gpu,
        "overlap did not shrink the synchronous loader share"
    );
}

#[test]
fn full_sanitize_rearms_the_synchronous_path_bit_identically() {
    // Under SanitizeLevel::Full the overlap knob must be inert: arrays
    // AND the full event stream (all simulated times included) match a
    // run with the knob off.
    let off = ExecConfig::gpus(16)
        .sanitize(SanitizeLevel::Full)
        .tracing(TraceLevel::Spans);
    let on = off.clone().overlap(true);
    let r_off = run_heat2d(&mut Machine::cluster(16), &off, 11);
    let r_on = run_heat2d(&mut Machine::cluster(16), &on, 11);
    assert_eq!(
        r_off.arrays[heat2d::PLATE_ARRAY].to_f64_vec(),
        r_on.arrays[heat2d::PLATE_ARRAY].to_f64_vec()
    );
    assert_eq!(r_on.trace.counters().overlap_windows, 0);
    assert_eq!(
        r_off.trace.render_text(),
        r_on.trace.render_text(),
        "event streams diverged under Full re-arming"
    );
}

#[test]
fn heat2d_comm_time_shrinks_on_cluster_with_overlap_at_16_gpus() {
    let cfg = heat2d::Heat2dConfig::small();
    let input = heat2d::generate(&cfg, 9);
    let expect = heat2d::reference(&input);
    let prog =
        compile_source(heat2d::SOURCE, heat2d::FUNCTION, &CompileOptions::proposal()).unwrap();
    let comm = |machine: &mut Machine, ecfg: &ExecConfig| {
        let (scalars, arrays) = heat2d::inputs(&input);
        let r = run_program(machine, ecfg, &prog, scalars, arrays).unwrap();
        let err = heat2d::max_error(&r.arrays[heat2d::PLATE_ARRAY].to_f64_vec(), &expect);
        assert!(err < 1e-12, "err={err}");
        r.profile.time.cpu_gpu + r.profile.time.gpu_gpu
    };
    let flat = comm(
        &mut Machine::supercomputer_node_with_gpus(16),
        &ExecConfig::gpus(16),
    );
    let clustered = comm(
        &mut Machine::cluster(16),
        &ExecConfig::gpus(16).overlap(true),
    );
    assert!(
        clustered < flat,
        "topology-aware + overlap comm not cheaper: cluster={clustered} flat={flat}"
    );
}

#[test]
fn pagerank_comm_time_shrinks_on_cluster_at_16_gpus() {
    let cfg = pagerank::PagerankConfig::small();
    let input = pagerank::generate(&cfg, 13);
    let expect = pagerank::reference(&input);
    let prog = compile_source(
        pagerank::SOURCE,
        pagerank::FUNCTION,
        &CompileOptions::proposal(),
    )
    .unwrap();
    let comm = |machine: &mut Machine, ecfg: &ExecConfig| {
        let (scalars, arrays) = pagerank::inputs(&input);
        let r = run_program(machine, ecfg, &prog, scalars, arrays).unwrap();
        let err = pagerank::max_error(&r.arrays[pagerank::RANK_ARRAY].to_f64_vec(), &expect);
        assert!(err < 1e-9, "err={err}");
        r.profile.time.cpu_gpu + r.profile.time.gpu_gpu
    };
    let flat = comm(
        &mut Machine::supercomputer_node_with_gpus(16),
        &ExecConfig::gpus(16),
    );
    let clustered = comm(
        &mut Machine::cluster(16),
        &ExecConfig::gpus(16).overlap(true),
    );
    assert!(
        clustered < flat,
        "hierarchical collectives not cheaper: cluster={clustered} flat={flat}"
    );
}

#[test]
fn hierarchical_reduction_emits_leveled_collective_rounds() {
    // 64 cluster GPUs = 8 islands × 8 over 4 nodes: the reduction tree
    // must produce rounds at all three levels, and the flat preset none.
    let ecfg = ExecConfig::gpus(64).tracing(TraceLevel::Summary);
    let r = run_pagerank(&mut Machine::cluster(64), &ecfg, 17);
    assert!(r.trace.counters().collective_rounds > 0);
    let levels: std::collections::BTreeSet<&str> = r
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Collective(c) => Some(c.level),
            _ => None,
        })
        .collect();
    for want in ["intra-island", "inter-island", "inter-node"] {
        assert!(levels.contains(want), "missing level {want}: {levels:?}");
    }

    let flat_cfg = ExecConfig::gpus(16).tracing(TraceLevel::Summary);
    let r = run_pagerank(
        &mut Machine::supercomputer_node_with_gpus(16),
        &flat_cfg,
        17,
    );
    assert_eq!(
        r.trace.counters().collective_rounds,
        0,
        "flat topology must keep the seed's single-level tree"
    );
}

#[test]
#[ignore = "release-mode CI smoke: full sanitize at 8 and 16 cluster GPUs"]
fn scaling_smoke_full_sanitize_cluster_with_overlap_armed() {
    // The CI scaling job: both scaling apps on the cluster topology at
    // 8 and 16 GPUs, fully sanitized, with the overlap knob armed (Full
    // re-arms the synchronous schedule, so this also exercises the
    // re-arming path at scale). Everything must pass its oracle.
    for ngpus in [8usize, 16] {
        let ecfg = ExecConfig::gpus(ngpus)
            .sanitize(SanitizeLevel::Full)
            .overlap(true);

        let input = heat2d::generate(&heat2d::Heat2dConfig::small(), 42);
        let expect = heat2d::reference(&input);
        let prog =
            compile_source(heat2d::SOURCE, heat2d::FUNCTION, &CompileOptions::proposal()).unwrap();
        let (scalars, arrays) = heat2d::inputs(&input);
        let r = run_program(&mut Machine::cluster(ngpus), &ecfg, &prog, scalars, arrays).unwrap();
        let err = heat2d::max_error(&r.arrays[heat2d::PLATE_ARRAY].to_f64_vec(), &expect);
        assert!(err < 1e-12, "heat2d x{ngpus}: err={err}");

        let input = pagerank::generate(&pagerank::PagerankConfig::small(), 42);
        let expect = pagerank::reference(&input);
        let prog = compile_source(
            pagerank::SOURCE,
            pagerank::FUNCTION,
            &CompileOptions::proposal(),
        )
        .unwrap();
        let (scalars, arrays) = pagerank::inputs(&input);
        let r = run_program(&mut Machine::cluster(ngpus), &ecfg, &prog, scalars, arrays).unwrap();
        let err = pagerank::max_error(&r.arrays[pagerank::RANK_ARRAY].to_f64_vec(), &expect);
        assert!(err < 1e-9, "pagerank x{ngpus}: err={err}");
    }
}

#[test]
fn overlap_on_flat_topology_keeps_results_and_stays_armed() {
    // The overlap gate is the compiler fact, not the topology: a flat
    // bus still benefits (halo fills exist there too), and results stay
    // identical to the synchronous schedule.
    let mut m1 = Machine::supercomputer_node_with_gpus(8);
    let mut m2 = Machine::supercomputer_node_with_gpus(8);
    let r_off = run_heat2d(&mut m1, &ExecConfig::gpus(8), 21);
    let r_on = run_heat2d(&mut m2, &ExecConfig::gpus(8).overlap(true), 21);
    assert_eq!(
        r_off.arrays[heat2d::PLATE_ARRAY].to_f64_vec(),
        r_on.arrays[heat2d::PLATE_ARRAY].to_f64_vec()
    );
    assert!(r_on.trace.counters().overlap_windows > 0);
    assert!(r_on.total_time() <= r_off.total_time() + 1e-12);
}
