//! KMEANS — the Rodinia clustering benchmark (Table II row 2).
//!
//! Two parallel loops per iteration, run for a fixed number of iterations
//! (the paper's 74 kernel executions = 37 iterations × 2 loops):
//!
//! 1. **assignment** — each point finds its nearest centroid. `features`
//!    is read row-wise → `localaccess(features) stride(nfeatures)` (a
//!    *runtime* stride — exactly the case the extension's expression
//!    arguments exist for) and distribution placement; the row reads are
//!    strided, which the 2-D layout transform turns into coalesced
//!    accesses (§IV-B4 — KMEANS is the transform's motivating case);
//!    `clusters` is read by every iteration → replica placement;
//!    `membership` is written affinely → distribution, miss checks
//!    elided.
//! 2. **accumulation** — per-point contributions are reduced into
//!    `new_centers`/`new_counts`, whose indices depend on the freshly
//!    computed membership: the paper's `reductiontoarray` extension.
//!    Each GPU accumulates into a private copy; the communication manager
//!    merges them (small inter-GPU traffic — the "middle" communication
//!    profile of §V-A).
//!
//! The centroid recomputation runs on the host between iterations via
//! `update host` / `update device`, as Rodinia does.
//!
//! Input shape follows the paper's kddcup dataset: 494019 points × 34
//! features in `float` (69.2 MB with membership, Table II), 5 clusters.
//! We synthesise Gaussian blobs with that shape.

use acc_kernel_ir::{Buffer, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The OpenACC source of the KMEANS benchmark.
pub const SOURCE: &str = r#"
void kmeans(int npoints, int nfeatures, int nclusters, int iters,
            float *features, float *clusters, int *membership,
            float *new_centers, int *new_counts) {
#pragma acc data copyin(features[0:npoints*nfeatures]) copy(membership[0:npoints]) copy(clusters[0:nclusters*nfeatures]) copyin(new_centers[0:nclusters*nfeatures], new_counts[0:nclusters])
{
  int t = 0;
  while (t < iters) {
    /* ---- assignment step ---- */
#pragma acc localaccess(features) stride(nfeatures)
#pragma acc localaccess(membership) stride(1)
#pragma acc parallel loop
    for (int i = 0; i < npoints; i++) {
      int best = 0;
      float bestd = 3.0e38f;
      for (int c = 0; c < nclusters; c++) {
        float d = 0.0f;
        for (int f = 0; f < nfeatures; f++) {
          float diff = features[i*nfeatures + f] - clusters[c*nfeatures + f];
          d += diff * diff;
        }
        if (d < bestd) {
          bestd = d;
          best = c;
        }
      }
      membership[i] = best;
    }
    /* ---- accumulation step (reductiontoarray) ---- */
#pragma acc localaccess(features) stride(nfeatures)
#pragma acc localaccess(membership) stride(1)
#pragma acc parallel loop
    for (int i = 0; i < npoints; i++) {
      int c = membership[i];
      for (int f = 0; f < nfeatures; f++) {
#pragma acc reductiontoarray(+: new_centers[nclusters*nfeatures])
        new_centers[c*nfeatures + f] += features[i*nfeatures + f];
      }
#pragma acc reductiontoarray(+: new_counts[nclusters])
      new_counts[c] += 1;
    }
    /* ---- host recomputes the centroids ---- */
#pragma acc update host(new_centers[0:nclusters*nfeatures], new_counts[0:nclusters])
    for (int c = 0; c < nclusters; c++) {
      if (new_counts[c] > 0) {
        for (int f = 0; f < nfeatures; f++) {
          clusters[c*nfeatures + f] = new_centers[c*nfeatures + f] / (float)new_counts[c];
        }
      }
    }
    for (int c = 0; c < nclusters; c++) {
      new_counts[c] = 0;
      for (int f = 0; f < nfeatures; f++) {
        new_centers[c*nfeatures + f] = 0.0f;
      }
    }
#pragma acc update device(clusters[0:nclusters*nfeatures], new_centers[0:nclusters*nfeatures], new_counts[0:nclusters])
    t = t + 1;
  }
}
}
"#;

/// Entry function name.
pub const FUNCTION: &str = "kmeans";

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct KmeansConfig {
    pub npoints: usize,
    pub nfeatures: usize,
    pub nclusters: usize,
    /// Fixed iteration count; the paper's 74 kernel executions = 37.
    pub iters: usize,
}

impl KmeansConfig {
    /// The paper's kddcup shape: 494019 × 34 floats, k=5, 37 iterations.
    pub fn paper() -> KmeansConfig {
        KmeansConfig {
            npoints: 494019,
            nfeatures: 34,
            nclusters: 5,
            iters: 37,
        }
    }

    /// A reduced size for unit tests.
    pub fn small() -> KmeansConfig {
        KmeansConfig {
            npoints: 600,
            nfeatures: 8,
            nclusters: 4,
            iters: 5,
        }
    }
}

/// Generated inputs for one run.
#[derive(Debug, Clone)]
pub struct KmeansInput {
    pub cfg: KmeansConfig,
    pub features: Vec<f32>,
    /// Initial centroids (the first k points, as Rodinia does).
    pub clusters: Vec<f32>,
}

/// Gaussian blobs with the kddcup shape.
#[allow(clippy::needless_range_loop)]
pub fn generate(cfg: &KmeansConfig, seed: u64) -> KmeansInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = cfg.nclusters;
    let centers: Vec<Vec<f32>> = (0..k)
        .map(|_| {
            (0..cfg.nfeatures)
                .map(|_| rng.gen_range(-10.0..10.0))
                .collect()
        })
        .collect();
    let mut features = Vec::with_capacity(cfg.npoints * cfg.nfeatures);
    for i in 0..cfg.npoints {
        let c = i % k;
        for f in 0..cfg.nfeatures {
            features.push(centers[c][f] + rng.gen_range(-1.0..1.0f32));
        }
    }
    let clusters = features[..k * cfg.nfeatures].to_vec();
    KmeansInput {
        cfg: cfg.clone(),
        features,
        clusters,
    }
}

/// Program inputs `(scalars, arrays)` in parameter order.
pub fn inputs(input: &KmeansInput) -> (Vec<Value>, Vec<Buffer>) {
    let cfg = &input.cfg;
    (
        vec![
            Value::I32(cfg.npoints as i32),
            Value::I32(cfg.nfeatures as i32),
            Value::I32(cfg.nclusters as i32),
            Value::I32(cfg.iters as i32),
        ],
        vec![
            Buffer::from_f32(&input.features),
            Buffer::from_f32(&input.clusters),
            Buffer::zeroed(acc_kernel_ir::Ty::I32, cfg.npoints),
            Buffer::zeroed(acc_kernel_ir::Ty::F32, cfg.nclusters * cfg.nfeatures),
            Buffer::zeroed(acc_kernel_ir::Ty::I32, cfg.nclusters),
        ],
    )
}

/// Output array indices.
pub const CLUSTERS_ARRAY: usize = 1;
pub const MEMBERSHIP_ARRAY: usize = 2;

/// Reference result: final membership and centroids.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    pub membership: Vec<i32>,
    pub clusters: Vec<f32>,
}

/// Pure-Rust oracle mirroring the OpenACC program statement-for-statement
/// (including `f32` accumulation order, so results compare exactly on a
/// single device; multi-GPU runs may differ in the last ULP of the
/// centroid sums and are compared with a tolerance).
#[allow(clippy::needless_range_loop)] // mirrors the OpenACC source
pub fn reference(input: &KmeansInput) -> KmeansResult {
    let cfg = &input.cfg;
    let (n, nf, k) = (cfg.npoints, cfg.nfeatures, cfg.nclusters);
    let mut clusters = input.clusters.clone();
    let mut membership = vec![0i32; n];
    let mut new_centers = vec![0.0f32; k * nf];
    let mut new_counts = vec![0i32; k];
    for _ in 0..cfg.iters {
        for i in 0..n {
            let mut best = 0usize;
            let mut bestd = 3.0e38f32;
            for c in 0..k {
                let mut d = 0.0f32;
                for f in 0..nf {
                    let diff = input.features[i * nf + f] - clusters[c * nf + f];
                    d += diff * diff;
                }
                if d < bestd {
                    bestd = d;
                    best = c;
                }
            }
            membership[i] = best as i32;
        }
        for i in 0..n {
            let c = membership[i] as usize;
            for f in 0..nf {
                new_centers[c * nf + f] += input.features[i * nf + f];
            }
            new_counts[c] += 1;
        }
        for c in 0..k {
            if new_counts[c] > 0 {
                for f in 0..nf {
                    clusters[c * nf + f] = new_centers[c * nf + f] / new_counts[c] as f32;
                }
            }
        }
        new_counts.fill(0);
        new_centers.fill(0.0);
    }
    KmeansResult {
        membership,
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let cfg = KmeansConfig::paper();
        // 2 parallel loops × 37 iterations = 74 kernel executions.
        assert_eq!(2 * cfg.iters, 74);
        // ~69.2 MB: features + membership.
        let bytes = cfg.npoints * cfg.nfeatures * 4 + cfg.npoints * 4;
        let mb = bytes as f64 / 1e6;
        assert!((66.0..72.0).contains(&mb), "footprint {mb} MB");
    }

    #[test]
    fn generator_deterministic_and_shaped() {
        let cfg = KmeansConfig::small();
        let a = generate(&cfg, 3);
        let b = generate(&cfg, 3);
        assert_eq!(a.features, b.features);
        assert_eq!(a.features.len(), cfg.npoints * cfg.nfeatures);
        assert_eq!(a.clusters.len(), cfg.nclusters * cfg.nfeatures);
    }

    #[test]
    fn reference_converges_on_blobs() {
        let cfg = KmeansConfig::small();
        let input = generate(&cfg, 11);
        let r = reference(&input);
        assert!(r
            .membership
            .iter()
            .all(|&m| m >= 0 && (m as usize) < cfg.nclusters));
        for c in 0..cfg.nclusters as i32 {
            assert!(r.membership.contains(&c), "cluster {c} empty");
        }
    }
}
