//! MD — the SHOC Lennard-Jones pairwise-force benchmark (Table II row 1).
//!
//! One parallel loop over atoms; each iteration walks the atom's neighbor
//! list and accumulates the LJ force. Access characteristics that drive
//! the paper's results:
//!
//! * `neigh` (the neighbor list, ~95% of the footprint) is read with a
//!   constant per-iteration stride → `localaccess(neigh) stride(maxneigh)`
//!   → distribution-based placement, and the strided reads are fixed by
//!   the 2-D layout transform;
//! * `force` is written affinely (`3*i + {0,1,2}`) →
//!   `localaccess(force) stride(3)`, distribution with the write-miss
//!   check statically elided;
//! * `pos` is read through the neighbor indices (gather) → no
//!   `localaccess`, replica-based placement; it is small and cache-
//!   resident, which is why real MD kernels survive the gather.
//!
//! Hence Table II column D: 2 of 3 arrays carry `localaccess`, and MD
//! needs no inter-GPU communication at all.
//!
//! The paper's input is 73728 atoms (SHOC default). We generate the same
//! shape synthetically: a jittered 48×48×32 lattice with the 124
//! lattice-nearest neighbors per atom (SHOC uses up to 128 with padding;
//! we keep the list full instead of padding — same traffic pattern).

use acc_kernel_ir::{Buffer, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The OpenACC source of the MD benchmark.
pub const SOURCE: &str = r#"
void md(int natoms, int maxneigh, double cutsq, double lj1, double lj2,
        double *pos, int *neigh, double *force) {
#pragma acc data copyin(pos[0:natoms*3], neigh[0:natoms*maxneigh]) copyout(force[0:natoms*3])
{
#pragma acc localaccess(neigh) stride(maxneigh)
#pragma acc localaccess(force) stride(3)
#pragma acc parallel loop
  for (int i = 0; i < natoms; i++) {
    double xi = pos[i*3];
    double yi = pos[i*3+1];
    double zi = pos[i*3+2];
    double fx = 0.0;
    double fy = 0.0;
    double fz = 0.0;
    for (int k = 0; k < maxneigh; k++) {
      int j = neigh[i*maxneigh + k];
      double dx = pos[j*3] - xi;
      double dy = pos[j*3+1] - yi;
      double dz = pos[j*3+2] - zi;
      double r2 = dx*dx + dy*dy + dz*dz;
      if (r2 < cutsq) {
        double r2inv = 1.0 / r2;
        double r6inv = r2inv * r2inv * r2inv;
        double fc = r2inv * r6inv * (lj1 * r6inv - lj2);
        fx += fc * dx;
        fy += fc * dy;
        fz += fc * dz;
      }
    }
    force[i*3] = fx;
    force[i*3+1] = fy;
    force[i*3+2] = fz;
  }
}
}
"#;

/// Entry function name.
pub const FUNCTION: &str = "md";

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct MdConfig {
    /// Lattice dimensions; `natoms = nx * ny * nz`.
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Neighbors per atom (a 5×5×5 lattice ball minus self = 124).
    pub maxneigh: usize,
    pub cutsq: f64,
    pub lj1: f64,
    pub lj2: f64,
}

impl MdConfig {
    /// The paper's input size: 73728 atoms (48×48×32), 124 neighbors.
    pub fn paper() -> MdConfig {
        MdConfig {
            nx: 48,
            ny: 48,
            nz: 32,
            maxneigh: 124,
            cutsq: 13.0,
            lj1: 1.5,
            lj2: 2.0,
        }
    }

    /// A reduced size for unit tests / quick runs.
    pub fn small() -> MdConfig {
        MdConfig {
            nx: 12,
            ny: 8,
            nz: 8,
            maxneigh: 26, // 3x3x3 ball minus self
            cutsq: 13.0,
            lj1: 1.5,
            lj2: 2.0,
        }
    }

    /// Total atom count.
    pub fn natoms(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// Generated inputs for one MD run.
#[derive(Debug, Clone)]
pub struct MdInput {
    pub cfg: MdConfig,
    pub pos: Vec<f64>,
    pub neigh: Vec<i32>,
}

/// Generate a jittered-lattice workload with lattice-ball neighbor lists
/// (the access pattern of a sorted SHOC neighbor list).
pub fn generate(cfg: &MdConfig, seed: u64) -> MdInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.natoms();
    let mut pos = Vec::with_capacity(n * 3);
    for _ in 0..cfg.nz {
        for _ in 0..cfg.ny {
            for _ in 0..cfg.nx {
                // Jitter is applied around the lattice point below; the
                // lattice coordinate itself is reconstructed in the loop.
                pos.push(rng.gen_range(-0.2..0.2));
                pos.push(rng.gen_range(-0.2..0.2));
                pos.push(rng.gen_range(-0.2..0.2));
            }
        }
    }
    // Add the lattice coordinates.
    let mut idx = 0usize;
    for z in 0..cfg.nz {
        for y in 0..cfg.ny {
            for x in 0..cfg.nx {
                pos[idx] += x as f64;
                pos[idx + 1] += y as f64;
                pos[idx + 2] += z as f64;
                idx += 3;
            }
        }
    }

    // Neighbor offsets: lattice ball sorted by distance, nearest first.
    let r = ball_radius_for(cfg.maxneigh);
    let mut offsets: Vec<(i64, i64, i64)> = Vec::new();
    for dz in -r..=r {
        for dy in -r..=r {
            for dx in -r..=r {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                offsets.push((dx, dy, dz));
            }
        }
    }
    offsets.sort_by_key(|&(x, y, z)| x * x + y * y + z * z);
    offsets.truncate(cfg.maxneigh);
    assert_eq!(
        offsets.len(),
        cfg.maxneigh,
        "maxneigh must be ≤ the lattice ball size"
    );

    let (nx, ny, nz) = (cfg.nx as i64, cfg.ny as i64, cfg.nz as i64);
    let mut neigh = Vec::with_capacity(n * cfg.maxneigh);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                for &(dx, dy, dz) in &offsets {
                    // Periodic wraparound keeps every list full.
                    let xx = (x + dx).rem_euclid(nx);
                    let yy = (y + dy).rem_euclid(ny);
                    let zz = (z + dz).rem_euclid(nz);
                    neigh.push((zz * ny * nx + yy * nx + xx) as i32);
                }
            }
        }
    }
    MdInput {
        cfg: cfg.clone(),
        pos,
        neigh,
    }
}

fn ball_radius_for(maxneigh: usize) -> i64 {
    let mut r = 1i64;
    while ((2 * r + 1).pow(3) - 1) < maxneigh as i64 {
        r += 1;
    }
    r
}

/// Program inputs: `(scalars, arrays)` in parameter order.
pub fn inputs(input: &MdInput) -> (Vec<Value>, Vec<Buffer>) {
    let cfg = &input.cfg;
    (
        vec![
            Value::I32(cfg.natoms() as i32),
            Value::I32(cfg.maxneigh as i32),
            Value::F64(cfg.cutsq),
            Value::F64(cfg.lj1),
            Value::F64(cfg.lj2),
        ],
        vec![
            Buffer::from_f64(&input.pos),
            Buffer::from_i32(&input.neigh),
            Buffer::zeroed(acc_kernel_ir::Ty::F64, cfg.natoms() * 3),
        ],
    )
}

/// Index of the `force` output array in the program's array parameters.
pub const FORCE_ARRAY: usize = 2;

/// Pure-Rust reference implementation (the correctness oracle).
pub fn reference(input: &MdInput) -> Vec<f64> {
    let cfg = &input.cfg;
    let n = cfg.natoms();
    let mut force = vec![0.0f64; n * 3];
    for i in 0..n {
        let (xi, yi, zi) = (
            input.pos[i * 3],
            input.pos[i * 3 + 1],
            input.pos[i * 3 + 2],
        );
        let (mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0);
        for k in 0..cfg.maxneigh {
            let j = input.neigh[i * cfg.maxneigh + k] as usize;
            let dx = input.pos[j * 3] - xi;
            let dy = input.pos[j * 3 + 1] - yi;
            let dz = input.pos[j * 3 + 2] - zi;
            let r2 = dx * dx + dy * dy + dz * dz;
            if r2 < cfg.cutsq {
                let r2inv = 1.0 / r2;
                let r6inv = r2inv * r2inv * r2inv;
                let fc = r2inv * r6inv * (cfg.lj1 * r6inv - cfg.lj2);
                fx += fc * dx;
                fy += fc * dy;
                fz += fc * dz;
            }
        }
        force[i * 3] = fx;
        force[i * 3 + 1] = fy;
        force[i * 3 + 2] = fz;
    }
    force
}

/// Maximum absolute element difference against the oracle.
pub fn max_error(force: &[f64], reference: &[f64]) -> f64 {
    force
        .iter()
        .zip(reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let cfg = MdConfig::paper();
        assert_eq!(cfg.natoms(), 73728);
        // Table II: 39.8 MB of device data in single-GPU execution.
        let bytes = cfg.natoms() * 3 * 8   // pos
            + cfg.natoms() * cfg.maxneigh * 4 // neigh
            + cfg.natoms() * 3 * 8; // force
        let mb = bytes as f64 / 1e6;
        assert!((38.0..44.0).contains(&mb), "footprint {mb} MB");
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = MdConfig::small();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.neigh, b.neigh);
        let c = generate(&cfg, 8);
        assert_ne!(a.pos, c.pos);
    }

    #[test]
    fn neighbor_lists_are_valid() {
        let cfg = MdConfig::small();
        let input = generate(&cfg, 1);
        let n = cfg.natoms() as i32;
        assert_eq!(input.neigh.len(), cfg.natoms() * cfg.maxneigh);
        assert!(input.neigh.iter().all(|&j| j >= 0 && j < n));
        // No self-neighbors.
        for i in 0..cfg.natoms() {
            for k in 0..cfg.maxneigh {
                assert_ne!(input.neigh[i * cfg.maxneigh + k], i as i32);
            }
        }
    }

    #[test]
    fn reference_produces_finite_nonzero_forces() {
        let cfg = MdConfig::small();
        let input = generate(&cfg, 2);
        let f = reference(&input);
        assert!(f.iter().all(|v| v.is_finite()));
        assert!(f.iter().any(|&v| v != 0.0));
    }
}
