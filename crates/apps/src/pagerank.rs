//! PAGERANK — power-iteration PageRank over a power-law digraph, the
//! indirect-*push* workload the dependence analysis (`acc_compiler::depend`)
//! was built for.
//!
//! Each iteration is four kernels inside one data region:
//!
//! 1. **push** — every page scatters its contribution to its out-edge
//!    slots: `msg[k] = rank[i] * outdeg_inv[i]` for
//!    `k ∈ [row_ptr[i], row_ptr[i+1])`. The store index is an inner-loop
//!    variable the affine classifier can only call *irregular* — the
//!    heuristic `ACC-W001` would fire — but the monotone-window lattice
//!    proves the windows disjoint (`DependVerdict::Disjoint(MonotoneWindow)`),
//!    on the runtime-audited premise that `row_ptr` is non-decreasing
//!    (`ACC-R011`).
//! 2. **zero** — reset the accumulator.
//! 3. **gather** — pull contributions along edges into
//!    `newrank[col_idx[k]]`: a scatter-accumulate, annotated with the
//!    paper's `reductiontoarray(+: newrank)` extension. The annotation is
//!    deliberately the *rangeless* form — exactly what `acc-lint --infer`
//!    would insert (`ACC-I002`) — so the annotated and inference-derived
//!    compilations are bit-identical (see the `depend_golden` tests).
//! 4. **damp** — `rank[i] = (1-d)/n + d * newrank[i]`.
//!
//! Like SPMV, the CSR payload (`col_idx`, `msg`) replicates — more of the
//! §VI 1-D-distribution limitation — while `row_ptr`, `outdeg_inv` and
//! `rank` distribute.

use acc_kernel_ir::{Buffer, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The OpenACC source of the PageRank benchmark.
pub const SOURCE: &str = r#"
void pagerank(int n, int nnz, int iters,
              int *row_ptr, int *col_idx, double *outdeg_inv,
              double *rank, double *newrank, double *msg) {
#pragma acc data copyin(row_ptr[0:n+1], col_idx[0:nnz], outdeg_inv[0:n], newrank[0:n], msg[0:nnz]) copy(rank[0:n])
{
  int it = 0;
  while (it < iters) {
    /* ---- push: scatter each page's contribution to its edge slots ---- */
#pragma acc localaccess(row_ptr) stride(1) right(1)
#pragma acc localaccess(outdeg_inv) stride(1)
#pragma acc localaccess(rank) stride(1)
#pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      double contrib = rank[i] * outdeg_inv[i];
      for (int k = row_ptr[i]; k < row_ptr[i + 1]; k = k + 1) {
        msg[k] = contrib;
      }
    }
    /* ---- zero the accumulator ---- */
#pragma acc localaccess(newrank) stride(1)
#pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      newrank[i] = 0.0;
    }
    /* ---- gather: scatter-accumulate along the edges ---- */
#pragma acc localaccess(col_idx) stride(1)
#pragma acc localaccess(msg) stride(1)
#pragma acc parallel loop
    for (int k = 0; k < nnz; k++) {
#pragma acc reductiontoarray(+: newrank)
      newrank[col_idx[k]] = newrank[col_idx[k]] + msg[k];
    }
    /* ---- damping ---- */
#pragma acc localaccess(rank) stride(1)
#pragma acc localaccess(newrank) stride(1)
#pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      rank[i] = 0.15 / (double)n + 0.85 * newrank[i];
    }
    it = it + 1;
  }
}
}
"#;

/// Entry function name.
pub const FUNCTION: &str = "pagerank";

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct PagerankConfig {
    /// Number of pages.
    pub n: usize,
    /// Minimum out-degree (every page links somewhere).
    pub min_degree: usize,
    /// Out-degree cap for the power-law sampler.
    pub max_degree: usize,
    /// Power iterations.
    pub iters: usize,
}

impl PagerankConfig {
    /// A graph large enough that replication costs are visible.
    pub fn scaled() -> PagerankConfig {
        PagerankConfig {
            n: 50_000,
            min_degree: 4,
            max_degree: 400,
            iters: 5,
        }
    }

    /// A reduced size for unit tests.
    pub fn small() -> PagerankConfig {
        PagerankConfig {
            n: 400,
            min_degree: 2,
            max_degree: 40,
            iters: 5,
        }
    }
}

/// Generated graph in CSR-of-out-edges form.
#[derive(Debug, Clone)]
pub struct PagerankInput {
    pub cfg: PagerankConfig,
    pub row_ptr: Vec<i32>,
    pub col_idx: Vec<i32>,
    /// `1 / out_degree(i)`.
    pub outdeg_inv: Vec<f64>,
    /// Initial rank: uniform `1/n`.
    pub rank: Vec<f64>,
}

/// Generate a power-law digraph: out-degrees follow a truncated Pareto
/// (`d ~ min_degree / u^(1/2)`), and destinations are biased toward
/// low page ids (`dst = n * u⁴`), giving the skewed in-degree
/// distribution real web graphs show — a few hub pages absorb most of
/// the gather traffic.
pub fn generate(cfg: &PagerankConfig, seed: u64) -> PagerankInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(cfg.n + 1);
    let mut col_idx = Vec::new();
    let mut outdeg_inv = Vec::with_capacity(cfg.n);
    row_ptr.push(0i32);
    for _ in 0..cfg.n {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let deg = ((cfg.min_degree as f64 / u.sqrt()) as usize).clamp(cfg.min_degree, cfg.max_degree);
        for _ in 0..deg {
            let v: f64 = rng.gen_range(0.0..1.0);
            col_idx.push(((cfg.n as f64 * v * v * v * v) as usize).min(cfg.n - 1) as i32);
        }
        outdeg_inv.push(1.0 / deg as f64);
        row_ptr.push(col_idx.len() as i32);
    }
    PagerankInput {
        cfg: cfg.clone(),
        row_ptr,
        col_idx,
        outdeg_inv,
        rank: vec![1.0 / cfg.n as f64; cfg.n],
    }
}

/// Program inputs `(scalars, arrays)` in parameter order.
pub fn inputs(input: &PagerankInput) -> (Vec<Value>, Vec<Buffer>) {
    let nnz = input.col_idx.len();
    (
        vec![
            Value::I32(input.cfg.n as i32),
            Value::I32(nnz as i32),
            Value::I32(input.cfg.iters as i32),
        ],
        vec![
            Buffer::from_i32(&input.row_ptr),
            Buffer::from_i32(&input.col_idx),
            Buffer::from_f64(&input.outdeg_inv),
            Buffer::from_f64(&input.rank),
            Buffer::zeroed(acc_kernel_ir::Ty::F64, input.cfg.n),
            Buffer::zeroed(acc_kernel_ir::Ty::F64, nnz),
        ],
    )
}

/// Index of the result vector `rank`.
pub const RANK_ARRAY: usize = 3;

/// Pure-Rust oracle: the same power iteration, accumulating in edge
/// order. Multi-GPU runs merge partial sums in a different order, so
/// comparisons use a small absolute tolerance rather than bit equality.
pub fn reference(input: &PagerankInput) -> Vec<f64> {
    let n = input.cfg.n;
    let mut rank = input.rank.clone();
    for _ in 0..input.cfg.iters {
        let mut newrank = vec![0.0f64; n];
        for (i, (r, inv)) in rank.iter().zip(&input.outdeg_inv).enumerate() {
            let contrib = r * inv;
            for k in input.row_ptr[i] as usize..input.row_ptr[i + 1] as usize {
                newrank[input.col_idx[k] as usize] += contrib;
            }
        }
        for (r, nr) in rank.iter_mut().zip(&newrank) {
            *r = 0.15 / n as f64 + 0.85 * nr;
        }
    }
    rank
}

/// Max absolute element difference.
pub fn max_error(got: &[f64], expect: &[f64]) -> f64 {
    got.iter()
        .zip(expect)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_compiler::{
        compile_source, CompileOptions, DependVerdict, DisjointProof, Placement,
    };
    use acc_gpusim::Machine;
    use acc_runtime::{run_program, ExecConfig, SanitizeLevel};

    #[test]
    fn generator_is_well_formed_and_skewed() {
        let input = generate(&PagerankConfig::small(), 11);
        let n = input.cfg.n;
        assert_eq!(input.row_ptr.len(), n + 1);
        assert!(input.row_ptr.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*input.row_ptr.last().unwrap() as usize, input.col_idx.len());
        assert!(input.col_idx.iter().all(|&c| c >= 0 && (c as usize) < n));
        // Power-law skew: the lowest-id tenth of the pages receives the
        // majority of the edges.
        let hub_cut = (n / 10) as i32;
        let hub_edges = input.col_idx.iter().filter(|&&c| c < hub_cut).count();
        assert!(
            hub_edges * 2 > input.col_idx.len(),
            "expected skew, hubs got {hub_edges}/{}",
            input.col_idx.len()
        );
    }

    #[test]
    fn placements_and_verdicts() {
        let prog = compile_source(SOURCE, FUNCTION, &CompileOptions::proposal()).unwrap();
        // push kernel: msg is proved disjoint by the monotone window, on
        // the premise that row_ptr is non-decreasing.
        let push = &prog.kernels[0];
        let cfg = |k: &acc_compiler::CompiledKernel, n: &str| {
            k.configs.iter().find(|c| c.name == n).unwrap().clone()
        };
        let msg = cfg(push, "msg");
        assert_eq!(
            msg.lint.verdict,
            DependVerdict::Disjoint(DisjointProof::MonotoneWindow)
        );
        assert_eq!(msg.placement, Placement::Replicated);
        assert_eq!(
            prog.monotone_premises,
            vec![prog.array_index("row_ptr").unwrap()]
        );
        assert_eq!(cfg(push, "row_ptr").placement, Placement::Distributed);
        assert_eq!(cfg(push, "rank").placement, Placement::Distributed);
        // gather kernel: the annotated reduction.
        let gather = &prog.kernels[2];
        let newrank = cfg(gather, "newrank");
        assert_eq!(
            newrank.placement,
            Placement::ReductionPrivate(acc_kernel_ir::RmwOp::Add)
        );
        assert_eq!(
            newrank.lint.verdict,
            DependVerdict::Reduction(acc_kernel_ir::RmwOp::Add)
        );
        // Every kernel×array verdict is race-free: safe to distribute.
        for k in &prog.kernels {
            for c in &k.configs {
                assert!(c.lint.verdict.race_free(), "{}/{}", k.kernel.name, c.name);
            }
        }
    }

    #[test]
    fn lint_clean() {
        let diags = acc_compiler::lint_source(SOURCE).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn matches_oracle_on_1_2_3_gpus_under_full_sanitize() {
        let input = generate(&PagerankConfig::small(), 5);
        let expect = reference(&input);
        let prog = compile_source(SOURCE, FUNCTION, &CompileOptions::proposal()).unwrap();
        for ngpus in 1..=3 {
            for sanitize in [SanitizeLevel::Off, SanitizeLevel::Full] {
                let mut m = Machine::supercomputer_node();
                let (scalars, arrays) = inputs(&input);
                let r = run_program(
                    &mut m,
                    &ExecConfig::gpus(ngpus).sanitize(sanitize),
                    &prog,
                    scalars,
                    arrays,
                )
                .unwrap();
                let err = max_error(&r.arrays[RANK_ARRAY].to_f64_vec(), &expect);
                assert!(err < 1e-9, "ngpus={ngpus} {sanitize:?} err={err}");
            }
        }
    }
}
