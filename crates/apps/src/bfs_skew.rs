//! BFS-SKEW — pull-style BFS over a power-law graph, the load-imbalance
//! stress input for the cost-model task mapper.
//!
//! The Table II BFS is edge-centric: one loop iteration per edge, so the
//! equal static division of the iteration space (§IV-B2) is also an
//! equal division of *work*. This variant is vertex-centric ("pull" /
//! bottom-up): iteration `i` scans vertex `i`'s in-edges
//! `[rowptr[i], rowptr[i+1])`, and the generator gives in-degrees a
//! power-law decay in the vertex index — the hubs sit at low indices.
//! Under the equal division GPU 0 therefore drags every launch, which is
//! exactly the case [`Schedule::CostModel`](acc_runtime::Schedule)
//! exists for: after the first (equal) launch the mapper has measured
//! per-GPU kernel seconds and cuts the next iteration space at
//! equal-cost quantiles instead.
//!
//! Placements mirror SPMV's CSR shape:
//!
//! * `rowptr` — read at stride 1 with a right halo → `localaccess
//!   stride(1) right(1)` → distributed;
//! * `cols` — data-dependent gather → replicated;
//! * `levels` — read through `cols[k]` and written at `i` → replicated,
//!   reconciled through the two-level dirty bits after every level.
//!
//! Not part of the paper's Table II (and deliberately not in
//! [`App::ALL`](crate::App), which reproduces the published table); the
//! bench harness runs it as two extra points — equal split vs cost
//! model — so `BENCH_runtime.json` records the mapper's margin.

use acc_kernel_ir::{Buffer, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The OpenACC source of the skewed pull-BFS benchmark.
pub const SOURCE: &str = r#"
void bfs_skew(int nnodes, int nedges, int maxlevel, int changed,
              int *rowptr, int *cols, int *levels) {
#pragma acc data copyin(rowptr[0:nnodes+1], cols[0:nedges]) copy(levels[0:nnodes])
{
  int level = 0;
  changed = 1;
  while (changed > 0 && level < maxlevel) {
    changed = 0;
#pragma acc localaccess(rowptr) stride(1) right(1)
#pragma acc parallel loop reduction(+:changed)
    for (int i = 0; i < nnodes; i++) {
      if (levels[i] < 0) {
        int found = 0;
        for (int k = rowptr[i]; k < rowptr[i+1]; k++) {
          if (levels[cols[k]] == level) {
            found = 1;
          }
        }
        if (found > 0) {
          levels[i] = level + 1;
          changed += 1;
        }
      }
    }
    level = level + 1;
  }
}
}
"#;

/// Entry function name.
pub const FUNCTION: &str = "bfs_skew";

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct BfsSkewConfig {
    /// Vertex count (vertex 0 is the root).
    pub nnodes: usize,
    /// Target total in-edge count (realised count is close, never less
    /// than `nnodes - 1`).
    pub nedges_target: usize,
    /// Power-law exponent: vertex `i` draws `~ (i+1)^-alpha` of the
    /// edge mass. Larger = more skew.
    pub alpha: f64,
    /// BFS depth: every vertex is assigned a discovery level in
    /// `1..=depth`, so the host loop launches `depth + 1` kernels.
    pub depth: usize,
    /// Kernel-launch cap.
    pub maxlevel: usize,
}

impl BfsSkewConfig {
    /// The full-size bench input. Same shape as [`stress`](Self::stress)
    /// but with more vertices and edges, so the one-time `cols`
    /// replication is a bigger slice of the total and the measured
    /// cost-model margin is the conservative one.
    pub fn scaled() -> BfsSkewConfig {
        BfsSkewConfig {
            nnodes: 4_000,
            nedges_target: 1_500_000,
            alpha: 2.2,
            depth: 16,
            maxlevel: 30,
        }
    }

    /// The mapper-margin input: steep skew (hubs hold nearly all the
    /// edge mass) and a deep BFS, so the equal split drags on GPU 0 for
    /// many launches while the cost model converges after a few. This
    /// is the configuration behind the `bfs-skew` rows of
    /// `BENCH_runtime.json` at the small scale.
    pub fn stress() -> BfsSkewConfig {
        BfsSkewConfig {
            nnodes: 1_200,
            nedges_target: 600_000,
            alpha: 2.2,
            depth: 16,
            maxlevel: 30,
        }
    }

    /// A reduced size for unit tests. Edge-dense relative to the vertex
    /// count so per-iteration kernel work (what the mapper balances)
    /// dominates the loader traffic its shifting partitions cause.
    pub fn small() -> BfsSkewConfig {
        BfsSkewConfig {
            nnodes: 2_000,
            nedges_target: 150_000,
            alpha: 1.0,
            depth: 6,
            maxlevel: 20,
        }
    }
}

/// Generated in-neighbor CSR graph.
#[derive(Debug, Clone)]
pub struct BfsSkewInput {
    pub cfg: BfsSkewConfig,
    pub rowptr: Vec<i32>,
    pub cols: Vec<i32>,
    /// Initial levels: root 0, everything else -1.
    pub levels: Vec<i32>,
}

/// Generate the graph. Every vertex `i > 0` gets a target discovery
/// level `l(i)` and one "coverage" in-edge from a level-`l(i)-1` vertex
/// (so the BFS depth is exact); the rest of its power-law in-degree
/// comes from random vertices at levels `>= l(i) - 1`, which cannot
/// discover it any earlier — they are scanned every level while `i` is
/// unreached, like the cross edges of a real graph.
pub fn generate(cfg: &BfsSkewConfig, seed: u64) -> BfsSkewInput {
    assert!(cfg.depth >= 1 && cfg.nnodes > cfg.depth, "degenerate config");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.nnodes;

    // Discovery levels: the first `depth` non-root vertices pin one
    // vertex per level (no level can be empty), the rest draw uniformly.
    let mut level_of = vec![0usize; n];
    let mut by_level: Vec<Vec<i32>> = vec![Vec::new(); cfg.depth + 1];
    by_level[0].push(0);
    for (i, lv) in level_of.iter_mut().enumerate().skip(1) {
        let l = if i <= cfg.depth {
            i
        } else {
            rng.gen_range(1..=cfg.depth)
        };
        *lv = l;
        by_level[l].push(i as i32);
    }

    // Power-law in-degrees, normalised to the target edge count. The
    // root has no in-edges; its share is redistributed by the rounding.
    let norm: f64 = (1..n).map(|i| ((i + 1) as f64).powf(-cfg.alpha)).sum();
    let scale = cfg.nedges_target as f64 / norm;
    let deg = |i: usize| -> usize {
        ((scale * ((i + 1) as f64).powf(-cfg.alpha)).round() as usize).max(1)
    };

    let mut rowptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    rowptr.push(0i32);
    rowptr.push(0i32); // root: no in-edges
    for (i, &l) in level_of.iter().enumerate().skip(1) {
        let d = deg(i);
        let mut nbrs = Vec::with_capacity(d);
        nbrs.push(by_level[l - 1][rng.gen_range(0..by_level[l - 1].len())]);
        for _ in 1..d {
            let tl = rng.gen_range(l - 1..=cfg.depth);
            nbrs.push(by_level[tl][rng.gen_range(0..by_level[tl].len())]);
        }
        nbrs.shuffle(&mut rng);
        cols.extend_from_slice(&nbrs);
        rowptr.push(cols.len() as i32);
    }

    let mut levels = vec![-1i32; n];
    levels[0] = 0;
    BfsSkewInput {
        cfg: cfg.clone(),
        rowptr,
        cols,
        levels,
    }
}

/// Program inputs `(scalars, arrays)` in parameter order.
pub fn inputs(input: &BfsSkewInput) -> (Vec<Value>, Vec<Buffer>) {
    (
        vec![
            Value::I32(input.cfg.nnodes as i32),
            Value::I32(input.cols.len() as i32),
            Value::I32(input.cfg.maxlevel as i32),
            Value::I32(0),
        ],
        vec![
            Buffer::from_i32(&input.rowptr),
            Buffer::from_i32(&input.cols),
            Buffer::from_i32(&input.levels),
        ],
    )
}

/// Index of the `levels` output array.
pub const LEVELS_ARRAY: usize = 2;

/// Pure-Rust oracle: sequential level-synchronous pull BFS. The
/// intra-sweep visibility of same-sweep discoveries is irrelevant —
/// a vertex discovered this sweep holds `level + 1`, which the
/// `== level` test never matches — so one sequential pass reproduces
/// the BSP kernel exactly.
pub fn reference(input: &BfsSkewInput) -> Vec<i32> {
    let n = input.cfg.nnodes;
    let mut levels = input.levels.clone();
    let mut level = 0i32;
    loop {
        let mut changed = 0u64;
        for i in 0..n {
            if levels[i] < 0 {
                let lo = input.rowptr[i] as usize;
                let hi = input.rowptr[i + 1] as usize;
                if input.cols[lo..hi].iter().any(|&u| levels[u as usize] == level) {
                    levels[i] = level + 1;
                    changed += 1;
                }
            }
        }
        level += 1;
        if changed == 0 || level >= input.cfg.maxlevel as i32 {
            break;
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_compiler::{compile_source, CompileOptions, Placement};
    use acc_gpusim::Machine;
    use acc_runtime::{run_program, ExecConfig, Schedule};

    #[test]
    fn generator_is_deterministic_and_well_formed() {
        let cfg = BfsSkewConfig::small();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a.rowptr, b.rowptr);
        assert_eq!(a.cols, b.cols);
        assert_eq!(a.rowptr.len(), cfg.nnodes + 1);
        assert!(a.rowptr.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*a.rowptr.last().unwrap() as usize, a.cols.len());
        let n = cfg.nnodes as i32;
        assert!(a.cols.iter().all(|&c| (0..n).contains(&c)));
        assert_eq!(a.levels[0], 0);
    }

    #[test]
    fn edge_mass_is_front_loaded() {
        let cfg = BfsSkewConfig::small();
        let g = generate(&cfg, 3);
        let third = cfg.nnodes / 3;
        let front = g.rowptr[third] as f64;
        let total = *g.rowptr.last().unwrap() as f64;
        assert!(
            front / total > 0.6,
            "first third holds {:.0}% of the edges",
            100.0 * front / total
        );
    }

    #[test]
    fn reference_reaches_every_vertex_at_its_depth() {
        let cfg = BfsSkewConfig::small();
        let g = generate(&cfg, 2);
        let levels = reference(&g);
        assert!(levels.iter().all(|&l| l >= 0));
        assert_eq!(*levels.iter().max().unwrap() as usize, cfg.depth);
    }

    #[test]
    fn csr_placements_match_spmv_shape() {
        let prog = compile_source(SOURCE, FUNCTION, &CompileOptions::proposal()).unwrap();
        let k = &prog.kernels[0];
        let placement = |n: &str| {
            k.configs
                .iter()
                .find(|c| c.name == n)
                .unwrap()
                .placement
                .clone()
        };
        assert_eq!(placement("rowptr"), Placement::Distributed);
        assert_eq!(placement("cols"), Placement::Replicated);
        assert_eq!(placement("levels"), Placement::Replicated);
    }

    #[test]
    fn source_is_lint_clean() {
        // CI runs `acc-lint --deny-warnings` over this source; keep it
        // clean like the Table II apps.
        let diags = acc_compiler::lint_source(SOURCE).expect("compiles");
        assert!(diags.is_empty(), "lint diagnostics: {diags:?}");
    }

    #[test]
    fn matches_oracle_on_1_2_3_gpus_under_both_schedules() {
        let input = generate(&BfsSkewConfig::small(), 5);
        let expect = reference(&input);
        let prog = compile_source(SOURCE, FUNCTION, &CompileOptions::proposal()).unwrap();
        for ngpus in 1..=3 {
            for sched in [Schedule::Equal, Schedule::CostModel] {
                let mut m = Machine::supercomputer_node();
                let (scalars, arrays) = inputs(&input);
                let r = run_program(
                    &mut m,
                    &ExecConfig::gpus(ngpus).schedule(sched),
                    &prog,
                    scalars,
                    arrays,
                )
                .unwrap();
                assert_eq!(
                    r.arrays[LEVELS_ARRAY].to_i32_vec(),
                    expect,
                    "ngpus={ngpus} sched={sched:?}"
                );
            }
        }
    }

    #[test]
    fn cost_model_beats_equal_split_on_the_skewed_input() {
        // The measured margin on this input is ~11%; asserting >5%
        // leaves room for pricing-model adjustments without letting the
        // win degrade to noise. Everything simulated is deterministic,
        // so this does not flake.
        let input = generate(&BfsSkewConfig::stress(), 5);
        let prog = compile_source(SOURCE, FUNCTION, &CompileOptions::proposal()).unwrap();
        let sim = |sched: Schedule| {
            let mut m = Machine::supercomputer_node();
            let (scalars, arrays) = inputs(&input);
            run_program(&mut m, &ExecConfig::gpus(3).schedule(sched), &prog, scalars, arrays)
                .unwrap()
                .profile
                .time
                .parallel_region()
        };
        let equal = sim(Schedule::Equal);
        let cm = sim(Schedule::CostModel);
        assert!(
            cm < 0.95 * equal,
            "cost model should beat equal split by >5%: equal {equal:.6}s, cost-model {cm:.6}s"
        );
    }
}
