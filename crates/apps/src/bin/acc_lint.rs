//! `acc-lint` — the multi-GPU consistency linter CLI.
//!
//! ```text
//! # Lint the built-in applications (CI runs this warnings-as-errors):
//! cargo run -p acc-apps --bin acc-lint -- --deny-warnings
//!
//! # Lint OpenACC sources, or .rs files with embedded `r#"..."#` sources:
//! cargo run -p acc-apps --bin acc-lint -- examples/quickstart.rs mykernel.c
//!
//! # Surface inferable localaccess annotations (ACC-I001) and fail if the
//! # inference diverges from any hand-written annotation:
//! cargo run -p acc-apps --bin acc-lint -- --infer --deny-divergence
//!
//! # Explain a diagnostic code:
//! cargo run -p acc-apps --bin acc-lint -- --explain ACC-I001
//!
//! # Dynamically audit one app's static verdicts with the sanitizer:
//! cargo run --release -p acc-apps --bin acc-lint -- --audit bfs --gpus 3
//! ```
//!
//! Static mode prints every `ACC-W00x` diagnostic (see `docs/analysis.md`)
//! and exits 1 under `--deny-warnings` if any fired, 2 if a source failed
//! to compile. Audit mode runs the app under `SanitizeLevel::Full`, which
//! turns any store outside the owner partition or load outside the
//! declared `localaccess` window into a hard error.

use acc_apps::{run_app_with_config, App, Scale, Version};
use acc_compiler::{lint_source_with, CompileOptions};
use acc_gpusim::Machine;
use acc_runtime::SanitizeLevel;

struct Args {
    deny_warnings: bool,
    infer: bool,
    deny_divergence: bool,
    audit: Option<String>,
    elide: bool,
    gpus: usize,
    scale: Scale,
    seed: u64,
    files: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        deny_warnings: false,
        infer: false,
        deny_divergence: false,
        audit: None,
        elide: false,
        gpus: 3,
        scale: Scale::Small,
        seed: 42,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-warnings" => args.deny_warnings = true,
            "--infer" => args.infer = true,
            "--deny-divergence" => args.deny_divergence = true,
            "--explain" => match it.next() {
                Some(code) => run_explain(&code),
                None => {
                    eprintln!("acc-lint: --explain needs a code (e.g. ACC-W001)");
                    std::process::exit(2);
                }
            },
            "--audit" => args.audit = it.next(),
            "--elide" => args.elide = true,
            "--gpus" => args.gpus = it.next().and_then(|s| s.parse().ok()).unwrap_or(3),
            "--seed" => args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            "--scale" => {
                args.scale = match it.next().as_deref() {
                    Some("small") => Scale::Small,
                    Some("scaled") => Scale::Scaled,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: acc-lint [--deny-warnings] [--infer] [--deny-divergence] [FILE.c|FILE.rs ...]\n\
                     \x20      acc-lint --explain ACC-XNNN\n\
                     \x20      acc-lint --audit APP [--elide] [--gpus N] [--scale small|scaled|paper] [--seed N]\n\
                     With no files, lints every built-in application kernel."
                );
                std::process::exit(0);
            }
            f => args.files.push(f.to_string()),
        }
    }
    args
}

/// `--explain ACC-XNNN`: the long-form description, an example that
/// triggers the diagnostic, and how to fix it.
fn run_explain(code: &str) -> ! {
    let text = match code.to_ascii_uppercase().as_str() {
        "ACC-E001" => {
            "ACC-E001: non-positive localaccess stride\n\
             \n\
             The declared per-iteration read window of `localaccess(a) stride(s)\n\
             left(l) right(r)` is [s*i - l, s*(i+1) - 1 + r]. A stride below 1\n\
             makes the window degenerate: the data loader would allocate nothing\n\
             (or walk backwards) for every GPU partition.\n\
             \n\
             Example:\n\
             \x20   #pragma acc localaccess(x) stride(0)     // error\n\
             \n\
             Fix: declare the true per-iteration advance of the densest access,\n\
             e.g. `stride(1)` for x[i] or `stride(3)` for x[3*i+2]. Runtime-\n\
             valued strides are re-validated at launch time instead."
        }
        "ACC-E002" => {
            "ACC-E002: negative localaccess left/right extent\n\
             \n\
             `left` and `right` widen the per-iteration window by a constant\n\
             halo on each side; negative values would shrink it below the\n\
             stride span and cannot describe any real access pattern.\n\
             \n\
             Example:\n\
             \x20   #pragma acc localaccess(h) stride(1) left(-1)   // error\n\
             \n\
             Fix: use non-negative halo extents, e.g. `left(1) right(1)` for a\n\
             3-point stencil reading h[i-1], h[i], h[i+1]."
        }
        "ACC-W001" => {
            "ACC-W001: overlapping stores to a replicated array\n\
             \n\
             A kernel stores thread-dependent values at indices that several\n\
             threads (and therefore several GPUs) can overlap — a broadcast\n\
             like a[0] = v or an irregular a[idx[i]] = v. With the array\n\
             replicated on multiple GPUs, replica reconciliation order decides\n\
             which GPU's value survives; results can differ from single-GPU\n\
             execution.\n\
             \n\
             Example:\n\
             \x20   for (i...) { y[idx[i]] = f(i); }   // two i may share idx[i]\n\
             \n\
             Fix: make the written index injective in i (then `localaccess`\n\
             distributes the array), or express the update as a reduction with\n\
             `reductiontoarray`."
        }
        "ACC-W002" => {
            "ACC-W002: read-modify-write without reductiontoarray\n\
             \n\
             The kernel accumulates into an array element at an overlapping\n\
             index (a[k] = a[k] + v, a[k] += v, ...). Each GPU updates its own\n\
             replica, and plain replica reconciliation then *overwrites* rather\n\
             than *merges* — every GPU's partial sums but one are lost.\n\
             \n\
             Example:\n\
             \x20   for (i...) { bins[keys[i]] += w[i]; }\n\
             \n\
             Fix: annotate the accumulation site:\n\
             \x20   #pragma acc reductiontoarray(+: bins[k])\n\
             so the runtime gives each GPU a private identity-filled copy and\n\
             merges them with the declared operator after the launch."
        }
        "ACC-W003" => {
            "ACC-W003: declared localaccess window narrower than the access\n\
             \n\
             The interval analysis bounded the kernel's actual per-iteration\n\
             read range of the array, and the declared `localaccess` window is\n\
             provably narrower. The data loader sizes each GPU's partition from\n\
             the declaration, so it will under-allocate and the kernel will\n\
             fault (or the sanitizer will reject the loads).\n\
             \n\
             Example:\n\
             \x20   #pragma acc localaccess(h) stride(1)        // no halo...\n\
             \x20   for (i...) out[i] = h[i-1] + h[i] + h[i+1]; // ...but reads one\n\
             \n\
             Fix: widen the annotation to cover the true range, here\n\
             `stride(1) left(1) right(1)` — or delete it and let `--infer`\n\
             derive the exact window (see ACC-I001)."
        }
        "ACC-W004" => {
            "ACC-W004: host reads a stale replica\n\
             \n\
             Host code reads an array that a prior kernel wrote on the device,\n\
             with no intervening `update host(...)` and no flushing data-region\n\
             exit. The host silently observes pre-kernel data.\n\
             \n\
             Example:\n\
             \x20   #pragma acc parallel loop  // writes x on the GPUs\n\
             \x20   ...\n\
             \x20   s = x[0];                  // host read inside the region\n\
             \n\
             Fix: insert `#pragma acc update host(x[0:n])` before the host\n\
             read, or move the read past the data-region exit that copies the\n\
             array out."
        }
        "ACC-I001" => {
            "ACC-I001: localaccess annotation is inferable\n\
             \n\
             (Reported only under --infer.) The whole-program dataflow analysis\n\
             bounded every access of this unannotated array by an affine window\n\
             stride*i + [-left, stride-1+right], so a sound `localaccess`\n\
             annotation exists. Without it the array is *replicated* on every\n\
             GPU: full-size allocations, full loads, and dirty-bit replica\n\
             syncs after every writing launch. The diagnostic message carries\n\
             the exact machine-applyable pragma.\n\
             \n\
             Example:\n\
             \x20   for (i...) y[i] = a*x[i] + y[i];  // unannotated x, y\n\
             \x20   → add `#pragma acc localaccess(x) stride(1)` (and for y)\n\
             \n\
             Fix: paste the suggested pragma above the loop, or compile with\n\
             inference enabled (`CompileOptions::infer_localaccess`) to have\n\
             the compiler consume the derived annotation automatically; the\n\
             run is bit-identical to the hand-annotated program."
        }
        other => {
            eprintln!(
                "acc-lint: unknown diagnostic code `{other}` (have: ACC-E001, ACC-E002, \
                 ACC-W001, ACC-W002, ACC-W003, ACC-W004, ACC-I001)"
            );
            std::process::exit(2);
        }
    };
    println!("{text}");
    std::process::exit(0);
}

/// Extract `r#"..."#` raw-string literals that contain OpenACC pragmas
/// from a Rust source file (the examples and app modules embed their
/// kernels this way).
fn embedded_sources(rs: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = rs;
    while let Some(start) = rest.find("r#\"") {
        let body = &rest[start + 3..];
        let Some(end) = body.find("\"#") else { break };
        let src = &body[..end];
        if src.contains("#pragma acc") {
            out.push(src.to_string());
        }
        rest = &body[end + 2..];
    }
    out
}

/// Lint one OpenACC source; returns the number of warnings, or `None` if
/// it failed to compile (diagnostics printed either way).
fn lint_one(label: &str, src: &str, opts: &CompileOptions) -> Option<usize> {
    match lint_source_with(src, opts) {
        Ok(diags) => {
            for d in &diags {
                println!("{label}: {}", d.render(src));
            }
            Some(diags.len())
        }
        Err(diags) => {
            for d in &diags {
                eprintln!("{label}: {}", d.render_verbose(src));
            }
            None
        }
    }
}

/// `--deny-divergence`: compile every function of the source with
/// inference enabled and cross-check each hand-written `localaccess`
/// annotation against what the analysis derives. A hand annotation the
/// inference cannot reproduce exactly (differs, or derives nothing) is a
/// divergence — either the annotation is wrong or the analysis lost
/// precision; both deserve a failing CI signal. Returns the number of
/// divergent kernel×array sites.
fn check_divergence(label: &str, src: &str) -> usize {
    let opts = CompileOptions {
        infer_localaccess: true,
        optimize_kernels: false,
        ..CompileOptions::proposal()
    };
    let Ok(typed) = acc_minic::frontend(src) else {
        return 0; // compile failures are reported by the lint pass
    };
    let mut n = 0;
    for f in &typed.functions {
        let Ok(p) = acc_compiler::compile(&typed, &f.name, &opts) else {
            continue;
        };
        for k in &p.kernels {
            for cfg in &k.configs {
                // `inferred_used` means there was no hand annotation.
                let Some(hand) = (!cfg.inferred_used).then_some(cfg.localaccess.as_ref()).flatten()
                else {
                    continue;
                };
                match &cfg.inferred {
                    Some(inf) if inf == hand => {}
                    Some(inf) => {
                        println!(
                            "{label}: divergence: kernel `{}` array `{}`: \
                             hand-written {:?} but inference derives {:?}",
                            k.kernel.name, cfg.name, hand, inf
                        );
                        n += 1;
                    }
                    None => {
                        println!(
                            "{label}: divergence: kernel `{}` array `{}`: \
                             hand-written {:?} but inference derives nothing",
                            k.kernel.name, cfg.name, hand
                        );
                        n += 1;
                    }
                }
            }
        }
    }
    n
}

fn run_static(args: &Args) -> ! {
    let opts = CompileOptions {
        infer_localaccess: args.infer,
        optimize_kernels: false,
        ..CompileOptions::proposal()
    };
    let mut warnings = 0usize;
    let mut divergences = 0usize;
    let mut broken = 0usize;
    let mut targets = 0usize;
    let mut lint = |label: &str, src: &str| {
        targets += 1;
        match lint_one(label, src, &opts) {
            Some(n) => warnings += n,
            None => broken += 1,
        }
        if args.deny_divergence {
            divergences += check_divergence(label, src);
        }
    };
    if args.files.is_empty() {
        for app in App::ALL {
            lint(app.name(), app.source());
        }
        // Bench-only kernels outside the paper's Table II ride along —
        // they must stay as lint-clean as the published apps.
        lint("bfs-skew", acc_apps::bfs_skew::SOURCE);
    } else {
        for f in &args.files {
            let content = match std::fs::read_to_string(f) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("acc-lint: cannot read {f}: {e}");
                    std::process::exit(2);
                }
            };
            if f.ends_with(".rs") {
                for (i, src) in embedded_sources(&content).iter().enumerate() {
                    lint(&format!("{f}#{i}"), src);
                }
            } else {
                lint(f, &content);
            }
        }
    }
    eprintln!(
        "acc-lint: {targets} kernel source(s), {warnings} warning(s), {broken} compile failure(s){}",
        if args.deny_divergence {
            format!(", {divergences} annotation divergence(s)")
        } else {
            String::new()
        }
    );
    if broken > 0 {
        std::process::exit(2);
    }
    if divergences > 0 || (args.deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn run_audit(args: &Args, name: &str) -> ! {
    let Some(app) = App::ALL.into_iter().find(|a| a.name() == name) else {
        eprintln!(
            "acc-lint: unknown app `{name}` (have: {})",
            App::ALL.map(|a| a.name()).join(", ")
        );
        std::process::exit(2);
    };
    let version = Version::Proposal(args.gpus);
    let mut cfg = version.exec_config().sanitize(SanitizeLevel::Full);
    if args.elide {
        // Full sanitize re-arms every statically elided sync and audits
        // the claimed partitions first — the combination is exactly the
        // comm-elision soundness check, on a real app.
        cfg = cfg.comm_elision(true);
    }
    let mut m = Machine::supercomputer_node();
    eprintln!(
        "acc-lint: auditing {name} on {} GPU(s), fully sanitized{}...",
        args.gpus,
        if args.elide { ", comm elision armed" } else { "" }
    );
    match run_app_with_config(app, version, &mut m, args.scale, args.seed, &cfg) {
        Ok(r) if r.correct => {
            eprintln!(
                "acc-lint: clean — no sanitize violations, result correct (max err {:.3e})",
                r.max_err
            );
            std::process::exit(0);
        }
        Ok(r) => {
            eprintln!("acc-lint: WRONG RESULT (max err {:.3e})", r.max_err);
            std::process::exit(1);
        }
        Err(e) => {
            // Typed failure: stable `[ACC-XNNN]` code first, prose after,
            // so scripts match the code and humans read the message.
            eprintln!("acc-lint: [{}] {e}", e.code());
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(name) = args.audit.clone() {
        run_audit(&args, &name);
    }
    run_static(&args);
}
