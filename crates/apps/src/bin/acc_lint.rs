//! `acc-lint` — the multi-GPU consistency linter CLI.
//!
//! ```text
//! # Lint the built-in applications (CI runs this warnings-as-errors):
//! cargo run -p acc-apps --bin acc-lint -- --deny-warnings
//!
//! # Lint OpenACC sources, or .rs files with embedded `r#"..."#` sources:
//! cargo run -p acc-apps --bin acc-lint -- examples/quickstart.rs mykernel.c
//!
//! # Surface inferable localaccess annotations (ACC-I001) and fail if the
//! # inference diverges from any hand-written annotation:
//! cargo run -p acc-apps --bin acc-lint -- --infer --deny-divergence
//!
//! # Explain a diagnostic code:
//! cargo run -p acc-apps --bin acc-lint -- --explain ACC-I001
//!
//! # Dynamically audit one app's static verdicts with the sanitizer:
//! cargo run --release -p acc-apps --bin acc-lint -- --audit bfs --gpus 3
//! ```
//!
//! Static mode prints every `ACC-W00x` diagnostic (see `docs/analysis.md`)
//! and exits 1 under `--deny-warnings` if any fired, 2 if a source failed
//! to compile. Audit mode runs the app under `SanitizeLevel::Full`, which
//! turns any store outside the owner partition or load outside the
//! declared `localaccess` window into a hard error.

use acc_apps::{run_app_with_config, App, Scale, Version};
use acc_compiler::{lint_source_with, CompileOptions};
use acc_gpusim::Machine;
use acc_runtime::SanitizeLevel;

struct Args {
    deny_warnings: bool,
    infer: bool,
    deny_divergence: bool,
    audit: Option<String>,
    elide: bool,
    gpus: usize,
    scale: Scale,
    seed: u64,
    files: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        deny_warnings: false,
        infer: false,
        deny_divergence: false,
        audit: None,
        elide: false,
        gpus: 3,
        scale: Scale::Small,
        seed: 42,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-warnings" => args.deny_warnings = true,
            "--infer" => args.infer = true,
            "--deny-divergence" => args.deny_divergence = true,
            "--explain" => match it.next() {
                Some(code) => run_explain(&code),
                None => {
                    eprintln!("acc-lint: --explain needs a code (e.g. ACC-W001)");
                    std::process::exit(2);
                }
            },
            "--audit" => args.audit = it.next(),
            "--elide" => args.elide = true,
            "--gpus" => args.gpus = it.next().and_then(|s| s.parse().ok()).unwrap_or(3),
            "--seed" => args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            "--scale" => {
                args.scale = match it.next().as_deref() {
                    Some("small") => Scale::Small,
                    Some("scaled") => Scale::Scaled,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: acc-lint [--deny-warnings] [--infer] [--deny-divergence] [FILE.c|FILE.rs ...]\n\
                     \x20      acc-lint --explain ACC-XNNN\n\
                     \x20      acc-lint --audit APP [--elide] [--gpus N] [--scale small|scaled|paper] [--seed N]\n\
                     With no files, lints every built-in application kernel."
                );
                std::process::exit(0);
            }
            f => args.files.push(f.to_string()),
        }
    }
    args
}

/// `--explain ACC-XNNN`: the long-form description, an example that
/// triggers the diagnostic, and how to fix it. The texts live in
/// [`acc_apps::explain`], whose exhaustiveness test keeps them in sync
/// with every code the workspace can emit.
fn run_explain(code: &str) -> ! {
    match acc_apps::explain::explain(code) {
        Some(text) => {
            println!("{text}");
            std::process::exit(0);
        }
        None => {
            let shape = if acc_minic::diag::is_stable_code(&code.to_ascii_uppercase()) {
                "well-formed, but nothing emits it"
            } else {
                "not of the form ACC-XNNN"
            };
            eprintln!(
                "acc-lint: unknown diagnostic code `{code}` ({shape}); known codes: {}",
                acc_apps::explain::KNOWN_CODES.join(", ")
            );
            std::process::exit(2);
        }
    }
}

/// Extract `r#"..."#` raw-string literals that contain OpenACC pragmas
/// from a Rust source file (the examples and app modules embed their
/// kernels this way).
fn embedded_sources(rs: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = rs;
    while let Some(start) = rest.find("r#\"") {
        let body = &rest[start + 3..];
        let Some(end) = body.find("\"#") else { break };
        let src = &body[..end];
        if src.contains("#pragma acc") {
            out.push(src.to_string());
        }
        rest = &body[end + 2..];
    }
    out
}

/// Lint one OpenACC source; returns `(warnings, infos)`, or `None` if it
/// failed to compile (diagnostics printed either way). Informational
/// `ACC-I*` diagnostics (inference suggestions, the ACC-I003 halo-local
/// dependence downgrade) are counted separately so `--deny-warnings`
/// does not deny them.
fn lint_one(label: &str, src: &str, opts: &CompileOptions) -> Option<(usize, usize)> {
    match lint_source_with(src, opts) {
        Ok(diags) => {
            for d in &diags {
                println!("{label}: {}", d.render(src));
            }
            let infos = diags
                .iter()
                .filter(|d| d.code.is_some_and(|c| c.starts_with("ACC-I")))
                .count();
            Some((diags.len() - infos, infos))
        }
        Err(diags) => {
            for d in &diags {
                eprintln!("{label}: {}", d.render_verbose(src));
            }
            None
        }
    }
}

/// `--deny-divergence`: compile every function of the source with
/// inference enabled and cross-check each hand-written annotation
/// against what the analysis derives — `localaccess` windows against the
/// whole-program dataflow, and `reductiontoarray` operators against the
/// dependence analysis (the source is re-compiled with the reduction
/// pragmas stripped, so inference sees the bare RMW pattern). A hand
/// annotation the inference cannot reproduce exactly (differs, or
/// derives nothing) is a divergence — either the annotation is wrong or
/// the analysis lost precision; both deserve a failing CI signal.
/// Returns the number of divergent kernel×array sites.
fn check_divergence(label: &str, src: &str) -> usize {
    let opts = CompileOptions {
        infer_localaccess: true,
        optimize_kernels: false,
        ..CompileOptions::proposal()
    };
    let Ok(typed) = acc_minic::frontend(src) else {
        return 0; // compile failures are reported by the lint pass
    };
    let mut n = 0;
    for f in &typed.functions {
        let Ok(p) = acc_compiler::compile(&typed, &f.name, &opts) else {
            continue;
        };
        n += check_reduction_divergence(label, src, &f.name, &p);
        for k in &p.kernels {
            for cfg in &k.configs {
                // `inferred_used` means there was no hand annotation.
                let Some(hand) = (!cfg.inferred_used).then_some(cfg.localaccess.as_ref()).flatten()
                else {
                    continue;
                };
                match &cfg.inferred {
                    Some(inf) if inf == hand => {}
                    Some(inf) => {
                        println!(
                            "{label}: divergence: kernel `{}` array `{}`: \
                             hand-written {:?} but inference derives {:?}",
                            k.kernel.name, cfg.name, hand, inf
                        );
                        n += 1;
                    }
                    None => {
                        println!(
                            "{label}: divergence: kernel `{}` array `{}`: \
                             hand-written {:?} but inference derives nothing",
                            k.kernel.name, cfg.name, hand
                        );
                        n += 1;
                    }
                }
            }
        }
    }
    n
}

/// Reduction half of `--deny-divergence`: strip every hand-written
/// `reductiontoarray` pragma, recompile with
/// `CompileOptions::infer_reductions`, and demand that the dependence
/// analysis re-derives exactly the operator each hand annotation
/// declared, for each annotated kernel×array.
fn check_reduction_divergence(
    label: &str,
    src: &str,
    function: &str,
    annotated: &acc_compiler::CompiledProgram,
) -> usize {
    use acc_compiler::Placement;
    let hand: Vec<(usize, usize, acc_kernel_ir::RmwOp)> = annotated
        .kernels
        .iter()
        .enumerate()
        .flat_map(|(ki, k)| {
            k.configs.iter().filter_map(move |c| match c.placement {
                Placement::ReductionPrivate(op) => Some((ki, c.array, op)),
                _ => None,
            })
        })
        .collect();
    if hand.is_empty() {
        return 0;
    }
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("#pragma acc reductiontoarray"))
        .collect::<Vec<_>>()
        .join("\n");
    let opts = CompileOptions {
        infer_reductions: true,
        optimize_kernels: false,
        ..CompileOptions::proposal()
    };
    let Ok(inferred) = acc_compiler::compile_source(&stripped, function, &opts) else {
        println!("{label}: divergence: `{function}` fails to compile with reductiontoarray stripped");
        return hand.len();
    };
    let mut n = 0;
    for (ki, array, op) in hand {
        let kernel = &annotated.kernels[ki].kernel.name;
        let derived = inferred
            .kernels
            .get(ki)
            .and_then(|k| k.configs.iter().find(|c| c.array == array))
            .and_then(|c| c.inferred_reduction);
        if derived != Some(op) {
            let name = &annotated.array_params[array].0;
            println!(
                "{label}: divergence: kernel `{kernel}` array `{name}`: hand-written \
                 reductiontoarray({op:?}) but inference derives {derived:?}"
            );
            n += 1;
        }
    }
    n
}

fn run_static(args: &Args) -> ! {
    let opts = CompileOptions {
        infer_localaccess: args.infer,
        infer_reductions: args.infer,
        optimize_kernels: false,
        ..CompileOptions::proposal()
    };
    let mut warnings = 0usize;
    let mut infos = 0usize;
    let mut divergences = 0usize;
    let mut broken = 0usize;
    let mut targets = 0usize;
    let mut lint = |label: &str, src: &str| {
        targets += 1;
        match lint_one(label, src, &opts) {
            Some((w, i)) => {
                warnings += w;
                infos += i;
            }
            None => broken += 1,
        }
        if args.deny_divergence {
            divergences += check_divergence(label, src);
        }
    };
    if args.files.is_empty() {
        for app in App::ALL {
            lint(app.name(), app.source());
        }
        // Bench-only kernels outside the paper's Table II ride along —
        // they must stay as lint-clean as the published apps.
        lint("bfs-skew", acc_apps::bfs_skew::SOURCE);
    } else {
        for f in &args.files {
            let content = match std::fs::read_to_string(f) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("acc-lint: cannot read {f}: {e}");
                    std::process::exit(2);
                }
            };
            if f.ends_with(".rs") {
                for (i, src) in embedded_sources(&content).iter().enumerate() {
                    lint(&format!("{f}#{i}"), src);
                }
            } else {
                lint(f, &content);
            }
        }
    }
    eprintln!(
        "acc-lint: {targets} kernel source(s), {warnings} warning(s), {infos} info(s), \
         {broken} compile failure(s){}",
        if args.deny_divergence {
            format!(", {divergences} annotation divergence(s)")
        } else {
            String::new()
        }
    );
    if broken > 0 {
        std::process::exit(2);
    }
    if divergences > 0 || (args.deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn run_audit(args: &Args, name: &str) -> ! {
    let Some(app) = App::ALL.into_iter().find(|a| a.name() == name) else {
        eprintln!(
            "acc-lint: unknown app `{name}` (have: {})",
            App::ALL.map(|a| a.name()).join(", ")
        );
        std::process::exit(2);
    };
    let version = Version::Proposal(args.gpus);
    let mut cfg = version.exec_config().sanitize(SanitizeLevel::Full);
    if args.elide {
        // Full sanitize re-arms every statically elided sync and audits
        // the claimed partitions first — the combination is exactly the
        // comm-elision soundness check, on a real app.
        cfg = cfg.comm_elision(true);
    }
    let mut m = Machine::supercomputer_node();
    eprintln!(
        "acc-lint: auditing {name} on {} GPU(s), fully sanitized{}...",
        args.gpus,
        if args.elide { ", comm elision armed" } else { "" }
    );
    match run_app_with_config(app, version, &mut m, args.scale, args.seed, &cfg) {
        Ok(r) if r.correct => {
            eprintln!(
                "acc-lint: clean — no sanitize violations, result correct (max err {:.3e})",
                r.max_err
            );
            std::process::exit(0);
        }
        Ok(r) => {
            eprintln!("acc-lint: WRONG RESULT (max err {:.3e})", r.max_err);
            std::process::exit(1);
        }
        Err(e) => {
            // Typed failure: stable `[ACC-XNNN]` code first, prose after,
            // so scripts match the code and humans read the message.
            eprintln!("acc-lint: [{}] {e}", e.code());
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(name) = args.audit.clone() {
        run_audit(&args, &name);
    }
    run_static(&args);
}
