//! `acc-lint` — the multi-GPU consistency linter CLI.
//!
//! ```text
//! # Lint the built-in applications (CI runs this warnings-as-errors):
//! cargo run -p acc-apps --bin acc-lint -- --deny-warnings
//!
//! # Lint OpenACC sources, or .rs files with embedded `r#"..."#` sources:
//! cargo run -p acc-apps --bin acc-lint -- examples/quickstart.rs mykernel.c
//!
//! # Dynamically audit one app's static verdicts with the sanitizer:
//! cargo run --release -p acc-apps --bin acc-lint -- --audit bfs --gpus 3
//! ```
//!
//! Static mode prints every `ACC-W00x` diagnostic (see `docs/analysis.md`)
//! and exits 1 under `--deny-warnings` if any fired, 2 if a source failed
//! to compile. Audit mode runs the app under `SanitizeLevel::Full`, which
//! turns any store outside the owner partition or load outside the
//! declared `localaccess` window into a hard error.

use acc_apps::{run_app_with_config, App, Scale, Version};
use acc_compiler::lint_source;
use acc_gpusim::Machine;
use acc_runtime::SanitizeLevel;

struct Args {
    deny_warnings: bool,
    audit: Option<String>,
    gpus: usize,
    scale: Scale,
    seed: u64,
    files: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        deny_warnings: false,
        audit: None,
        gpus: 3,
        scale: Scale::Small,
        seed: 42,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-warnings" => args.deny_warnings = true,
            "--audit" => args.audit = it.next(),
            "--gpus" => args.gpus = it.next().and_then(|s| s.parse().ok()).unwrap_or(3),
            "--seed" => args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            "--scale" => {
                args.scale = match it.next().as_deref() {
                    Some("small") => Scale::Small,
                    Some("scaled") => Scale::Scaled,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: acc-lint [--deny-warnings] [FILE.c|FILE.rs ...]\n\
                     \x20      acc-lint --audit APP [--gpus N] [--scale small|scaled|paper] [--seed N]\n\
                     With no files, lints every built-in application kernel."
                );
                std::process::exit(0);
            }
            f => args.files.push(f.to_string()),
        }
    }
    args
}

/// Extract `r#"..."#` raw-string literals that contain OpenACC pragmas
/// from a Rust source file (the examples and app modules embed their
/// kernels this way).
fn embedded_sources(rs: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = rs;
    while let Some(start) = rest.find("r#\"") {
        let body = &rest[start + 3..];
        let Some(end) = body.find("\"#") else { break };
        let src = &body[..end];
        if src.contains("#pragma acc") {
            out.push(src.to_string());
        }
        rest = &body[end + 2..];
    }
    out
}

/// Lint one OpenACC source; returns the number of warnings, or `None` if
/// it failed to compile (diagnostics printed either way).
fn lint_one(label: &str, src: &str) -> Option<usize> {
    match lint_source(src) {
        Ok(diags) => {
            for d in &diags {
                println!("{label}: {}", d.render(src));
            }
            Some(diags.len())
        }
        Err(diags) => {
            for d in &diags {
                eprintln!("{label}: {}", d.render_verbose(src));
            }
            None
        }
    }
}

fn run_static(args: &Args) -> ! {
    let mut warnings = 0usize;
    let mut broken = 0usize;
    let mut targets = 0usize;
    let mut lint = |label: &str, src: &str| {
        targets += 1;
        match lint_one(label, src) {
            Some(n) => warnings += n,
            None => broken += 1,
        }
    };
    if args.files.is_empty() {
        for app in App::ALL {
            lint(app.name(), app.source());
        }
        // Bench-only kernels outside the paper's Table II ride along —
        // they must stay as lint-clean as the published apps.
        lint("bfs-skew", acc_apps::bfs_skew::SOURCE);
    } else {
        for f in &args.files {
            let content = match std::fs::read_to_string(f) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("acc-lint: cannot read {f}: {e}");
                    std::process::exit(2);
                }
            };
            if f.ends_with(".rs") {
                for (i, src) in embedded_sources(&content).iter().enumerate() {
                    lint(&format!("{f}#{i}"), src);
                }
            } else {
                lint(f, &content);
            }
        }
    }
    eprintln!(
        "acc-lint: {targets} kernel source(s), {warnings} warning(s), {broken} compile failure(s)"
    );
    if broken > 0 {
        std::process::exit(2);
    }
    if args.deny_warnings && warnings > 0 {
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn run_audit(args: &Args, name: &str) -> ! {
    let Some(app) = App::ALL.into_iter().find(|a| a.name() == name) else {
        eprintln!(
            "acc-lint: unknown app `{name}` (have: {})",
            App::ALL.map(|a| a.name()).join(", ")
        );
        std::process::exit(2);
    };
    let version = Version::Proposal(args.gpus);
    let cfg = version.exec_config().sanitize(SanitizeLevel::Full);
    let mut m = Machine::supercomputer_node();
    eprintln!(
        "acc-lint: auditing {name} on {} GPU(s), fully sanitized...",
        args.gpus
    );
    match run_app_with_config(app, version, &mut m, args.scale, args.seed, &cfg) {
        Ok(r) if r.correct => {
            eprintln!(
                "acc-lint: clean — no sanitize violations, result correct (max err {:.3e})",
                r.max_err
            );
            std::process::exit(0);
        }
        Ok(r) => {
            eprintln!("acc-lint: WRONG RESULT (max err {:.3e})", r.max_err);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("acc-lint: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(name) = args.audit.clone() {
        run_audit(&args, &name);
    }
    run_static(&args);
}
