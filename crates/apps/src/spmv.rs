//! SPMV — CSR sparse matrix × vector, a fourth data-parallel workload
//! from the MapReduce dwarf the paper's §III-B motivates ("linear
//! algebra, data mining, ...").
//!
//! SPMV is the counter-example to BFS's edge-centric reformulation: in
//! CSR form, each row's element range `[row_ptr[i], row_ptr[i+1])` is
//! data-dependent, which the paper's constant-stride 1-D `localaccess`
//! cannot describe. Consequently:
//!
//! * `row_ptr` gets `localaccess stride(1) right(1)` → distributed;
//! * `y` gets `localaccess stride(1)` → distributed, writes elided;
//! * `col_idx`, `vals` and `x` — the bulk of the footprint — stay
//!   **replicated**, so multi-GPU runs do *not* reduce the per-GPU
//!   memory for CSR's payload the way the edge list does for BFS.
//!
//! The tests quantify exactly that: per-GPU user memory stays ~flat for
//! SPMV where BFS's shrinks. This is the measurable face of the paper's
//! §VI applicability limitation.
//!
//! Not part of the paper's published Table II, but promoted into
//! `App::ALL` (with [`crate::heat2d`]) for workload breadth: the linter,
//! sanitizer and bench matrix cover it in CI.

use acc_kernel_ir::{Buffer, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The OpenACC source of the SPMV benchmark.
pub const SOURCE: &str = r#"
void spmv(int nrows, int ncols, int nnz,
          int *row_ptr, int *col_idx, double *vals, double *x, double *y) {
#pragma acc data copyin(row_ptr[0:nrows+1], col_idx[0:nnz], vals[0:nnz], x[0:ncols]) copyout(y[0:nrows])
{
#pragma acc localaccess(row_ptr) stride(1) right(1)
#pragma acc localaccess(y) stride(1)
#pragma acc parallel loop
  for (int i = 0; i < nrows; i++) {
    double s = 0.0;
    for (int k = row_ptr[i]; k < row_ptr[i+1]; k++) {
      s += vals[k] * x[col_idx[k]];
    }
    y[i] = s;
  }
}
}
"#;

/// Entry function name.
pub const FUNCTION: &str = "spmv";

/// Workload configuration: a banded-plus-random sparse matrix.
#[derive(Debug, Clone)]
pub struct SpmvConfig {
    pub nrows: usize,
    pub ncols: usize,
    /// Nonzeros per row (band neighbors + random fill).
    pub nnz_per_row: usize,
}

impl SpmvConfig {
    /// A plate large enough that replication costs are visible.
    pub fn scaled() -> SpmvConfig {
        SpmvConfig {
            nrows: 100_000,
            ncols: 100_000,
            nnz_per_row: 24,
        }
    }

    /// A reduced size for unit tests.
    pub fn small() -> SpmvConfig {
        SpmvConfig {
            nrows: 500,
            ncols: 500,
            nnz_per_row: 8,
        }
    }
}

/// Generated CSR matrix and input vector.
#[derive(Debug, Clone)]
pub struct SpmvInput {
    pub cfg: SpmvConfig,
    pub row_ptr: Vec<i32>,
    pub col_idx: Vec<i32>,
    pub vals: Vec<f64>,
    pub x: Vec<f64>,
}

/// Generate: half the nonzeros sit in a diagonal band (cache-friendly),
/// half scatter randomly (the gather workload SpMV is known for).
pub fn generate(cfg: &SpmvConfig, seed: u64) -> SpmvInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(cfg.nrows + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0i32);
    for i in 0..cfg.nrows {
        let band = cfg.nnz_per_row / 2;
        let mut cols: Vec<usize> = (0..band)
            .map(|b| (i + b).min(cfg.ncols - 1))
            .collect();
        for _ in band..cfg.nnz_per_row {
            cols.push(rng.gen_range(0..cfg.ncols));
        }
        cols.sort_unstable();
        cols.dedup();
        for c in cols {
            col_idx.push(c as i32);
            vals.push(rng.gen_range(-1.0..1.0));
        }
        row_ptr.push(col_idx.len() as i32);
    }
    let x: Vec<f64> = (0..cfg.ncols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    SpmvInput {
        cfg: cfg.clone(),
        row_ptr,
        col_idx,
        vals,
        x,
    }
}

/// Program inputs `(scalars, arrays)` in parameter order.
pub fn inputs(input: &SpmvInput) -> (Vec<Value>, Vec<Buffer>) {
    (
        vec![
            Value::I32(input.cfg.nrows as i32),
            Value::I32(input.cfg.ncols as i32),
            Value::I32(input.col_idx.len() as i32),
        ],
        vec![
            Buffer::from_i32(&input.row_ptr),
            Buffer::from_i32(&input.col_idx),
            Buffer::from_f64(&input.vals),
            Buffer::from_f64(&input.x),
            Buffer::zeroed(acc_kernel_ir::Ty::F64, input.cfg.nrows),
        ],
    )
}

/// Index of the result vector `y`.
pub const Y_ARRAY: usize = 4;

/// Pure-Rust oracle.
pub fn reference(input: &SpmvInput) -> Vec<f64> {
    let mut y = vec![0.0f64; input.cfg.nrows];
    for (i, yi) in y.iter_mut().enumerate() {
        let mut s = 0.0;
        for k in input.row_ptr[i] as usize..input.row_ptr[i + 1] as usize {
            s += input.vals[k] * input.x[input.col_idx[k] as usize];
        }
        *yi = s;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_compiler::{compile_source, CompileOptions, Placement};
    use acc_gpusim::Machine;
    use acc_runtime::{run_program, ExecConfig};

    #[test]
    fn csr_placements_show_the_limitation() {
        let prog = compile_source(SOURCE, FUNCTION, &CompileOptions::proposal()).unwrap();
        let k = &prog.kernels[0];
        let placement = |n: &str| {
            k.configs
                .iter()
                .find(|c| c.name == n)
                .unwrap()
                .placement
                .clone()
        };
        // The small index/result arrays distribute...
        assert_eq!(placement("row_ptr"), Placement::Distributed);
        assert_eq!(placement("y"), Placement::Distributed);
        // ...but CSR's payload cannot be described by 1-D localaccess.
        assert_eq!(placement("col_idx"), Placement::Replicated);
        assert_eq!(placement("vals"), Placement::Replicated);
        assert_eq!(placement("x"), Placement::Replicated);
        // y writes are provably local.
        assert!(k.configs.iter().find(|c| c.name == "y").unwrap().miss_check_elided);
    }

    #[test]
    fn matches_oracle_on_1_2_3_gpus() {
        let input = generate(&SpmvConfig::small(), 5);
        let expect = reference(&input);
        let prog = compile_source(SOURCE, FUNCTION, &CompileOptions::proposal()).unwrap();
        for ngpus in 1..=3 {
            let mut m = Machine::supercomputer_node();
            let (scalars, arrays) = inputs(&input);
            let r = run_program(&mut m, &ExecConfig::gpus(ngpus), &prog, scalars, arrays)
                .unwrap();
            let got = r.arrays[Y_ARRAY].to_f64_vec();
            let err = got
                .iter()
                .zip(&expect)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-12, "ngpus={ngpus} err={err}");
        }
    }

    #[test]
    fn replication_keeps_per_gpu_memory_flat() {
        // The quantified §VI limitation: CSR's payload replicates, so the
        // summed footprint nearly doubles on 2 GPUs (unlike BFS's edge
        // list, which splits).
        let input = generate(&SpmvConfig::small(), 5);
        let prog = compile_source(SOURCE, FUNCTION, &CompileOptions::proposal()).unwrap();
        let user_total = |ngpus: usize| {
            let mut m = Machine::supercomputer_node();
            let (scalars, arrays) = inputs(&input);
            let r = run_program(&mut m, &ExecConfig::gpus(ngpus), &prog, scalars, arrays)
                .unwrap();
            r.mem.iter().map(|g| g.user_peak).sum::<u64>()
        };
        let one = user_total(1);
        let two = user_total(2);
        assert!(
            two as f64 > 1.7 * one as f64,
            "CSR payload should replicate: {one} -> {two}"
        );
    }

    #[test]
    fn generator_row_ptr_well_formed() {
        let input = generate(&SpmvConfig::small(), 1);
        assert_eq!(input.row_ptr.len(), input.cfg.nrows + 1);
        assert!(input.row_ptr.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*input.row_ptr.last().unwrap() as usize, input.col_idx.len());
        assert_eq!(input.col_idx.len(), input.vals.len());
        let nc = input.cfg.ncols as i32;
        assert!(input.col_idx.iter().all(|&c| c >= 0 && c < nc));
    }
}
