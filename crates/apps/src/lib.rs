//! # acc-apps — the paper's benchmark applications
//!
//! The evaluation (§V) uses three data-parallel applications chosen for
//! their different inter-GPU communication characteristics (Table II):
//!
//! | App | Source | Pattern | Communication |
//! |---|---|---|---|
//! | MD | SHOC | Lennard-Jones with neighbor lists | none |
//! | KMEANS | Rodinia | clustering, kddcup-shaped input | small (array reduction) |
//! | BFS | SHOC | level-synchronous graph traversal | heavy (irregular writes) |
//!
//! Each module provides the OpenACC mini-C source (with the paper's
//! `localaccess` / `reductiontoarray` extension directives), a seeded
//! synthetic workload generator reproducing the published input *shape*
//! (the original Rodinia/SHOC input files are not available here —
//! substitution documented in DESIGN.md), and a pure-Rust reference
//! implementation used as the correctness oracle.
//!
//! [`runner`] maps the paper's program versions (OpenMP, PGI OpenACC,
//! hand-written CUDA, Proposal on 1–3 GPUs) onto compiler options and
//! runtime configurations.

pub mod bfs;
pub mod bfs_skew;
pub mod explain;
pub mod heat2d;
pub mod heat2d_halo2;
pub mod kmeans;
pub mod md;
pub mod pagerank;
pub mod runner;
pub mod spmv;

pub use runner::{
    compile_app, compile_app_on, run_app, run_app_with_config, run_app_with_engine, run_compiled,
    App, AppError, AppResult, Scale, Version,
};
