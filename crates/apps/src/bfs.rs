//! BFS — the SHOC breadth-first-search benchmark (Table II row 3).
//!
//! Level-synchronous BFS formulated edge-centrically so the 1-D
//! `localaccess` extension applies (the paper's prototype only supports
//! 1-D distributions, §VI): one parallel loop over *edges*, relaunched
//! once per level until no vertex changes.
//!
//! * `src`/`dst` (the edge endpoints, ~99% of the footprint) are read at
//!   stride 1 → `localaccess` → distribution placement: this is what lets
//!   multi-GPU runs hold graphs one GPU's memory cannot;
//! * `levels` is read *and written* through vertex indices — fully
//!   irregular on both sides → replica placement with two-level dirty-bit
//!   reconciliation after every level. This all-to-all exchange is the
//!   GPU-GPU traffic that, per the paper, prevents BFS from speeding up
//!   on the supercomputer node (§V-B2: "the time for inter-GPU
//!   communication become\[s\] the performance bottleneck").
//!
//! Hence Table II column D: 2 of 3 arrays carry `localaccess`; C = 10
//! kernel executions (9 productive levels + 1 fixpoint check).
//!
//! The paper's input is a ~444.9 MB SHOC graph (≈1M vertices). We
//! generate a layered random digraph with controllable depth so the
//! kernel-execution count matches, shuffling the edge order so writes
//! scatter across GPU partitions like a real edge list.

use acc_kernel_ir::{Buffer, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The OpenACC source of the BFS benchmark.
pub const SOURCE: &str = r#"
void bfs(int nedges, int nnodes, int maxlevel, int changed,
         int *src, int *dst, int *levels) {
#pragma acc data copyin(src[0:nedges], dst[0:nedges]) copy(levels[0:nnodes])
{
  int level = 0;
  changed = 1;
  while (changed > 0 && level < maxlevel) {
    changed = 0;
#pragma acc localaccess(src) stride(1)
#pragma acc localaccess(dst) stride(1)
#pragma acc parallel loop reduction(+:changed)
    for (int e = 0; e < nedges; e++) {
      int u = src[e];
      if (levels[u] == level) {
        int v = dst[e];
        if (levels[v] < 0) {
          levels[v] = level + 1;
          changed += 1;
        }
      }
    }
    level = level + 1;
  }
}
}
"#;

/// Entry function name.
pub const FUNCTION: &str = "bfs";

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct BfsConfig {
    /// Vertices per layer (layer 0 is the single root).
    pub layer_width: usize,
    /// Number of layers below the root; BFS depth = `depth`, so the host
    /// loop launches `depth + 1` kernels (last one finds no change).
    pub depth: usize,
    /// Outgoing edges per vertex (to random vertices of the next layer).
    pub out_degree: usize,
    /// Kernel-launch cap (paper C = 10).
    pub maxlevel: usize,
}

impl BfsConfig {
    /// The paper's shape scaled to the full ~55M-edge footprint
    /// (~444.9 MB of device data), 10 kernel executions.
    pub fn paper() -> BfsConfig {
        BfsConfig {
            layer_width: 122_000,
            depth: 9,
            out_degree: 50,
            maxlevel: 20,
        }
    }

    /// A 1/16-scale input with identical structure, for the default
    /// benchmark harness runs.
    pub fn scaled() -> BfsConfig {
        BfsConfig {
            layer_width: 7_625,
            depth: 9,
            out_degree: 50,
            maxlevel: 20,
        }
    }

    /// A reduced size for unit tests.
    pub fn small() -> BfsConfig {
        BfsConfig {
            layer_width: 120,
            depth: 6,
            out_degree: 6,
            maxlevel: 20,
        }
    }

    /// Total vertex count.
    pub fn nnodes(&self) -> usize {
        1 + self.layer_width * self.depth
    }

    /// Total edge count.
    pub fn nedges(&self) -> usize {
        // Root fans out to the whole first layer; every other vertex has
        // `out_degree` edges (the last layer's point back upward, keeping
        // per-edge work uniform without extending the depth).
        self.layer_width + self.layer_width * self.depth * self.out_degree
    }
}

/// Generated graph.
#[derive(Debug, Clone)]
pub struct BfsInput {
    pub cfg: BfsConfig,
    pub src: Vec<i32>,
    pub dst: Vec<i32>,
    /// Initial levels: root 0, everything else -1.
    pub levels: Vec<i32>,
}

/// Generate the layered digraph. Vertex ids are shuffled and the edge
/// list is shuffled, so partition-crossing writes are the common case.
pub fn generate(cfg: &BfsConfig, seed: u64) -> BfsInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.nnodes();
    // Random permutation of vertex ids (vertex 0 stays the root so the
    // host initialisation is trivial).
    let mut perm: Vec<i32> = (1..n as i32).collect();
    perm.shuffle(&mut rng);
    perm.insert(0, 0);
    let vid = |layer: usize, i: usize| -> i32 {
        if layer == 0 {
            0
        } else {
            perm[1 + (layer - 1) * cfg.layer_width + i]
        }
    };

    let mut src = Vec::with_capacity(cfg.nedges());
    let mut dst = Vec::with_capacity(cfg.nedges());
    // Root → every vertex of layer 1.
    for i in 0..cfg.layer_width {
        src.push(0);
        dst.push(vid(1, i));
    }
    // Layer l → layer l+1. One "coverage" edge per target vertex (so every
    // vertex is discovered exactly at its layer's level — the paper's C
    // column depends on the BFS depth being exact), plus random edges up
    // to the configured degree. The last layer's edges point back to
    // random earlier vertices: they are scanned every level but never
    // discover anything, like the cross/back edges of a real graph.
    for l in 1..=cfg.depth {
        if l < cfg.depth {
            for i in 0..cfg.layer_width {
                src.push(vid(l, rng.gen_range(0..cfg.layer_width)));
                dst.push(vid(l + 1, i));
            }
        }
        let extra = if l < cfg.depth {
            cfg.out_degree - 1
        } else {
            cfg.out_degree
        };
        for i in 0..cfg.layer_width {
            for _ in 0..extra {
                let tl = if l < cfg.depth {
                    l + 1
                } else {
                    rng.gen_range(1..=cfg.depth)
                };
                src.push(vid(l, i));
                dst.push(vid(tl, rng.gen_range(0..cfg.layer_width)));
            }
        }
    }
    // Shuffle edges together.
    let mut order: Vec<usize> = (0..src.len()).collect();
    order.shuffle(&mut rng);
    let src = order.iter().map(|&i| src[i]).collect();
    let dst = order.iter().map(|&i| dst[i]).collect();

    let mut levels = vec![-1i32; n];
    levels[0] = 0;
    BfsInput {
        cfg: cfg.clone(),
        src,
        dst,
        levels,
    }
}

/// Program inputs `(scalars, arrays)` in parameter order.
pub fn inputs(input: &BfsInput) -> (Vec<Value>, Vec<Buffer>) {
    let cfg = &input.cfg;
    (
        vec![
            Value::I32(input.src.len() as i32),
            Value::I32(cfg.nnodes() as i32),
            Value::I32(cfg.maxlevel as i32),
            Value::I32(0),
        ],
        vec![
            Buffer::from_i32(&input.src),
            Buffer::from_i32(&input.dst),
            Buffer::from_i32(&input.levels),
        ],
    )
}

/// Index of the `levels` output array.
pub const LEVELS_ARRAY: usize = 2;

/// Pure-Rust oracle: sequential level-synchronous BFS over the edge list.
pub fn reference(input: &BfsInput) -> Vec<i32> {
    let mut levels = input.levels.clone();
    let mut level = 0i32;
    loop {
        let mut changed = false;
        for e in 0..input.src.len() {
            let u = input.src[e] as usize;
            if levels[u] == level {
                let v = input.dst[e] as usize;
                if levels[v] < 0 {
                    levels[v] = level + 1;
                    changed = true;
                }
            }
        }
        level += 1;
        if !changed || level >= input.cfg.maxlevel as i32 {
            break;
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let cfg = BfsConfig::paper();
        // ~444.9 MB: src + dst + levels.
        let bytes = cfg.nedges() * 8 + cfg.nnodes() * 4;
        let mb = bytes as f64 / 1e6;
        assert!((400.0..480.0).contains(&mb), "footprint {mb} MB");
        // 10 kernel executions: depth 9 → launches 1..=10.
        assert_eq!(cfg.depth + 1, 10);
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = BfsConfig::small();
        let a = generate(&cfg, 5);
        let b = generate(&cfg, 5);
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
    }

    #[test]
    fn graph_is_well_formed() {
        let cfg = BfsConfig::small();
        let g = generate(&cfg, 1);
        let n = cfg.nnodes() as i32;
        assert_eq!(g.src.len(), cfg.nedges());
        assert_eq!(g.dst.len(), g.src.len());
        assert!(g.src.iter().all(|&v| v >= 0 && v < n));
        assert!(g.dst.iter().all(|&v| v >= 0 && v < n));
        assert_eq!(g.levels[0], 0);
        assert!(g.levels[1..].iter().all(|&l| l == -1));
    }

    #[test]
    fn reference_reaches_every_layer_at_its_depth() {
        let cfg = BfsConfig::small();
        let g = generate(&cfg, 2);
        let levels = reference(&g);
        // Every vertex reached, with the maximum level equal to depth.
        assert!(levels.iter().all(|&l| l >= 0));
        assert_eq!(*levels.iter().max().unwrap() as usize, cfg.depth);
    }
}
