//! HEAT2D-HALO2 — an *in-place* vertical diffusion sweep with a
//! distance-2 carried dependence, the showcase workload for the
//! distance/direction-vector analysis ([`acc_compiler::depend`]) and the
//! wavefront schedule it licenses.
//!
//! Each row update reads two rows above and one row below **the array it
//! writes**:
//!
//! ```text
//! u[i] = 0.25 * (u[i-2] + u[i-1] + u[i] + u[i+1])        (per column)
//! ```
//!
//! so the parallel loop carries flow dependences of distance +1 and +2
//! (reads of rows already rewritten this sweep) and an anti dependence of
//! distance -1 (a read of a row not yet rewritten). The dependence pass
//! folds those into `CarriedLocal { distance: Bounded { lo: -1, hi: 2 } }`,
//! and because the declared halo `left(2*cols) right(cols)` covers the
//! whole interval, the lint *downgrades* the pessimistic `ACC-W006` to the
//! informational `ACC-I003`: the carried dependence is provably local to
//! the halo, so the launch is legal under [`acc_runtime::Schedule::Wavefront`]
//! — GPUs run in partition order, each fed the freshly written left-halo
//! rows of its predecessors — and the distributed result is bit-identical
//! to the sequential sweep on any GPU count (which the tests verify).
//!
//! A plain [`acc_runtime::Schedule::Equal`] launch on 2+ GPUs computes
//! something else (stale left halos — a Jacobi/Gauss-Seidel hybrid); the
//! negative-control test pins that divergence down, demonstrating *why*
//! the wavefront license matters.

use acc_kernel_ir::{Buffer, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The OpenACC source: one in-place deep-stencil sweep per iteration.
/// Rows 0, 1 and rows-1 are fixed boundary rows.
pub const SOURCE: &str = r#"
void heat2d_halo2(int rows, int cols, int iters, double *u) {
#pragma acc data copy(u[0:rows*cols])
{
  int t = 0;
  while (t < iters) {
#pragma acc localaccess(u) stride(cols) left(2*cols) right(cols)
#pragma acc parallel loop
    for (int i = 0; i < rows; i++) {
      for (int j = 0; j < cols; j++) {
        if (i > 1) {
          if (i < rows - 1) {
            u[i*cols + j] = 0.25 * (u[(i-2)*cols + j] + u[(i-1)*cols + j]
                                    + u[i*cols + j] + u[(i+1)*cols + j]);
          }
        }
      }
    }
    t = t + 1;
  }
}
}
"#;

/// Entry function name.
pub const FUNCTION: &str = "heat2d_halo2";

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct Halo2Config {
    pub rows: usize,
    pub cols: usize,
    /// Outer iterations (each is one in-place sweep → one kernel launch).
    pub iters: usize,
}

impl Halo2Config {
    /// A plate large enough that the wavefront pipeline shape is visible.
    pub fn scaled() -> Halo2Config {
        Halo2Config {
            rows: 1024,
            cols: 1024,
            iters: 10,
        }
    }

    /// A reduced size for unit tests.
    pub fn small() -> Halo2Config {
        Halo2Config {
            rows: 48,
            cols: 32,
            iters: 3,
        }
    }

    /// Total cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

/// Generated input plate.
#[derive(Debug, Clone)]
pub struct Halo2Input {
    pub cfg: Halo2Config,
    pub plate: Vec<f64>,
}

/// Random hot spots on a cold plate.
pub fn generate(cfg: &Halo2Config, seed: u64) -> Halo2Input {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plate = vec![0.0f64; cfg.cells()];
    for _ in 0..(cfg.cells() / 64).max(1) {
        let i = rng.gen_range(0..cfg.rows);
        let j = rng.gen_range(0..cfg.cols);
        plate[i * cfg.cols + j] = rng.gen_range(100.0..1000.0);
    }
    Halo2Input {
        cfg: cfg.clone(),
        plate,
    }
}

/// Program inputs `(scalars, arrays)` in parameter order.
pub fn inputs(input: &Halo2Input) -> (Vec<Value>, Vec<Buffer>) {
    let cfg = &input.cfg;
    (
        vec![
            Value::I32(cfg.rows as i32),
            Value::I32(cfg.cols as i32),
            Value::I32(cfg.iters as i32),
        ],
        vec![Buffer::from_f64(&input.plate)],
    )
}

/// Index of the result array (`u`).
pub const PLATE_ARRAY: usize = 0;

/// Pure-Rust oracle: the *sequential* in-place sweep, ascending rows.
/// This is the semantics the wavefront schedule must reproduce exactly.
pub fn reference(input: &Halo2Input) -> Vec<f64> {
    let cfg = &input.cfg;
    let (rows, cols) = (cfg.rows, cfg.cols);
    let mut u = input.plate.clone();
    for _ in 0..cfg.iters {
        for i in 2..rows.saturating_sub(1) {
            for j in 0..cols {
                u[i * cols + j] = 0.25
                    * (u[(i - 2) * cols + j]
                        + u[(i - 1) * cols + j]
                        + u[i * cols + j]
                        + u[(i + 1) * cols + j]);
            }
        }
    }
    u
}

/// Maximum absolute element difference against the oracle.
pub fn max_error(got: &[f64], reference: &[f64]) -> f64 {
    got.iter()
        .zip(reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_compiler::{
        compile_source, lint_source, CompileOptions, DependVerdict, Distance, Placement,
    };
    use acc_gpusim::Machine;
    use acc_runtime::{run_program, ExecConfig, SanitizeLevel, Schedule};

    fn compiled() -> acc_compiler::CompiledProgram {
        compile_source(SOURCE, FUNCTION, &CompileOptions::proposal()).unwrap()
    }

    #[test]
    fn deep_carried_dependence_downgrades_to_info() {
        // The only diagnostic is the ACC-I003 downgrade: the carried
        // dependence interval [-1, 2] fits the declared (2, 1) halo, so
        // no ACC-W006 (and no ACC-W003 — the reads fit the window too).
        let codes: Vec<_> = lint_source(SOURCE)
            .unwrap()
            .iter()
            .filter_map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["ACC-I003"]);

        let prog = compiled();
        assert_eq!(prog.kernels.len(), 1);
        let cfg = &prog.kernels[0].configs[0];
        assert_eq!(cfg.placement, Placement::Distributed);
        assert_eq!(
            cfg.lint.verdict,
            DependVerdict::CarriedLocal {
                distance: Distance::Bounded { lo: -1, hi: 2 }
            }
        );
        assert_eq!(cfg.lint.halo_windows, (2, 1));
        assert_eq!(cfg.lint.window_violations, 0);
        // The in-place store is still proved partition-local.
        assert!(cfg.miss_check_elided);
        // And the program is wavefront-eligible.
        assert!(acc_compiler::wavefront_eligible(&prog.kernels[0]));
    }

    #[test]
    fn wavefront_is_bit_identical_to_sequential_sweep() {
        let cfg = Halo2Config::small();
        let input = generate(&cfg, 9);
        let expect = reference(&input);
        let prog = compiled();
        for ngpus in 1..=3 {
            let mut m = Machine::supercomputer_node();
            let (scalars, arrays) = inputs(&input);
            let ecfg = ExecConfig::gpus(ngpus).schedule(Schedule::Wavefront);
            let r = run_program(&mut m, &ecfg, &prog, scalars, arrays).unwrap();
            // Bit-identical, not approximately equal: the wavefront feeds
            // each GPU the freshly written left-halo rows in partition
            // order, reproducing the sequential sweep exactly.
            assert_eq!(
                r.arrays[PLATE_ARRAY].to_f64_vec(),
                expect,
                "ngpus={ngpus}"
            );
            if ngpus > 1 {
                assert!(r.trace.counters().wavefront_rounds > 0, "ngpus={ngpus}");
            }
        }
    }

    #[test]
    fn equal_schedule_diverges_without_the_wavefront_feed() {
        // Negative control: put heat on the last row of GPU 0's block so
        // GPU 1's first row provably reads a stale left halo under a
        // plain equal-partition launch.
        let cfg = Halo2Config::small();
        let mut input = generate(&cfg, 0);
        input.plate = vec![0.0; cfg.cells()];
        let boundary = cfg.rows / 2; // first row of GPU 1's block at 2 GPUs
        input.plate[(boundary - 1) * cfg.cols] = 500.0;
        let expect = reference(&input);
        let prog = compiled();

        let run = |schedule| {
            let mut m = Machine::supercomputer_node();
            let (scalars, arrays) = inputs(&input);
            let ecfg = ExecConfig::gpus(2).schedule(schedule);
            run_program(&mut m, &ecfg, &prog, scalars, arrays)
                .unwrap()
                .arrays[PLATE_ARRAY]
                .to_f64_vec()
        };
        assert_eq!(run(Schedule::Wavefront), expect);
        assert_ne!(run(Schedule::Equal), expect);
    }

    #[test]
    fn fully_sanitized_wavefront_confirms_the_carried_claim() {
        // Full sanitize audits every load against the claimed carried
        // window [-left, stride + right): the honest distance interval
        // produces zero violations on 1..3 GPUs.
        let cfg = Halo2Config::small();
        let input = generate(&cfg, 7);
        let expect = reference(&input);
        let prog = compiled();
        for ngpus in 1..=3 {
            let mut m = Machine::supercomputer_node();
            let (scalars, arrays) = inputs(&input);
            let ecfg = ExecConfig::gpus(ngpus)
                .schedule(Schedule::Wavefront)
                .sanitize(SanitizeLevel::Full);
            let r = run_program(&mut m, &ecfg, &prog, scalars, arrays).unwrap();
            assert_eq!(r.trace.counters().sanitize_violations, 0, "ngpus={ngpus}");
            assert_eq!(r.arrays[PLATE_ARRAY].to_f64_vec(), expect, "ngpus={ngpus}");
        }
    }

    #[test]
    fn wavefront_feed_generates_p2p_traffic() {
        let cfg = Halo2Config::small();
        let input = generate(&cfg, 9);
        let prog = compiled();
        let mut m = Machine::supercomputer_node();
        let (scalars, arrays) = inputs(&input);
        let ecfg = ExecConfig::gpus(3).schedule(Schedule::Wavefront);
        let r = run_program(&mut m, &ecfg, &prog, scalars, arrays).unwrap();
        // Two left-halo rows re-fed per downstream GPU per sweep.
        assert!(r.profile.p2p_bytes > 0);
        assert_eq!(
            r.trace.counters().wavefront_rounds,
            (cfg.iters * 3) as u64,
            "one round per GPU per sweep"
        );
    }
}
