//! Long-form explanations for every stable `ACC-XNNN` diagnostic code
//! the toolchain can emit, behind `acc-lint --explain`.
//!
//! One entry per code, across all five families: `E` (frontend errors),
//! `W` (lint warnings), `I` (inference suggestions), `R` (runtime
//! errors), `S` (acc-serve errors). The exhaustiveness test at the
//! bottom greps the whole workspace for emitted codes and fails if any
//! lacks an entry here — adding a diagnostic without explain text is a
//! CI failure, not a doc debt.

/// Every code [`explain`] covers, in rendered order.
pub const KNOWN_CODES: &[&str] = &[
    "ACC-E001", "ACC-E002", // frontend
    "ACC-W001", "ACC-W002", "ACC-W003", "ACC-W004", "ACC-W005", "ACC-W006", // lint
    "ACC-I001", "ACC-I002", "ACC-I003", // inference & analysis info
    "ACC-R001", "ACC-R002", "ACC-R003", "ACC-R004", "ACC-R005", "ACC-R006",
    "ACC-R007", "ACC-R008", "ACC-R009", "ACC-R010", "ACC-R011",
    "ACC-R012", // runtime
    "ACC-S001", "ACC-S002", "ACC-S003", "ACC-S004", "ACC-S005", "ACC-S006",
    "ACC-S007", // acc-serve
];

/// The long-form description for a stable diagnostic code: what it
/// means, an example that triggers it, and how to fix it. `None` for
/// codes the toolchain does not emit.
pub fn explain(code: &str) -> Option<&'static str> {
    Some(match code.to_ascii_uppercase().as_str() {
        "ACC-E001" => {
            "ACC-E001: non-positive localaccess stride\n\
             \n\
             The declared per-iteration read window of `localaccess(a) stride(s)\n\
             left(l) right(r)` is [s*i - l, s*(i+1) - 1 + r]. A stride below 1\n\
             makes the window degenerate: the data loader would allocate nothing\n\
             (or walk backwards) for every GPU partition.\n\
             \n\
             Example:\n\
             \x20   #pragma acc localaccess(x) stride(0)     // error\n\
             \n\
             Fix: declare the true per-iteration advance of the densest access,\n\
             e.g. `stride(1)` for x[i] or `stride(3)` for x[3*i+2]. Runtime-\n\
             valued strides are re-validated at launch time instead."
        }
        "ACC-E002" => {
            "ACC-E002: negative localaccess left/right extent\n\
             \n\
             `left` and `right` widen the per-iteration window by a constant\n\
             halo on each side; negative values would shrink it below the\n\
             stride span and cannot describe any real access pattern.\n\
             \n\
             Example:\n\
             \x20   #pragma acc localaccess(h) stride(1) left(-1)   // error\n\
             \n\
             Fix: use non-negative halo extents, e.g. `left(1) right(1)` for a\n\
             3-point stencil reading h[i-1], h[i], h[i+1]."
        }
        "ACC-W001" => {
            "ACC-W001: overlapping stores to a replicated array\n\
             \n\
             A kernel stores thread-dependent values at indices that several\n\
             threads (and therefore several GPUs) can overlap — a broadcast\n\
             like a[0] = v or an irregular a[idx[i]] = v. With the array\n\
             replicated on multiple GPUs, replica reconciliation order decides\n\
             which GPU's value survives; results can differ from single-GPU\n\
             execution.\n\
             \n\
             Example:\n\
             \x20   for (i...) { y[idx[i]] = f(i); }   // two i may share idx[i]\n\
             \n\
             Fix: make the written index injective in i (then `localaccess`\n\
             distributes the array), or express the update as a reduction with\n\
             `reductiontoarray`."
        }
        "ACC-W002" => {
            "ACC-W002: read-modify-write without reductiontoarray\n\
             \n\
             The kernel accumulates into an array element at an overlapping\n\
             index (a[k] = a[k] + v, a[k] += v, ...). Each GPU updates its own\n\
             replica, and plain replica reconciliation then *overwrites* rather\n\
             than *merges* — every GPU's partial sums but one are lost.\n\
             \n\
             Example:\n\
             \x20   for (i...) { bins[keys[i]] += w[i]; }\n\
             \n\
             Fix: annotate the accumulation site:\n\
             \x20   #pragma acc reductiontoarray(+: bins[k])\n\
             so the runtime gives each GPU a private identity-filled copy and\n\
             merges them with the declared operator after the launch."
        }
        "ACC-W003" => {
            "ACC-W003: declared localaccess window narrower than the access\n\
             \n\
             The interval analysis bounded the kernel's actual per-iteration\n\
             read range of the array, and the declared `localaccess` window is\n\
             provably narrower. The data loader sizes each GPU's partition from\n\
             the declaration, so it will under-allocate and the kernel will\n\
             fault (or the sanitizer will reject the loads).\n\
             \n\
             Example:\n\
             \x20   #pragma acc localaccess(h) stride(1)        // no halo...\n\
             \x20   for (i...) out[i] = h[i-1] + h[i] + h[i+1]; // ...but reads one\n\
             \n\
             Fix: widen the annotation to cover the true range, here\n\
             `stride(1) left(1) right(1)` — or delete it and let `--infer`\n\
             derive the exact window (see ACC-I001)."
        }
        "ACC-W004" => {
            "ACC-W004: host reads a stale replica\n\
             \n\
             Host code reads an array that a prior kernel wrote on the device,\n\
             with no intervening `update host(...)` and no flushing data-region\n\
             exit. The host silently observes pre-kernel data.\n\
             \n\
             Example:\n\
             \x20   #pragma acc parallel loop  // writes x on the GPUs\n\
             \x20   ...\n\
             \x20   s = x[0];                  // host read inside the region\n\
             \n\
             Fix: insert `#pragma acc update host(x[0:n])` before the host\n\
             read, or move the read past the data-region exit that copies the\n\
             array out."
        }
        "ACC-W005" => {
            "ACC-W005: cross-GPU race on a distributed array\n\
             \n\
             The dependence analysis *proved* that two distinct iterations of\n\
             the loop write the same element of this distributed array with\n\
             values that can differ — not a heuristic overlap smell (that is\n\
             ACC-W001) but a definite write-write race. Under distribution the\n\
             surviving value depends on which GPU's partition ran the\n\
             conflicting iteration and on reconciliation order; the program's\n\
             result is partition-dependent.\n\
             \n\
             Example:\n\
             \x20   #pragma acc localaccess(y) stride(1)\n\
             \x20   for (i...) { y[i] = v[i]; y[0] = v[i]; }  // all i fight over y[0]\n\
             \n\
             Fix: restructure so each element has one writer (or one\n\
             thread-invariant value), or express the conflicting update as a\n\
             `reductiontoarray` if it is an accumulation. The static verdict is\n\
             cross-validated dynamically: under fault injection the same\n\
             conflict reproduces as a SanitizeLevel::Full violation (ACC-R008)."
        }
        "ACC-W006" => {
            "ACC-W006: loop-carried dependence across the distributed iteration space\n\
             \n\
             The dependence analysis proved that some iteration *reads* an\n\
             element another iteration *writes* (e.g. y[i] = y[i-1] + c). The\n\
             parallel loop's iterations are distributed over GPUs and run in\n\
             no defined order, so the read may observe the old or the new\n\
             value — the sequential loop's semantics are not preserved, on any\n\
             GPU count.\n\
             \n\
             Example:\n\
             \x20   #pragma acc localaccess(y) stride(1) left(1)\n\
             \x20   for (i...) y[i] = y[i-1] + 1.0;   // reads the previous iteration's write\n\
             \n\
             Fix: restructure the algorithm (e.g. double-buffer: read from the\n\
             previous time-step's array, write the next), or keep the loop\n\
             sequential on the host. When the distance analysis *bounds* the\n\
             carried distance, the message reports how far the declared halo\n\
             falls short — widening the `localaccess` halo to cover the whole\n\
             distance interval downgrades this warning to ACC-I003 and\n\
             licenses the wavefront schedule."
        }
        "ACC-I001" => {
            "ACC-I001: localaccess annotation is inferable\n\
             \n\
             (Reported only under --infer.) The whole-program dataflow analysis\n\
             bounded every access of this unannotated array by an affine window\n\
             stride*i + [-left, stride-1+right], so a sound `localaccess`\n\
             annotation exists. Without it the array is *replicated* on every\n\
             GPU: full-size allocations, full loads, and dirty-bit replica\n\
             syncs after every writing launch. The diagnostic message carries\n\
             the exact machine-applyable pragma.\n\
             \n\
             Example:\n\
             \x20   for (i...) y[i] = a*x[i] + y[i];  // unannotated x, y\n\
             \x20   → add `#pragma acc localaccess(x) stride(1)` (and for y)\n\
             \n\
             Fix: paste the suggested pragma above the loop, or compile with\n\
             inference enabled (`CompileOptions::infer_localaccess`) to have\n\
             the compiler consume the derived annotation automatically; the\n\
             run is bit-identical to the hand-annotated program."
        }
        "ACC-I002" => {
            "ACC-I002: reductiontoarray annotation is inferable\n\
             \n\
             (Reported only under --infer.) Every store to this array is a\n\
             read-modify-write with one associative operator\n\
             (a[k] = a[k] op v) at indices several iterations can share, and\n\
             the array is not otherwise read in the kernel — exactly the\n\
             pattern the `reductiontoarray` extension exists for. The\n\
             diagnostic message carries the machine-applyable pragma.\n\
             \n\
             Example:\n\
             \x20   for (k...) sum[dst[k]] = sum[dst[k]] + w[k];\n\
             \x20   → add `#pragma acc reductiontoarray(+: sum)`\n\
             \n\
             Fix: paste the suggested pragma above the statement, or compile\n\
             with `CompileOptions::infer_reductions` to have the compiler\n\
             apply the rewrite itself; the inferred compilation is\n\
             bit-identical to the hand-annotated one (same IR, same results,\n\
             same simulated time)."
        }
        "ACC-I003" => {
            "ACC-I003: loop-carried dependence proved local to the halo\n\
             \n\
             The distance/direction-vector analysis bounded every carried\n\
             dependence on this array to a constant interval of stride\n\
             windows, and the declared `localaccess` halo covers the whole\n\
             interval: every cross-iteration value a GPU needs already lands\n\
             in its halo exchange. The dependence is real — a plain\n\
             equal-partition launch still reads stale halos — but it is no\n\
             longer grounds to refuse distribution: Schedule::Wavefront runs\n\
             the GPUs in partition order, feeding each one the freshly\n\
             written left-halo rows of its predecessors, and reproduces the\n\
             sequential loop bit-for-bit on any GPU count. The diagnostic\n\
             message carries the proved distance and the licensing pragma.\n\
             \n\
             Example:\n\
             \x20   #pragma acc localaccess(u) stride(cols) left(2*cols) right(cols)\n\
             \x20   for (i...) u[i*cols+j] = f(u[(i-2)*cols+j], ..., u[(i+1)*cols+j]);\n\
             \n\
             This is informational: nothing to fix. SanitizeLevel::Full\n\
             cross-validates the claimed distance at runtime (see ACC-R012)."
        }
        "ACC-R001" => {
            "ACC-R001: kernel or host interpretation failed\n\
             \n\
             The simulated execution hit a hard fault: out-of-bounds access,\n\
             division by zero, an unmapped buffer, or a malformed kernel. On a\n\
             distributed array this is typically a read or write outside the\n\
             GPU's resident window — the annotation promised locality the\n\
             program does not have.\n\
             \n\
             Fix: check the `localaccess` declarations against the kernel's\n\
             real footprint (run with SanitizeLevel::Full for a precise\n\
             attribution first), and the input sizes against the data clauses."
        }
        "ACC-R002" => {
            "ACC-R002: device memory error\n\
             \n\
             A simulated GPU ran out of memory (or an allocation was misused).\n\
             Replicated arrays are the usual cause: every GPU holds the full\n\
             array. Distributing large read-mostly arrays with `localaccess`\n\
             shrinks per-GPU footprints.\n\
             \n\
             Fix: add `localaccess` to the big arrays (check `acc-lint\n\
             --infer` for inferable windows), or run on more GPUs."
        }
        "ACC-R003" => {
            "ACC-R003: bad inputs\n\
             \n\
             The number or type of scalar/array inputs does not match the\n\
             compiled program's parameter list.\n\
             \n\
             Fix: pass inputs in declaration order with matching element\n\
             types; check the program's `scalar_params`/`array_params`."
        }
        "ACC-R004" => {
            "ACC-R004: invalid localaccess parameter at launch\n\
             \n\
             A `localaccess` stride/left/right expression evaluated to an\n\
             invalid value (stride < 1, negative halo) for this launch's\n\
             scalar arguments. The static check (ACC-E001/E002) can only\n\
             validate constants; runtime-valued parameters are validated here.\n\
             \n\
             Fix: guard the launch against degenerate sizes, or fix the\n\
             expression."
        }
        "ACC-R005" => {
            "ACC-R005: write-miss outside every GPU's window\n\
             \n\
             A store to a distributed array missed the executing GPU's\n\
             partition *and* the miss-replay found no GPU whose resident\n\
             window covers the element — the buffered write has no owner to\n\
             land on.\n\
             \n\
             Fix: the declared windows under-cover the written range; widen\n\
             the `localaccess` halos or leave the array replicated."
        }
        "ACC-R006" => {
            "ACC-R006: present() array is not device-resident\n\
             \n\
             A `present(a)` clause promised `a` was already on the device,\n\
             but no enclosing data region materialized it.\n\
             \n\
             Fix: wrap the region in `#pragma acc data copyin/copy(a[...])`,\n\
             or change `present` to a data-movement clause."
        }
        "ACC-R007" => {
            "ACC-R007: more GPUs requested than the machine has\n\
             \n\
             Fix: lower `ExecConfig::gpus(n)` or pick a machine preset with\n\
             more GPUs (`Machine::supercomputer_node()` has 3)."
        }
        "ACC-R008" => {
            "ACC-R008: runtime sanitizer violation\n\
             \n\
             With SanitizeLevel::Stores/Full, the runtime audited every elided\n\
             store against the owner partition and (at Full) every load of a\n\
             distributed array against its declared `localaccess` window — and\n\
             an access contradicted the static analysis or the annotations.\n\
             The error carries the first violating access (array, thread,\n\
             index, allowed window) and the total violation count.\n\
             \n\
             Fix: the annotation under-declares the true footprint (widen it),\n\
             or the static proof was fault-injected/unsound. Statically, the\n\
             dependence analysis reports definite hazards as ACC-W005/W006."
        }
        "ACC-R009" => {
            "ACC-R009: comm-elision audit failed\n\
             \n\
             SanitizeLevel::Full re-checked a static communication-elision\n\
             fact: a GPU dirtied elements outside the partition the fact\n\
             claimed all its writes stay in. Skipping the replica sync would\n\
             have left observably stale replicas.\n\
             \n\
             Fix: this indicates an unsound (or deliberately fault-injected)\n\
             static dataflow fact — report it; the unsanitized runtime would\n\
             silently compute wrong results."
        }
        "ACC-R010" => {
            "ACC-R010: source-to-IR compilation failed\n\
             \n\
             The frontend or translator rejected the source. The accompanying\n\
             diagnostics (with their own ACC-ENNN codes where stable) carry\n\
             the specifics.\n\
             \n\
             Fix: read the rendered frontend diagnostics; `acc-lint FILE`\n\
             prints them with line/column context."
        }
        "ACC-R011" => {
            "ACC-R011: dependence-proof premise violated\n\
             \n\
             The compiler proved a kernel's indirect accesses disjoint with\n\
             the monotone-window lattice: iteration i touches exactly\n\
             [p[i], p[i+1]) — disjoint across iterations *provided* the bound\n\
             array p (a CSR row_ptr, an offset table) is elementwise\n\
             non-decreasing. That premise cannot be proved statically for\n\
             runtime inputs, so sanitized launches validate it with one linear\n\
             scan — and this input failed: p[idx] > p[idx+1] for the reported\n\
             index.\n\
             \n\
             Fix: the offset array is corrupt or unsorted. Rebuild it (CSR\n\
             construction always yields non-decreasing row_ptr), or drop the\n\
             monotone proof by restructuring the kernel. Running unsanitized\n\
             would risk exactly the cross-GPU races the proof ruled out."
        }
        "ACC-R012" => {
            "ACC-R012: carried-distance audit failed\n\
             \n\
             The compiler proved a loop-carried dependence *local*\n\
             (ACC-I003): every cross-iteration read was claimed to stay\n\
             within a bounded distance of the iteration's own partition —\n\
             the fact that licenses wavefront scheduling and halo-overlapped\n\
             transfers. SanitizeLevel::Full re-checks that claim on every\n\
             load of the array, and this run observed a load *outside* the\n\
             claimed carried window: the distance interval is mislabeled,\n\
             so the wavefront's halo feed cannot cover the dependence and\n\
             distributed results would silently diverge from the sequential\n\
             loop. The launch is refused before any array state leaves the\n\
             devices.\n\
             \n\
             Fix: this indicates an unsound (or deliberately fault-injected)\n\
             distance verdict — report it; re-run with the halo widened to\n\
             the observed distance to confirm, and keep Full sanitize on\n\
             until the verdict is trusted again."
        }
        "ACC-S001" => {
            "ACC-S001: acc-serve job queue at capacity\n\
             \n\
             The daemon's bounded submission queue is full; the job was\n\
             rejected, not dropped.\n\
             \n\
             Fix: back off and resubmit; raise the daemon's queue bound if\n\
             sustained."
        }
        "ACC-S002" => {
            "ACC-S002: acc-serve wait timed out\n\
             \n\
             The client-side wait for a job outcome expired; the job may\n\
             still complete server-side.\n\
             \n\
             Fix: poll the job id again or raise the wait timeout."
        }
        "ACC-S003" => {
            "ACC-S003: malformed acc-serve request\n\
             \n\
             The request frame failed to parse or is missing a required\n\
             field.\n\
             \n\
             Fix: check the protocol version and field spelling against\n\
             `acc-serve`'s protocol docs."
        }
        "ACC-S004" => {
            "ACC-S004: job exceeds the per-job memory budget\n\
             \n\
             Admission control estimated the job's device footprint above the\n\
             daemon's configured budget and refused it up front (rather than\n\
             letting it OOM mid-run, ACC-R002).\n\
             \n\
             Fix: shrink the workload scale, or raise the daemon's budget."
        }
        "ACC-S005" => {
            "ACC-S005: unknown app name\n\
             \n\
             The requested benchmark is not in the daemon's registry\n\
             (`App::ALL`).\n\
             \n\
             Fix: list the registry (md, kmeans, bfs, spmv, heat2d,\n\
             pagerank, heat2d-halo2) and check spelling."
        }
        "ACC-S006" => {
            "ACC-S006: acc-serve is shutting down\n\
             \n\
             The daemon is draining; new submissions are refused while queued\n\
             jobs finish.\n\
             \n\
             Fix: resubmit after restart."
        }
        "ACC-S007" => {
            "ACC-S007: acc-serve socket I/O error\n\
             \n\
             Reading or writing the client connection failed mid-exchange.\n\
             \n\
             Fix: check that the daemon is alive and the socket path/port\n\
             matches; reconnect and resubmit."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_codes_all_have_text_and_are_well_formed() {
        for &c in KNOWN_CODES {
            assert!(acc_minic::diag::is_stable_code(c), "{c} malformed");
            let text = explain(c).unwrap_or_else(|| panic!("{c} has no explain text"));
            assert!(text.starts_with(c), "{c} text must lead with the code");
            assert!(text.contains('\n'), "{c} text suspiciously short");
        }
        // Case-insensitive lookup, and honest rejection of unknowns
        // (the unknown code is assembled at runtime so the workspace
        // scan below doesn't pick up the fixture itself).
        assert!(explain("acc-w001").is_some());
        assert!(explain(&format!("ACC-W{}", 999)).is_none());
        assert!(explain("W001").is_none());
    }

    /// Find every `ACC-[EWISR]NNN` occurrence in a source text.
    fn codes_in(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let b = text.as_bytes();
        let mut i = 0;
        while let Some(at) = text[i..].find("ACC-") {
            let start = i + at;
            i = start + 4;
            let rest = &b[start + 4..];
            if rest.len() >= 4
                && matches!(rest[0], b'E' | b'W' | b'I' | b'R' | b'S')
                && rest[1..4].iter().all(|c| c.is_ascii_digit())
            {
                out.push(text[start..start + 8].to_string());
                i = start + 8;
            }
        }
        out
    }

    /// Every stable code mentioned anywhere in the workspace's Rust
    /// sources — emitted, matched, or documented — must have explain
    /// text. Scans `crates/*/src` recursively, no regex crate needed.
    #[test]
    fn every_workspace_code_has_explain_text() {
        let crates_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .to_path_buf();
        let mut stack = vec![crates_dir];
        let mut seen = std::collections::BTreeSet::new();
        let mut files = 0usize;
        while let Some(dir) = stack.pop() {
            for e in std::fs::read_dir(&dir).unwrap() {
                let path = e.unwrap().path();
                if path.is_dir() {
                    if path.file_name().is_some_and(|n| n == "target") {
                        continue;
                    }
                    stack.push(path);
                } else if path.extension().is_some_and(|x| x == "rs") {
                    files += 1;
                    let text = std::fs::read_to_string(&path).unwrap();
                    seen.extend(codes_in(&text));
                }
            }
        }
        assert!(files > 30, "workspace scan looks wrong ({files} files)");
        assert!(seen.len() >= 30, "expected the full code census, got {seen:?}");
        for c in &seen {
            assert!(
                explain(c).is_some(),
                "`{c}` appears in the workspace but has no `--explain` entry"
            );
        }
        // And the registry stays in sync both ways.
        for &c in KNOWN_CODES {
            assert!(seen.contains(c), "KNOWN_CODES lists `{c}` but nothing emits it");
        }
    }
}
