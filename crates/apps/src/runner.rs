//! Run one benchmark application in one of the paper's program versions
//! and verify the result against the pure-Rust oracle.
//!
//! §V-A defines four versions:
//!
//! * **OpenMP** — the baseline all Fig. 7 numbers are normalised to;
//! * **PGI OpenACC** — a commercial single-GPU OpenACC compiler: the
//!   extension directives are parsed but ignored;
//! * **CUDA** — hand-written single-GPU code: no translator-added
//!   instrumentation at all;
//! * **Proposal** — the paper's system on 1, 2 or 3 GPUs.

use std::sync::{Arc, OnceLock};

use acc_compiler::{CompileOptions, CompiledProgram};
use acc_gpusim::{Machine, MachineKind};
use acc_runtime::{
    CompiledKernel, Engine, ExecConfig, GpuMemReport, RunError, RunReport, Schedule,
    TimeBreakdown, Trace,
};

use crate::{bfs, heat2d, heat2d_halo2, kmeans, md, pagerank, spmv};

/// Which benchmark application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    Md,
    Kmeans,
    Bfs,
    /// CSR sparse matrix × vector — quantifies the §VI replication
    /// limitation. Not in the paper's Table II.
    Spmv,
    /// 2-D Jacobi stencil — the §VI "future work" case; its writes are
    /// elided by the interval prover. Not in the paper's Table II.
    Heat2d,
    /// PageRank over a power-law digraph — the indirect-push workload
    /// whose race freedom rests on the dependence analysis's
    /// monotone-window proof. Not in the paper's Table II.
    Pagerank,
    /// In-place deep stencil with a distance-2 carried dependence: the
    /// distance/direction-vector analysis proves the dependence local to
    /// the declared halo (`ACC-I003`) and the harness runs it under the
    /// wavefront schedule. Not in the paper's Table II.
    Heat2dHalo2,
}

impl App {
    /// The paper's three applications first, then the extension
    /// workloads (SPMV, HEAT2D, PAGERANK, HEAT2D-HALO2).
    pub const ALL: [App; 7] = [
        App::Md,
        App::Kmeans,
        App::Bfs,
        App::Spmv,
        App::Heat2d,
        App::Pagerank,
        App::Heat2dHalo2,
    ];

    /// The subset published in the paper's Table II / figures.
    pub const PAPER: [App; 3] = [App::Md, App::Kmeans, App::Bfs];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            App::Md => "md",
            App::Kmeans => "kmeans",
            App::Bfs => "bfs",
            App::Spmv => "spmv",
            App::Heat2d => "heat2d",
            App::Pagerank => "pagerank",
            App::Heat2dHalo2 => "heat2d-halo2",
        }
    }

    /// The OpenACC source.
    pub fn source(self) -> &'static str {
        match self {
            App::Md => md::SOURCE,
            App::Kmeans => kmeans::SOURCE,
            App::Bfs => bfs::SOURCE,
            App::Spmv => spmv::SOURCE,
            App::Heat2d => heat2d::SOURCE,
            App::Pagerank => pagerank::SOURCE,
            App::Heat2dHalo2 => heat2d_halo2::SOURCE,
        }
    }

    /// The entry function.
    pub fn function(self) -> &'static str {
        match self {
            App::Md => md::FUNCTION,
            App::Kmeans => kmeans::FUNCTION,
            App::Bfs => bfs::FUNCTION,
            App::Spmv => spmv::FUNCTION,
            App::Heat2d => heat2d::FUNCTION,
            App::Pagerank => pagerank::FUNCTION,
            App::Heat2dHalo2 => heat2d_halo2::FUNCTION,
        }
    }
}

/// Which program version (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// gcc-compiled OpenMP on all hardware threads.
    OpenMP,
    /// Commercial OpenACC compiler, single GPU, extensions ignored.
    PgiAcc,
    /// Hand-written CUDA, single GPU.
    Cuda,
    /// The proposed system on `n` GPUs.
    Proposal(usize),
}

impl Version {
    /// Label used in the figures, e.g. `Proposal(2GPU)`.
    pub fn label(self) -> String {
        match self {
            Version::OpenMP => "OpenMP".into(),
            Version::PgiAcc => "PGI-ACC(1GPU)".into(),
            Version::Cuda => "CUDA(1GPU)".into(),
            Version::Proposal(n) => format!("Proposal({n}GPU)"),
        }
    }

    /// Compiler options for this version.
    pub fn compile_options(self) -> CompileOptions {
        match self {
            Version::OpenMP | Version::PgiAcc => CompileOptions::pgi_like(),
            Version::Cuda => CompileOptions::cuda_expert(),
            Version::Proposal(_) => CompileOptions::proposal(),
        }
    }

    /// Runtime configuration for this version.
    pub fn exec_config(self) -> ExecConfig {
        match self {
            Version::OpenMP => ExecConfig::openmp(),
            Version::PgiAcc | Version::Cuda => ExecConfig::gpus(1),
            Version::Proposal(n) => ExecConfig::gpus(n),
        }
    }

    /// Number of GPUs this version uses.
    pub fn ngpus(self) -> usize {
        match self {
            Version::OpenMP => 0,
            Version::PgiAcc | Version::Cuda => 1,
            Version::Proposal(n) => n,
        }
    }
}

/// Workload scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale inputs for tests.
    Small,
    /// Structure-preserving reduction of the paper inputs (default for
    /// the figure harness).
    Scaled,
    /// The paper's published input sizes.
    Paper,
}

/// Outcome of one application run.
#[derive(Debug)]
pub struct AppResult {
    pub app: App,
    pub version: Version,
    /// Simulated time breakdown (Fig. 7 normalises on
    /// `time.parallel_region()`, Fig. 8 splits it).
    pub time: TimeBreakdown,
    /// Per-GPU peak memory (Fig. 9).
    pub mem: Vec<GpuMemReport>,
    /// Kernel executions (Table II column C).
    pub kernel_launches: usize,
    /// `(localaccess arrays, arrays in parallel loops)` (Table II col. D).
    pub localaccess_ratio: (usize, usize),
    /// Transfer volumes.
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub p2p_bytes: u64,
    /// Host wall-clock seconds the runtime spent inside the
    /// communication phase (replica syncs, including deferred
    /// reconciliation after comm elision). Complements `time.gpu_gpu`,
    /// which is the *simulated* cost of the same phase.
    pub comm_wall_s: f64,
    /// Oracle check.
    pub correct: bool,
    /// Maximum absolute error vs the oracle (0 for exact matches).
    pub max_err: f64,
    /// Event trace of the run. Empty unless the [`ExecConfig`] asked
    /// for `TraceLevel::Summary`/`Spans` — `acc-serve` uses this to
    /// stream a Chrome trace back per job.
    pub trace: Trace,
}

/// Typed error surface for the application harness: either the compiler
/// rejected the source or the runtime rejected/failed the run. Both
/// carry a stable `ACC-XNNN` code ([`AppError::code`]) so bin targets
/// print machine-matchable diagnostics instead of ad-hoc strings.
#[derive(Debug)]
pub enum AppError {
    /// Source-to-IR compilation failed.
    Compile(String),
    /// The runtime rejected or failed the run.
    Run(RunError),
}

impl AppError {
    /// Stable diagnostic code (the `ACC-RNNN` family).
    pub fn code(&self) -> &'static str {
        match self {
            AppError::Compile(_) => "ACC-R010",
            AppError::Run(e) => e.code(),
        }
    }
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Compile(m) => write!(f, "compile error: {m}"),
            AppError::Run(e) => e.fmt(f),
        }
    }
}
impl std::error::Error for AppError {}

impl From<RunError> for AppError {
    fn from(e: RunError) -> AppError {
        match e {
            RunError::Compile(m) => AppError::Compile(m),
            other => AppError::Run(other),
        }
    }
}

/// The process-wide [`Engine`] behind the harness: every
/// [`compile_app`] across every test/bench/CLI invocation in the
/// process shares one compilation cache and one scratch-pool set, so a
/// matrix of runs compiles each (app, version) pair exactly once.
pub fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    // The kind only matters for `Engine::launch`; the harness always
    // supplies its own machine via `launch_on`, and the node preset
    // covers every GPU count the versions use.
    ENGINE.get_or_init(|| Engine::new(MachineKind::SupercomputerNode, ExecConfig::gpus(1)))
}

/// Compile an application for a version (cached: repeat calls return
/// the same [`CompiledKernel`]).
pub fn compile_app(app: App, version: Version) -> Result<Arc<CompiledKernel>, AppError> {
    compile_app_on(engine(), app, version)
}

/// [`compile_app`] against an explicit [`Engine`] instead of the
/// process-wide one — `acc-serve` gives each server its own engine so
/// cache statistics are per-daemon.
pub fn compile_app_on(
    engine: &Engine,
    app: App,
    version: Version,
) -> Result<Arc<CompiledKernel>, AppError> {
    Ok(engine.compile(app.source(), app.function(), &version.compile_options())?)
}

/// Run one application/version on a machine at a workload scale.
pub fn run_app(
    app: App,
    version: Version,
    machine: &mut Machine,
    scale: Scale,
    seed: u64,
) -> Result<AppResult, AppError> {
    run_app_with_config(app, version, machine, scale, seed, &version.exec_config())
}

/// [`run_app`] with an explicit runtime configuration instead of the
/// version's default — the `acc-lint --audit` path layers
/// `SanitizeLevel` on top of a normal multi-GPU configuration this way.
pub fn run_app_with_config(
    app: App,
    version: Version,
    machine: &mut Machine,
    scale: Scale,
    seed: u64,
    cfg: &ExecConfig,
) -> Result<AppResult, AppError> {
    run_app_with_engine(engine(), app, version, machine, scale, seed, cfg)
}

/// [`run_app_with_config`] against an explicit [`Engine`].
pub fn run_app_with_engine(
    engine: &Engine,
    app: App,
    version: Version,
    machine: &mut Machine,
    scale: Scale,
    seed: u64,
    cfg: &ExecConfig,
) -> Result<AppResult, AppError> {
    let prog = compile_app_on(engine, app, version)?;
    run_compiled(engine, &prog, app, version, machine, scale, seed, cfg)
}

/// Run an already-compiled application: the generate → launch → oracle
/// pipeline behind [`run_app`]. Callers that need the per-job cache-hit
/// flag (acc-serve) compile through [`Engine::compile_entry`] first and
/// hand the kernel in here.
#[allow(clippy::too_many_arguments)]
pub fn run_compiled(
    engine: &Engine,
    prog: &Arc<CompiledKernel>,
    app: App,
    version: Version,
    machine: &mut Machine,
    scale: Scale,
    seed: u64,
    cfg: &ExecConfig,
) -> Result<AppResult, AppError> {
    let run = |machine: &mut Machine, scalars, arrays| -> Result<RunReport, AppError> {
        Ok(engine.launch_on(prog, machine, cfg, scalars, arrays)?)
    };
    let (report, correct, max_err) = match app {
        App::Md => {
            let wcfg = match scale {
                Scale::Small => md::MdConfig::small(),
                Scale::Scaled => md::MdConfig {
                    nx: 24,
                    ny: 24,
                    nz: 16,
                    ..md::MdConfig::paper()
                },
                Scale::Paper => md::MdConfig::paper(),
            };
            let input = md::generate(&wcfg, seed);
            let (scalars, arrays) = md::inputs(&input);
            let report =
                run(machine, scalars, arrays)?;
            let expect = md::reference(&input);
            let got = report.arrays[md::FORCE_ARRAY].to_f64_vec();
            let err = md::max_error(&got, &expect);
            let ok = err < 1e-9;
            (report, ok, err)
        }
        App::Kmeans => {
            let wcfg = match scale {
                Scale::Small => kmeans::KmeansConfig::small(),
                Scale::Scaled => kmeans::KmeansConfig {
                    npoints: 24_700,
                    ..kmeans::KmeansConfig::paper()
                },
                Scale::Paper => kmeans::KmeansConfig::paper(),
            };
            let input = kmeans::generate(&wcfg, seed);
            let (scalars, arrays) = kmeans::inputs(&input);
            let report =
                run(machine, scalars, arrays)?;
            let expect = kmeans::reference(&input);
            let got_mem = report.arrays[kmeans::MEMBERSHIP_ARRAY].to_i32_vec();
            let got_clu = report.arrays[kmeans::CLUSTERS_ARRAY].to_f32_vec();
            // Multi-GPU float accumulation reorders sums: allow a small
            // relative tolerance on centroids and a tiny fraction of
            // boundary points flipping cluster.
            let clu_err = got_clu
                .iter()
                .zip(&expect.clusters)
                .map(|(a, b)| (a - b).abs() as f64)
                .fold(0.0, f64::max);
            let mismatches = got_mem
                .iter()
                .zip(&expect.membership)
                .filter(|(a, b)| a != b)
                .count();
            let ok = clu_err < 1e-2 && (mismatches as f64) < 0.001 * got_mem.len() as f64;
            (report, ok, clu_err)
        }
        App::Bfs => {
            let wcfg = match scale {
                Scale::Small => bfs::BfsConfig::small(),
                Scale::Scaled => bfs::BfsConfig::scaled(),
                Scale::Paper => bfs::BfsConfig::paper(),
            };
            let input = bfs::generate(&wcfg, seed);
            let (scalars, arrays) = bfs::inputs(&input);
            let report =
                run(machine, scalars, arrays)?;
            let expect = bfs::reference(&input);
            let got = report.arrays[bfs::LEVELS_ARRAY].to_i32_vec();
            let ok = got == expect;
            (report, ok, if ok { 0.0 } else { 1.0 })
        }
        App::Spmv => {
            let wcfg = match scale {
                Scale::Small => spmv::SpmvConfig::small(),
                Scale::Scaled | Scale::Paper => spmv::SpmvConfig::scaled(),
            };
            let input = spmv::generate(&wcfg, seed);
            let (scalars, arrays) = spmv::inputs(&input);
            let report =
                run(machine, scalars, arrays)?;
            let expect = spmv::reference(&input);
            let got = report.arrays[spmv::Y_ARRAY].to_f64_vec();
            // Each row's sum is computed by one thread in program order on
            // any GPU count, so the result is bit-for-bit deterministic.
            let err = got
                .iter()
                .zip(&expect)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            let ok = err < 1e-12;
            (report, ok, err)
        }
        App::Heat2d => {
            let wcfg = match scale {
                Scale::Small => heat2d::Heat2dConfig::small(),
                Scale::Scaled | Scale::Paper => heat2d::Heat2dConfig::scaled(),
            };
            let input = heat2d::generate(&wcfg, seed);
            let (scalars, arrays) = heat2d::inputs(&input);
            let report =
                run(machine, scalars, arrays)?;
            let expect = heat2d::reference(&input);
            let err = heat2d::max_error(
                &report.arrays[heat2d::PLATE_ARRAY].to_f64_vec(),
                &expect,
            );
            let ok = err < 1e-12;
            (report, ok, err)
        }
        App::Pagerank => {
            let wcfg = match scale {
                Scale::Small => pagerank::PagerankConfig::small(),
                Scale::Scaled | Scale::Paper => pagerank::PagerankConfig::scaled(),
            };
            let input = pagerank::generate(&wcfg, seed);
            let (scalars, arrays) = pagerank::inputs(&input);
            let report =
                run(machine, scalars, arrays)?;
            let expect = pagerank::reference(&input);
            let err = pagerank::max_error(
                &report.arrays[pagerank::RANK_ARRAY].to_f64_vec(),
                &expect,
            );
            // The gather's reduction merge reorders float sums across
            // GPU counts.
            let ok = err < 1e-9;
            (report, ok, err)
        }
        App::Heat2dHalo2 => {
            let wcfg = match scale {
                Scale::Small => heat2d_halo2::Halo2Config::small(),
                Scale::Scaled | Scale::Paper => heat2d_halo2::Halo2Config::scaled(),
            };
            let input = heat2d_halo2::generate(&wcfg, seed);
            let (scalars, arrays) = heat2d_halo2::inputs(&input);
            // The carried dependence is only halo-local: an equal-partition
            // launch on 2+ GPUs would read stale left halos, so the harness
            // auto-selects the wavefront schedule the ACC-I003 verdict
            // licenses (an explicit non-default schedule is respected).
            let ecfg = if cfg.schedule == Schedule::Equal {
                cfg.clone().schedule(Schedule::Wavefront)
            } else {
                cfg.clone()
            };
            let report = engine.launch_on(prog, machine, &ecfg, scalars, arrays)?;
            let expect = heat2d_halo2::reference(&input);
            let err = heat2d_halo2::max_error(
                &report.arrays[heat2d_halo2::PLATE_ARRAY].to_f64_vec(),
                &expect,
            );
            // The wavefront reproduces the sequential sweep exactly.
            let ok = err == 0.0;
            (report, ok, err)
        }
    };
    Ok(result_from(app, version, prog, report, correct, max_err))
}

fn result_from(
    app: App,
    version: Version,
    prog: &CompiledProgram,
    report: RunReport,
    correct: bool,
    max_err: f64,
) -> AppResult {
    AppResult {
        app,
        version,
        time: report.profile.time,
        mem: report.mem.clone(),
        kernel_launches: report.profile.kernel_launches,
        localaccess_ratio: prog.localaccess_ratio(),
        h2d_bytes: report.profile.h2d_bytes,
        d2h_bytes: report.profile.d2h_bytes,
        p2p_bytes: report.profile.p2p_bytes,
        comm_wall_s: report.profile.comm_wall_s,
        correct,
        max_err,
        trace: report.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desktop() -> Machine {
        Machine::desktop()
    }
    fn node() -> Machine {
        Machine::supercomputer_node()
    }

    #[test]
    fn md_all_versions_correct_small() {
        for v in [
            Version::OpenMP,
            Version::PgiAcc,
            Version::Cuda,
            Version::Proposal(1),
            Version::Proposal(2),
        ] {
            let r = run_app(App::Md, v, &mut desktop(), Scale::Small, 42).unwrap();
            assert!(r.correct, "{} wrong (err {})", v.label(), r.max_err);
            assert_eq!(r.kernel_launches, 1, "Table II C=1");
        }
    }

    #[test]
    fn md_three_gpus_on_node() {
        let r = run_app(App::Md, Version::Proposal(3), &mut node(), Scale::Small, 42).unwrap();
        assert!(r.correct);
        // MD needs no inter-GPU communication (§V-A).
        assert_eq!(r.p2p_bytes, 0, "MD must not use the GPU-GPU path");
    }

    #[test]
    fn md_localaccess_ratio_matches_table2() {
        let r = run_app(App::Md, Version::Proposal(2), &mut desktop(), Scale::Small, 1).unwrap();
        assert_eq!(r.localaccess_ratio, (2, 3));
    }

    #[test]
    fn kmeans_all_versions_correct_small() {
        for v in [
            Version::OpenMP,
            Version::Cuda,
            Version::Proposal(1),
            Version::Proposal(2),
            Version::Proposal(3),
        ] {
            let mut m = node();
            let r = run_app(App::Kmeans, v, &mut m, Scale::Small, 7).unwrap();
            assert!(r.correct, "{} wrong (err {})", v.label(), r.max_err);
        }
    }

    #[test]
    fn kmeans_table2_characteristics() {
        let r = run_app(
            App::Kmeans,
            Version::Proposal(2),
            &mut desktop(),
            Scale::Small,
            7,
        )
        .unwrap();
        // 2 loops × 5 iterations at Small scale.
        assert_eq!(r.kernel_launches, 10);
        assert_eq!(r.localaccess_ratio, (2, 5));
    }

    #[test]
    fn bfs_all_versions_correct_small() {
        for v in [
            Version::OpenMP,
            Version::PgiAcc,
            Version::Cuda,
            Version::Proposal(1),
            Version::Proposal(2),
            Version::Proposal(3),
        ] {
            let mut m = node();
            let r = run_app(App::Bfs, v, &mut m, Scale::Small, 3).unwrap();
            assert!(r.correct, "{} wrong", v.label());
        }
    }

    #[test]
    fn bfs_kernel_count_matches_depth() {
        let r = run_app(App::Bfs, Version::Proposal(2), &mut node(), Scale::Small, 3).unwrap();
        // depth 6 → 7 launches at Small scale (Paper scale gives 10).
        assert_eq!(r.kernel_launches, 7);
        assert_eq!(r.localaccess_ratio, (2, 3));
        // BFS is the communication-heavy app: dirty-bit sync used.
        assert!(r.p2p_bytes > 0);
    }

    #[test]
    fn spmv_and_heat2d_run_through_the_harness() {
        for app in [App::Spmv, App::Heat2d, App::Pagerank] {
            for v in [Version::OpenMP, Version::Proposal(1), Version::Proposal(3)] {
                let r = run_app(app, v, &mut node(), Scale::Small, 13).unwrap();
                assert!(r.correct, "{} {} wrong (err {})", app.name(), v.label(), r.max_err);
            }
        }
    }

    #[test]
    fn all_apps_are_lint_clean() {
        // CI runs `acc-lint --deny-warnings` over every app; keep that
        // invariant visible as a unit test too. Informational ACC-I*
        // diagnostics are allowed (heat2d-halo2 carries the ACC-I003
        // halo-local-dependence downgrade by design); errors and
        // warnings are not.
        for app in App::ALL {
            let diags = acc_compiler::lint_source(app.source()).unwrap();
            let hard: Vec<_> = diags
                .iter()
                .filter(|d| !d.code.is_some_and(|c| c.starts_with("ACC-I")))
                .collect();
            assert!(
                hard.is_empty(),
                "{}: {}",
                app.name(),
                hard.iter()
                    .map(|d| d.render(app.source()))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    // Performance-shape assertions need realistic input sizes (tiny
    // inputs are latency-dominated and the GPU rightly loses, on real
    // hardware too). They run at Scaled size, which wants a release
    // build: `cargo test --release -p acc-apps -- --ignored`.

    #[test]
    #[ignore = "Scaled workload; run with --release -- --ignored"]
    fn proposal_multi_gpu_is_faster_than_single_on_md() {
        let r1 = run_app(App::Md, Version::Proposal(1), &mut desktop(), Scale::Scaled, 9).unwrap();
        let r2 = run_app(App::Md, Version::Proposal(2), &mut desktop(), Scale::Scaled, 9).unwrap();
        assert!(r1.correct && r2.correct);
        assert!(
            r2.time.parallel_region() < r1.time.parallel_region(),
            "2 GPUs {} vs 1 GPU {}",
            r2.time.parallel_region(),
            r1.time.parallel_region()
        );
    }

    #[test]
    #[ignore = "Scaled workload; run with --release -- --ignored"]
    fn gpu_versions_beat_openmp_on_md() {
        let omp = run_app(App::Md, Version::OpenMP, &mut desktop(), Scale::Scaled, 9).unwrap();
        let gpu = run_app(App::Md, Version::Proposal(2), &mut desktop(), Scale::Scaled, 9).unwrap();
        assert!(gpu.time.parallel_region() < omp.time.parallel_region());
    }
}
