//! # acc-minic — a C-subset + OpenACC frontend
//!
//! The paper's translator consumes C annotated with OpenACC directives
//! (parsed through the ROSE infrastructure). ROSE is unavailable here, so
//! this crate is a self-contained frontend for the C subset the paper's
//! benchmark applications need, plus the full directive surface the paper
//! uses — including the two proposed extensions:
//!
//! * `#pragma acc localaccess(arr) stride(s) left(l) right(r)` — declares
//!   that iteration `i` of the following parallel loop reads only
//!   `arr[s*i - l .. s*(i+1) - 1 + r]` (paper §III-C);
//! * `#pragma acc reductiontoarray(op: arr[0:len])` — marks the next
//!   statement as a reduction whose destination is a dynamically indexed
//!   array element (paper §III-C).
//!
//! ## Supported language
//!
//! * types: `int`, `float`, `double`, `void`, and 1-D pointers `T *p`
//!   (treated as indexable arrays whose lengths the caller provides);
//! * declarations with initialisers (`int i = 0, j;`);
//! * statements: expression, `for`, `while`, `if`/`else`, `break`,
//!   `continue`, `return`, blocks;
//! * expressions: the C operator set down to unary/postfix (including
//!   `a[i]`, compound assignment, `++`/`--`, casts, the ternary operator)
//!   and calls to the `math.h` builtins in [`acc_kernel_ir::Builtin`];
//! * OpenACC directives: `data` (clauses `copy`, `copyin`, `copyout`,
//!   `create`, `present`), combined `parallel loop` / `kernels loop` with
//!   `gang`/`worker`/`vector`/`reduction(op:var)` plus data clauses, the
//!   split `parallel` / `kernels` region form with inner `#pragma acc
//!   loop` (the paper's Fig. 1 shape), `update host(...)/device(...)`,
//!   and the two extensions above.
//!
//! The pipeline is classic: [`lexer::lex`] → [`parser::parse`]
//! → [`sema::check`] which resolves names, checks types and directive
//! well-formedness, and produces the typed program the translator in
//! `acc-compiler` lowers.

pub mod ast;
pub mod diag;
pub mod directive;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use ast::Program;
pub use diag::{Diagnostic, Severity, Span};
pub use sema::TypedProgram;

/// Convenience: run the whole frontend on a source string.
///
/// Returns the type-checked program or the list of diagnostics.
pub fn frontend(src: &str) -> Result<sema::TypedProgram, Vec<Diagnostic>> {
    let tokens = lexer::lex(src).map_err(|d| vec![d])?;
    let program = parser::parse(&tokens).map_err(|d| vec![d])?;
    sema::check(&program)
}
