//! Semantic analysis: name resolution, type checking, directive
//! validation, and lowering to the typed HIR of [`crate::hir`].
//!
//! Everything scalar is lowered into `acc-kernel-ir` expressions and
//! statements with C's usual arithmetic conversions applied explicitly
//! (inserted `Cast` nodes). OpenACC constructs are validated here:
//!
//! * combined parallel loops must be in canonical form
//!   `for (i = lo; i < hi; i++)` (also `<=`, `++i`, `i += 1`,
//!   `i = i + 1`);
//! * `reduction(op:var)` bodies may only update the reduction variable
//!   through the declared operator, and may not otherwise read it;
//! * `reductiontoarray` must annotate a statement of shape
//!   `arr[idx] op= e` (or the explicit `arr[idx] = arr[idx] op e` /
//!   `arr[idx] = min(arr[idx], e)` forms) matching the declared operator;
//! * nested parallel loops, `data`/`update` inside kernels, `continue`
//!   inside desugared `for` bodies, and multi-dimensional indexing are
//!   rejected with diagnostics (the last mirroring the paper's §VI
//!   1-D limitation).

use std::collections::HashMap;

use acc_kernel_ir as ir;
use ir::{BufId, LocalId, RmwOp, Ty, Value};

use crate::ast::{self, AssignOp, BinaryOp, CType, PostfixOp, UnaryOp};
use crate::diag::{Diagnostic, Span};
use crate::directive;
pub use crate::hir::*;

/// Type-check and lower a parsed program.
pub fn check(p: &ast::Program) -> Result<TypedProgram, Vec<Diagnostic>> {
    let mut functions = Vec::new();
    let mut diags = Vec::new();
    for f in &p.functions {
        match FnChecker::run(f) {
            Ok(tf) => functions.push(tf),
            Err(mut d) => diags.append(&mut d),
        }
    }
    if diags.is_empty() {
        Ok(TypedProgram { functions })
    } else {
        Err(diags)
    }
}

#[derive(Debug, Clone, Copy)]
enum Binding {
    Scalar(LocalId, Ty),
    Array(BufId, Ty),
}

fn ctype_to_ty(t: &CType) -> Option<Ty> {
    match t {
        CType::Int => Some(Ty::I32),
        CType::Float => Some(Ty::F32),
        CType::Double => Some(Ty::F64),
        _ => None,
    }
}

/// Rank for C usual arithmetic conversions.
fn rank(t: Ty) -> u8 {
    match t {
        Ty::Bool => 0,
        Ty::I32 => 1,
        Ty::F32 => 2,
        Ty::F64 => 3,
    }
}

fn common_ty(a: Ty, b: Ty) -> Ty {
    let t = if rank(a) >= rank(b) { a } else { b };
    if t == Ty::Bool {
        Ty::I32
    } else {
        t
    }
}

fn cast_to(e: ir::Expr, from: Ty, to: Ty) -> ir::Expr {
    if from == to {
        e
    } else {
        ir::Expr::Cast {
            ty: to,
            a: Box::new(e),
        }
    }
}

/// Per-kernel lowering context.
struct KernelCtx {
    reductions: Vec<ScalarRed>,
    array_reductions: Vec<ArrayRed>,
    loop_var: LocalId,
}

struct FnChecker<'a> {
    func: &'a ast::Function,
    diags: Vec<Diagnostic>,
    scopes: Vec<HashMap<String, Binding>>,
    locals: Vec<(String, Ty)>,
    arrays: Vec<(String, Ty)>,
    kernel_count: usize,
}

/// Statement-lowering abort marker (diagnostic already recorded).
struct Abort;

type EResult = Result<(ir::Expr, Ty), Abort>;

impl<'a> FnChecker<'a> {
    fn run(func: &'a ast::Function) -> Result<TypedFunction, Vec<Diagnostic>> {
        let mut c = FnChecker {
            func,
            diags: Vec::new(),
            scopes: vec![HashMap::new()],
            locals: Vec::new(),
            arrays: Vec::new(),
            kernel_count: 0,
        };
        let tf = c.check_fn();
        if c.diags
            .iter()
            .any(|d| d.severity == crate::diag::Severity::Error)
        {
            Err(c.diags)
        } else {
            Ok(tf)
        }
    }

    fn err(&mut self, span: Span, msg: impl Into<String>) -> Abort {
        self.diags.push(Diagnostic::error(span, msg));
        Abort
    }

    fn check_fn(&mut self) -> TypedFunction {
        let mut scalar_params = Vec::new();
        let mut array_params = Vec::new();
        if self.func.ret != CType::Void {
            self.diags.push(Diagnostic::error(
                self.func.span,
                "only void functions are supported (outputs flow through array parameters)",
            ));
        }
        for p in &self.func.params.to_vec() {
            match &p.ty {
                CType::Ptr(inner) => match ctype_to_ty(inner) {
                    Some(ty) => {
                        let id = BufId(self.arrays.len() as u32);
                        self.arrays.push((p.name.clone(), ty));
                        array_params.push((p.name.clone(), ty));
                        self.bind(p.name.clone(), Binding::Array(id, ty), p.span);
                    }
                    None => {
                        self.diags.push(Diagnostic::error(
                            p.span,
                            format!("unsupported pointer element type in `{}`", p.name),
                        ));
                    }
                },
                t => match ctype_to_ty(t) {
                    Some(ty) => {
                        let id = self.new_local(p.name.clone(), ty);
                        scalar_params.push((p.name.clone(), ty));
                        self.bind(p.name.clone(), Binding::Scalar(id, ty), p.span);
                    }
                    None => {
                        self.diags.push(Diagnostic::error(
                            p.span,
                            format!("unsupported parameter type for `{}`", p.name),
                        ));
                    }
                },
            }
        }
        let stmts = self.func.body.stmts.to_vec();
        let body = self.lower_host_block(&stmts);
        TypedFunction {
            name: self.func.name.clone(),
            scalar_params,
            array_params,
            locals: self.locals.clone(),
            body,
            span: self.func.span,
        }
    }

    fn new_local(&mut self, name: String, ty: Ty) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push((name, ty));
        id
    }

    fn bind(&mut self, name: String, b: Binding, span: Span) {
        let top = self.scopes.last_mut().unwrap();
        if top.contains_key(&name) {
            self.diags.push(Diagnostic::error(
                span,
                format!("`{name}` redeclared in the same scope"),
            ));
        }
        top.insert(name, b);
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn resolve_scalar(&mut self, name: &str, span: Span) -> Result<(LocalId, Ty), Abort> {
        match self.lookup(name) {
            Some(Binding::Scalar(id, ty)) => Ok((id, ty)),
            Some(Binding::Array(..)) => {
                Err(self.err(span, format!("`{name}` is an array, expected a scalar")))
            }
            None => Err(self.err(span, format!("unknown variable `{name}`"))),
        }
    }

    fn resolve_array(&mut self, name: &str, span: Span) -> Result<(BufId, Ty), Abort> {
        match self.lookup(name) {
            Some(Binding::Array(id, ty)) => Ok((id, ty)),
            Some(Binding::Scalar(..)) => {
                Err(self.err(span, format!("`{name}` is a scalar, expected an array")))
            }
            None => Err(self.err(span, format!("unknown array `{name}`"))),
        }
    }

    /// Does `e` name exactly the local `id`?
    fn expr_is_local(&self, e: &ast::Expr, id: LocalId) -> bool {
        matches!(e, ast::Expr::Ident(n, _)
            if matches!(self.lookup(n), Some(Binding::Scalar(i, _)) if i == id))
    }

    // ================= expressions =================

    /// Lower an expression in value position. `kc` carries kernel-side
    /// restrictions (reduction variables may not be read).
    fn lower_expr(&mut self, e: &ast::Expr, kc: Option<&KernelCtx>) -> EResult {
        match e {
            ast::Expr::IntLit(v, span) => {
                if *v > i32::MAX as i64 || *v < i32::MIN as i64 {
                    return Err(
                        self.err(*span, format!("integer literal {v} does not fit in int"))
                    );
                }
                Ok((ir::Expr::Imm(Value::I32(*v as i32)), Ty::I32))
            }
            ast::Expr::F64Lit(v, _) => Ok((ir::Expr::Imm(Value::F64(*v)), Ty::F64)),
            ast::Expr::F32Lit(v, _) => Ok((ir::Expr::Imm(Value::F32(*v)), Ty::F32)),
            ast::Expr::Ident(name, span) => {
                let (id, ty) = self.resolve_scalar(name, *span)?;
                if let Some(kc) = kc {
                    if kc.reductions.iter().any(|r| r.local == id) {
                        return Err(self.err(
                            *span,
                            format!(
                                "reduction variable `{name}` may only be updated via its \
                                 reduction operator inside the parallel loop"
                            ),
                        ));
                    }
                }
                Ok((ir::Expr::Local(id), ty))
            }
            ast::Expr::Index { base, idx, span } => {
                let ast::Expr::Ident(name, bspan) = base.as_ref() else {
                    return Err(self.err(
                        *span,
                        "only 1-D indexing of named arrays is supported \
                         (the paper's prototype shares this limitation, §VI)",
                    ));
                };
                let (buf, ty) = self.resolve_array(name, *bspan)?;
                let idx = self.lower_index(idx, kc)?;
                Ok((
                    ir::Expr::Load {
                        buf,
                        idx: Box::new(idx),
                    },
                    ty,
                ))
            }
            ast::Expr::Call { name, args, span } => self.lower_call(name, args, *span, kc),
            ast::Expr::Unary { op, expr, span } => match op {
                UnaryOp::PreInc | UnaryOp::PreDec => Err(self.err(
                    *span,
                    "++/-- may only be used as a statement or for-loop step",
                )),
                UnaryOp::Neg => {
                    let (a, ty) = self.lower_expr(expr, kc)?;
                    let oty = if ty == Ty::Bool { Ty::I32 } else { ty };
                    Ok((
                        ir::Expr::Unary {
                            op: ir::UnOp::Neg,
                            a: Box::new(cast_to(a, ty, oty)),
                        },
                        oty,
                    ))
                }
                UnaryOp::Not => {
                    let (a, ty) = self.lower_expr(expr, kc)?;
                    let c = self.to_cond(a, ty);
                    Ok((
                        ir::Expr::Unary {
                            op: ir::UnOp::Not,
                            a: Box::new(c),
                        },
                        Ty::Bool,
                    ))
                }
                UnaryOp::BitNot => {
                    let (a, ty) = self.lower_expr(expr, kc)?;
                    if ty != Ty::I32 {
                        return Err(self.err(*span, "~ requires an integer operand"));
                    }
                    Ok((
                        ir::Expr::Unary {
                            op: ir::UnOp::BitNot,
                            a: Box::new(a),
                        },
                        Ty::I32,
                    ))
                }
            },
            ast::Expr::Postfix { span, .. } => Err(self.err(
                *span,
                "++/-- may only be used as a statement or for-loop step",
            )),
            ast::Expr::Binary { op, lhs, rhs, span } => {
                self.lower_binary(*op, lhs, rhs, *span, kc)
            }
            ast::Expr::Assign { span, .. } => Err(self.err(
                *span,
                "assignment may not be used as an expression value",
            )),
            ast::Expr::Ternary {
                cond,
                then_,
                else_,
                ..
            } => {
                let (c, cty) = self.lower_expr(cond, kc)?;
                let c = self.to_cond(c, cty);
                let (t, tty) = self.lower_expr(then_, kc)?;
                let (f, fty) = self.lower_expr(else_, kc)?;
                let ty = common_ty(tty, fty);
                Ok((
                    ir::Expr::Select {
                        c: Box::new(c),
                        t: Box::new(cast_to(t, tty, ty)),
                        f: Box::new(cast_to(f, fty, ty)),
                    },
                    ty,
                ))
            }
            ast::Expr::Cast { ty, expr, span } => {
                let Some(to) = ctype_to_ty(ty) else {
                    return Err(self.err(*span, "unsupported cast target type"));
                };
                let (a, from) = self.lower_expr(expr, kc)?;
                Ok((cast_to(a, from, to), to))
            }
        }
    }

    /// Lower an array index expression; must be integer-typed.
    fn lower_index(&mut self, e: &ast::Expr, kc: Option<&KernelCtx>) -> Result<ir::Expr, Abort> {
        let span = e.span();
        let (idx, ty) = self.lower_expr(e, kc)?;
        match ty {
            Ty::I32 => Ok(idx),
            Ty::Bool => Ok(cast_to(idx, Ty::Bool, Ty::I32)),
            _ => Err(self.err(span, "array index must be an integer")),
        }
    }

    /// Coerce a value into a branch condition.
    #[allow(clippy::wrong_self_convention)]
    fn to_cond(&mut self, e: ir::Expr, ty: Ty) -> ir::Expr {
        match ty {
            Ty::Bool | Ty::I32 => e,
            Ty::F32 => ir::Expr::bin(ir::BinOp::Ne, e, ir::Expr::Imm(Value::F32(0.0))),
            Ty::F64 => ir::Expr::bin(ir::BinOp::Ne, e, ir::Expr::Imm(Value::F64(0.0))),
        }
    }

    fn lower_binary(
        &mut self,
        op: BinaryOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        span: Span,
        kc: Option<&KernelCtx>,
    ) -> EResult {
        let (a, aty) = self.lower_expr(lhs, kc)?;
        let (b, bty) = self.lower_expr(rhs, kc)?;
        let iop = ast_bin_to_ir(op);
        if iop.is_logical() {
            let a = self.to_cond(a, aty);
            let b = self.to_cond(b, bty);
            return Ok((ir::Expr::bin(iop, a, b), Ty::Bool));
        }
        if iop.is_integer_only() {
            if rank(aty) > rank(Ty::I32) || rank(bty) > rank(Ty::I32) {
                return Err(self.err(span, "operator requires integer operands"));
            }
            let a = cast_to(a, aty, Ty::I32);
            let b = cast_to(b, bty, Ty::I32);
            return Ok((ir::Expr::bin(iop, a, b), Ty::I32));
        }
        let ty = common_ty(aty, bty);
        let a = cast_to(a, aty, ty);
        let b = cast_to(b, bty, ty);
        let rty = if iop.is_comparison() { Ty::Bool } else { ty };
        Ok((ir::Expr::bin(iop, a, b), rty))
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[ast::Expr],
        span: Span,
        kc: Option<&KernelCtx>,
    ) -> EResult {
        let Some(f) = ir::Builtin::from_name(name) else {
            return Err(self.err(
                span,
                format!(
                    "unknown function `{name}` (user-defined calls are not supported; \
                     only math builtins)"
                ),
            ));
        };
        if args.len() != f.arity() {
            return Err(self.err(
                span,
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    f.arity(),
                    args.len()
                ),
            ));
        }
        let mut lowered = Vec::new();
        for a in args {
            lowered.push(self.lower_expr(a, kc)?);
        }
        match f {
            ir::Builtin::Abs => {
                let (a, ty) = lowered.pop().unwrap();
                if ty != Ty::I32 {
                    return Err(self.err(span, "abs() takes an int; use fabs() for floats"));
                }
                Ok((ir::Expr::Call { f, args: vec![a] }, Ty::I32))
            }
            ir::Builtin::Min | ir::Builtin::Max => {
                let (b, bty) = lowered.pop().unwrap();
                let (a, aty) = lowered.pop().unwrap();
                let ty = common_ty(aty, bty);
                Ok((
                    ir::Expr::Call {
                        f,
                        args: vec![cast_to(a, aty, ty), cast_to(b, bty, ty)],
                    },
                    ty,
                ))
            }
            ir::Builtin::Pow => {
                let (b, bty) = lowered.pop().unwrap();
                let (a, aty) = lowered.pop().unwrap();
                let ty = if common_ty(aty, bty) == Ty::F32 {
                    Ty::F32
                } else {
                    Ty::F64
                };
                Ok((
                    ir::Expr::Call {
                        f,
                        args: vec![cast_to(a, aty, ty), cast_to(b, bty, ty)],
                    },
                    ty,
                ))
            }
            _ => {
                // Unary math: int promotes to double; f32 stays f32.
                let (a, aty) = lowered.pop().unwrap();
                let ty = match aty {
                    Ty::F32 => Ty::F32,
                    _ => Ty::F64,
                };
                Ok((
                    ir::Expr::Call {
                        f,
                        args: vec![cast_to(a, aty, ty)],
                    },
                    ty,
                ))
            }
        }
    }

    // ================= host statements =================

    fn lower_host_block(&mut self, stmts: &[ast::Stmt]) -> Vec<HostStmt> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for s in stmts {
            self.lower_host_stmt(s, &mut out);
        }
        self.scopes.pop();
        out
    }

    fn lower_host_stmt(&mut self, s: &ast::Stmt, out: &mut Vec<HostStmt>) {
        match s {
            ast::Stmt::Empty(_) => {}
            ast::Stmt::Block(b) => out.extend(self.lower_host_block(&b.stmts)),
            ast::Stmt::Decl { ty, decls, span } => {
                let Some(ty) = ctype_to_ty(ty) else {
                    self.diags
                        .push(Diagnostic::error(*span, "unsupported declaration type"));
                    return;
                };
                for d in decls {
                    let id = self.new_local(d.name.clone(), ty);
                    self.bind(d.name.clone(), Binding::Scalar(id, ty), d.span);
                    if let Some(init) = &d.init {
                        if let Ok((e, ety)) = self.lower_expr(init, None) {
                            out.push(HostStmt::Plain(ir::Stmt::Assign {
                                local: id,
                                value: cast_to(e, ety, ty),
                            }));
                        }
                    }
                }
            }
            ast::Stmt::Expr(e) => {
                if let Ok(stmts) = self.lower_stmt_expr(e, None) {
                    out.extend(stmts.into_iter().map(HostStmt::Plain));
                }
            }
            ast::Stmt::If {
                cond, then_, else_, ..
            } => {
                let Ok((c, cty)) = self.lower_expr(cond, None) else {
                    return;
                };
                let c = self.to_cond(c, cty);
                let then_ = self.lower_host_block(std::slice::from_ref(then_.as_ref()));
                let else_ = match else_ {
                    Some(e) => self.lower_host_block(std::slice::from_ref(e.as_ref())),
                    None => vec![],
                };
                out.push(HostStmt::If {
                    cond: c,
                    then_,
                    else_,
                });
            }
            ast::Stmt::While { cond, body, .. } => {
                let Ok((c, cty)) = self.lower_expr(cond, None) else {
                    return;
                };
                let c = self.to_cond(c, cty);
                let body = self.lower_host_block(std::slice::from_ref(body.as_ref()));
                out.push(HostStmt::While { cond: c, body });
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                // Desugar: { init; while (cond) { body; step; } }
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_host_stmt(init, out);
                }
                let c = match cond {
                    Some(c) => match self.lower_expr(c, None) {
                        Ok((e, ty)) => self.to_cond(e, ty),
                        Err(Abort) => {
                            self.scopes.pop();
                            return;
                        }
                    },
                    None => ir::Expr::Imm(Value::Bool(true)),
                };
                let mut wbody = self.lower_host_block(std::slice::from_ref(body.as_ref()));
                if block_contains_continue(body) {
                    self.diags.push(Diagnostic::error(
                        *span,
                        "`continue` inside a `for` body is not supported (the step \
                         expression would be skipped); rewrite as `while`",
                    ));
                }
                if let Some(step) = step {
                    if let Ok(stmts) = self.lower_stmt_expr(step, None) {
                        wbody.extend(stmts.into_iter().map(HostStmt::Plain));
                    }
                }
                out.push(HostStmt::While {
                    cond: c,
                    body: wbody,
                });
                self.scopes.pop();
            }
            ast::Stmt::Return(v, span) => {
                if v.is_some() {
                    self.diags.push(Diagnostic::error(
                        *span,
                        "return with a value in a void function",
                    ));
                }
                out.push(HostStmt::Return);
            }
            ast::Stmt::Break(_) => out.push(HostStmt::Plain(ir::Stmt::Break)),
            ast::Stmt::Continue(_) => out.push(HostStmt::Plain(ir::Stmt::Continue)),
            ast::Stmt::DataRegion { dir, body, .. } => {
                let clauses = self.lower_data_clauses(&dir.clauses);
                let body = self.lower_host_block(std::slice::from_ref(body.as_ref()));
                out.push(HostStmt::DataRegion { clauses, body });
            }
            ast::Stmt::Update { dir, .. } => {
                let host = self.lower_sections(&dir.host);
                let device = self.lower_sections(&dir.device);
                out.push(HostStmt::Update { host, device });
            }
            ast::Stmt::ParallelLoop {
                dir,
                localaccess,
                loop_,
                span,
            } => {
                if let Ok(node) = self.lower_parallel_loop(dir, localaccess, loop_, *span) {
                    out.push(HostStmt::ParallelLoop(Box::new(node)));
                }
            }
            ast::Stmt::ReductionToArray { span, .. } => {
                self.diags.push(Diagnostic::error(
                    *span,
                    "reductiontoarray is only meaningful inside a parallel loop",
                ));
            }
        }
    }

    /// Lower an expression used in statement position (assignments and
    /// increments). Returns the statements it expands to.
    fn lower_stmt_expr(
        &mut self,
        e: &ast::Expr,
        kc: Option<&mut KernelCtx>,
    ) -> Result<Vec<ir::Stmt>, Abort> {
        match e {
            ast::Expr::Assign { op, lhs, rhs, span } => {
                self.lower_assign(*op, lhs, rhs, *span, kc)
            }
            ast::Expr::Postfix { op, expr, span } => {
                self.lower_incdec(*op == PostfixOp::PostInc, expr, *span, kc)
            }
            ast::Expr::Unary {
                op: op @ (UnaryOp::PreInc | UnaryOp::PreDec),
                expr,
                span,
            } => self.lower_incdec(*op == UnaryOp::PreInc, expr, *span, kc),
            other => Err(self.err(
                other.span(),
                "expression statement has no effect (only assignments and ++/-- are allowed)",
            )),
        }
    }

    fn lower_incdec(
        &mut self,
        inc: bool,
        expr: &ast::Expr,
        span: Span,
        kc: Option<&mut KernelCtx>,
    ) -> Result<Vec<ir::Stmt>, Abort> {
        let ast::Expr::Ident(name, ispan) = expr else {
            return Err(self.err(span, "++/-- target must be a scalar variable"));
        };
        let (id, ty) = self.resolve_scalar(name, *ispan)?;
        if let Some(kc) = &kc {
            if kc.reductions.iter().any(|r| r.local == id) {
                return Err(self.err(span, "cannot ++/-- a reduction variable"));
            }
            if kc.loop_var == id {
                return Err(self.err(
                    span,
                    "the parallel loop variable may not be modified in the loop body",
                ));
            }
        }
        if ty != Ty::I32 {
            return Err(self.err(span, "++/-- requires an int variable"));
        }
        let op = if inc { ir::BinOp::Add } else { ir::BinOp::Sub };
        Ok(vec![ir::Stmt::Assign {
            local: id,
            value: ir::Expr::bin(op, ir::Expr::Local(id), ir::Expr::imm_i32(1)),
        }])
    }

    fn lower_assign(
        &mut self,
        op: AssignOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        span: Span,
        mut kc: Option<&mut KernelCtx>,
    ) -> Result<Vec<ir::Stmt>, Abort> {
        match lhs {
            ast::Expr::Ident(name, ispan) => {
                let (id, ty) = self.resolve_scalar(name, *ispan)?;
                // Scalar reduction pattern?
                if let Some(kc) = kc.as_deref_mut() {
                    if kc.loop_var == id {
                        return Err(self.err(
                            span,
                            "the parallel loop variable may not be modified in the loop body",
                        ));
                    }
                    if let Some(slot) = kc.reductions.iter().position(|r| r.local == id) {
                        return self.lower_scalar_reduction(slot, id, ty, op, rhs, span, kc);
                    }
                }
                let kcr = kc.as_deref();
                let (value, vty) = match op.binary() {
                    None => self.lower_expr(rhs, kcr)?,
                    Some(bop) => {
                        let (r, rty) = self.lower_expr(rhs, kcr)?;
                        let cty = common_ty(ty, rty);
                        let l = cast_to(ir::Expr::Local(id), ty, cty);
                        let r = cast_to(r, rty, cty);
                        (ir::Expr::bin(ast_bin_to_ir(bop), l, r), cty)
                    }
                };
                Ok(vec![ir::Stmt::Assign {
                    local: id,
                    value: cast_to(value, vty, ty),
                }])
            }
            ast::Expr::Index {
                base,
                idx,
                span: ispan,
            } => {
                let ast::Expr::Ident(name, bspan) = base.as_ref() else {
                    return Err(
                        self.err(*ispan, "only 1-D indexing of named arrays is supported")
                    );
                };
                let (buf, ty) = self.resolve_array(name, *bspan)?;
                let kcr = kc.as_deref();
                let idx = self.lower_index(idx, kcr)?;
                let (value, vty) = match op.binary() {
                    None => self.lower_expr(rhs, kcr)?,
                    Some(bop) => {
                        let (r, rty) = self.lower_expr(rhs, kcr)?;
                        let cty = common_ty(ty, rty);
                        let l = cast_to(
                            ir::Expr::Load {
                                buf,
                                idx: Box::new(idx.clone()),
                            },
                            ty,
                            cty,
                        );
                        let r = cast_to(r, rty, cty);
                        (ir::Expr::bin(ast_bin_to_ir(bop), l, r), cty)
                    }
                };
                Ok(vec![ir::Stmt::Store {
                    buf,
                    idx,
                    value: cast_to(value, vty, ty),
                    dirty: false,
                    checked: false,
                }])
            }
            other => Err(self.err(other.span(), "invalid assignment target")),
        }
    }

    /// Handle `R op= e`, `R = R op e`, `R = e op R`, `R = min(R, e)`.
    #[allow(clippy::too_many_arguments)]
    fn lower_scalar_reduction(
        &mut self,
        slot: usize,
        id: LocalId,
        ty: Ty,
        op: AssignOp,
        rhs: &ast::Expr,
        span: Span,
        kc: &mut KernelCtx,
    ) -> Result<Vec<ir::Stmt>, Abort> {
        let red_op = kc.reductions[slot].op;
        let red_name = kc.reductions[slot].name.clone();
        let mismatch = |s: &mut Self| -> Abort {
            s.err(
                span,
                format!(
                    "update of reduction variable `{red_name}` does not match its \
                     declared `{red_op:?}` operator"
                ),
            )
        };
        let contribution: &ast::Expr = match op {
            AssignOp::AddAssign if red_op == RmwOp::Add => rhs,
            AssignOp::MulAssign if red_op == RmwOp::Mul => rhs,
            AssignOp::Assign => match rhs {
                ast::Expr::Binary {
                    op: bop,
                    lhs: l2,
                    rhs: r2,
                    ..
                } if matches!(
                    (bop, red_op),
                    (BinaryOp::Add, RmwOp::Add) | (BinaryOp::Mul, RmwOp::Mul)
                ) =>
                {
                    if self.expr_is_local(l2, id) {
                        r2
                    } else if self.expr_is_local(r2, id) {
                        l2
                    } else {
                        return Err(mismatch(self));
                    }
                }
                ast::Expr::Call { name, args, .. }
                    if args.len() == 2
                        && matches!(
                            (ir::Builtin::from_name(name), red_op),
                            (Some(ir::Builtin::Min), RmwOp::Min)
                                | (Some(ir::Builtin::Max), RmwOp::Max)
                        ) =>
                {
                    if self.expr_is_local(&args[0], id) {
                        &args[1]
                    } else if self.expr_is_local(&args[1], id) {
                        &args[0]
                    } else {
                        return Err(mismatch(self));
                    }
                }
                _ => return Err(mismatch(self)),
            },
            _ => return Err(mismatch(self)),
        };
        let (value, vty) = self.lower_expr(contribution, Some(kc))?;
        Ok(vec![ir::Stmt::ReduceScalar {
            slot: slot as u32,
            op: red_op,
            value: cast_to(value, vty, ty),
        }])
    }

    fn lower_sections(&mut self, secs: &[directive::ArraySection]) -> Vec<TypedSection> {
        let mut out = Vec::new();
        for s in secs {
            let Ok((buf, _)) = self.resolve_array(&s.name, s.span) else {
                continue;
            };
            let range = match &s.range {
                None => None,
                Some((a, b)) => {
                    let Ok(a) = self.lower_index(a, None) else {
                        continue;
                    };
                    let Ok(b) = self.lower_index(b, None) else {
                        continue;
                    };
                    Some((a, b))
                }
            };
            out.push(TypedSection { buf, range });
        }
        out
    }

    fn lower_data_clauses(&mut self, clauses: &[directive::DataClause]) -> Vec<TypedDataClause> {
        clauses
            .iter()
            .map(|c| TypedDataClause {
                kind: c.kind,
                sections: self.lower_sections(&c.sections),
            })
            .collect()
    }

    // ================= parallel loops =================

    fn lower_parallel_loop(
        &mut self,
        dir: &directive::ParallelDirective,
        localaccess: &[directive::LocalAccess],
        loop_: &ast::Stmt,
        span: Span,
    ) -> Result<ParallelLoopNode, Abort> {
        let ast::Stmt::For {
            init,
            cond,
            step,
            body,
            span: fspan,
        } = loop_
        else {
            return Err(self.err(span, "parallel loop must annotate a for statement"));
        };

        self.scopes.push(HashMap::new());
        let result = self.lower_parallel_loop_inner(
            dir,
            localaccess,
            init.as_deref(),
            cond.as_ref(),
            step.as_ref(),
            body,
            *fspan,
            span,
        );
        self.scopes.pop();
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_parallel_loop_inner(
        &mut self,
        dir: &directive::ParallelDirective,
        localaccess: &[directive::LocalAccess],
        init: Option<&ast::Stmt>,
        cond: Option<&ast::Expr>,
        step: Option<&ast::Expr>,
        body: &ast::Stmt,
        fspan: Span,
        span: Span,
    ) -> Result<ParallelLoopNode, Abort> {
        // --- canonical induction structure ---
        let (var, lo) = match init {
            Some(ast::Stmt::Decl {
                ty,
                decls,
                span: dspan,
            }) => {
                if *ty != CType::Int || decls.len() != 1 {
                    return Err(self.err(*dspan, "parallel loop variable must be a single int"));
                }
                let d = &decls[0];
                let Some(initial) = &d.init else {
                    return Err(self.err(*dspan, "parallel loop variable must be initialised"));
                };
                let (lo, loty) = self.lower_expr(initial, None)?;
                if loty != Ty::I32 {
                    return Err(self.err(*dspan, "parallel loop bounds must be int"));
                }
                let id = self.new_local(d.name.clone(), Ty::I32);
                self.bind(d.name.clone(), Binding::Scalar(id, Ty::I32), d.span);
                (id, lo)
            }
            Some(ast::Stmt::Expr(ast::Expr::Assign {
                op: AssignOp::Assign,
                lhs,
                rhs,
                span: aspan,
            })) => {
                let ast::Expr::Ident(name, ispan) = lhs.as_ref() else {
                    return Err(
                        self.err(*aspan, "parallel loop init must assign the loop variable")
                    );
                };
                let (id, ty) = self.resolve_scalar(name, *ispan)?;
                if ty != Ty::I32 {
                    return Err(self.err(*ispan, "parallel loop variable must be int"));
                }
                let (lo, loty) = self.lower_expr(rhs, None)?;
                if loty != Ty::I32 {
                    return Err(self.err(*aspan, "parallel loop bounds must be int"));
                }
                (id, lo)
            }
            _ => {
                return Err(self.err(
                    fspan,
                    "parallel loop must have the canonical form `for (i = lo; i < hi; i++)`",
                ))
            }
        };

        let hi = match cond {
            Some(ast::Expr::Binary {
                op: op @ (BinaryOp::Lt | BinaryOp::Le),
                lhs,
                rhs,
                span: cspan,
            }) => {
                if !self.expr_is_local(lhs, var) {
                    return Err(self.err(
                        *cspan,
                        "parallel loop condition must test the loop variable",
                    ));
                }
                let (hi, hty) = self.lower_expr(rhs, None)?;
                if hty != Ty::I32 {
                    return Err(self.err(*cspan, "parallel loop bounds must be int"));
                }
                if *op == BinaryOp::Le {
                    ir::Expr::add(hi, ir::Expr::imm_i32(1))
                } else {
                    hi
                }
            }
            _ => {
                return Err(self.err(
                    fspan,
                    "parallel loop condition must be `i < hi` or `i <= hi`",
                ))
            }
        };

        let step_ok = match step {
            Some(ast::Expr::Postfix {
                op: PostfixOp::PostInc,
                expr,
                ..
            })
            | Some(ast::Expr::Unary {
                op: UnaryOp::PreInc,
                expr,
                ..
            }) => self.expr_is_local(expr, var),
            Some(ast::Expr::Assign {
                op: AssignOp::AddAssign,
                lhs,
                rhs,
                ..
            }) => {
                self.expr_is_local(lhs, var) && matches!(rhs.as_ref(), ast::Expr::IntLit(1, _))
            }
            Some(ast::Expr::Assign {
                op: AssignOp::Assign,
                lhs,
                rhs,
                ..
            }) => {
                self.expr_is_local(lhs, var)
                    && matches!(rhs.as_ref(), ast::Expr::Binary {
                        op: BinaryOp::Add,
                        lhs: l2,
                        rhs: r2,
                        ..
                    } if self.expr_is_local(l2, var)
                        && matches!(r2.as_ref(), ast::Expr::IntLit(1, _)))
            }
            _ => false,
        };
        if !step_ok {
            return Err(self.err(fspan, "parallel loop step must increment by 1"));
        }

        // --- reduction clauses ---
        let mut reductions = Vec::new();
        for r in &dir.reductions {
            let (local, ty) = self.resolve_scalar(&r.var, r.span)?;
            let Some(op) = RmwOp::from_clause(&r.op) else {
                return Err(self.err(r.span, format!("unknown reduction operator `{}`", r.op)));
            };
            reductions.push(ScalarRed {
                local,
                name: r.var.clone(),
                ty,
                op,
            });
        }

        // --- kernel body ---
        let mut kc = KernelCtx {
            reductions,
            array_reductions: Vec::new(),
            loop_var: var,
        };
        let body_stmts = self.lower_kernel_stmt(body, &mut kc)?;

        // --- localaccess ---
        let mut typed_la: Vec<TypedLocalAccess> = Vec::new();
        for la in localaccess {
            let (buf, _) = self.resolve_array(&la.array, la.span)?;
            let stride = match &la.stride {
                Some(e) => self.lower_index(e, None)?,
                None => ir::Expr::imm_i32(1),
            };
            let left = match &la.left {
                Some(e) => self.lower_index(e, None)?,
                None => ir::Expr::imm_i32(0),
            };
            let right = match &la.right {
                Some(e) => self.lower_index(e, None)?,
                None => ir::Expr::imm_i32(0),
            };
            if typed_la.iter().any(|t| t.buf == buf) {
                return Err(self.err(
                    la.span,
                    format!("duplicate localaccess for `{}`", la.array),
                ));
            }
            typed_la.push(TypedLocalAccess {
                buf,
                stride,
                left,
                right,
            });
        }

        let data_clauses = self.lower_data_clauses(&dir.data_clauses);

        let name = format!("{}_k{}", self.func.name, self.kernel_count);
        self.kernel_count += 1;
        Ok(ParallelLoopNode {
            name,
            kind: dir.kind,
            var,
            lo,
            hi,
            body: body_stmts,
            reductions: kc.reductions,
            array_reductions: kc.array_reductions,
            localaccess: typed_la,
            data_clauses,
            span,
        })
    }

    // ================= kernel statements =================

    fn lower_kernel_block(
        &mut self,
        stmts: &[ast::Stmt],
        kc: &mut KernelCtx,
    ) -> Result<Vec<ir::Stmt>, Abort> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        let mut failed = false;
        for s in stmts {
            match self.lower_kernel_stmt(s, kc) {
                Ok(ss) => out.extend(ss),
                Err(Abort) => failed = true,
            }
        }
        self.scopes.pop();
        if failed {
            Err(Abort)
        } else {
            Ok(out)
        }
    }

    fn lower_kernel_stmt(
        &mut self,
        s: &ast::Stmt,
        kc: &mut KernelCtx,
    ) -> Result<Vec<ir::Stmt>, Abort> {
        match s {
            ast::Stmt::Empty(_) => Ok(vec![]),
            ast::Stmt::Block(b) => self.lower_kernel_block(&b.stmts, kc),
            ast::Stmt::Decl { ty, decls, span } => {
                let Some(ty) = ctype_to_ty(ty) else {
                    return Err(self.err(*span, "unsupported declaration type"));
                };
                let mut out = Vec::new();
                for d in decls {
                    let id = self.new_local(d.name.clone(), ty);
                    self.bind(d.name.clone(), Binding::Scalar(id, ty), d.span);
                    if let Some(init) = &d.init {
                        let (e, ety) = self.lower_expr(init, Some(kc))?;
                        out.push(ir::Stmt::Assign {
                            local: id,
                            value: cast_to(e, ety, ty),
                        });
                    }
                }
                Ok(out)
            }
            ast::Stmt::Expr(e) => self.lower_stmt_expr(e, Some(kc)),
            ast::Stmt::If {
                cond, then_, else_, ..
            } => {
                let (c, cty) = self.lower_expr(cond, Some(kc))?;
                let c = self.to_cond(c, cty);
                let then_ = self.lower_kernel_block(std::slice::from_ref(then_.as_ref()), kc)?;
                let else_ = match else_ {
                    Some(e) => self.lower_kernel_block(std::slice::from_ref(e.as_ref()), kc)?,
                    None => vec![],
                };
                Ok(vec![ir::Stmt::If {
                    cond: c,
                    then_,
                    else_,
                }])
            }
            ast::Stmt::While { cond, body, .. } => {
                let (c, cty) = self.lower_expr(cond, Some(kc))?;
                let c = self.to_cond(c, cty);
                let body = self.lower_kernel_block(std::slice::from_ref(body.as_ref()), kc)?;
                Ok(vec![ir::Stmt::While { cond: c, body }])
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                // Sequential loop inside the kernel: desugar to while.
                self.scopes.push(HashMap::new());
                let mut out = Vec::new();
                let r = (|| -> Result<(), Abort> {
                    if let Some(init) = init {
                        out.extend(self.lower_kernel_stmt(init, kc)?);
                    }
                    let c = match cond {
                        Some(c) => {
                            let (e, ty) = self.lower_expr(c, Some(kc))?;
                            self.to_cond(e, ty)
                        }
                        None => ir::Expr::Imm(Value::Bool(true)),
                    };
                    if block_contains_continue(body) {
                        return Err(self.err(
                            *span,
                            "`continue` inside a `for` body is not supported; rewrite as `while`",
                        ));
                    }
                    let mut wbody = self.lower_kernel_stmt(body, kc)?;
                    if let Some(step) = step {
                        wbody.extend(self.lower_stmt_expr(step, Some(kc))?);
                    }
                    out.push(ir::Stmt::While {
                        cond: c,
                        body: wbody,
                    });
                    Ok(())
                })();
                self.scopes.pop();
                r.map(|_| out)
            }
            ast::Stmt::Break(_) => Ok(vec![ir::Stmt::Break]),
            ast::Stmt::Continue(_) => Ok(vec![ir::Stmt::Continue]),
            ast::Stmt::Return(_, span) => {
                Err(self.err(*span, "return inside a parallel loop is not supported"))
            }
            ast::Stmt::ParallelLoop { span, .. } => Err(self.err(
                *span,
                "nested parallel loops are not supported (the paper's prototype is \
                 limited to one level of parallelism, §VI)",
            )),
            ast::Stmt::DataRegion { span, .. } | ast::Stmt::Update { span, .. } => Err(self.err(
                *span,
                "data/update directives may not appear inside a parallel loop",
            )),
            ast::Stmt::ReductionToArray { dir, stmt, span } => {
                self.lower_reduction_to_array(dir, stmt, *span, kc)
            }
        }
    }

    fn lower_reduction_to_array(
        &mut self,
        dir: &directive::ReductionToArrayDirective,
        stmt: &ast::Stmt,
        span: Span,
        kc: &mut KernelCtx,
    ) -> Result<Vec<ir::Stmt>, Abort> {
        let Some(op) = RmwOp::from_clause(&dir.op) else {
            return Err(self.err(span, format!("unknown reduction operator `{}`", dir.op)));
        };
        let (buf, ty) = self.resolve_array(&dir.array, span)?;

        let ast::Stmt::Expr(ast::Expr::Assign {
            op: aop,
            lhs,
            rhs,
            span: aspan,
        }) = stmt
        else {
            return Err(self.err(
                span,
                "reductiontoarray must annotate an assignment statement",
            ));
        };
        let ast::Expr::Index { base, idx, .. } = lhs.as_ref() else {
            return Err(self.err(*aspan, "reductiontoarray target must be an array element"));
        };
        let ast::Expr::Ident(name, _) = base.as_ref() else {
            return Err(self.err(*aspan, "reductiontoarray target must be a named array"));
        };
        if name != &dir.array {
            return Err(self.err(
                *aspan,
                format!(
                    "reductiontoarray names `{}` but the statement updates `{name}`",
                    dir.array
                ),
            ));
        }
        let idx_ir = self.lower_index(idx, Some(kc))?;

        // Identify the contribution expression per declared operator.
        // Structural "same element" comparison is done on the lowered IR
        // (the AST carries spans that would never compare equal).
        let target_load = ir::Expr::Load {
            buf,
            idx: Box::new(idx_ir.clone()),
        };
        let same_elem = |s: &mut Self, e: &ast::Expr| -> Result<bool, Abort> {
            let (lowered, _) = s.lower_expr(e, Some(kc))?;
            Ok(lowered == target_load)
        };
        let contribution: &ast::Expr = match (aop, op) {
            (AssignOp::AddAssign, RmwOp::Add) | (AssignOp::MulAssign, RmwOp::Mul) => rhs,
            (AssignOp::Assign, _) => match rhs.as_ref() {
                ast::Expr::Binary {
                    op: bop,
                    lhs: l2,
                    rhs: r2,
                    ..
                } if matches!(
                    (bop, op),
                    (BinaryOp::Add, RmwOp::Add) | (BinaryOp::Mul, RmwOp::Mul)
                ) =>
                {
                    if same_elem(self, l2)? {
                        r2
                    } else if same_elem(self, r2)? {
                        l2
                    } else {
                        return Err(self.err(
                            *aspan,
                            "reductiontoarray statement must read back the same element",
                        ));
                    }
                }
                ast::Expr::Call { name: cname, args, .. }
                    if args.len() == 2
                        && matches!(
                            (ir::Builtin::from_name(cname), op),
                            (Some(ir::Builtin::Min), RmwOp::Min)
                                | (Some(ir::Builtin::Max), RmwOp::Max)
                        ) =>
                {
                    if same_elem(self, &args[0])? {
                        &args[1]
                    } else if same_elem(self, &args[1])? {
                        &args[0]
                    } else {
                        return Err(self.err(
                            *aspan,
                            "reductiontoarray statement must read back the same element",
                        ));
                    }
                }
                _ => {
                    return Err(self.err(
                        *aspan,
                        "reductiontoarray statement does not match its declared operator",
                    ))
                }
            },
            _ => {
                return Err(self.err(
                    *aspan,
                    "reductiontoarray statement does not match its declared operator",
                ))
            }
        };
        let (value, vty) = self.lower_expr(contribution, Some(kc))?;

        let range = match &dir.range {
            None => None,
            Some((a, b)) => {
                let a = self.lower_index(a, None)?;
                let b = self.lower_index(b, None)?;
                Some((a, b))
            }
        };
        kc.array_reductions.push(ArrayRed { buf, op, range });

        Ok(vec![ir::Stmt::AtomicRmw {
            buf,
            idx: idx_ir,
            op,
            value: cast_to(value, vty, ty),
        }])
    }
}

/// Shallow scan for `continue` that does not descend into nested loops
/// (their `continue` targets the inner loop).
fn block_contains_continue(s: &ast::Stmt) -> bool {
    match s {
        ast::Stmt::Continue(_) => true,
        ast::Stmt::Block(b) => b.stmts.iter().any(block_contains_continue),
        ast::Stmt::If { then_, else_, .. } => {
            block_contains_continue(then_)
                || else_.as_deref().is_some_and(block_contains_continue)
        }
        ast::Stmt::ReductionToArray { stmt, .. } => block_contains_continue(stmt),
        _ => false,
    }
}

fn ast_bin_to_ir(op: BinaryOp) -> ir::BinOp {
    match op {
        BinaryOp::Add => ir::BinOp::Add,
        BinaryOp::Sub => ir::BinOp::Sub,
        BinaryOp::Mul => ir::BinOp::Mul,
        BinaryOp::Div => ir::BinOp::Div,
        BinaryOp::Rem => ir::BinOp::Rem,
        BinaryOp::Shl => ir::BinOp::Shl,
        BinaryOp::Shr => ir::BinOp::Shr,
        BinaryOp::Lt => ir::BinOp::Lt,
        BinaryOp::Le => ir::BinOp::Le,
        BinaryOp::Gt => ir::BinOp::Gt,
        BinaryOp::Ge => ir::BinOp::Ge,
        BinaryOp::Eq => ir::BinOp::Eq,
        BinaryOp::Ne => ir::BinOp::Ne,
        BinaryOp::BitAnd => ir::BinOp::And,
        BinaryOp::BitOr => ir::BinOp::Or,
        BinaryOp::BitXor => ir::BinOp::Xor,
        BinaryOp::LAnd => ir::BinOp::LAnd,
        BinaryOp::LOr => ir::BinOp::LOr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    fn ok(src: &str) -> TypedProgram {
        frontend(src).unwrap_or_else(|d| {
            panic!(
                "frontend failed: {}",
                d.iter()
                    .map(|d| d.render(src))
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        })
    }

    fn err_containing(src: &str, needle: &str) {
        match frontend(src) {
            Ok(_) => panic!("expected error containing `{needle}`"),
            Err(ds) => assert!(
                ds.iter().any(|d| d.message.contains(needle)),
                "no diagnostic contains `{needle}`: {ds:?}"
            ),
        }
    }

    #[test]
    fn simple_function_checks() {
        let p = ok("void f(int n, double *x) { int i = 0; x[i] = (double)n; }");
        let f = &p.functions[0];
        assert_eq!(f.scalar_params, vec![("n".to_string(), Ty::I32)]);
        assert_eq!(f.array_params, vec![("x".to_string(), Ty::F64)]);
        assert_eq!(f.locals.len(), 2); // n, i
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn usual_conversions_inserted() {
        let p = ok("void f(int n, double d) { d = d + n; }");
        let HostStmt::Plain(ir::Stmt::Assign { value, .. }) = &p.functions[0].body[0] else {
            panic!()
        };
        let ir::Expr::Binary { b, .. } = value else {
            panic!("{value:?}")
        };
        assert!(matches!(b.as_ref(), ir::Expr::Cast { ty: Ty::F64, .. }));
    }

    #[test]
    fn parallel_loop_canonicalized() {
        let p = ok("void f(int n, double *x) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) x[i] = 1.0;\n\
             }");
        let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(node.name, "f_k0");
        assert!(matches!(node.lo, ir::Expr::Imm(Value::I32(0))));
        assert!(matches!(node.hi, ir::Expr::Local(_)));
        assert_eq!(node.body.len(), 1);
    }

    #[test]
    fn le_bound_becomes_exclusive() {
        let p = ok("void f(int n, double *x) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i <= n; i++) x[i] = 1.0;\n\
             }");
        let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            &node.hi,
            ir::Expr::Binary {
                op: ir::BinOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn non_canonical_loops_rejected() {
        err_containing(
            "void f(int n, double *x) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i += 2) x[i] = 1.0;\n\
             }",
            "increment by 1",
        );
        err_containing(
            "void f(int n, double *x) {\n\
             #pragma acc parallel loop\n\
             for (int i = n; i > 0; i++) x[i] = 1.0;\n\
             }",
            "i < hi",
        );
    }

    #[test]
    fn loop_var_write_rejected() {
        err_containing(
            "void f(int n, double *x) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) { i = 3; x[i] = 1.0; }\n\
             }",
            "loop variable",
        );
    }

    #[test]
    fn scalar_reduction_lowered() {
        let p = ok("void f(int n, double *x, double s) {\n\
             #pragma acc parallel loop reduction(+:s)\n\
             for (int i = 0; i < n; i++) s += x[i];\n\
             }");
        let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(node.reductions.len(), 1);
        assert_eq!(node.reductions[0].op, RmwOp::Add);
        assert!(matches!(
            node.body[0],
            ir::Stmt::ReduceScalar { slot: 0, .. }
        ));
    }

    #[test]
    fn reduction_explicit_form_lowered() {
        let p = ok("void f(int n, double *x, double s) {\n\
             #pragma acc parallel loop reduction(+:s)\n\
             for (int i = 0; i < n; i++) s = s + x[i];\n\
             }");
        let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(node.body[0], ir::Stmt::ReduceScalar { .. }));
    }

    #[test]
    fn reduction_min_via_call() {
        let p = ok("void f(int n, double *x, double s) {\n\
             #pragma acc parallel loop reduction(min:s)\n\
             for (int i = 0; i < n; i++) s = fmin(s, x[i]);\n\
             }");
        let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            node.body[0],
            ir::Stmt::ReduceScalar {
                op: RmwOp::Min,
                ..
            }
        ));
    }

    #[test]
    fn reduction_var_read_rejected() {
        err_containing(
            "void f(int n, double *x, double s) {\n\
             #pragma acc parallel loop reduction(+:s)\n\
             for (int i = 0; i < n; i++) x[i] = s;\n\
             }",
            "reduction variable",
        );
    }

    #[test]
    fn reduction_wrong_op_rejected() {
        err_containing(
            "void f(int n, double *x, double s) {\n\
             #pragma acc parallel loop reduction(+:s)\n\
             for (int i = 0; i < n; i++) s *= x[i];\n\
             }",
            "does not match",
        );
    }

    #[test]
    fn reductiontoarray_lowered_to_atomic() {
        let p = ok("void f(int n, int *m, double *e, double *v) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) {\n\
             #pragma acc reductiontoarray(+: e[8])\n\
             e[m[i]] += v[i];\n\
             }\n\
             }");
        let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(node.array_reductions.len(), 1);
        assert_eq!(node.array_reductions[0].op, RmwOp::Add);
        assert!(matches!(
            node.body[0],
            ir::Stmt::AtomicRmw {
                op: RmwOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn reductiontoarray_explicit_form() {
        let p = ok("void f(int n, int *m, double *e, double *v) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) {\n\
             #pragma acc reductiontoarray(min: e[8])\n\
             e[m[i]] = fmin(e[m[i]], v[i]);\n\
             }\n\
             }");
        let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            node.body[0],
            ir::Stmt::AtomicRmw {
                op: RmwOp::Min,
                ..
            }
        ));
    }

    #[test]
    fn reductiontoarray_wrong_array_rejected() {
        err_containing(
            "void f(int n, int *m, double *e, double *v) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) {\n\
             #pragma acc reductiontoarray(+: v[8])\n\
             e[m[i]] += v[i];\n\
             }\n\
             }",
            "updates `e`",
        );
    }

    #[test]
    fn localaccess_resolved() {
        let p = ok("void f(int n, int s, double *x, double *y) {\n\
             #pragma acc localaccess(x) stride(s) left(1)\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = x[i*s];\n\
             }");
        let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(node.localaccess.len(), 1);
        assert!(matches!(node.localaccess[0].stride, ir::Expr::Local(_)));
    }

    #[test]
    fn duplicate_localaccess_rejected() {
        err_containing(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc localaccess(x)\n\
             #pragma acc localaccess(x) stride(2)\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             }",
            "duplicate localaccess",
        );
    }

    #[test]
    fn nested_parallel_rejected() {
        err_containing(
            "void f(int n, double *x) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) {\n\
             #pragma acc parallel loop\n\
             for (int j = 0; j < n; j++) x[j] = 1.0;\n\
             }\n\
             }",
            "nested parallel loops",
        );
    }

    #[test]
    fn host_for_desugars_to_while() {
        let p = ok("void f(int n, int a) { for (int k = 0; k < n; k++) a += 1; }");
        assert!(matches!(p.functions[0].body[1], HostStmt::While { .. }));
    }

    #[test]
    fn kernel_inner_for_desugars() {
        let p = ok("void f(int n, double *x) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) {\n\
             double s = 0.0;\n\
             for (int j = 0; j < 4; j++) s += x[i*4+j];\n\
             x[i] = s;\n\
             }\n\
             }");
        let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(node
            .body
            .iter()
            .any(|s| matches!(s, ir::Stmt::While { .. })));
    }

    #[test]
    fn unknown_variable_reported() {
        err_containing("void f() { x = 1; }", "unknown variable");
    }

    #[test]
    fn unknown_function_reported() {
        err_containing("void f(double d) { d = mystery(d); }", "unknown function");
    }

    #[test]
    fn multidim_index_rejected() {
        err_containing(
            "void f(int n, double *x) { x[0][1] = 2.0; }",
            "1-D indexing",
        );
    }

    #[test]
    fn data_region_sections_resolved() {
        let p = ok("void f(int n, double *x) {\n\
             #pragma acc data copy(x[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) x[i] = 0.0;\n\
             }\n\
             }");
        let HostStmt::DataRegion { clauses, body } = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].sections.len(), 1);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn update_resolved() {
        let p = ok("void f(int n, double *x) {\n\
             #pragma acc update host(x[0:n])\n\
             }");
        assert!(
            matches!(&p.functions[0].body[0], HostStmt::Update { host, .. } if host.len() == 1)
        );
    }

    #[test]
    fn return_value_rejected() {
        err_containing("void f(int a) { return a; }", "return with a value");
    }

    #[test]
    fn nonvoid_function_rejected() {
        err_containing("int f() { return 0; }", "only void functions");
    }

    #[test]
    fn assignment_as_value_rejected() {
        err_containing("void f(int a, int b) { a = b = 1; }", "assignment may not");
    }

    #[test]
    fn continue_in_for_rejected() {
        err_containing(
            "void f(int n, int a) { for (int i = 0; i < n; i++) { if (i) continue; a += 1; } }",
            "continue",
        );
    }

    #[test]
    fn shadowing_allowed_across_scopes() {
        ok("void f(int n) { int i = 0; { int i = 1; n = i; } n = i; }");
    }

    #[test]
    fn redeclaration_in_scope_rejected() {
        err_containing("void f() { int i; int i; }", "redeclared");
    }

    #[test]
    fn bool_condition_contexts() {
        ok("void f(int n, double d) { if (d) n = 1; while (n && d > 0.0) n = n - 1; }");
    }

    #[test]
    fn locals_include_kernel_temporaries() {
        let p = ok("void f(int n, double *x) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) { double t = x[i]; x[i] = t * t; }\n\
             }");
        // n, i, t
        assert_eq!(p.functions[0].locals.len(), 3);
    }

    #[test]
    fn reductiontoarray_outside_loop_rejected() {
        err_containing(
            "void f(int n, double *e, double *v) {\n\
             #pragma acc reductiontoarray(+: e[8])\n\
             e[0] += v[0];\n\
             }",
            "inside a parallel loop",
        );
    }
}
