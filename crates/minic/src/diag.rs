//! Source spans and diagnostics.

use std::fmt;

/// A byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A zero-width span at a position.
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// The smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// Whether `code` is shaped like a stable diagnostic code of this
/// toolchain: `ACC-` + family letter + three digits. The families are
/// `E` (frontend errors), `W` (lint warnings), `I` (inference
/// suggestions), `R` (runtime errors) and `S` (acc-serve errors).
///
/// This validates the *code space*, not membership: tools use it to
/// separate "malformed code" from "well-formed but unknown code" in
/// their `--explain`-style paths.
pub fn is_stable_code(code: &str) -> bool {
    let Some(rest) = code.strip_prefix("ACC-") else {
        return false;
    };
    let b = rest.as_bytes();
    b.len() == 4
        && matches!(b[0], b'E' | b'W' | b'I' | b'R' | b'S')
        && b[1..].iter().all(|c| c.is_ascii_digit())
}

/// A frontend diagnostic.
///
/// Diagnostics from well-defined analyses carry a stable machine-readable
/// code (e.g. `ACC-W001`); ad-hoc parse/type errors leave it `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub span: Span,
    pub message: String,
    /// Stable code, e.g. `ACC-W001`. Rendered as `warning[ACC-W001]: ...`.
    pub code: Option<&'static str>,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
            code: None,
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
            code: None,
        }
    }

    /// Attach a stable diagnostic code.
    pub fn with_code(mut self, code: &'static str) -> Diagnostic {
        self.code = Some(code);
        self
    }

    /// `"error"` / `"warning"`, with the code suffixed when present:
    /// `warning[ACC-W001]`. Codes in the informational `ACC-I` namespace
    /// render as `info[ACC-I003]` — they report something the analysis
    /// *proved*, not something to fix, and `acc-lint --deny-warnings`
    /// ignores them.
    fn sev_label(&self) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        match self.code {
            Some(c) if c.starts_with("ACC-I") => format!("info[{c}]"),
            Some(c) => format!("{sev}[{c}]"),
            None => sev.to_string(),
        }
    }

    /// Render with line/column resolved against the source.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{} at {line}:{col}: {}", self.sev_label(), self.message)
    }

    /// Render compiler-style with the offending source line and a caret
    /// under the span:
    ///
    /// ```text
    /// error: unknown variable `x`
    ///   --> 3:5
    ///    |
    ///  3 |     x = 1;
    ///    |     ^^^
    /// ```
    pub fn render_verbose(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        let sev = self.sev_label();
        let src_line = src.lines().nth(line - 1).unwrap_or("");
        let width = line.to_string().len().max(2);
        let carets = (self.span.end - self.span.start)
            .clamp(1, src_line.len().saturating_sub(col - 1).max(1));
        format!(
            "{sev}: {}\n{:>width$}--> {line}:{col}\n{:>width$} |\n{line:>width$} | {src_line}\n\
             {:>width$} | {}{}",
            self.message,
            "",
            "",
            "",
            " ".repeat(col - 1),
            "^".repeat(carets),
            width = width + 1,
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.sev_label(), self.message)
    }
}
impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_resolution() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::point(0).line_col(src), (1, 1));
        assert_eq!(Span::point(4).line_col(src), (2, 1));
        assert_eq!(Span::point(6).line_col(src), (2, 3));
        assert_eq!(Span::point(9).line_col(src), (3, 2));
    }

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
    }

    #[test]
    fn render_contains_position() {
        let d = Diagnostic::error(Span::point(4), "unexpected token");
        assert_eq!(d.render("abc\ndef"), "error at 2:1: unexpected token");
    }

    #[test]
    fn render_verbose_shows_caret_under_span() {
        let src = "void f() {\n  x = 1;\n}";
        // `x` is at byte 13 (line 2, col 3).
        let d = Diagnostic::error(Span::new(13, 14), "unknown variable `x`");
        let out = d.render_verbose(src);
        assert!(out.contains("error: unknown variable `x`"), "{out}");
        assert!(out.contains("--> 2:3"), "{out}");
        assert!(out.contains("2 |   x = 1;"), "{out}");
        let caret_line = out.lines().last().unwrap();
        assert_eq!(caret_line.trim_end(), "    |   ^", "{out}");
    }

    #[test]
    fn code_appears_in_all_render_forms() {
        let d = Diagnostic::warning(Span::point(0), "stores overlap").with_code("ACC-W001");
        assert_eq!(d.render("x"), "warning[ACC-W001] at 1:1: stores overlap");
        assert_eq!(d.to_string(), "warning[ACC-W001]: stores overlap");
        assert!(d.render_verbose("x").starts_with("warning[ACC-W001]: "));
        // Codeless diagnostics render exactly as before.
        let plain = Diagnostic::error(Span::point(0), "oops");
        assert_eq!(plain.render("x"), "error at 1:1: oops");
        // Informational codes get the `info` label regardless of the
        // carrier severity.
        let info = Diagnostic::warning(Span::point(0), "distance proved").with_code("ACC-I003");
        assert_eq!(info.render("x"), "info[ACC-I003] at 1:1: distance proved");
    }

    #[test]
    fn render_verbose_handles_spans_past_line_end() {
        let src = "ab";
        let d = Diagnostic::error(Span::new(0, 100), "huge span");
        let out = d.render_verbose(src);
        assert!(out.contains("^^"), "{out}");
        assert!(!out.contains("^^^"), "{out}");
    }
}
