//! The typed, resolved program representation produced by [`crate::sema`].
//!
//! Scalar code is lowered straight into `acc-kernel-ir` statements so the
//! translator and the host interpreter share one expression language.
//! OpenACC constructs stay structured: data regions, updates and parallel
//! loops are explicit nodes the translator in `acc-compiler` consumes.
//!
//! Conventions:
//!
//! * all scalars of a function (by-value parameters first, then every
//!   declared local, including kernel-side temporaries) live in one flat
//!   slot space indexed by [`ir::LocalId`];
//! * every pointer parameter is an array; arrays are indexed by position
//!   ([`ir::BufId`]) in declaration order;
//! * non-parallel `for` loops are desugared to `While`; parallel loops
//!   keep their canonical `for (v = lo; v < hi; v++)` structure.

use acc_kernel_ir as ir;

use crate::diag::Span;
use crate::directive::{DataClauseKind, ParallelKind};

/// A type-checked translation unit.
#[derive(Debug, Clone)]
pub struct TypedProgram {
    pub functions: Vec<TypedFunction>,
}

impl TypedProgram {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&TypedFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A type-checked function.
#[derive(Debug, Clone)]
pub struct TypedFunction {
    pub name: String,
    /// By-value scalar parameters `(name, ty)`; they occupy local slots
    /// `0..scalar_params.len()` and are initialised from caller inputs.
    pub scalar_params: Vec<(String, ir::Ty)>,
    /// Pointer parameters `(name, element ty)`; `BufId(i)` is the i-th.
    pub array_params: Vec<(String, ir::Ty)>,
    /// All scalar slots: parameters first, then declared locals.
    pub locals: Vec<(String, ir::Ty)>,
    pub body: Vec<HostStmt>,
    pub span: Span,
}

/// A host-side statement.
#[derive(Debug, Clone)]
pub enum HostStmt {
    /// Plain scalar/array code with no OpenACC constructs inside.
    Plain(ir::Stmt),
    /// Host `if` that may contain OpenACC constructs in its branches.
    If {
        cond: ir::Expr,
        then_: Vec<HostStmt>,
        else_: Vec<HostStmt>,
    },
    /// Host `while` (or desugared `for`) that may contain OpenACC
    /// constructs in its body.
    While { cond: ir::Expr, body: Vec<HostStmt> },
    /// `#pragma acc data ...` region.
    DataRegion {
        clauses: Vec<TypedDataClause>,
        body: Vec<HostStmt>,
    },
    /// A combined parallel/kernels loop.
    ParallelLoop(Box<ParallelLoopNode>),
    /// `#pragma acc update`.
    Update {
        host: Vec<TypedSection>,
        device: Vec<TypedSection>,
    },
    /// `return;` — stops host execution of the function.
    Return,
}

/// A resolved array (sub)section. `range` expressions are evaluated on the
/// host frame; `None` means the whole array.
#[derive(Debug, Clone)]
pub struct TypedSection {
    pub buf: ir::BufId,
    pub range: Option<(ir::Expr, ir::Expr)>,
}

/// A resolved data clause.
#[derive(Debug, Clone)]
pub struct TypedDataClause {
    pub kind: DataClauseKind,
    pub sections: Vec<TypedSection>,
}

/// A scalar reduction of a parallel loop.
#[derive(Debug, Clone)]
pub struct ScalarRed {
    /// The host local the result merges back into.
    pub local: ir::LocalId,
    pub name: String,
    pub ty: ir::Ty,
    pub op: ir::RmwOp,
}

/// A `reductiontoarray` destination of a parallel loop.
#[derive(Debug, Clone)]
pub struct ArrayRed {
    pub buf: ir::BufId,
    pub op: ir::RmwOp,
    /// Host-evaluated index range `(start, len)`; `None` = whole array.
    pub range: Option<(ir::Expr, ir::Expr)>,
}

/// A resolved `localaccess` annotation: iteration `i` reads
/// `buf[stride*i - left ..= stride*(i+1) - 1 + right]`.
#[derive(Debug, Clone)]
pub struct TypedLocalAccess {
    pub buf: ir::BufId,
    /// Host-evaluated at kernel launch (may reference host scalars, e.g.
    /// `stride(nfeatures)` in KMEANS).
    pub stride: ir::Expr,
    pub left: ir::Expr,
    pub right: ir::Expr,
}

/// A type-checked combined parallel loop — the unit the translator turns
/// into a kernel.
#[derive(Debug, Clone)]
pub struct ParallelLoopNode {
    /// Synthesised kernel name, `<function>_k<ordinal>`.
    pub name: String,
    pub kind: ParallelKind,
    /// The induction variable's local slot (type `int`).
    pub var: ir::LocalId,
    /// Inclusive lower bound, host-evaluated at launch.
    pub lo: ir::Expr,
    /// Exclusive upper bound, host-evaluated at launch.
    pub hi: ir::Expr,
    /// Kernel body in function-local terms: the induction variable still
    /// appears as `Local(var)`; the translator substitutes `ThreadIdx`.
    pub body: Vec<ir::Stmt>,
    pub reductions: Vec<ScalarRed>,
    pub array_reductions: Vec<ArrayRed>,
    pub localaccess: Vec<TypedLocalAccess>,
    pub data_clauses: Vec<TypedDataClause>,
    pub span: Span,
}
