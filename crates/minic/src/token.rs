//! Token definitions.

use crate::diag::Span;

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Token kinds of the mini-C dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    /// Float literal with `f` suffix (single precision).
    FloatLitF32(f32),

    // Keywords
    KwInt,
    KwFloat,
    KwDouble,
    KwVoid,
    KwFor,
    KwWhile,
    KwIf,
    KwElse,
    KwReturn,
    KwBreak,
    KwContinue,

    // A `#pragma ...` line, carried verbatim (content after `#pragma`).
    Pragma(String),

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,

    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "int" => TokenKind::KwInt,
            "float" => TokenKind::KwFloat,
            "double" => TokenKind::KwDouble,
            "void" => TokenKind::KwVoid,
            "for" => TokenKind::KwFor,
            "while" => TokenKind::KwWhile,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            _ => return None,
        })
    }
}
