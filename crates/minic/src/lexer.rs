//! The lexer.
//!
//! Straightforward hand-written scanner. `#pragma` lines are captured as
//! single [`TokenKind::Pragma`] tokens carrying the raw directive text;
//! the directive mini-parser in [`crate::directive`] re-lexes that text
//! with this same lexer.

use crate::diag::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Lex a full source string.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();

    while i < n {
        let c = bytes[i] as char;

        // Whitespace
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Comments
        if c == '/' && i + 1 < n {
            match bytes[i + 1] as char {
                '/' => {
                    while i < n && bytes[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    let start = i;
                    i += 2;
                    loop {
                        if i + 1 >= n {
                            return Err(Diagnostic::error(
                                Span::new(start, n),
                                "unterminated block comment",
                            ));
                        }
                        if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                    continue;
                }
                _ => {}
            }
        }

        // Preprocessor: only `#pragma` survives (includes/defines are not
        // part of the dialect; `#include` lines are skipped for
        // convenience so sources can look like real C files).
        if c == '#' {
            let start = i;
            let mut j = i;
            while j < n && bytes[j] != b'\n' {
                j += 1;
            }
            let line = &src[i..j];
            i = j;
            let rest = line[1..].trim_start();
            if let Some(body) = rest.strip_prefix("pragma") {
                out.push(Token {
                    kind: TokenKind::Pragma(body.trim().to_string()),
                    span: Span::new(start, j),
                });
            } else if rest.starts_with("include") || rest.starts_with("define") {
                // Ignored.
            } else {
                return Err(Diagnostic::error(
                    Span::new(start, j),
                    format!("unsupported preprocessor line: `{line}`"),
                ));
            }
            continue;
        }

        // Numbers
        if c.is_ascii_digit() || (c == '.' && i + 1 < n && (bytes[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < n && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < n && bytes[i] == b'.' {
                is_float = true;
                i += 1;
                while i < n && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
                is_float = true;
                i += 1;
                if i < n && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
                while i < n && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &src[start..i];
            let span = Span::new(start, i);
            // Suffixes
            if i < n && (bytes[i] == b'f' || bytes[i] == b'F') {
                i += 1;
                let v: f32 = text.parse().map_err(|_| {
                    Diagnostic::error(span, format!("invalid float literal `{text}`"))
                })?;
                out.push(Token {
                    kind: TokenKind::FloatLitF32(v),
                    span,
                });
                continue;
            }
            if is_float {
                let v: f64 = text.parse().map_err(|_| {
                    Diagnostic::error(span, format!("invalid float literal `{text}`"))
                })?;
                out.push(Token {
                    kind: TokenKind::FloatLit(v),
                    span,
                });
            } else {
                let v: i64 = text.parse().map_err(|_| {
                    Diagnostic::error(span, format!("invalid integer literal `{text}`"))
                })?;
                out.push(Token {
                    kind: TokenKind::IntLit(v),
                    span,
                });
            }
            continue;
        }

        // Identifiers / keywords
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let text = &src[start..i];
            let kind = TokenKind::keyword(text)
                .unwrap_or_else(|| TokenKind::Ident(text.to_string()));
            out.push(Token {
                kind,
                span: Span::new(start, i),
            });
            continue;
        }

        // Operators and punctuation (longest match first)
        let two = if i + 1 < n { &src[i..i + 2] } else { "" };
        let (kind, len) = match two {
            "<<" => (TokenKind::Shl, 2),
            ">>" => (TokenKind::Shr, 2),
            "<=" => (TokenKind::Le, 2),
            ">=" => (TokenKind::Ge, 2),
            "==" => (TokenKind::EqEq, 2),
            "!=" => (TokenKind::Ne, 2),
            "&&" => (TokenKind::AmpAmp, 2),
            "||" => (TokenKind::PipePipe, 2),
            "+=" => (TokenKind::PlusAssign, 2),
            "-=" => (TokenKind::MinusAssign, 2),
            "*=" => (TokenKind::StarAssign, 2),
            "/=" => (TokenKind::SlashAssign, 2),
            "++" => (TokenKind::PlusPlus, 2),
            "--" => (TokenKind::MinusMinus, 2),
            _ => {
                let k = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ';' => TokenKind::Semi,
                    ',' => TokenKind::Comma,
                    ':' => TokenKind::Colon,
                    '?' => TokenKind::Question,
                    '+' => TokenKind::Plus,
                    '-' => TokenKind::Minus,
                    '*' => TokenKind::Star,
                    '/' => TokenKind::Slash,
                    '%' => TokenKind::Percent,
                    '&' => TokenKind::Amp,
                    '|' => TokenKind::Pipe,
                    '^' => TokenKind::Caret,
                    '~' => TokenKind::Tilde,
                    '!' => TokenKind::Bang,
                    '<' => TokenKind::Lt,
                    '>' => TokenKind::Gt,
                    '=' => TokenKind::Assign,
                    _ => {
                        return Err(Diagnostic::error(
                            Span::point(i),
                            format!("unexpected character `{c}`"),
                        ))
                    }
                };
                (k, 1)
            }
        };
        out.push(Token {
            kind,
            span: Span::new(i, i + len),
        });
        i += len;
    }

    out.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(n),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int i = 0;"),
            vec![
                T::KwInt,
                T::Ident("i".into()),
                T::Assign,
                T::IntLit(0),
                T::Semi,
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats() {
        assert_eq!(
            kinds("1.5 2e3 0.5f 7"),
            vec![
                T::FloatLit(1.5),
                T::FloatLit(2000.0),
                T::FloatLitF32(0.5),
                T::IntLit(7),
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_match() {
        assert_eq!(
            kinds("a <= b << c <+ d += ++e"),
            vec![
                T::Ident("a".into()),
                T::Le,
                T::Ident("b".into()),
                T::Shl,
                T::Ident("c".into()),
                T::Lt,
                T::Plus,
                T::Ident("d".into()),
                T::PlusAssign,
                T::PlusPlus,
                T::Ident("e".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line\n /* block\n more */ b"),
            vec![T::Ident("a".into()), T::Ident("b".into()), T::Eof]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn captures_pragma_lines() {
        let ks = kinds("#pragma acc parallel loop\nfor(;;) ;");
        assert_eq!(ks[0], T::Pragma("acc parallel loop".into()));
        assert_eq!(ks[1], T::KwFor);
    }

    #[test]
    fn skips_includes() {
        assert_eq!(kinds("#include <math.h>\nx"), vec![T::Ident("x".into()), T::Eof]);
    }

    #[test]
    fn rejects_unknown_preprocessor() {
        assert!(lex("#if 0").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("int i = $;").is_err());
    }

    #[test]
    fn keywords_recognized() {
        assert_eq!(
            kinds("for while if else return break continue void double float"),
            vec![
                T::KwFor,
                T::KwWhile,
                T::KwIf,
                T::KwElse,
                T::KwReturn,
                T::KwBreak,
                T::KwContinue,
                T::KwVoid,
                T::KwDouble,
                T::KwFloat,
                T::Eof
            ]
        );
    }
}
