//! The untyped abstract syntax tree produced by the parser.

use crate::diag::Span;
use crate::directive::{
    DataDirective, LocalAccess, ParallelDirective, ReductionToArrayDirective, UpdateDirective,
};

/// A C type in the dialect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    Int,
    Float,
    Double,
    Void,
    /// Pointer to a scalar element type — used for 1-D array parameters.
    Ptr(Box<CType>),
}

impl CType {
    /// Whether this is a scalar arithmetic type.
    pub fn is_scalar(&self) -> bool {
        matches!(self, CType::Int | CType::Float | CType::Double)
    }
}

impl std::fmt::Display for CType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CType::Int => write!(f, "int"),
            CType::Float => write!(f, "float"),
            CType::Double => write!(f, "double"),
            CType::Void => write!(f, "void"),
            CType::Ptr(t) => write!(f, "{t} *"),
        }
    }
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub ret: CType,
    pub params: Vec<Param>,
    pub body: Block,
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: CType,
    pub span: Span,
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// One declarator in a declaration (`int a = 0, b;` has two).
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    pub name: String,
    pub init: Option<Expr>,
    pub span: Span,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar declaration(s).
    Decl {
        ty: CType,
        decls: Vec<Declarator>,
        span: Span,
    },
    /// Expression statement.
    Expr(Expr),
    /// Empty statement (`;`).
    Empty(Span),
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
        span: Span,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
        span: Span,
    },
    If {
        cond: Expr,
        then_: Box<Stmt>,
        else_: Option<Box<Stmt>>,
        span: Span,
    },
    Return(Option<Expr>, Span),
    Break(Span),
    Continue(Span),
    Block(Block),

    /// `#pragma acc data ...` followed by a statement/block.
    DataRegion {
        dir: DataDirective,
        body: Box<Stmt>,
        span: Span,
    },
    /// `#pragma acc parallel loop ...` (optionally preceded/followed by
    /// `localaccess` pragmas) followed by a `for` statement.
    ParallelLoop {
        dir: ParallelDirective,
        localaccess: Vec<LocalAccess>,
        loop_: Box<Stmt>,
        span: Span,
    },
    /// `#pragma acc update ...`.
    Update { dir: UpdateDirective, span: Span },
    /// `#pragma acc reductiontoarray(...)` attached to the next statement.
    ReductionToArray {
        dir: ReductionToArrayDirective,
        stmt: Box<Stmt>,
        span: Span,
    },
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::Empty(span)
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Return(_, span)
            | Stmt::Break(span)
            | Stmt::Continue(span)
            | Stmt::DataRegion { span, .. }
            | Stmt::ParallelLoop { span, .. }
            | Stmt::Update { span, .. }
            | Stmt::ReductionToArray { span, .. } => *span,
            Stmt::Expr(e) => e.span(),
            Stmt::Block(b) => b
                .stmts
                .first()
                .map(|s| s.span())
                .unwrap_or_default(),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
    BitNot,
    PreInc,
    PreDec,
}

/// Postfix operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostfixOp {
    PostInc,
    PostDec,
}

/// Binary operators (C precedence handled by the parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LAnd,
    LOr,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
}

impl AssignOp {
    /// The underlying binary operator of a compound assignment.
    pub fn binary(self) -> Option<BinaryOp> {
        Some(match self {
            AssignOp::Assign => return None,
            AssignOp::AddAssign => BinaryOp::Add,
            AssignOp::SubAssign => BinaryOp::Sub,
            AssignOp::MulAssign => BinaryOp::Mul,
            AssignOp::DivAssign => BinaryOp::Div,
        })
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64, Span),
    F64Lit(f64, Span),
    F32Lit(f32, Span),
    Ident(String, Span),
    Index {
        base: Box<Expr>,
        idx: Box<Expr>,
        span: Span,
    },
    Call {
        name: String,
        args: Vec<Expr>,
        span: Span,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
        span: Span,
    },
    Postfix {
        op: PostfixOp,
        expr: Box<Expr>,
        span: Span,
    },
    Binary {
        op: BinaryOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    Assign {
        op: AssignOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    Ternary {
        cond: Box<Expr>,
        then_: Box<Expr>,
        else_: Box<Expr>,
        span: Span,
    },
    Cast {
        ty: CType,
        expr: Box<Expr>,
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s)
            | Expr::F64Lit(_, s)
            | Expr::F32Lit(_, s)
            | Expr::Ident(_, s)
            | Expr::Index { span: s, .. }
            | Expr::Call { span: s, .. }
            | Expr::Unary { span: s, .. }
            | Expr::Postfix { span: s, .. }
            | Expr::Binary { span: s, .. }
            | Expr::Assign { span: s, .. }
            | Expr::Ternary { span: s, .. }
            | Expr::Cast { span: s, .. } => *s,
        }
    }
}
