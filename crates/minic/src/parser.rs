//! Recursive-descent parser for the mini-C dialect.

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use crate::directive::{parse_directive, Directive, LocalAccess};
use crate::token::{Token, TokenKind};

/// Parse a token stream into a [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program, Diagnostic> {
    let mut p = Parser::new(tokens);
    let mut functions = Vec::new();
    while !p.at_eof() {
        functions.push(p.parse_function()?);
    }
    Ok(Program { functions })
}

/// Token-stream cursor; also reused by the directive mini-parser.
pub struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    /// Enclosing split parallel-region directive, if parsing inside one.
    region: Option<crate::directive::ParallelDirective>,
}

impl<'a> Parser<'a> {
    /// Create a cursor over `toks` (which must end with `Eof`).
    pub fn new(toks: &'a [Token]) -> Parser<'a> {
        Parser {
            toks,
            pos: 0,
            region: None,
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos.min(self.toks.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    fn bump(&mut self) -> &'a Token {
        let t = &self.toks[self.pos.min(self.toks.len() - 1)];
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    /// Save the cursor position (for bounded lookahead).
    pub fn clone_pos(&self) -> usize {
        self.pos
    }

    /// Restore a position saved with [`Parser::clone_pos`].
    pub fn restore_pos(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Consume the next token if it matches.
    pub fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consume an identifier, returning its text.
    pub fn eat_ident(&mut self) -> Option<String> {
        if let TokenKind::Ident(s) = self.peek() {
            let s = s.clone();
            self.bump();
            Some(s)
        } else {
            None
        }
    }

    /// Require a token.
    pub fn expect(&mut self, kind: &TokenKind, ctx: Span) -> Result<(), Diagnostic> {
        if self.eat(kind) {
            Ok(())
        } else {
            let span = if self.span() == Span::default() {
                ctx
            } else {
                self.span()
            };
            Err(Diagnostic::error(
                span,
                format!("expected {kind:?}, found {:?}", self.peek()),
            ))
        }
    }

    /// Entry point used by the directive parser for clause expressions.
    pub fn parse_expr_public(&mut self, _ctx: Span) -> Result<Expr, Diagnostic> {
        self.parse_assignment()
    }

    // ---- types ----

    fn peek_is_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt | TokenKind::KwFloat | TokenKind::KwDouble | TokenKind::KwVoid
        )
    }

    fn parse_base_type(&mut self) -> Result<CType, Diagnostic> {
        let t = match self.peek() {
            TokenKind::KwInt => CType::Int,
            TokenKind::KwFloat => CType::Float,
            TokenKind::KwDouble => CType::Double,
            TokenKind::KwVoid => CType::Void,
            other => {
                return Err(Diagnostic::error(
                    self.span(),
                    format!("expected type, found {other:?}"),
                ))
            }
        };
        self.bump();
        Ok(t)
    }

    // ---- functions ----

    fn parse_function(&mut self) -> Result<Function, Diagnostic> {
        let start = self.span();
        let ret = self.parse_base_type()?;
        let name = self
            .eat_ident()
            .ok_or_else(|| Diagnostic::error(self.span(), "expected function name"))?;
        self.expect(&TokenKind::LParen, start)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let pspan = self.span();
                let mut ty = self.parse_base_type()?;
                while self.eat(&TokenKind::Star) {
                    ty = CType::Ptr(Box::new(ty));
                }
                let pname = self
                    .eat_ident()
                    .ok_or_else(|| Diagnostic::error(self.span(), "expected parameter name"))?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, start)?;
        }
        let body = self.parse_block()?;
        Ok(Function {
            name,
            ret,
            params,
            body,
            span: start.merge(self.span()),
        })
    }

    fn parse_block(&mut self) -> Result<Block, Diagnostic> {
        let start = self.span();
        self.expect(&TokenKind::LBrace, start)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.at_eof() {
                return Err(Diagnostic::error(start, "unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(Block { stmts })
    }

    // ---- statements ----

    fn parse_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        match self.peek() {
            TokenKind::Pragma(_) => self.parse_pragma_stmt(),
            TokenKind::LBrace => Ok(Stmt::Block(self.parse_block()?)),
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Empty(span))
            }
            TokenKind::KwInt | TokenKind::KwFloat | TokenKind::KwDouble => self.parse_decl(),
            TokenKind::KwVoid => Err(Diagnostic::error(span, "void declaration")),
            TokenKind::KwFor => self.parse_for(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen, span)?;
                let cond = self.parse_assignment()?;
                self.expect(&TokenKind::RParen, span)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen, span)?;
                let cond = self.parse_assignment()?;
                self.expect(&TokenKind::RParen, span)?;
                let then_ = Box::new(self.parse_stmt()?);
                let else_ = if self.eat(&TokenKind::KwElse) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_,
                    else_,
                    span,
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let e = if self.eat(&TokenKind::Semi) {
                    None
                } else {
                    let e = self.parse_assignment()?;
                    self.expect(&TokenKind::Semi, span)?;
                    Some(e)
                };
                Ok(Stmt::Return(e, span))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi, span)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi, span)?;
                Ok(Stmt::Continue(span))
            }
            _ => {
                let e = self.parse_assignment()?;
                self.expect(&TokenKind::Semi, span)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_decl(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        let ty = self.parse_base_type()?;
        if matches!(self.peek(), TokenKind::Star) {
            return Err(Diagnostic::error(
                span,
                "pointer declarations are only allowed as function parameters",
            ));
        }
        let mut decls = Vec::new();
        loop {
            let dspan = self.span();
            let name = self
                .eat_ident()
                .ok_or_else(|| Diagnostic::error(self.span(), "expected declarator name"))?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.parse_assignment()?)
            } else {
                None
            };
            decls.push(Declarator {
                name,
                init,
                span: dspan,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semi, span)?;
        Ok(Stmt::Decl { ty, decls, span })
    }

    fn parse_for(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        self.bump(); // for
        self.expect(&TokenKind::LParen, span)?;
        let init = if self.eat(&TokenKind::Semi) {
            None
        } else if self.peek_is_type() {
            // C99-style `for (int i = 0; ...)`.
            Some(Box::new(self.parse_decl()?))
        } else {
            let e = self.parse_assignment()?;
            self.expect(&TokenKind::Semi, span)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.eat(&TokenKind::Semi) {
            None
        } else {
            let e = self.parse_assignment()?;
            self.expect(&TokenKind::Semi, span)?;
            Some(e)
        };
        let step = if matches!(self.peek(), TokenKind::RParen) {
            None
        } else {
            Some(self.parse_assignment()?)
        };
        self.expect(&TokenKind::RParen, span)?;
        let body = Box::new(self.parse_stmt()?);
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        })
    }

    /// Handle one-or-more consecutive pragma lines and attach them to the
    /// right following statement.
    #[allow(clippy::while_let_loop)] // the loop body borrows `self` twice
    fn parse_pragma_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        let mut parallel: Option<crate::directive::ParallelDirective> = None;
        let mut localaccess: Vec<LocalAccess> = Vec::new();

        loop {
            let TokenKind::Pragma(text) = self.peek() else { break };
            let text = text.clone();
            let pspan = self.span();
            let dir = parse_directive(&text, pspan)?;
            self.bump();
            match dir {
                None => {
                    // Non-acc pragma: ignore; if nothing else pending,
                    // continue scanning for pragmas or fall through.
                    if parallel.is_none() && localaccess.is_empty() {
                        if matches!(self.peek(), TokenKind::Pragma(_)) {
                            continue;
                        }
                        return self.parse_stmt();
                    }
                }
                Some(Directive::Data(d)) => {
                    if parallel.is_some() || !localaccess.is_empty() {
                        return Err(Diagnostic::error(
                            pspan,
                            "data directive cannot follow localaccess/parallel pragmas",
                        ));
                    }
                    let body = Box::new(self.parse_stmt()?);
                    return Ok(Stmt::DataRegion { dir: d, body, span });
                }
                Some(Directive::Update(d)) => {
                    if parallel.is_some() || !localaccess.is_empty() {
                        return Err(Diagnostic::error(
                            pspan,
                            "update directive cannot follow localaccess/parallel pragmas",
                        ));
                    }
                    return Ok(Stmt::Update { dir: d, span });
                }
                Some(Directive::ReductionToArray(d)) => {
                    if parallel.is_some() || !localaccess.is_empty() {
                        return Err(Diagnostic::error(
                            pspan,
                            "reductiontoarray cannot mix with loop-level pragmas",
                        ));
                    }
                    let stmt = Box::new(self.parse_stmt()?);
                    return Ok(Stmt::ReductionToArray { dir: d, stmt, span });
                }
                Some(Directive::LocalAccess(la)) => {
                    localaccess.push(la);
                }
                Some(Directive::ParallelLoop(d)) => {
                    if parallel.is_some() {
                        return Err(Diagnostic::error(
                            pspan,
                            "two parallel-loop directives on one loop",
                        ));
                    }
                    parallel = Some(d);
                }
                Some(Directive::ParallelRegion(d)) => {
                    if parallel.is_some() || !localaccess.is_empty() {
                        return Err(Diagnostic::error(
                            pspan,
                            "a parallel region cannot mix with loop-level pragmas",
                        ));
                    }
                    return self.parse_parallel_region(d, span);
                }
                Some(Directive::Loop(d)) => {
                    // Orphan `loop`: only valid inside a parallel region,
                    // where it merges with the region's clauses.
                    let Some(region) = self.region.clone() else {
                        return Err(Diagnostic::error(
                            pspan,
                            "`#pragma acc loop` outside of a parallel region; use the \
                             combined `#pragma acc parallel loop` form or wrap the loop \
                             in `#pragma acc parallel { ... }`",
                        ));
                    };
                    if parallel.is_some() {
                        return Err(Diagnostic::error(
                            pspan,
                            "two loop directives on one loop",
                        ));
                    }
                    parallel = Some(crate::directive::merge_region_loop(&region, &d));
                }
            }
        }

        // Pragmas consumed; now the annotated loop must follow.
        match parallel {
            Some(dir) => {
                let loop_stmt = self.parse_stmt()?;
                if !matches!(loop_stmt, Stmt::For { .. }) {
                    return Err(Diagnostic::error(
                        span,
                        "parallel loop directive must be followed by a for loop",
                    ));
                }
                Ok(Stmt::ParallelLoop {
                    dir,
                    localaccess,
                    loop_: Box::new(loop_stmt),
                    span,
                })
            }
            None => Err(Diagnostic::error(
                span,
                "localaccess directive without a parallel loop directive",
            )),
        }
    }

    /// Parse the split `#pragma acc parallel { ... }` region form (the
    /// paper's Fig. 1 shape): the following block may contain only
    /// declarations and `#pragma acc loop`-annotated loops; each loop
    /// becomes a parallel loop with the region's clauses merged in.
    fn parse_parallel_region(
        &mut self,
        dir: crate::directive::ParallelDirective,
        span: Span,
    ) -> Result<Stmt, Diagnostic> {
        if self.region.is_some() {
            return Err(Diagnostic::error(span, "nested parallel regions"));
        }
        self.region = Some(dir);
        let body = self.parse_stmt();
        self.region = None;
        let body = body?;
        let Stmt::Block(b) = body else {
            return Err(Diagnostic::error(
                span,
                "a split parallel region must be followed by a `{ ... }` block",
            ));
        };
        for s in &b.stmts {
            match s {
                Stmt::ParallelLoop { .. } | Stmt::Decl { .. } | Stmt::Empty(_) => {}
                other => {
                    return Err(Diagnostic::error(
                        other.span(),
                        "statements inside a split parallel region must be \
                         `#pragma acc loop`-annotated loops (or declarations); \
                         OpenACC's redundant gang execution is not supported",
                    ))
                }
            }
        }
        if !b.stmts.iter().any(|s| matches!(s, Stmt::ParallelLoop { .. })) {
            return Err(Diagnostic::error(
                span,
                "parallel region contains no `#pragma acc loop`",
            ));
        }
        Ok(Stmt::Block(b))
    }

    // ---- expressions (C precedence ladder) ----

    fn parse_assignment(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek() {
            TokenKind::Assign => AssignOp::Assign,
            TokenKind::PlusAssign => AssignOp::AddAssign,
            TokenKind::MinusAssign => AssignOp::SubAssign,
            TokenKind::StarAssign => AssignOp::MulAssign,
            TokenKind::SlashAssign => AssignOp::DivAssign,
            _ => return Ok(lhs),
        };
        let span = self.span();
        self.bump();
        let rhs = self.parse_assignment()?;
        Ok(Expr::Assign {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn parse_ternary(&mut self) -> Result<Expr, Diagnostic> {
        let cond = self.parse_binary(0)?;
        if self.eat(&TokenKind::Question) {
            let span = cond.span();
            let then_ = self.parse_assignment()?;
            self.expect(&TokenKind::Colon, span)?;
            let else_ = self.parse_ternary()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_: Box::new(then_),
                else_: Box::new(else_),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing over binary operators. Level 0 is `||`.
    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, Diagnostic> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::PipePipe => (BinaryOp::LOr, 0),
                TokenKind::AmpAmp => (BinaryOp::LAnd, 1),
                TokenKind::Pipe => (BinaryOp::BitOr, 2),
                TokenKind::Caret => (BinaryOp::BitXor, 3),
                TokenKind::Amp => (BinaryOp::BitAnd, 4),
                TokenKind::EqEq => (BinaryOp::Eq, 5),
                TokenKind::Ne => (BinaryOp::Ne, 5),
                TokenKind::Lt => (BinaryOp::Lt, 6),
                TokenKind::Le => (BinaryOp::Le, 6),
                TokenKind::Gt => (BinaryOp::Gt, 6),
                TokenKind::Ge => (BinaryOp::Ge, 6),
                TokenKind::Shl => (BinaryOp::Shl, 7),
                TokenKind::Shr => (BinaryOp::Shr, 7),
                TokenKind::Plus => (BinaryOp::Add, 8),
                TokenKind::Minus => (BinaryOp::Sub, 8),
                TokenKind::Star => (BinaryOp::Mul, 9),
                TokenKind::Slash => (BinaryOp::Div, 9),
                TokenKind::Percent => (BinaryOp::Rem, 9),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Bang => Some(UnaryOp::Not),
            TokenKind::Tilde => Some(UnaryOp::BitNot),
            TokenKind::PlusPlus => Some(UnaryOp::PreInc),
            TokenKind::MinusMinus => Some(UnaryOp::PreDec),
            TokenKind::Plus => {
                self.bump();
                return self.parse_unary();
            }
            // Cast: `(type) expr`
            TokenKind::LParen
                if matches!(
                    self.peek2(),
                    TokenKind::KwInt | TokenKind::KwFloat | TokenKind::KwDouble
                ) =>
            {
                self.bump();
                let ty = self.parse_base_type()?;
                if self.eat(&TokenKind::Star) {
                    return Err(Diagnostic::error(span, "pointer casts are not supported"));
                }
                self.expect(&TokenKind::RParen, span)?;
                let expr = self.parse_unary()?;
                return Ok(Expr::Cast {
                    ty,
                    expr: Box::new(expr),
                    span,
                });
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let expr = self.parse_unary()?;
                Ok(Expr::Unary {
                    op,
                    expr: Box::new(expr),
                    span,
                })
            }
            None => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.parse_primary()?;
        loop {
            let span = self.span();
            if self.eat(&TokenKind::LBracket) {
                let idx = self.parse_assignment()?;
                self.expect(&TokenKind::RBracket, span)?;
                e = Expr::Index {
                    base: Box::new(e),
                    idx: Box::new(idx),
                    span,
                };
            } else if self.eat(&TokenKind::PlusPlus) {
                e = Expr::Postfix {
                    op: PostfixOp::PostInc,
                    expr: Box::new(e),
                    span,
                };
            } else if self.eat(&TokenKind::MinusMinus) {
                e = Expr::Postfix {
                    op: PostfixOp::PostDec,
                    expr: Box::new(e),
                    span,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit(v, span))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::F64Lit(v, span))
            }
            TokenKind::FloatLitF32(v) => {
                self.bump();
                Ok(Expr::F32Lit(v, span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_assignment()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen, span)?;
                    }
                    Ok(Expr::Call { name, args, span })
                } else {
                    Ok(Expr::Ident(name, span))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_assignment()?;
                self.expect(&TokenKind::RParen, span)?;
                Ok(e)
            }
            other => Err(Diagnostic::error(
                span,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> Diagnostic {
        parse(&lex(src).unwrap()).unwrap_err()
    }

    #[test]
    fn parses_simple_function() {
        let p = parse_src("void f(int n, double *x) { int i = 0; i = i + 1; }");
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].ty, CType::Ptr(Box::new(CType::Double)));
        assert_eq!(f.body.stmts.len(), 2);
    }

    #[test]
    fn parses_for_loop() {
        let p = parse_src("void f(int n) { int i; for (i = 0; i < n; i++) { } }");
        let Stmt::For { init, cond, step, .. } = &p.functions[0].body.stmts[1] else {
            panic!()
        };
        assert!(init.is_some() && cond.is_some() && step.is_some());
    }

    #[test]
    fn parses_c99_for_decl() {
        let p = parse_src("void f(int n) { for (int i = 0; i < n; i++) ; }");
        let Stmt::For { init, .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(init.as_deref(), Some(Stmt::Decl { .. })));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("void f(int a, int b, int c, int r) { r = a + b * c; }");
        let Stmt::Expr(Expr::Assign { rhs, .. }) = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        let Expr::Binary { op: BinaryOp::Add, rhs: add_rhs, .. } = rhs.as_ref() else {
            panic!("expected Add at top, got {rhs:?}")
        };
        assert!(matches!(
            add_rhs.as_ref(),
            Expr::Binary { op: BinaryOp::Mul, .. }
        ));
    }

    #[test]
    fn parses_ternary_and_cast() {
        parse_src("void f(int a, double d) { d = a > 0 ? (double)a : 0.0; }");
    }

    #[test]
    fn parses_index_chain_and_calls() {
        parse_src("void f(double *x, int *idx, int i, double r) { r = sqrt(x[idx[i]] * 2.0); }");
    }

    #[test]
    fn parses_parallel_loop_with_localaccess() {
        let p = parse_src(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc localaccess(x) stride(1)\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             }",
        );
        let Stmt::ParallelLoop { localaccess, .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(localaccess.len(), 1);
        assert_eq!(localaccess[0].array, "x");
    }

    #[test]
    fn localaccess_after_parallel_also_attaches() {
        let p = parse_src(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc parallel loop\n\
             #pragma acc localaccess(x)\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             }",
        );
        let Stmt::ParallelLoop { localaccess, .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(localaccess.len(), 1);
    }

    #[test]
    fn parses_data_region() {
        let p = parse_src(
            "void f(int n, double *x) {\n\
             #pragma acc data copy(x[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) x[i] = 0.0;\n\
             }\n\
             }",
        );
        let Stmt::DataRegion { body, .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        let Stmt::Block(b) = body.as_ref() else { panic!() };
        assert!(matches!(b.stmts[0], Stmt::ParallelLoop { .. }));
    }

    #[test]
    fn parses_reductiontoarray_attachment() {
        let p = parse_src(
            "void f(int n, int *m, double *e, double *v) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) {\n\
             #pragma acc reductiontoarray(+: e[5])\n\
             e[m[i]] += v[i];\n\
             }\n\
             }",
        );
        let Stmt::ParallelLoop { loop_, .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        let Stmt::For { body, .. } = loop_.as_ref() else { panic!() };
        let Stmt::Block(b) = body.as_ref() else { panic!() };
        assert!(matches!(b.stmts[0], Stmt::ReductionToArray { .. }));
    }

    #[test]
    fn orphan_localaccess_rejected() {
        let e = parse_err(
            "void f(int n, double *x) {\n\
             #pragma acc localaccess(x)\n\
             x[0] = 1.0;\n\
             }",
        );
        assert!(e.message.contains("localaccess"));
    }

    #[test]
    fn parallel_without_for_rejected() {
        let e = parse_err(
            "void f(int n) {\n\
             #pragma acc parallel loop\n\
             n = 1;\n\
             }",
        );
        assert!(e.message.contains("for loop"));
    }

    #[test]
    fn local_pointer_decl_rejected() {
        let e = parse_err("void f() { int *p; }");
        assert!(e.message.contains("pointer declarations"));
    }

    #[test]
    fn parses_update_stmt() {
        let p = parse_src(
            "void f(int n, double *x) {\n\
             #pragma acc update host(x[0:n])\n\
             }",
        );
        assert!(matches!(p.functions[0].body.stmts[0], Stmt::Update { .. }));
    }

    #[test]
    fn parses_compound_assign_and_incdec() {
        parse_src("void f(int i, double s, double *x) { s += x[i]; s *= 2.0; i--; ++i; }");
    }

    #[test]
    fn non_acc_pragma_skipped() {
        let p = parse_src(
            "void f(int i) {\n\
             #pragma omp parallel for\n\
             i = 1;\n\
             }",
        );
        assert!(matches!(p.functions[0].body.stmts[0], Stmt::Expr(_)));
    }
}
