//! OpenACC directive types and the directive mini-parser.
//!
//! The lexer delivers every `#pragma` line as one token carrying the raw
//! text (e.g. `acc parallel loop reduction(+:sum) copyin(x[0:n])`).
//! [`parse_directive`] re-lexes that text and produces a structured
//! [`Directive`]. The grammar implemented here covers:
//!
//! ```text
//! acc data      {copy|copyin|copyout|create|present}(section,...)*
//! acc parallel loop  [gang] [worker] [vector] [num_gangs(e)]
//!                    [reduction(op:var)] [data clauses...]
//! acc kernels loop   — same clauses as parallel loop
//! acc update    {host|device|self}(section,...)*
//! acc localaccess(arr) [stride(e)] [left(e)] [right(e)]      (extension)
//! acc reductiontoarray(op: arr[len]) / (op: arr[lo:len])     (extension)
//! ```
//!
//! A *section* is `name` (whole array) or `name[start:len]` — OpenACC 1.0
//! subarray notation.

use crate::ast::Expr;
use crate::diag::{Diagnostic, Span};
use crate::lexer;
use crate::parser::Parser;
use crate::token::TokenKind;

/// Data-clause kinds of the `data` construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClauseKind {
    /// `copy`: copyin at region entry, copyout at exit.
    Copy,
    /// `copyin`: host→device at entry only.
    CopyIn,
    /// `copyout`: device→host at exit only (device array created at entry).
    CopyOut,
    /// `create`: device allocation only, no transfers.
    Create,
    /// `present`: assert the array is already on the device.
    Present,
}

/// An array (sub)section `name[start:len]` or a whole array `name`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySection {
    pub name: String,
    /// `None` means "the whole array" (length known to the runtime from
    /// the bound host buffer).
    pub range: Option<(Expr, Expr)>,
    pub span: Span,
}

/// One data clause with its sections.
#[derive(Debug, Clone, PartialEq)]
pub struct DataClause {
    pub kind: DataClauseKind,
    pub sections: Vec<ArraySection>,
}

/// `#pragma acc data ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct DataDirective {
    pub clauses: Vec<DataClause>,
    pub span: Span,
}

/// `reduction(op:var)` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionClause {
    /// Operator spelling: `+`, `*`, `min`, `max`.
    pub op: String,
    pub var: String,
    pub span: Span,
}

/// Which construct introduced a combined parallel loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelKind {
    Parallel,
    Kernels,
}

/// `#pragma acc parallel loop ...` / `#pragma acc kernels loop ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelDirective {
    pub kind: ParallelKind,
    /// Scheduling hints; accepted and recorded, advisory for the simulator.
    pub gang: bool,
    pub worker: bool,
    pub vector: bool,
    pub num_gangs: Option<Expr>,
    pub vector_length: Option<Expr>,
    pub reductions: Vec<ReductionClause>,
    pub data_clauses: Vec<DataClause>,
    pub span: Span,
}

/// `#pragma acc localaccess(arr) stride(e) left(e) right(e)` — the paper's
/// first extension (§III-C). Iteration `i` of the annotated loop reads
/// only `arr[stride*i - left ..= stride*(i+1) - 1 + right]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalAccess {
    pub array: String,
    /// Defaults to `1` when the clause is omitted.
    pub stride: Option<Expr>,
    /// Defaults to `0`.
    pub left: Option<Expr>,
    /// Defaults to `0`.
    pub right: Option<Expr>,
    pub span: Span,
}

/// `#pragma acc update host(...) device(...)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateDirective {
    pub host: Vec<ArraySection>,
    pub device: Vec<ArraySection>,
    pub span: Span,
}

/// `#pragma acc reductiontoarray(op: arr[len])` — the paper's second
/// extension (§III-C): the next statement is a reduction into a
/// dynamically indexed element of `arr`, whose index range is
/// `[0, len)` (or `[lo, lo+len)` with the two-expression form).
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionToArrayDirective {
    pub op: String,
    pub array: String,
    pub range: Option<(Expr, Expr)>,
    pub span: Span,
}

/// Any parsed `#pragma acc` directive.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    Data(DataDirective),
    /// Combined `parallel loop` / `kernels loop`.
    ParallelLoop(ParallelDirective),
    /// Split form: `#pragma acc parallel` / `#pragma acc kernels`
    /// followed by a block whose loops carry `#pragma acc loop` — the
    /// shape of the paper's Fig. 1 example.
    ParallelRegion(ParallelDirective),
    /// Orphan `#pragma acc loop`, only valid inside a parallel region;
    /// its clauses merge with the region's.
    Loop(ParallelDirective),
    Update(UpdateDirective),
    LocalAccess(LocalAccess),
    ReductionToArray(ReductionToArrayDirective),
}

/// Merge a region directive with an inner `loop` directive (clauses
/// combine; the construct kind comes from the region).
pub fn merge_region_loop(region: &ParallelDirective, lp: &ParallelDirective) -> ParallelDirective {
    let mut d = region.clone();
    d.gang |= lp.gang;
    d.worker |= lp.worker;
    d.vector |= lp.vector;
    if d.num_gangs.is_none() {
        d.num_gangs = lp.num_gangs.clone();
    }
    if d.vector_length.is_none() {
        d.vector_length = lp.vector_length.clone();
    }
    d.reductions.extend(lp.reductions.iter().cloned());
    d.data_clauses.extend(lp.data_clauses.iter().cloned());
    d.span = lp.span;
    d
}

/// Parse the text of one `#pragma` line (the part after `#pragma`).
/// Non-`acc` pragmas (e.g. `omp`) are returned as `Ok(None)` and ignored.
pub fn parse_directive(text: &str, span: Span) -> Result<Option<Directive>, Diagnostic> {
    let tokens = lexer::lex(text)
        .map_err(|d| Diagnostic::error(span, format!("in #pragma: {}", d.message)))?;
    let mut p = Parser::new(&tokens);

    let head = match p.eat_ident() {
        Some(s) => s,
        None => return Ok(None),
    };
    if head != "acc" {
        return Ok(None);
    }

    let kw = p
        .eat_ident()
        .ok_or_else(|| Diagnostic::error(span, "expected directive name after `acc`"))?;

    let dir = match kw.as_str() {
        "data" => Directive::Data(DataDirective {
            clauses: parse_data_clauses(&mut p, span, true)?,
            span,
        }),
        "parallel" | "kernels" => {
            let kind = if kw == "parallel" {
                ParallelKind::Parallel
            } else {
                ParallelKind::Kernels
            };
            // Combined form (`parallel loop`) or region form (`parallel`
            // followed by a block with inner `loop` directives).
            let save = p.clone_pos();
            let combined = matches!(p.eat_ident().as_deref(), Some("loop"));
            if !combined {
                p.restore_pos(save);
            }
            let d = parse_parallel_clauses(&mut p, kind, span)?;
            let Directive::ParallelLoop(d) = d else {
                unreachable!()
            };
            if combined {
                Directive::ParallelLoop(d)
            } else {
                Directive::ParallelRegion(d)
            }
        }
        "loop" => {
            let d = parse_parallel_clauses(&mut p, ParallelKind::Parallel, span)?;
            let Directive::ParallelLoop(d) = d else {
                unreachable!()
            };
            Directive::Loop(d)
        }
        "update" => {
            let mut u = UpdateDirective {
                span,
                ..Default::default()
            };
            loop {
                match p.eat_ident().as_deref() {
                    Some("host") | Some("self") => {
                        u.host.extend(parse_section_list(&mut p, span)?)
                    }
                    Some("device") => u.device.extend(parse_section_list(&mut p, span)?),
                    Some(other) => {
                        return Err(Diagnostic::error(
                            span,
                            format!("unknown update clause `{other}`"),
                        ))
                    }
                    None => break,
                }
            }
            if u.host.is_empty() && u.device.is_empty() {
                return Err(Diagnostic::error(
                    span,
                    "update directive needs host(...) or device(...)",
                ));
            }
            Directive::Update(u)
        }
        "localaccess" => {
            p.expect(&TokenKind::LParen, span)?;
            let array = p
                .eat_ident()
                .ok_or_else(|| Diagnostic::error(span, "expected array name in localaccess"))?;
            p.expect(&TokenKind::RParen, span)?;
            let mut la = LocalAccess {
                array,
                stride: None,
                left: None,
                right: None,
                span,
            };
            loop {
                // Optional separating commas between clauses.
                let _ = p.eat(&TokenKind::Comma);
                match p.eat_ident().as_deref() {
                    Some("stride") => la.stride = Some(parse_paren_expr(&mut p, span)?),
                    Some("left") => la.left = Some(parse_paren_expr(&mut p, span)?),
                    Some("right") => la.right = Some(parse_paren_expr(&mut p, span)?),
                    Some(other) => {
                        return Err(Diagnostic::error(
                            span,
                            format!("unknown localaccess clause `{other}`"),
                        ))
                    }
                    None => break,
                }
            }
            validate_localaccess(&la)?;
            Directive::LocalAccess(la)
        }
        "reductiontoarray" => {
            p.expect(&TokenKind::LParen, span)?;
            let op = parse_reduction_op(&mut p, span)?;
            p.expect(&TokenKind::Colon, span)?;
            let array = p.eat_ident().ok_or_else(|| {
                Diagnostic::error(span, "expected array name in reductiontoarray")
            })?;
            let range = if p.eat(&TokenKind::LBracket) {
                let a = p.parse_expr_public(span)?;
                let r = if p.eat(&TokenKind::Colon) {
                    let b = p.parse_expr_public(span)?;
                    Some((a, b))
                } else {
                    // Single expression = length with start 0.
                    Some((Expr::IntLit(0, span), a))
                };
                p.expect(&TokenKind::RBracket, span)?;
                r
            } else {
                None
            };
            p.expect(&TokenKind::RParen, span)?;
            Directive::ReductionToArray(ReductionToArrayDirective {
                op,
                array,
                range,
                span,
            })
        }
        other => {
            return Err(Diagnostic::error(
                span,
                format!("unknown OpenACC directive `{other}`"),
            ))
        }
    };

    if !p.at_eof() {
        return Err(Diagnostic::error(
            span,
            "trailing tokens at end of directive",
        ));
    }
    Ok(Some(dir))
}

fn parse_reduction_op(p: &mut Parser<'_>, span: Span) -> Result<String, Diagnostic> {
    if p.eat(&TokenKind::Plus) {
        return Ok("+".to_string());
    }
    if p.eat(&TokenKind::Star) {
        return Ok("*".to_string());
    }
    match p.eat_ident().as_deref() {
        Some("min") => Ok("min".to_string()),
        Some("max") => Ok("max".to_string()),
        _ => Err(Diagnostic::error(
            span,
            "expected reduction operator (+, *, min, max)",
        )),
    }
}

fn parse_paren_expr(p: &mut Parser<'_>, span: Span) -> Result<Expr, Diagnostic> {
    p.expect(&TokenKind::LParen, span)?;
    let e = p.parse_expr_public(span)?;
    p.expect(&TokenKind::RParen, span)?;
    Ok(e)
}

/// Fold an integer-constant clause argument. `None` for runtime
/// expressions (idents etc.), which are validated at launch time instead.
fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::IntLit(v, _) => Some(*v),
        Expr::Unary {
            op: crate::ast::UnaryOp::Neg,
            expr,
            ..
        } => const_int(expr).map(|v| -v),
        Expr::Binary { op, lhs, rhs, .. } => {
            let (a, b) = (const_int(lhs)?, const_int(rhs)?);
            match op {
                crate::ast::BinaryOp::Add => Some(a + b),
                crate::ast::BinaryOp::Sub => Some(a - b),
                crate::ast::BinaryOp::Mul => Some(a * b),
                crate::ast::BinaryOp::Div if b != 0 => Some(a / b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Reject `localaccess` clause values that are provably meaningless:
/// `stride` must be positive, `left`/`right` non-negative (the declared
/// read window `[stride*i - left, stride*(i+1) - 1 + right]` degenerates
/// otherwise). Runtime-valued clauses are re-checked at launch.
fn validate_localaccess(la: &LocalAccess) -> Result<(), Diagnostic> {
    if let Some(s) = &la.stride {
        if let Some(v) = const_int(s) {
            if v < 1 {
                return Err(Diagnostic::error(
                    s.span(),
                    format!("localaccess stride must be positive, got {v}"),
                )
                .with_code("ACC-E001"));
            }
        }
    }
    for (name, e) in [("left", &la.left), ("right", &la.right)] {
        if let Some(e) = e {
            if let Some(v) = const_int(e) {
                if v < 0 {
                    return Err(Diagnostic::error(
                        e.span(),
                        format!("localaccess {name} must be non-negative, got {v}"),
                    )
                    .with_code("ACC-E002"));
                }
            }
        }
    }
    Ok(())
}

fn parse_parallel_clauses(
    p: &mut Parser<'_>,
    kind: ParallelKind,
    span: Span,
) -> Result<Directive, Diagnostic> {
    let mut d = ParallelDirective {
        kind,
        gang: false,
        worker: false,
        vector: false,
        num_gangs: None,
        vector_length: None,
        reductions: vec![],
        data_clauses: vec![],
        span,
    };
    loop {
        match p.eat_ident().as_deref() {
            Some("gang") => d.gang = true,
            Some("worker") => d.worker = true,
            Some("vector") => d.vector = true,
            Some("num_gangs") => d.num_gangs = Some(parse_paren_expr(p, span)?),
            Some("vector_length") => d.vector_length = Some(parse_paren_expr(p, span)?),
            Some("independent") => {} // advisory, always assumed
            Some("reduction") => {
                p.expect(&TokenKind::LParen, span)?;
                let op = parse_reduction_op(p, span)?;
                p.expect(&TokenKind::Colon, span)?;
                loop {
                    let var = p.eat_ident().ok_or_else(|| {
                        Diagnostic::error(span, "expected variable in reduction clause")
                    })?;
                    d.reductions.push(ReductionClause {
                        op: op.clone(),
                        var,
                        span,
                    });
                    if !p.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                p.expect(&TokenKind::RParen, span)?;
            }
            Some(name) => {
                if let Some(kind) = data_clause_kind(name) {
                    d.data_clauses.push(DataClause {
                        kind,
                        sections: parse_section_list(p, span)?,
                    });
                } else {
                    return Err(Diagnostic::error(
                        span,
                        format!("unknown parallel-loop clause `{name}`"),
                    ));
                }
            }
            None => break,
        }
    }
    Ok(Directive::ParallelLoop(d))
}

fn data_clause_kind(name: &str) -> Option<DataClauseKind> {
    Some(match name {
        "copy" => DataClauseKind::Copy,
        "copyin" => DataClauseKind::CopyIn,
        "copyout" => DataClauseKind::CopyOut,
        "create" => DataClauseKind::Create,
        "present" => DataClauseKind::Present,
        _ => return None,
    })
}

#[allow(clippy::while_let_loop)]
fn parse_data_clauses(
    p: &mut Parser<'_>,
    span: Span,
    require_some: bool,
) -> Result<Vec<DataClause>, Diagnostic> {
    let mut out = Vec::new();
    loop {
        match p.eat_ident() {
            Some(name) => match data_clause_kind(&name) {
                Some(kind) => out.push(DataClause {
                    kind,
                    sections: parse_section_list(p, span)?,
                }),
                None => {
                    return Err(Diagnostic::error(
                        span,
                        format!("unknown data clause `{name}`"),
                    ))
                }
            },
            None => break,
        }
    }
    if require_some && out.is_empty() {
        return Err(Diagnostic::error(span, "data directive without clauses"));
    }
    Ok(out)
}

fn parse_section_list(p: &mut Parser<'_>, span: Span) -> Result<Vec<ArraySection>, Diagnostic> {
    p.expect(&TokenKind::LParen, span)?;
    let mut out = Vec::new();
    loop {
        let name = p
            .eat_ident()
            .ok_or_else(|| Diagnostic::error(span, "expected array name in clause"))?;
        let range = if p.eat(&TokenKind::LBracket) {
            let start = p.parse_expr_public(span)?;
            p.expect(&TokenKind::Colon, span)?;
            let len = p.parse_expr_public(span)?;
            p.expect(&TokenKind::RBracket, span)?;
            Some((start, len))
        } else {
            None
        };
        out.push(ArraySection { name, range, span });
        if !p.eat(&TokenKind::Comma) {
            break;
        }
    }
    p.expect(&TokenKind::RParen, span)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Directive {
        parse_directive(text, Span::default()).unwrap().unwrap()
    }

    #[test]
    fn parses_data_directive() {
        let d = parse("acc data copy(x[0:n]) copyin(a, b[2:m]) create(tmp)");
        let Directive::Data(d) = d else { panic!() };
        assert_eq!(d.clauses.len(), 3);
        assert_eq!(d.clauses[0].kind, DataClauseKind::Copy);
        assert_eq!(d.clauses[0].sections[0].name, "x");
        assert!(d.clauses[0].sections[0].range.is_some());
        assert_eq!(d.clauses[1].sections.len(), 2);
        assert!(d.clauses[1].sections[0].range.is_none());
        assert_eq!(d.clauses[2].kind, DataClauseKind::Create);
    }

    #[test]
    fn parses_parallel_loop() {
        let d = parse("acc parallel loop gang vector reduction(+:sum) copyin(x)");
        let Directive::ParallelLoop(d) = d else { panic!() };
        assert_eq!(d.kind, ParallelKind::Parallel);
        assert!(d.gang && d.vector && !d.worker);
        assert_eq!(d.reductions.len(), 1);
        assert_eq!(d.reductions[0].op, "+");
        assert_eq!(d.reductions[0].var, "sum");
        assert_eq!(d.data_clauses.len(), 1);
    }

    #[test]
    fn parses_kernels_loop() {
        let d = parse("acc kernels loop");
        let Directive::ParallelLoop(d) = d else { panic!() };
        assert_eq!(d.kind, ParallelKind::Kernels);
    }

    #[test]
    fn split_region_and_orphan_loop_parse() {
        assert!(matches!(
            parse("acc parallel reduction(+:s)"),
            Directive::ParallelRegion(_)
        ));
        assert!(matches!(parse("acc loop gang vector"), Directive::Loop(_)));
    }

    #[test]
    fn merge_region_loop_combines_clauses() {
        let Directive::ParallelRegion(r) = parse("acc parallel reduction(+:s) copyin(x)") else {
            panic!()
        };
        let Directive::Loop(l) = parse("acc loop gang reduction(max:m)") else {
            panic!()
        };
        let m = merge_region_loop(&r, &l);
        assert!(m.gang);
        assert_eq!(m.reductions.len(), 2);
        assert_eq!(m.data_clauses.len(), 1);
    }

    #[test]
    fn parses_localaccess() {
        let d = parse("acc localaccess(x) stride(4) left(1) right(2)");
        let Directive::LocalAccess(d) = d else { panic!() };
        assert_eq!(d.array, "x");
        assert!(d.stride.is_some());
        assert!(d.left.is_some());
        assert!(d.right.is_some());
    }

    #[test]
    fn localaccess_defaults() {
        let d = parse("acc localaccess(b)");
        let Directive::LocalAccess(d) = d else { panic!() };
        assert!(d.stride.is_none() && d.left.is_none() && d.right.is_none());
    }

    #[test]
    fn localaccess_stride_expr() {
        let d = parse("acc localaccess(features) stride(nfeatures)");
        let Directive::LocalAccess(d) = d else { panic!() };
        assert!(matches!(
            d.stride,
            Some(crate::ast::Expr::Ident(ref n, _)) if n == "nfeatures"
        ));
    }

    #[test]
    fn localaccess_rejects_nonpositive_stride() {
        let err = parse_directive("acc localaccess(x) stride(0)", Span::default())
            .unwrap_err();
        assert_eq!(err.code, Some("ACC-E001"));
        assert!(err.message.contains("stride must be positive"), "{err}");
        let err = parse_directive("acc localaccess(x) stride(-2)", Span::default())
            .unwrap_err();
        assert_eq!(err.code, Some("ACC-E001"));
    }

    #[test]
    fn localaccess_rejects_negative_halo() {
        for text in [
            "acc localaccess(x) stride(1) left(-1)",
            "acc localaccess(x) stride(1) right(-3)",
            "acc localaccess(x) right(1-2)",
        ] {
            let err = parse_directive(text, Span::default()).unwrap_err();
            assert_eq!(err.code, Some("ACC-E002"), "{text}");
            assert!(err.message.contains("non-negative"), "{err}");
        }
        // Non-negative constants and runtime expressions still parse.
        parse("acc localaccess(x) stride(1) left(0) right(2)");
        parse("acc localaccess(x) stride(cols) left(cols)");
    }

    #[test]
    fn parses_reductiontoarray() {
        let d = parse("acc reductiontoarray(+: errors[nclusters])");
        let Directive::ReductionToArray(d) = d else { panic!() };
        assert_eq!(d.op, "+");
        assert_eq!(d.array, "errors");
        assert!(d.range.is_some());
    }

    #[test]
    fn parses_update() {
        let d = parse("acc update host(x[0:n]) device(y)");
        let Directive::Update(d) = d else { panic!() };
        assert_eq!(d.host.len(), 1);
        assert_eq!(d.device.len(), 1);
    }

    #[test]
    fn non_acc_pragmas_ignored() {
        assert_eq!(parse_directive("omp parallel for", Span::default()).unwrap(), None);
        assert_eq!(parse_directive("once", Span::default()).unwrap(), None);
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_directive("acc data copy(x) garbage(", Span::default()).is_err());
    }

    #[test]
    fn min_max_reductions() {
        let d = parse("acc parallel loop reduction(max:best)");
        let Directive::ParallelLoop(d) = d else { panic!() };
        assert_eq!(d.reductions[0].op, "max");
    }
}
