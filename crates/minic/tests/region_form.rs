//! The split `#pragma acc parallel` region form (paper Fig. 1).

use acc_minic::frontend;
use acc_minic::hir::HostStmt;

#[test]
fn fig1_shape_compiles() {
    // The paper's Fig. 1: a data region, a parallel region with a
    // reduction clause, and an inner `#pragma acc loop`.
    let src = "void f(int n, double *x, double *b, double sum) {\n\
#pragma acc data copyin(b[0:n]) copy(x[0:n])\n\
{\n\
#pragma acc parallel reduction(+:sum)\n\
{\n\
#pragma acc loop gang vector\n\
for (int i = 0; i < n; i++) {\n\
x[i] = x[i] + b[i];\n\
sum += x[i];\n\
}\n\
}\n\
}\n\
}";
    let p = frontend(src).unwrap_or_else(|d| panic!("{d:?}"));
    let HostStmt::DataRegion { body, .. } = &p.functions[0].body[0] else {
        panic!()
    };
    let HostStmt::ParallelLoop(node) = &body[0] else {
        panic!("{body:?}")
    };
    // The region's reduction clause reached the loop.
    assert_eq!(node.reductions.len(), 1);
}

#[test]
fn region_with_two_loops() {
    let src = "void f(int n, double *x, double *y) {\n\
#pragma acc parallel\n\
{\n\
#pragma acc loop\n\
for (int i = 0; i < n; i++) x[i] = 1.0;\n\
#pragma acc loop\n\
for (int i = 0; i < n; i++) y[i] = x[i];\n\
}\n\
}";
    let p = frontend(src).unwrap_or_else(|d| panic!("{d:?}"));
    let loops = p.functions[0]
        .body
        .iter()
        .filter(|s| matches!(s, HostStmt::ParallelLoop(_)))
        .count();
    assert_eq!(loops, 2);
}

#[test]
fn localaccess_inside_region() {
    let src = "void f(int n, double *x) {\n\
#pragma acc parallel\n\
{\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc loop\n\
for (int i = 0; i < n; i++) x[i] = 2.0;\n\
}\n\
}";
    let p = frontend(src).unwrap_or_else(|d| panic!("{d:?}"));
    let HostStmt::ParallelLoop(node) = &p.functions[0].body[0] else {
        panic!()
    };
    assert_eq!(node.localaccess.len(), 1);
}

#[test]
fn orphan_loop_outside_region_rejected() {
    let src = "void f(int n, double *x) {\n\
#pragma acc loop\n\
for (int i = 0; i < n; i++) x[i] = 1.0;\n\
}";
    let err = frontend(src).unwrap_err();
    assert!(err[0].message.contains("outside of a parallel region"), "{err:?}");
}

#[test]
fn plain_statement_inside_region_rejected() {
    let src = "void f(int n, double *x) {\n\
#pragma acc parallel\n\
{\n\
n = n + 1;\n\
}\n\
}";
    let err = frontend(src).unwrap_err();
    assert!(err[0].message.contains("split parallel region"), "{err:?}");
}

#[test]
fn empty_region_rejected() {
    let src = "void f(int n) {\n\
#pragma acc parallel\n\
{\n\
}\n\
}";
    let err = frontend(src).unwrap_err();
    assert!(err[0].message.contains("no `#pragma acc loop`"), "{err:?}");
}

#[test]
fn nested_regions_rejected() {
    let src = "void f(int n, double *x) {\n\
#pragma acc parallel\n\
{\n\
#pragma acc parallel\n\
{\n\
#pragma acc loop\n\
for (int i = 0; i < n; i++) x[i] = 1.0;\n\
}\n\
}\n\
}";
    let err = frontend(src).unwrap_err();
    assert!(
        err[0].message.contains("nested") || err[0].message.contains("split parallel"),
        "{err:?}"
    );
}

#[test]
fn region_runs_end_to_end() {
    use acc_compiler::{compile_source, CompileOptions};
    use acc_gpusim::Machine;
    use acc_kernel_ir::{Buffer, Value};
    use acc_runtime::{run_program, ExecConfig};

    let src = "void f(int n, double *x, double *b, double sum, double *out) {\n\
#pragma acc data copyin(b[0:n]) copy(x[0:n]) copyout(out[0:1])\n\
{\n\
#pragma acc parallel reduction(+:sum)\n\
{\n\
#pragma acc loop\n\
for (int i = 0; i < n; i++) {\n\
x[i] = x[i] + b[i];\n\
sum += b[i];\n\
}\n\
}\n\
#pragma acc parallel\n\
{\n\
#pragma acc loop\n\
for (int i = 0; i < 1; i++) out[i] = sum;\n\
}\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let n = 100;
    let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let expect_sum: f64 = b.iter().sum();
    let mut m = Machine::desktop();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(2),
        &prog,
        vec![Value::I32(n as i32), Value::F64(0.0)],
        vec![
            Buffer::zeroed(acc_kernel_ir::Ty::F64, n),
            Buffer::from_f64(&b),
            Buffer::zeroed(acc_kernel_ir::Ty::F64, 1),
        ],
    )
    .unwrap();
    assert_eq!(r.arrays[0].to_f64_vec(), b);
    assert_eq!(r.arrays[2].to_f64_vec()[0], expect_sum);
}
