//! Frontend robustness: the lexer/parser/sema must never panic — every
//! malformed input becomes a `Diagnostic`.

use acc_minic::{frontend, lexer, parser};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer returns (not panics) on arbitrary ASCII soup.
    #[test]
    fn lexer_total_on_ascii(src in "[ -~\\n\\t]{0,200}") {
        let _ = lexer::lex(&src);
    }

    /// The parser is total over whatever token streams the lexer accepts.
    #[test]
    fn parser_total_on_ascii(src in "[ -~\\n\\t]{0,200}") {
        if let Ok(toks) = lexer::lex(&src) {
            let _ = parser::parse(&toks);
        }
    }

    /// The whole frontend is total on C-looking fragments.
    #[test]
    fn frontend_total_on_c_fragments(
        body in "[a-z0-9 =+\\-*/;(){}\\[\\]<>!&|,.]{0,160}"
    ) {
        let src = format!("void f(int n, double *x) {{ {body} }}");
        let _ = frontend(&src);
    }

    /// Pragma lines never panic the directive parser.
    #[test]
    fn pragmas_total(body in "[a-z0-9 :+*,()\\[\\]]{0,80}") {
        let src = format!(
            "void f(int n, double *x) {{\n#pragma acc {body}\nx[0] = 1.0;\n}}"
        );
        let _ = frontend(&src);
    }
}

/// Deterministic regression inputs that once mattered during development.
#[test]
fn regression_inputs_do_not_panic() {
    for src in [
        "",
        "void",
        "void f(",
        "void f() {",
        "void f() { for (;;) ; }",
        "void f() { 1 + ; }",
        "void f(int n) { n = ((((n)))); }",
        "void f() { /* unterminated",
        "#pragma acc data",
        "void f(double *x) {\n#pragma acc parallel loop\nwhile (1) ;\n}",
        "void f(int i) { i = 2147483648; }", // doesn't fit in int
        "void f(int i) { i++++; }",
    ] {
        let _ = frontend(src);
    }
}
