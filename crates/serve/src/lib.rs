//! # acc-serve — multi-tenant compile-and-run daemon
//!
//! A long-running service wrapping one [`acc_runtime::Engine`]: clients
//! submit compile+run jobs over a local TCP socket and get back a
//! summary (and optionally a Chrome trace) per job. Many tenants share
//! one compilation cache, one scratch-pool set, and per-kernel mapper
//! history, so a fleet of repeated jobs compiles each distinct program
//! once and reuses warm pools for every launch.
//!
//! The wire protocol is newline-delimited JSON built on
//! [`acc_obs::json`] (the repo has no serde); see `docs/serving.md` for
//! the full request/response schema, the cache-keying rules, and the
//! memory-budget semantics. Every failure carries a stable `ACC-SNNN`
//! (server) or `ACC-RNNN` (runtime) code via [`ServeError::code`].
//!
//! Layering:
//!
//! * [`protocol`] — request/response framing and the [`JobRequest`] /
//!   [`JobSummary`] types;
//! * [`server`] — the bounded job queue, worker pool, and TCP accept
//!   loop;
//! * [`client`] — a small blocking client used by the CLI, the smoke
//!   test, and the throughput bench;
//! * [`error`] — the [`ServeError`] hierarchy.

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use error::ServeError;
pub use protocol::{JobRequest, JobSummary, Request};
pub use server::{Server, ServerConfig};
