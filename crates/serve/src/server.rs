//! The daemon: admission control, worker pool, and TCP accept loop.
//!
//! One [`Server`] owns one [`Engine`]. Jobs enter a bounded FIFO queue
//! ([`Server::submit`] rejects with `ACC-S001` at capacity) and worker
//! threads drain it; each job runs on a **fresh simulated machine**, so
//! any number of workers can execute concurrently while sharing the
//! engine's compilation cache, scratch pools, and per-kernel mapper
//! history. Replies travel over per-job mpsc channels;
//! [`Server::run_sync`] turns an expired wait into `ACC-S002` without
//! tearing the worker down.
//!
//! Shutdown is cooperative: [`Server::shutdown`] stops admission,
//! wakes every idle worker (they drain what is already queued, then
//! exit), and the accept loop exits on its next wakeup.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use acc_apps::{run_compiled, Version};
use acc_gpusim::{Machine, MachineKind};
use acc_obs::json::Value;
use acc_runtime::{Engine, ExecConfig, TraceLevel};

use crate::error::ServeError;
use crate::protocol::{error_json, JobRequest, JobSummary, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Machine preset each job runs on (fresh per job).
    pub kind: MachineKind,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// `ACC-S001`.
    pub queue_cap: usize,
    /// Reply deadline for jobs that do not set their own, milliseconds.
    pub default_timeout_ms: u64,
    /// Memory budget for jobs that do not set their own; `None` means
    /// unlimited.
    pub default_mem_budget_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            kind: MachineKind::SupercomputerNode,
            workers: 4,
            queue_cap: 64,
            default_timeout_ms: 60_000,
            default_mem_budget_bytes: None,
        }
    }
}

struct QueuedJob {
    req: JobRequest,
    reply: mpsc::Sender<Result<JobSummary, ServeError>>,
}

/// The daemon state: engine, bounded queue, and counters. Construct
/// with [`Server::new`], then [`Server::spawn_workers`] — the split
/// lets tests exercise queue-full and timeout paths deterministically
/// by submitting against a server with no workers yet.
pub struct Server {
    cfg: ServerConfig,
    engine: Engine,
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    shutting_down: AtomicBool,
    jobs_ok: AtomicU64,
    jobs_err: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_timeout: AtomicU64,
    job_cache_hits: AtomicU64,
}

impl Server {
    /// A server with an empty queue and no workers yet.
    pub fn new(cfg: ServerConfig) -> Arc<Server> {
        let engine = Engine::new(cfg.kind, ExecConfig::gpus(1));
        Arc::new(Server {
            cfg,
            engine,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            jobs_ok: AtomicU64::new(0),
            jobs_err: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_timeout: AtomicU64::new(0),
            job_cache_hits: AtomicU64::new(0),
        })
    }

    /// The shared engine (compilation cache, pools, mapper history).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Whether [`Server::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Stop admitting jobs and wake idle workers so they can exit.
    /// Already-queued jobs still run to completion.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    /// Start `n` worker threads draining the queue. Returns their
    /// handles; join them after [`Server::shutdown`] for a clean exit.
    pub fn spawn_workers(self: &Arc<Self>, n: usize) -> Vec<std::thread::JoinHandle<()>> {
        (0..n)
            .map(|i| {
                let srv = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("acc-serve-worker-{i}"))
                    .spawn(move || srv.worker_loop())
                    .expect("spawn worker thread")
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("queue lock poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.is_shutting_down() {
                        return;
                    }
                    q = self.available.wait(q).expect("queue lock poisoned");
                }
            };
            let outcome = self.execute(&job.req);
            match &outcome {
                Ok(s) => {
                    self.jobs_ok.fetch_add(1, Ordering::Relaxed);
                    if s.cache_hit {
                        self.job_cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    self.jobs_err.fetch_add(1, Ordering::Relaxed);
                }
            }
            // The client may have timed out and dropped its receiver;
            // that is its prerogative, not a worker failure.
            let _ = job.reply.send(outcome);
        }
    }

    /// Enqueue a job. Typed rejects: `ACC-S001` when the queue is at
    /// capacity, `ACC-S006` after shutdown. On success the returned
    /// receiver yields the job's outcome exactly once.
    pub fn submit(
        &self,
        req: JobRequest,
    ) -> Result<mpsc::Receiver<Result<JobSummary, ServeError>>, ServeError> {
        if self.is_shutting_down() {
            return Err(ServeError::Shutdown);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.queue.lock().expect("queue lock poisoned");
            if q.len() >= self.cfg.queue_cap {
                self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::QueueFull {
                    cap: self.cfg.queue_cap,
                });
            }
            q.push_back(QueuedJob { req, reply: tx });
        }
        self.available.notify_one();
        Ok(rx)
    }

    /// Submit and wait for the outcome, converting an expired wait into
    /// `ACC-S002`. The job itself is not cancelled — a worker may still
    /// finish it and feed the mapper history — only the reply is
    /// abandoned.
    pub fn run_sync(&self, req: JobRequest) -> Result<JobSummary, ServeError> {
        let ms = req.timeout_ms.unwrap_or(self.cfg.default_timeout_ms);
        let rx = self.submit(req)?;
        match rx.recv_timeout(Duration::from_millis(ms)) {
            Ok(outcome) => outcome,
            Err(_) => {
                self.jobs_timeout.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Timeout { ms })
            }
        }
    }

    /// Run one job to completion on a fresh machine: cached compile,
    /// launch through the shared engine, oracle check, budget check.
    /// Public so the in-process throughput bench and the test suite can
    /// drive jobs without a socket.
    pub fn execute(&self, req: &JobRequest) -> Result<JobSummary, ServeError> {
        let version = Version::Proposal(req.ngpus);
        let (kernel, cache_hit) = self.engine.compile_entry(
            req.app.source(),
            req.app.function(),
            &version.compile_options(),
        )?;
        let mut cfg = version.exec_config();
        if req.trace {
            cfg = cfg.tracing(TraceLevel::Summary);
        }
        let mut machine = Machine::with_kind(self.cfg.kind);
        let t0 = Instant::now();
        let result = run_compiled(
            &self.engine,
            &kernel,
            req.app,
            version,
            &mut machine,
            req.scale,
            req.seed,
            &cfg,
        )?;
        let wall_s = t0.elapsed().as_secs_f64();
        let mem_peak_bytes: u64 = result.mem.iter().map(|m| m.user_peak + m.system_peak).sum();
        let budget = req.mem_budget_bytes.or(self.cfg.default_mem_budget_bytes);
        if let Some(budget_bytes) = budget {
            if mem_peak_bytes > budget_bytes {
                return Err(ServeError::MemBudget {
                    peak_bytes: mem_peak_bytes,
                    budget_bytes,
                });
            }
        }
        Ok(JobSummary {
            app: req.app.name().to_string(),
            ngpus: req.ngpus,
            cache_hit,
            correct: result.correct,
            max_err: result.max_err,
            sim_s: result.time.parallel_region(),
            comm_sim_s: result.time.gpu_gpu,
            wall_s,
            mem_peak_bytes,
            h2d_bytes: result.h2d_bytes,
            d2h_bytes: result.d2h_bytes,
            p2p_bytes: result.p2p_bytes,
            chrome_trace: req.trace.then(|| result.trace.chrome_trace()),
        })
    }

    /// Snapshot the daemon counters and the engine's cache statistics
    /// as a `stats` response object.
    pub fn stats_json(&self) -> Value {
        let es = self.engine.stats();
        let ok = self.jobs_ok.load(Ordering::Relaxed);
        let hits = self.job_cache_hits.load(Ordering::Relaxed);
        let depth = self.queue.lock().expect("queue lock poisoned").len();
        Value::obj([
            ("ok", Value::Bool(true)),
            ("jobs_ok", Value::num(ok as f64)),
            (
                "jobs_err",
                Value::num(self.jobs_err.load(Ordering::Relaxed) as f64),
            ),
            (
                "jobs_rejected",
                Value::num(self.jobs_rejected.load(Ordering::Relaxed) as f64),
            ),
            (
                "jobs_timeout",
                Value::num(self.jobs_timeout.load(Ordering::Relaxed) as f64),
            ),
            ("queue_depth", Value::num(depth as f64)),
            (
                "job_cache_hit_rate",
                Value::num(if ok > 0 { hits as f64 / ok as f64 } else { 0.0 }),
            ),
            (
                "engine",
                Value::obj([
                    ("compiles", Value::num(es.compiles as f64)),
                    ("cache_hits", Value::num(es.cache_hits as f64)),
                    ("ir_dedups", Value::num(es.ir_dedups as f64)),
                    ("launches", Value::num(es.launches as f64)),
                    ("pool_reuses", Value::num(es.pool_reuses as f64)),
                    ("cache_hit_rate", Value::num(es.cache_hit_rate())),
                ]),
            ),
        ])
    }

    /// Accept connections until [`Server::shutdown`]; each connection
    /// gets its own thread speaking the line protocol. A `shutdown`
    /// command pokes the listener with a throwaway connection so the
    /// blocking accept wakes up and observes the flag.
    pub fn serve_tcp(self: &Arc<Self>, listener: &TcpListener) -> std::io::Result<()> {
        let addr = listener.local_addr()?;
        for conn in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let srv = Arc::clone(self);
            std::thread::spawn(move || srv.handle_conn(stream, addr));
        }
        Ok(())
    }

    fn handle_conn(&self, stream: TcpStream, addr: SocketAddr) {
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let response = self.handle_line(trimmed, addr);
            let mut out = response.to_string_compact();
            out.push('\n');
            if writer
                .write_all(out.as_bytes())
                .and_then(|_| writer.flush())
                .is_err()
            {
                return;
            }
        }
    }

    fn handle_line(&self, line: &str, addr: SocketAddr) -> Value {
        match Request::parse_line(line) {
            Ok(Request::Ping) => Value::obj([
                ("ok", Value::Bool(true)),
                ("pong", Value::Bool(true)),
            ]),
            Ok(Request::Stats) => self.stats_json(),
            Ok(Request::Shutdown) => {
                self.shutdown();
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
                Value::obj([("bye", Value::Bool(true)), ("ok", Value::Bool(true))])
            }
            Ok(Request::Run(req)) => match self.run_sync(req) {
                Ok(summary) => summary.to_json(),
                Err(e) => error_json(&e),
            },
            Err(e) => error_json(&e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_apps::App;

    fn tiny_cfg() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_cap: 2,
            default_timeout_ms: 10,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn queue_full_is_a_typed_reject() {
        // No workers: nothing drains the queue, so the third submit
        // must bounce deterministically.
        let srv = Server::new(tiny_cfg());
        let _a = srv.submit(JobRequest::new(App::Heat2d, 1)).unwrap();
        let _b = srv.submit(JobRequest::new(App::Heat2d, 1)).unwrap();
        let err = srv.submit(JobRequest::new(App::Heat2d, 1)).unwrap_err();
        assert_eq!(err.code(), "ACC-S001");
    }

    #[test]
    fn timeout_is_a_typed_reject() {
        let srv = Server::new(tiny_cfg());
        let mut req = JobRequest::new(App::Heat2d, 1);
        req.timeout_ms = Some(5);
        let err = srv.run_sync(req).unwrap_err();
        assert_eq!(err.code(), "ACC-S002");
    }

    #[test]
    fn shutdown_refuses_new_jobs() {
        let srv = Server::new(tiny_cfg());
        srv.shutdown();
        let err = srv.submit(JobRequest::new(App::Heat2d, 1)).unwrap_err();
        assert_eq!(err.code(), "ACC-S006");
    }

    #[test]
    fn mem_budget_is_enforced_post_run() {
        let srv = Server::new(ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        });
        let mut req = JobRequest::new(App::Heat2d, 1);
        req.mem_budget_bytes = Some(1);
        let err = srv.execute(&req).unwrap_err();
        assert_eq!(err.code(), "ACC-S004");
        // The same job inside the budget succeeds, and the second
        // compile of the same request is a cache hit.
        let ok_req = JobRequest::new(App::Heat2d, 1);
        let summary = srv.execute(&ok_req).unwrap();
        assert!(summary.correct);
        assert!(summary.cache_hit, "second identical request should hit the cache");
        assert!(summary.mem_peak_bytes > 1);
    }

    #[test]
    fn too_many_gpus_passes_the_runtime_code_through() {
        let srv = Server::new(ServerConfig {
            workers: 0,
            kind: MachineKind::Desktop,
            ..ServerConfig::default()
        });
        let err = srv.execute(&JobRequest::new(App::Heat2d, 3)).unwrap_err();
        assert_eq!(err.code(), "ACC-R007");
    }

    #[test]
    fn trace_requests_return_a_chrome_trace() {
        let srv = Server::new(ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        });
        let mut req = JobRequest::new(App::Heat2d, 2);
        req.trace = true;
        let summary = srv.execute(&req).unwrap();
        let doc = summary.chrome_trace.expect("trace requested");
        assert!(doc.contains("traceEvents"), "chrome trace shape: {doc:.60}");
    }
}
