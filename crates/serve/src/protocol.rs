//! Wire protocol: newline-delimited JSON over a local TCP socket.
//!
//! Each request is one JSON object on one line with a `"cmd"` member
//! (`ping`, `run`, `stats`, `shutdown`); each response is one JSON
//! object on one line with an `"ok"` boolean. Framing and rendering use
//! [`acc_obs::json`] — object keys are BTreeMap-ordered, so responses
//! are byte-deterministic for a given payload.
//!
//! A `run` request:
//!
//! ```json
//! {"cmd":"run","app":"heat2d","ngpus":2,"scale":"small","seed":42,
//!  "timeout_ms":30000,"mem_budget_bytes":1000000000,"trace":false}
//! ```
//!
//! `app` is required; everything else defaults (`ngpus` 1, `scale`
//! `"small"`, `seed` 42, server-side timeout/budget defaults, no
//! trace). A success response carries the [`JobSummary`] fields; a
//! failure carries `{"ok":false,"code":"ACC-XNNN","error":"..."}`.

use crate::error::ServeError;
use acc_apps::{App, Scale};
use acc_obs::json::{self, Value};

/// One compile+run job as submitted by a client.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Which benchmark application to run.
    pub app: App,
    /// GPU count for the `Proposal` version (1–3 on the node preset).
    pub ngpus: usize,
    /// Workload scale.
    pub scale: Scale,
    /// Workload generator seed.
    pub seed: u64,
    /// Client-side reply deadline; `None` uses the server default.
    pub timeout_ms: Option<u64>,
    /// Per-job ceiling on the summed simulated per-GPU memory peak;
    /// `None` uses the server default (which may be unlimited).
    pub mem_budget_bytes: Option<u64>,
    /// Return a Chrome trace of the run in the response.
    pub trace: bool,
}

impl JobRequest {
    /// A request with every optional field at its default.
    pub fn new(app: App, ngpus: usize) -> JobRequest {
        JobRequest {
            app,
            ngpus,
            scale: Scale::Small,
            seed: 42,
            timeout_ms: None,
            mem_budget_bytes: None,
            trace: false,
        }
    }

    /// Decode from a parsed `run` request object.
    pub fn from_json(v: &Value) -> Result<JobRequest, ServeError> {
        let app_name = v
            .get("app")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::BadRequest("missing string field \"app\"".into()))?;
        let app = app_from_name(app_name)?;
        let ngpus = match v.get("ngpus") {
            None => 1,
            Some(n) => {
                let n = n.as_f64().ok_or_else(|| {
                    ServeError::BadRequest("\"ngpus\" must be a number".into())
                })?;
                if n.fract() != 0.0 || !(1.0..=8.0).contains(&n) {
                    return Err(ServeError::BadRequest(format!(
                        "\"ngpus\" must be an integer in 1..=8, got {n}"
                    )));
                }
                n as usize
            }
        };
        let scale = match v.get("scale") {
            None => Scale::Small,
            Some(s) => {
                let s = s.as_str().ok_or_else(|| {
                    ServeError::BadRequest("\"scale\" must be a string".into())
                })?;
                scale_from_name(s)?
            }
        };
        let seed = match v.get("seed") {
            None => 42,
            Some(s) => s
                .as_f64()
                .filter(|x| x.fract() == 0.0 && *x >= 0.0)
                .ok_or_else(|| {
                    ServeError::BadRequest("\"seed\" must be a non-negative integer".into())
                })? as u64,
        };
        let opt_u64 = |field: &'static str| -> Result<Option<u64>, ServeError> {
            match v.get(field) {
                None | Some(Value::Null) => Ok(None),
                Some(x) => x
                    .as_f64()
                    .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                    .map(|n| Some(n as u64))
                    .ok_or_else(|| {
                        ServeError::BadRequest(format!(
                            "\"{field}\" must be a non-negative integer"
                        ))
                    }),
            }
        };
        let timeout_ms = opt_u64("timeout_ms")?;
        let mem_budget_bytes = opt_u64("mem_budget_bytes")?;
        let trace = matches!(v.get("trace"), Some(Value::Bool(true)));
        Ok(JobRequest {
            app,
            ngpus,
            scale,
            seed,
            timeout_ms,
            mem_budget_bytes,
            trace,
        })
    }

    /// Encode as a `run` request object (what [`crate::Client`] sends).
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(&'static str, Value)> = vec![
            ("cmd", Value::str("run")),
            ("app", Value::str(self.app.name())),
            ("ngpus", Value::num(self.ngpus as f64)),
            ("scale", Value::str(scale_name(self.scale))),
            ("seed", Value::num(self.seed as f64)),
        ];
        if let Some(ms) = self.timeout_ms {
            pairs.push(("timeout_ms", Value::num(ms as f64)));
        }
        if let Some(b) = self.mem_budget_bytes {
            pairs.push(("mem_budget_bytes", Value::num(b as f64)));
        }
        if self.trace {
            pairs.push(("trace", Value::Bool(true)));
        }
        Value::obj(pairs)
    }
}

/// Decode an application name.
pub fn app_from_name(name: &str) -> Result<App, ServeError> {
    App::ALL
        .iter()
        .copied()
        .find(|a| a.name() == name)
        .ok_or_else(|| ServeError::UnknownApp(name.to_string()))
}

/// Decode a scale name.
pub fn scale_from_name(name: &str) -> Result<Scale, ServeError> {
    match name {
        "small" => Ok(Scale::Small),
        "scaled" => Ok(Scale::Scaled),
        "paper" => Ok(Scale::Paper),
        other => Err(ServeError::BadRequest(format!(
            "\"scale\" must be small|scaled|paper, got {other:?}"
        ))),
    }
}

/// The wire name of a scale.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Scaled => "scaled",
        Scale::Paper => "paper",
    }
}

/// The outcome of one successful job, as returned to the client.
#[derive(Debug, Clone)]
pub struct JobSummary {
    /// Application name.
    pub app: String,
    /// GPU count the job ran on.
    pub ngpus: usize,
    /// Whether this exact compile request was served from the cache.
    pub cache_hit: bool,
    /// The oracle verdict.
    pub correct: bool,
    /// Maximum absolute error vs the oracle.
    pub max_err: f64,
    /// Simulated parallel-region seconds.
    pub sim_s: f64,
    /// Simulated GPU-GPU communication seconds (a component of
    /// `sim_s`).
    pub comm_sim_s: f64,
    /// Host wall-clock seconds the job took server-side.
    pub wall_s: f64,
    /// Summed simulated per-GPU memory peak (user + system), bytes.
    pub mem_peak_bytes: u64,
    /// Transfer volumes.
    pub h2d_bytes: u64,
    /// Transfer volumes.
    pub d2h_bytes: u64,
    /// Transfer volumes.
    pub p2p_bytes: u64,
    /// Chrome trace-event JSON for the run, when the request asked for
    /// it.
    pub chrome_trace: Option<String>,
}

impl JobSummary {
    /// Encode as a success response object.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(&'static str, Value)> = vec![
            ("ok", Value::Bool(true)),
            ("app", Value::str(self.app.clone())),
            ("ngpus", Value::num(self.ngpus as f64)),
            ("cache_hit", Value::Bool(self.cache_hit)),
            ("correct", Value::Bool(self.correct)),
            ("max_err", Value::num(self.max_err)),
            ("sim_s", Value::num(self.sim_s)),
            ("comm_sim_s", Value::num(self.comm_sim_s)),
            ("wall_s", Value::num(self.wall_s)),
            ("mem_peak_bytes", Value::num(self.mem_peak_bytes as f64)),
            ("h2d_bytes", Value::num(self.h2d_bytes as f64)),
            ("d2h_bytes", Value::num(self.d2h_bytes as f64)),
            ("p2p_bytes", Value::num(self.p2p_bytes as f64)),
        ];
        if let Some(t) = &self.chrome_trace {
            pairs.push(("chrome_trace", Value::str(t.clone())));
        }
        Value::obj(pairs)
    }

    /// Decode a success response object.
    pub fn from_json(v: &Value) -> Result<JobSummary, ServeError> {
        let get_f = |field: &str| -> Result<f64, ServeError> {
            v.get(field).and_then(Value::as_f64).ok_or_else(|| {
                ServeError::BadRequest(format!("response missing number field {field:?}"))
            })
        };
        let get_b = |field: &str| matches!(v.get(field), Some(Value::Bool(true)));
        Ok(JobSummary {
            app: v
                .get("app")
                .and_then(Value::as_str)
                .ok_or_else(|| {
                    ServeError::BadRequest("response missing string field \"app\"".into())
                })?
                .to_string(),
            ngpus: get_f("ngpus")? as usize,
            cache_hit: get_b("cache_hit"),
            correct: get_b("correct"),
            max_err: get_f("max_err")?,
            sim_s: get_f("sim_s")?,
            comm_sim_s: get_f("comm_sim_s")?,
            wall_s: get_f("wall_s")?,
            mem_peak_bytes: get_f("mem_peak_bytes")? as u64,
            h2d_bytes: get_f("h2d_bytes")? as u64,
            d2h_bytes: get_f("d2h_bytes")? as u64,
            p2p_bytes: get_f("p2p_bytes")? as u64,
            chrome_trace: v
                .get("chrome_trace")
                .and_then(Value::as_str)
                .map(str::to_string),
        })
    }
}

/// One decoded request line.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a job and wait for its outcome.
    Run(JobRequest),
    /// Snapshot the daemon's counters.
    Stats,
    /// Stop admitting jobs; workers drain the queue and exit.
    Shutdown,
}

impl Request {
    /// Parse one request line.
    pub fn parse_line(line: &str) -> Result<Request, ServeError> {
        let v = json::parse(line)
            .map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e:?}")))?;
        let cmd = v
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::BadRequest("missing string field \"cmd\"".into()))?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "run" => Ok(Request::Run(JobRequest::from_json(&v)?)),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ServeError::BadRequest(format!(
                "unknown cmd {other:?} (expected ping|run|stats|shutdown)"
            ))),
        }
    }
}

/// Encode a [`ServeError`] as a failure response object.
pub fn error_json(e: &ServeError) -> Value {
    Value::obj([
        ("ok", Value::Bool(false)),
        ("code", Value::str(e.code())),
        ("error", Value::str(e.to_string())),
    ])
}

/// Decode a response line: `Ok` summaries stay JSON (callers pick the
/// fields they need); `"ok":false` responses become
/// [`ServeError::Remote`] with the original code preserved.
pub fn decode_response(line: &str) -> Result<Value, ServeError> {
    let v = json::parse(line)
        .map_err(|e| ServeError::BadRequest(format!("invalid response JSON: {e:?}")))?;
    match v.get("ok") {
        Some(Value::Bool(true)) => Ok(v),
        Some(Value::Bool(false)) => Err(ServeError::Remote {
            code: v
                .get("code")
                .and_then(Value::as_str)
                .unwrap_or("ACC-S003")
                .to_string(),
            message: v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown server error")
                .to_string(),
        }),
        _ => Err(ServeError::BadRequest(
            "response missing boolean field \"ok\"".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips() {
        let mut req = JobRequest::new(App::Heat2d, 2);
        req.seed = 7;
        req.timeout_ms = Some(1000);
        req.mem_budget_bytes = Some(1 << 30);
        req.trace = true;
        let line = req.to_json().to_string_compact();
        let back = match Request::parse_line(&line).unwrap() {
            Request::Run(r) => r,
            other => panic!("expected run, got {other:?}"),
        };
        assert_eq!(back.app, App::Heat2d);
        assert_eq!(back.ngpus, 2);
        assert_eq!(back.seed, 7);
        assert_eq!(back.timeout_ms, Some(1000));
        assert_eq!(back.mem_budget_bytes, Some(1 << 30));
        assert!(back.trace);
    }

    #[test]
    fn defaults_fill_optional_fields() {
        let req = match Request::parse_line(r#"{"cmd":"run","app":"bfs"}"#).unwrap() {
            Request::Run(r) => r,
            other => panic!("expected run, got {other:?}"),
        };
        assert_eq!(req.app, App::Bfs);
        assert_eq!(req.ngpus, 1);
        assert_eq!(req.scale, Scale::Small);
        assert_eq!(req.seed, 42);
        assert_eq!(req.timeout_ms, None);
        assert!(!req.trace);
    }

    #[test]
    fn bad_requests_are_typed() {
        let e = Request::parse_line("not json").unwrap_err();
        assert_eq!(e.code(), "ACC-S003");
        let e = Request::parse_line(r#"{"cmd":"run"}"#).unwrap_err();
        assert_eq!(e.code(), "ACC-S003");
        let e = Request::parse_line(r#"{"cmd":"run","app":"nbody"}"#).unwrap_err();
        assert_eq!(e.code(), "ACC-S005");
        let e = Request::parse_line(r#"{"cmd":"run","app":"bfs","ngpus":0}"#).unwrap_err();
        assert_eq!(e.code(), "ACC-S003");
        let e = Request::parse_line(r#"{"cmd":"warmup"}"#).unwrap_err();
        assert_eq!(e.code(), "ACC-S003");
    }

    #[test]
    fn error_responses_decode_to_remote() {
        let line = error_json(&ServeError::QueueFull { cap: 8 }).to_string_compact();
        let e = decode_response(&line).unwrap_err();
        assert_eq!(e.code(), "ACC-S001");
        assert!(e.to_string().contains("capacity 8"));
    }

    #[test]
    fn summary_round_trips() {
        let s = JobSummary {
            app: "md".into(),
            ngpus: 3,
            cache_hit: true,
            correct: true,
            max_err: 0.0,
            sim_s: 1.5,
            comm_sim_s: 0.25,
            wall_s: 0.01,
            mem_peak_bytes: 4096,
            h2d_bytes: 100,
            d2h_bytes: 200,
            p2p_bytes: 300,
            chrome_trace: None,
        };
        let v = decode_response(&s.to_json().to_string_compact()).unwrap();
        let back = JobSummary::from_json(&v).unwrap();
        assert_eq!(back.app, "md");
        assert_eq!(back.ngpus, 3);
        assert!(back.cache_hit && back.correct);
        assert_eq!(back.mem_peak_bytes, 4096);
        assert_eq!(back.p2p_bytes, 300);
    }
}
