//! A small blocking client for the line protocol.
//!
//! One [`Client`] is one connection; requests are serialised on it
//! (send a line, read a line). Tenants wanting parallelism open one
//! client per thread — the daemon handles each connection on its own
//! thread.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use acc_obs::json::Value;

use crate::error::ServeError;
use crate::protocol::{decode_response, JobRequest, JobSummary};

/// A blocking connection to an `acc-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request object and decode the one-line response.
    /// Server-side failures come back as [`ServeError::Remote`] with
    /// the original `ACC-XNNN` code.
    pub fn request(&mut self, req: &Value) -> Result<Value, ServeError> {
        let mut line = req.to_string_compact();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        decode_response(response.trim())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.request(&Value::obj([("cmd", Value::str("ping"))]))
            .map(|_| ())
    }

    /// Submit a job and wait for its summary.
    pub fn run(&mut self, req: &JobRequest) -> Result<JobSummary, ServeError> {
        let v = self.request(&req.to_json())?;
        JobSummary::from_json(&v)
    }

    /// Snapshot the daemon's counters.
    pub fn stats(&mut self) -> Result<Value, ServeError> {
        self.request(&Value::obj([("cmd", Value::str("stats"))]))
    }

    /// Ask the daemon to stop admitting jobs and exit its accept loop.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.request(&Value::obj([("cmd", Value::str("shutdown"))]))
            .map(|_| ())
    }
}
