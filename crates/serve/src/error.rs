//! The serve-side error hierarchy.
//!
//! Every error the daemon can hand a client carries a stable code:
//! `ACC-SNNN` for conditions the server itself raises (admission
//! control, protocol violations, budgets), and the runtime's existing
//! `ACC-RNNN` space for compile/run failures, which pass through
//! unchanged via [`acc_apps::AppError`]. Codes — not message text — are
//! the contract: clients and CI match on them.

use acc_apps::AppError;
use acc_runtime::RunError;

/// Anything that can go wrong between a client submitting a job and
/// the daemon returning its summary.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded job queue is at capacity (`ACC-S001`). Back off and
    /// resubmit; the server stays healthy.
    QueueFull {
        /// The configured queue capacity.
        cap: usize,
    },
    /// The client-side wait for a job outcome expired (`ACC-S002`).
    /// The job itself may still complete server-side; only the reply
    /// is dropped.
    Timeout {
        /// The deadline that expired, milliseconds.
        ms: u64,
    },
    /// The request line was not valid JSON or was missing/mistyping a
    /// field (`ACC-S003`).
    BadRequest(String),
    /// The job ran but its simulated per-GPU memory peak exceeded the
    /// job's budget (`ACC-S004`).
    MemBudget {
        /// Total simulated peak across GPUs, bytes.
        peak_bytes: u64,
        /// The budget it exceeded, bytes.
        budget_bytes: u64,
    },
    /// The request named an application the daemon does not serve
    /// (`ACC-S005`).
    UnknownApp(String),
    /// The daemon is shutting down and no longer admits jobs
    /// (`ACC-S006`).
    Shutdown,
    /// A client-side transport failure — connect, write, or read on
    /// the socket (`ACC-S007`).
    Io(String),
    /// The server replied with an error; the original code is
    /// preserved so client-side matching still works (`code`).
    Remote {
        /// The `ACC-XNNN` code from the response.
        code: String,
        /// The human-readable message from the response.
        message: String,
    },
    /// The compiler or runtime rejected the job; carries the harness
    /// error with its own `ACC-R`/`ACC-RNNN` code.
    Run(AppError),
}

impl ServeError {
    /// The stable diagnostic code. Server-raised conditions use
    /// `ACC-SNNN`; compile/run failures pass the runtime's `ACC-RNNN`
    /// codes through; [`ServeError::Remote`] echoes whatever code the
    /// server sent.
    pub fn code(&self) -> &str {
        match self {
            ServeError::QueueFull { .. } => "ACC-S001",
            ServeError::Timeout { .. } => "ACC-S002",
            ServeError::BadRequest(_) => "ACC-S003",
            ServeError::MemBudget { .. } => "ACC-S004",
            ServeError::UnknownApp(_) => "ACC-S005",
            ServeError::Shutdown => "ACC-S006",
            ServeError::Io(_) => "ACC-S007",
            ServeError::Remote { code, .. } => code,
            ServeError::Run(e) => e.code(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { cap } => write!(f, "job queue full (capacity {cap})"),
            ServeError::Timeout { ms } => write!(f, "job did not finish within {ms} ms"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::MemBudget {
                peak_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget exceeded: peak {peak_bytes} B > budget {budget_bytes} B"
            ),
            ServeError::UnknownApp(name) => write!(f, "unknown application {name:?}"),
            ServeError::Shutdown => write!(f, "server is shutting down"),
            ServeError::Io(m) => write!(f, "transport error: {m}"),
            ServeError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            ServeError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AppError> for ServeError {
    fn from(e: AppError) -> ServeError {
        ServeError::Run(e)
    }
}

impl From<RunError> for ServeError {
    fn from(e: RunError) -> ServeError {
        ServeError::Run(AppError::from(e))
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(ServeError::QueueFull { cap: 4 }.code(), "ACC-S001");
        assert_eq!(ServeError::Timeout { ms: 10 }.code(), "ACC-S002");
        assert_eq!(ServeError::BadRequest("x".into()).code(), "ACC-S003");
        assert_eq!(
            ServeError::MemBudget {
                peak_bytes: 2,
                budget_bytes: 1
            }
            .code(),
            "ACC-S004"
        );
        assert_eq!(ServeError::UnknownApp("nbody".into()).code(), "ACC-S005");
        assert_eq!(ServeError::Shutdown.code(), "ACC-S006");
        assert_eq!(ServeError::Io("refused".into()).code(), "ACC-S007");
    }

    #[test]
    fn run_errors_pass_their_code_through() {
        let e = ServeError::from(RunError::Compile("parse error".into()));
        assert_eq!(e.code(), "ACC-R010");
        assert!(e.to_string().contains("parse error"));
    }
}
