//! `acc-serve` — run the compile-and-run daemon.
//!
//! ```text
//! acc-serve [--addr 127.0.0.1:0] [--workers N] [--queue N]
//!           [--timeout-ms N] [--mem-budget-bytes N]
//!           [--machine desktop|node] [--smoke]
//! ```
//!
//! Without `--smoke` the daemon binds, prints one
//! `acc-serve: listening on ADDR` line (port 0 binds an ephemeral
//! port), and serves until a client sends `{"cmd":"shutdown"}`.
//!
//! `--smoke` is the CI mode: it starts the daemon on an ephemeral
//! port, drives heat2d and bfs jobs from two concurrent client
//! threads, checks every summary, prints the daemon stats, shuts the
//! daemon down cleanly, and exits non-zero on any failure.

use std::net::TcpListener;
use std::sync::Arc;

use acc_gpusim::MachineKind;
use acc_obs::json::Value;
use acc_serve::{Client, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: acc-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--timeout-ms N] [--mem-budget-bytes N] [--machine desktop|node] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_args() -> (String, ServerConfig, bool) {
    let mut addr = "127.0.0.1:0".to_string();
    let mut cfg = ServerConfig::default();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("acc-serve: {flag} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => {
                cfg.workers = value("--workers").parse().unwrap_or_else(|_| usage())
            }
            "--queue" => cfg.queue_cap = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--timeout-ms" => {
                cfg.default_timeout_ms = value("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--mem-budget-bytes" => {
                cfg.default_mem_budget_bytes =
                    Some(value("--mem-budget-bytes").parse().unwrap_or_else(|_| usage()))
            }
            "--machine" => {
                cfg.kind = match value("--machine").as_str() {
                    "desktop" => MachineKind::Desktop,
                    "node" => MachineKind::SupercomputerNode,
                    other => {
                        eprintln!("acc-serve: unknown machine {other:?}");
                        usage();
                    }
                }
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("acc-serve: unknown flag {other:?}");
                usage();
            }
        }
    }
    (addr, cfg, smoke)
}

fn main() {
    let (addr, cfg, smoke) = parse_args();
    if smoke {
        if let Err(msg) = run_smoke(&addr, cfg) {
            eprintln!("acc-serve: smoke FAILED: {msg}");
            std::process::exit(1);
        }
        println!("acc-serve: smoke OK");
        return;
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("acc-serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = listener.local_addr().expect("bound listener has an address");
    println!("acc-serve: listening on {local}");
    let server = Server::new(cfg);
    let workers = server.spawn_workers(server.config().workers);
    if let Err(e) = server.serve_tcp(&listener.try_clone().expect("clone listener")) {
        eprintln!("acc-serve: accept loop failed: {e}");
    }
    drop(listener);
    for w in workers {
        let _ = w.join();
    }
    println!("acc-serve: shut down cleanly");
}

/// The CI scenario: daemon + two tenant threads + clean shutdown.
fn run_smoke(addr: &str, mut cfg: ServerConfig) -> Result<(), String> {
    cfg.workers = cfg.workers.max(2);
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    println!("acc-serve: smoke daemon on {local}");
    let server = Server::new(cfg);
    let workers = server.spawn_workers(server.config().workers);
    let acceptor = {
        let srv = Arc::clone(&server);
        std::thread::spawn(move || srv.serve_tcp(&listener))
    };

    let tenant = |app: &'static str, ngpus: usize, jobs: usize| {
        std::thread::spawn(move || -> Result<(), String> {
            let mut client =
                Client::connect(local).map_err(|e| format!("{app}: connect: {e}"))?;
            for i in 0..jobs {
                let req_json = Value::obj([
                    ("cmd", Value::str("run")),
                    ("app", Value::str(app)),
                    ("ngpus", Value::num(ngpus as f64)),
                    ("seed", Value::num(42.0 + i as f64)),
                ]);
                let resp = client
                    .request(&req_json)
                    .map_err(|e| format!("{app} job {i}: [{}] {e}", e.code()))?;
                match resp.get("correct") {
                    Some(Value::Bool(true)) => {}
                    other => return Err(format!("{app} job {i}: not correct: {other:?}")),
                }
            }
            Ok(())
        })
    };

    let t1 = tenant("heat2d", 2, 3);
    let t2 = tenant("bfs", 2, 3);
    for t in [t1, t2] {
        t.join().map_err(|_| "tenant thread panicked".to_string())??;
    }

    let mut client = Client::connect(local).map_err(|e| format!("stats connect: {e}"))?;
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    println!("acc-serve: smoke stats {}", stats.to_string_compact());
    let jobs_ok = stats.get("jobs_ok").and_then(Value::as_f64).unwrap_or(0.0);
    if jobs_ok < 6.0 {
        return Err(format!("expected >= 6 completed jobs, got {jobs_ok}"));
    }
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;

    acceptor
        .join()
        .map_err(|_| "acceptor thread panicked".to_string())?
        .map_err(|e| format!("accept loop: {e}"))?;
    for w in workers {
        w.join().map_err(|_| "worker thread panicked".to_string())?;
    }
    if !server.is_shutting_down() {
        return Err("server did not record shutdown".into());
    }
    Ok(())
}
