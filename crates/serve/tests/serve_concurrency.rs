//! End-to-end daemon tests: many tenants over real sockets, typed
//! rejects on the wire, determinism of concurrent results against a
//! private single-tenant engine, and clean shutdown.
//!
//! (Bit-identity of the shared [`acc_runtime::Engine`] against the
//! serial `run_program` path — arrays, traces, simulated times — is
//! proven in `crates/accrt/tests/engine_concurrency.rs`; these tests
//! hold the daemon layer on top of it.)

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use acc_apps::{run_app_with_engine, App, Scale, Version};
use acc_gpusim::{Machine, MachineKind};
use acc_obs::json::Value;
use acc_runtime::{Engine, ExecConfig};
use acc_serve::{Client, JobRequest, Server, ServerConfig};

type Daemon = (
    Arc<Server>,
    std::net::SocketAddr,
    Vec<std::thread::JoinHandle<()>>,
    std::thread::JoinHandle<std::io::Result<()>>,
);

fn start_daemon(cfg: ServerConfig) -> Daemon {
    let workers = cfg.workers;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = Server::new(cfg);
    let worker_handles = server.spawn_workers(workers);
    let acceptor = {
        let srv = Arc::clone(&server);
        std::thread::spawn(move || srv.serve_tcp(&listener))
    };
    (server, addr, worker_handles, acceptor)
}

/// The acceptance scenario: 8 concurrent tenants over TCP, mixed apps
/// and GPU counts, every job correct, compilation-cache hit rate above
/// 90%, clean shutdown afterwards.
#[test]
fn eight_tenants_sustain_a_hot_cache_over_tcp() {
    let (server, addr, workers, acceptor) = start_daemon(ServerConfig {
        workers: 8,
        queue_cap: 64,
        ..ServerConfig::default()
    });
    let apps = ["heat2d", "bfs", "md"];
    let tenants: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..6 {
                    let req = Value::obj([
                        ("cmd", Value::str("run")),
                        ("app", Value::str(apps[(t + i) % apps.len()])),
                        ("ngpus", Value::num((1 + (t + i) % 3) as f64)),
                    ]);
                    let resp = client.request(&req).expect("job response");
                    assert!(
                        matches!(resp.get("correct"), Some(Value::Bool(true))),
                        "tenant {t} job {i} incorrect: {}",
                        resp.to_string_compact()
                    );
                }
            })
        })
        .collect();
    for t in tenants {
        t.join().expect("tenant thread");
    }

    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let jobs_ok = stats.get("jobs_ok").and_then(Value::as_f64).unwrap();
    let hit_rate = stats.get("job_cache_hit_rate").and_then(Value::as_f64).unwrap();
    assert_eq!(jobs_ok, 48.0, "{}", stats.to_string_compact());
    assert!(
        hit_rate > 0.90,
        "cache hit rate {hit_rate} must exceed 90%: {}",
        stats.to_string_compact()
    );

    client.shutdown().expect("shutdown");
    acceptor.join().expect("acceptor").expect("accept loop");
    for w in workers {
        w.join().expect("worker");
    }
    assert!(server.is_shutting_down());
    // Admission stays closed after shutdown.
    assert_eq!(
        server.submit(JobRequest::new(App::Heat2d, 1)).unwrap_err().code(),
        "ACC-S006"
    );
}

/// Every deterministic field of a concurrent tenant's summary must
/// match a private, freshly-built engine running the same job serially.
#[test]
fn concurrent_summaries_match_a_private_serial_engine() {
    let jobs = [
        (App::Heat2d, 2usize),
        (App::Bfs, 3usize),
        (App::Spmv, 2usize),
    ];
    // Serial references, each on its own engine and machine.
    let refs: Vec<_> = jobs
        .iter()
        .map(|&(app, ngpus)| {
            let engine = Engine::new(MachineKind::SupercomputerNode, ExecConfig::gpus(1));
            let version = Version::Proposal(ngpus);
            let mut m = Machine::supercomputer_node();
            run_app_with_engine(
                &engine,
                app,
                version,
                &mut m,
                Scale::Small,
                42,
                &version.exec_config(),
            )
            .expect("serial reference run")
        })
        .collect();

    let server = Server::new(ServerConfig {
        workers: 6,
        ..ServerConfig::default()
    });
    let workers = server.spawn_workers(6);
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let srv = Arc::clone(&server);
            std::thread::spawn(move || {
                let (app, ngpus) = jobs[t % jobs.len()];
                (t % jobs.len(), srv.run_sync(JobRequest::new(app, ngpus)).expect("job"))
            })
        })
        .collect();
    for th in threads {
        let (i, summary) = th.join().expect("tenant thread");
        let r = &refs[i];
        assert!(summary.correct, "{:?}", jobs[i]);
        assert_eq!(summary.max_err, r.max_err, "{:?}", jobs[i]);
        assert_eq!(summary.sim_s, r.time.parallel_region(), "{:?}", jobs[i]);
        assert_eq!(summary.comm_sim_s, r.time.gpu_gpu, "{:?}", jobs[i]);
        assert_eq!(summary.h2d_bytes, r.h2d_bytes, "{:?}", jobs[i]);
        assert_eq!(summary.d2h_bytes, r.d2h_bytes, "{:?}", jobs[i]);
        assert_eq!(summary.p2p_bytes, r.p2p_bytes, "{:?}", jobs[i]);
        let ref_peak: u64 = r.mem.iter().map(|m| m.user_peak + m.system_peak).sum();
        assert_eq!(summary.mem_peak_bytes, ref_peak, "{:?}", jobs[i]);
    }
    server.shutdown();
    for w in workers {
        w.join().expect("worker");
    }
}

/// Typed rejects travel the wire with their codes intact.
#[test]
fn typed_rejects_reach_the_client_with_codes() {
    // cap 1, no workers: the first job parks in the queue and times
    // out; the second bounces off the full queue — both as typed codes
    // in the JSON response, not as closed sockets.
    let (server, addr, _workers, acceptor) = start_daemon(ServerConfig {
        workers: 0,
        queue_cap: 1,
        default_timeout_ms: 50,
        ..ServerConfig::default()
    });

    let t1 = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        let mut req = JobRequest::new(App::Heat2d, 1);
        req.timeout_ms = Some(50);
        c.run(&req).expect_err("queued job must time out").code().to_string()
    });
    // Give the first job time to occupy the queue.
    std::thread::sleep(std::time::Duration::from_millis(10));
    let mut c2 = Client::connect(addr).expect("connect");
    let full = c2
        .run(&JobRequest::new(App::Heat2d, 1))
        .expect_err("second job must bounce off the full queue");
    assert_eq!(full.code(), "ACC-S001");
    assert_eq!(t1.join().expect("timeout client"), "ACC-S002");

    // Protocol-level rejects on a raw socket.
    let raw = TcpStream::connect(addr).expect("connect raw");
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut w = raw;
    let mut send = |line: &str| -> Value {
        writeln!(w, "{line}").unwrap();
        w.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        acc_obs::json::parse(resp.trim()).expect("response parses")
    };
    let bad = send("this is not json");
    assert_eq!(bad.get("code").and_then(Value::as_str), Some("ACC-S003"));
    let unknown = send(r#"{"cmd":"run","app":"nbody"}"#);
    assert_eq!(unknown.get("code").and_then(Value::as_str), Some("ACC-S005"));
    let budget = send(r#"{"cmd":"shutdown"}"#);
    assert!(matches!(budget.get("ok"), Some(Value::Bool(true))));
    acceptor.join().expect("acceptor").expect("accept loop");
    assert!(server.is_shutting_down());
}

/// A memory-budgeted job over the wire gets `ACC-S004`, and the same
/// job with a sane budget succeeds on the same connection.
#[test]
fn memory_budgets_apply_per_job_over_tcp() {
    let (server, addr, workers, acceptor) = start_daemon(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let mut tight = JobRequest::new(App::Heat2d, 2);
    tight.mem_budget_bytes = Some(1);
    let err = client.run(&tight).expect_err("1-byte budget must fail");
    assert_eq!(err.code(), "ACC-S004");
    let mut roomy = JobRequest::new(App::Heat2d, 2);
    roomy.mem_budget_bytes = Some(u64::MAX);
    let summary = client.run(&roomy).expect("roomy budget succeeds");
    assert!(summary.correct);
    assert!(summary.mem_peak_bytes > 1);
    client.shutdown().expect("shutdown");
    acceptor.join().expect("acceptor").expect("accept loop");
    server.shutdown();
    for w in workers {
        w.join().expect("worker");
    }
}
