//! Interval/range reasoning over loop bounds and the `localaccess` stride
//! symbol (the broadened §IV-D2 write-locality prover).
//!
//! The strict prover in [`crate::analysis`] only accepts stores of the
//! form `s*tid + c` with both parts compile-time constants. Real stencil
//! kernels index as `tid*S + j` where `S` is a *runtime* stride (a
//! captured host scalar such as `cols`) and `j` runs over a desugared
//! inner loop `0 <= j < S`. This module proves such stores local by
//!
//! * tracking every kernel local as an inclusive interval of *symbolic
//!   bounds* `a*S + k` (with the runtime guarantee `S >= 1`, enforced by
//!   `ACC-E001` at parse time and `BadLocalAccess` at launch time),
//! * recovering loop bounds from desugared `while (v < ub)` loops whose
//!   induction variable only grows by positive constants,
//! * decomposing each store/load index into
//!   `tid_s*(S*tid) + tid_c*tid + offset-interval`.
//!
//! A store is provably inside the iteration's own partition
//! `[S*tid, S*(tid+1) - 1]` when the effective thread coefficient equals
//! the stride and the offset interval fits `[0, S-1]`; a load of a
//! `localaccess` array provably escapes the declared window
//! `[S*tid - left, S*(tid+1) - 1 + right]` when its offset interval lies
//! outside for *every* admissible `S` (diagnostic `ACC-W003`).

use std::collections::BTreeSet;

use acc_kernel_ir::{self as ir, BinOp, Expr, Stmt, Ty, UnOp, Value};

use crate::affine::linear_in_tid;

/// The distribution stride `S`, as seen from inside the kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrideRef {
    /// Compile-time constant stride.
    Const(i64),
    /// A kernel local holding the stride; must never be assigned in the
    /// analyzed body so its symbolic identity is stable.
    Sym(ir::LocalId),
}

impl StrideRef {
    fn exact(self) -> Option<i64> {
        match self {
            StrideRef::Const(s) => Some(s),
            StrideRef::Sym(_) => None,
        }
    }
}

/// A symbolic bound `a*S + k` over the stride symbol `S >= 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymBound {
    pub a: i64,
    pub k: i64,
}

impl SymBound {
    /// The constant `k`.
    pub fn konst(k: i64) -> SymBound {
        SymBound { a: 0, k }
    }

    /// The stride symbol `S` itself.
    pub fn stride() -> SymBound {
        SymBound { a: 1, k: 0 }
    }

    pub fn scale(self, c: i64) -> SymBound {
        SymBound {
            a: self.a * c,
            k: self.k * c,
        }
    }

    /// `self <= other` for every admissible stride value: exactly `s`
    /// when known, otherwise all `S >= 1`. With `d = self - other`, the
    /// symbolic case needs `d.a <= 0` (or the gap grows with `S`) and the
    /// worst case at `S = 1` non-positive.
    pub fn le(self, other: SymBound, stride: StrideRef) -> bool {
        let da = self.a - other.a;
        let dk = self.k - other.k;
        match stride.exact() {
            Some(s) => da * s + dk <= 0,
            None => da <= 0 && da + dk <= 0,
        }
    }

    /// Strict `self < other` for every admissible stride value.
    pub fn lt(self, other: SymBound, stride: StrideRef) -> bool {
        (self + SymBound::konst(1)).le(other, stride)
    }
}

impl std::ops::Add for SymBound {
    type Output = SymBound;
    fn add(self, o: SymBound) -> SymBound {
        SymBound {
            a: self.a + o.a,
            k: self.k + o.k,
        }
    }
}

impl std::ops::Neg for SymBound {
    type Output = SymBound;
    fn neg(self) -> SymBound {
        SymBound {
            a: -self.a,
            k: -self.k,
        }
    }
}

/// An inclusive interval of symbolic bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymRange {
    pub lo: SymBound,
    pub hi: SymBound,
}

impl SymRange {
    pub fn point(b: SymBound) -> SymRange {
        SymRange { lo: b, hi: b }
    }

    fn add(self, o: SymRange) -> SymRange {
        SymRange {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }

    fn neg(self) -> SymRange {
        SymRange {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    fn scale(self, c: i64) -> SymRange {
        if c >= 0 {
            SymRange {
                lo: self.lo.scale(c),
                hi: self.hi.scale(c),
            }
        } else {
            SymRange {
                lo: self.hi.scale(c),
                hi: self.lo.scale(c),
            }
        }
    }

    /// Smallest interval covering both, or `None` when the symbolic
    /// bounds are incomparable.
    fn union(self, o: SymRange, stride: StrideRef) -> Option<SymRange> {
        let lo = if self.lo.le(o.lo, stride) {
            self.lo
        } else if o.lo.le(self.lo, stride) {
            o.lo
        } else {
            return None;
        };
        let hi = if o.hi.le(self.hi, stride) {
            self.hi
        } else if self.hi.le(o.hi, stride) {
            o.hi
        } else {
            return None;
        };
        Some(SymRange { lo, hi })
    }
}

/// One decomposed index: `tid_s*(S*tid) + tid_c*tid + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexForm {
    /// Coefficient of `S*tid`.
    pub tid_s: i64,
    /// Coefficient of bare `tid`.
    pub tid_c: i64,
    /// Interval of the thread-invariant remainder.
    pub offset: SymRange,
}

impl IndexForm {
    /// The effective thread coefficient equals the stride: the access
    /// walks one partition per iteration, so offsets are comparable
    /// against partition-relative windows.
    pub(crate) fn coeff_is_stride(&self, stride: StrideRef) -> bool {
        match stride {
            StrideRef::Const(s) => self.tid_s * s + self.tid_c == s,
            StrideRef::Sym(_) => self.tid_s == 1 && self.tid_c == 0,
        }
    }
}

/// Signature of a *monotone indirect window*: per iteration `t`, the
/// half-open element range `[p[c*t + o], p[c*t + o + d])` of some bound
/// array `p` (`row_ptr` in CSR codes). Provided `p` is elementwise
/// non-decreasing, windows of distinct iterations with the same
/// signature are pairwise disjoint whenever `1 <= d <= c` — the lattice
/// [`crate::depend`] uses for SPMV/pagerank-style inner loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MonoSig {
    /// The bound array (kernel buffer id of `p`).
    pub ptr: ir::BufId,
    /// Thread coefficient `c >= 1` of both bound subscripts.
    pub coeff: i64,
    /// Subscript offset `o` of the lower bound `p[c*t + o]`.
    pub lo_off: i64,
    /// Subscript span `d` (`1 <= d <= c`): the window ends at
    /// `p[c*t + o + d]`.
    pub span: i64,
}

/// Decomposed access sites of one buffer; `None` entries are sites whose
/// index the analysis could not decompose. `store_mono`/`load_mono` run
/// parallel to `stores`/`loads`: a `Some(sig)` entry marks a site whose
/// index is exactly the induction variable of a recognized monotone
/// indirect-window loop (such sites always decompose to `None` — the
/// bound is data-dependent).
#[derive(Debug, Clone, Default)]
pub struct BufSites {
    pub stores: Vec<Option<IndexForm>>,
    pub loads: Vec<Option<IndexForm>>,
    pub store_mono: Vec<Option<MonoSig>>,
    pub load_mono: Vec<Option<MonoSig>>,
}

/// Every local assigned (via `Assign`) anywhere in `stmts`, recursively.
pub fn assigned_locals(stmts: &[Stmt]) -> BTreeSet<ir::LocalId> {
    let mut out = BTreeSet::new();
    for s in stmts {
        s.visit(&mut |s| {
            if let Stmt::Assign { local, .. } = s {
                out.insert(*local);
            }
        });
    }
    out
}

/// Collect and decompose every access to `buf` in `body`, tracking local
/// intervals along the way. `n_locals` sizes the environment.
pub fn collect(body: &[Stmt], n_locals: usize, buf: ir::BufId, stride: StrideRef) -> BufSites {
    let mut w = Walker {
        buf,
        stride,
        out: BufSites::default(),
        mono: Vec::new(),
    };
    let mut env: Env = vec![None; n_locals];
    if let StrideRef::Sym(l) = stride {
        // The stride symbol is, by definition, exactly S.
        if (l.0 as usize) < n_locals {
            env[l.0 as usize] = Some(SymRange::point(SymBound::stride()));
        }
    }
    w.walk_block(body, &mut env);
    w.out
}

/// Every store decomposed and provably inside `[S*tid, S*(tid+1) - 1]`.
/// Mirrors `BufUsage::stores_within_own_stride`: vacuously false when the
/// buffer has no stores.
pub fn stores_proved_local(sites: &BufSites, stride: StrideRef) -> bool {
    !sites.stores.is_empty()
        && sites.stores.iter().all(|f| match f {
            Some(f) => {
                f.coeff_is_stride(stride)
                    && SymBound::konst(0).le(f.offset.lo, stride)
                    && f.offset.hi.le(SymBound { a: 1, k: -1 }, stride)
            }
            None => false,
        })
}

/// Result of checking decomposed loads against a declared window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCheck {
    /// Sites whose index was comparable against the window.
    pub checked: usize,
    /// Sites provably outside `[-left, S-1+right]` for every admissible
    /// stride — definite `ACC-W003` hits.
    pub violations: usize,
}

/// Check decomposed loads against the declared per-iteration window
/// `[S*tid - left, S*(tid+1) - 1 + right]`. A `None` halo bound means
/// that side could not be expressed over `S` and is treated as
/// unbounded (no violation provable on that side).
pub fn check_load_windows(
    sites: &BufSites,
    stride: StrideRef,
    left: Option<SymBound>,
    right: Option<SymBound>,
) -> WindowCheck {
    let mut out = WindowCheck::default();
    for f in sites.loads.iter().flatten() {
        if !f.coeff_is_stride(stride) {
            continue;
        }
        out.checked += 1;
        let low_escape = match left {
            Some(l) => f.offset.lo.lt(-l, stride),
            None => false,
        };
        let high_escape = match right {
            Some(r) => (SymBound { a: 1, k: -1 } + r).lt(f.offset.hi, stride),
            None => false,
        };
        if low_escape || high_escape {
            out.violations += 1;
        }
    }
    out
}

/// Express a host-side `localaccess` halo expression as a bound over the
/// stride symbol: any linear combination `c*S + k` built from foldable
/// constants and the stride expression itself — `left(cols)`,
/// `left(2*cols)`, `left(cols + 1)` with `stride(cols)` all resolve.
pub fn window_bound(e: &ir::Expr, stride_expr: &ir::Expr) -> Option<SymBound> {
    if let ir::Expr::Imm(Value::I32(v)) = ir::fold::fold_expr(e.clone()) {
        return Some(SymBound::konst(v as i64));
    }
    if e == stride_expr {
        return Some(SymBound::stride());
    }
    if let ir::Expr::Binary { op, a, b } = e {
        let (wa, wb) = (window_bound(a, stride_expr), window_bound(b, stride_expr));
        match (op, wa, wb) {
            (ir::BinOp::Add, Some(x), Some(y)) => return Some(x + y),
            (ir::BinOp::Sub, Some(x), Some(y)) => return Some(x + -y),
            (ir::BinOp::Mul, Some(x), Some(y)) => {
                // Linear result only: one factor must be constant.
                if x.a == 0 {
                    return Some(y.scale(x.k));
                }
                if y.a == 0 {
                    return Some(x.scale(y.k));
                }
            }
            _ => {}
        }
    }
    None
}

/// How many whole stride windows a halo bound spans: the largest `d`
/// with `(d-1)*S + 1 <= halo` for every admissible stride (0 when the
/// halo covers no full neighbor window, capped at 16). This is the
/// currency carried distances are measured in: a halo of `d` windows
/// reaches the `d` nearest neighbor partitions on that side.
pub fn halo_windows(halo: Option<SymBound>, stride: StrideRef) -> i64 {
    let Some(h) = halo else { return 0 };
    let mut d = 0;
    while d < 16 {
        let need = SymBound { a: d, k: 1 };
        if !need.le(h, stride) {
            break;
        }
        d += 1;
    }
    d
}

// ---------- the environment-tracking walker ----------

type Env = Vec<Option<SymRange>>;

struct Walker {
    buf: ir::BufId,
    stride: StrideRef,
    out: BufSites,
    /// Stack of active monotone-window loop contexts: the induction
    /// variable and the window signature its value is confined to.
    mono: Vec<(ir::LocalId, MonoSig)>,
}

impl Walker {
    fn walk_block(&mut self, stmts: &[Stmt], env: &mut Env) {
        for (i, s) in stmts.iter().enumerate() {
            let prev = if i > 0 { Some(&stmts[i - 1]) } else { None };
            self.walk_stmt(s, prev, env);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt, prev: Option<&Stmt>, env: &mut Env) {
        match s {
            Stmt::Assign { local, value } => {
                self.visit_loads(value, env);
                let r = eval(value, env, self.stride);
                env[local.0 as usize] = r;
            }
            Stmt::Store { buf, idx, value, .. } => {
                self.visit_loads(idx, env);
                self.visit_loads(value, env);
                if *buf == self.buf {
                    self.out.stores.push(decompose(idx, env, self.stride));
                    self.out.store_mono.push(self.claim_for(idx));
                }
            }
            Stmt::AtomicRmw { idx, value, .. } => {
                // Atomic destinations are reduction-private, never
                // distributed; only their embedded loads matter here.
                self.visit_loads(idx, env);
                self.visit_loads(value, env);
            }
            Stmt::ReduceScalar { value, .. } => self.visit_loads(value, env),
            Stmt::If { cond, then_, else_ } => {
                self.visit_loads(cond, env);
                let mut e1 = env.clone();
                let mut e2 = env.clone();
                self.walk_block(then_, &mut e1);
                self.walk_block(else_, &mut e2);
                for (dst, (a, b)) in env.iter_mut().zip(e1.into_iter().zip(e2)) {
                    *dst = match (a, b) {
                        (Some(a), Some(b)) => a.union(b, self.stride),
                        _ => None,
                    };
                }
            }
            Stmt::While { cond, body } => {
                let assigned = assigned_locals(body);
                let mut inner = env.clone();
                for l in &assigned {
                    inner[l.0 as usize] = None;
                }
                if let Some((v, range)) = recover_loop_bounds(cond, body, env, self.stride) {
                    inner[v.0 as usize] = Some(range);
                }
                let ctx = mono_context(prev, cond, body);
                if let Some(c) = ctx {
                    self.mono.push(c);
                }
                self.visit_loads(cond, &inner);
                self.walk_block(body, &mut inner);
                if ctx.is_some() {
                    self.mono.pop();
                }
                // Nothing assigned in the body has a known value after
                // the loop (it may run zero or many times).
                for l in assigned {
                    env[l.0 as usize] = None;
                }
            }
            Stmt::Break | Stmt::Continue => {}
        }
    }

    fn visit_loads(&mut self, e: &Expr, env: &Env) {
        let mut found = Vec::new();
        e.visit(&mut |e| {
            if let Expr::Load { buf, idx } = e {
                if *buf == self.buf {
                    found.push(idx.as_ref());
                }
            }
        });
        for idx in found {
            self.out.loads.push(decompose(idx, env, self.stride));
            self.out.load_mono.push(self.claim_for(idx));
        }
    }

    /// The monotone signature claiming this index, if the index is
    /// exactly an active monotone induction variable (innermost wins).
    fn claim_for(&self, idx: &Expr) -> Option<MonoSig> {
        if let Expr::Local(l) = strip_cast(idx) {
            return self
                .mono
                .iter()
                .rev()
                .find(|(k, _)| k == l)
                .map(|&(_, sig)| sig);
        }
        None
    }
}

/// Recognize a monotone indirect-window loop: the statement pair
///
/// ```text
/// k = p[c*tid + o];
/// while (k < p[c*tid + o + d]) { ...; k = k + positive-const; }
/// ```
///
/// with `c >= 1` and `1 <= d <= c`, where the only reassignment of `k`
/// inside the loop is the final top-level increment and `p` is never
/// written inside the loop body. `k` then stays inside the half-open
/// window `[p[c*tid + o], p[c*tid + o + d])` — the per-iteration windows
/// are pairwise disjoint provided `p` is elementwise non-decreasing (a
/// premise the caller must discharge; see [`crate::depend`]).
fn mono_context(prev: Option<&Stmt>, cond: &Expr, body: &[Stmt]) -> Option<(ir::LocalId, MonoSig)> {
    let (k, ptr, lo_idx) = match prev? {
        Stmt::Assign { local, value } => match strip_cast(value) {
            Expr::Load { buf, idx } => (*local, *buf, idx.as_ref()),
            _ => return None,
        },
        _ => return None,
    };
    let ub = match strip_cast(cond) {
        Expr::Binary { op: BinOp::Lt, a, b } => match strip_cast(a) {
            Expr::Local(v) if *v == k => strip_cast(b),
            _ => return None,
        },
        _ => return None,
    };
    let hi_idx = match ub {
        Expr::Load { buf, idx } if *buf == ptr => idx.as_ref(),
        _ => return None,
    };
    let lo = linear_in_tid(lo_idx)?;
    let hi = linear_in_tid(hi_idx)?;
    if lo.coeff != hi.coeff || lo.coeff < 1 {
        return None;
    }
    let span = hi.offset - lo.offset;
    if span < 1 || span > lo.coeff {
        return None;
    }
    // `k` must only be reassigned by the final top-level increment, and
    // the bound array must stay constant inside the loop.
    let mut k_assigns = 0usize;
    let mut ptr_written = false;
    for s in body {
        s.visit(&mut |s| match s {
            Stmt::Assign { local, .. } if *local == k => k_assigns += 1,
            Stmt::Store { buf, .. } | Stmt::AtomicRmw { buf, .. } if *buf == ptr => {
                ptr_written = true;
            }
            _ => {}
        });
    }
    if ptr_written || k_assigns != 1 {
        return None;
    }
    match body.last()? {
        Stmt::Assign { local, value } if *local == k && is_positive_increment(value, k) => {}
        _ => return None,
    }
    Some((
        k,
        MonoSig {
            ptr,
            coeff: lo.coeff,
            lo_off: lo.offset,
            span,
        },
    ))
}

/// Recover `v in [pre(v).lo, ub - 1]` from a desugared counting loop
/// `while (v < ub) { ...; v = v + c; }`:
///
/// * the condition compares a local against a loop-invariant bound,
/// * every assignment to `v` in the body adds a positive constant,
/// * the bound expression references no local assigned in the body.
fn recover_loop_bounds(
    cond: &Expr,
    body: &[Stmt],
    env: &Env,
    stride: StrideRef,
) -> Option<(ir::LocalId, SymRange)> {
    let (v, ub, inclusive) = match strip_cast(cond) {
        Expr::Binary { op, a, b } => match (op, strip_cast(a), strip_cast(b)) {
            (BinOp::Lt, Expr::Local(v), ub) => (*v, ub, false),
            (BinOp::Le, Expr::Local(v), ub) => (*v, ub, true),
            (BinOp::Gt, ub, Expr::Local(v)) => (*v, ub, false),
            (BinOp::Ge, ub, Expr::Local(v)) => (*v, ub, true),
            _ => return None,
        },
        _ => return None,
    };
    let pre = env[v.0 as usize]?;
    let ubr = eval_at(ub, env, stride)?;
    let assigned = assigned_locals(body);
    // The bound must be loop-invariant (the stride symbol is known
    // unassigned — the caller guarantees it before using `Sym`).
    let mut invariant = true;
    ub.visit(&mut |e| {
        if let Expr::Local(l) = e {
            if assigned.contains(l) && !is_stride_local(l, stride) {
                invariant = false;
            }
        }
    });
    if !invariant {
        return None;
    }
    // Every assignment to v must be `v = v + positive-const`.
    let mut monotone = true;
    for s in body {
        s.visit(&mut |s| {
            if let Stmt::Assign { local, value } = s {
                if *local == v && !is_positive_increment(value, v) {
                    monotone = false;
                }
            }
        });
    }
    if !monotone {
        return None;
    }
    let hi = if inclusive {
        ubr.hi
    } else {
        ubr.hi + SymBound::konst(-1)
    };
    Some((v, SymRange { lo: pre.lo, hi }))
}

fn is_positive_increment(value: &Expr, v: ir::LocalId) -> bool {
    match strip_cast(value) {
        Expr::Binary { op: BinOp::Add, a, b } => {
            matches!(
                (strip_cast(a), strip_cast(b)),
                (Expr::Local(l), Expr::Imm(Value::I32(c))) if *l == v && *c > 0
            ) || matches!(
                (strip_cast(a), strip_cast(b)),
                (Expr::Imm(Value::I32(c)), Expr::Local(l)) if *l == v && *c > 0
            )
        }
        _ => false,
    }
}

fn is_stride_local(l: &ir::LocalId, stride: StrideRef) -> bool {
    matches!(stride, StrideRef::Sym(sl) if sl == *l)
}

pub(crate) fn strip_cast(mut e: &Expr) -> &Expr {
    while let Expr::Cast { ty: Ty::I32, a } = e {
        e = a;
    }
    e
}

/// Evaluate a thread-invariant expression to a symbolic interval.
fn eval(e: &Expr, env: &Env, stride: StrideRef) -> Option<SymRange> {
    if contains_tid(e) {
        return None;
    }
    eval_at(e, env, stride)
}

fn eval_at(e: &Expr, env: &Env, stride: StrideRef) -> Option<SymRange> {
    match e {
        Expr::Imm(Value::I32(v)) => Some(SymRange::point(SymBound::konst(*v as i64))),
        Expr::Local(l) if is_stride_local(l, stride) => {
            Some(SymRange::point(SymBound::stride()))
        }
        Expr::Local(l) => env.get(l.0 as usize).copied().flatten(),
        Expr::Cast { ty: Ty::I32, a } => eval_at(a, env, stride),
        Expr::Unary { op: UnOp::Neg, a } => Some(eval_at(a, env, stride)?.neg()),
        Expr::Binary { op, a, b } => {
            let ra = eval_at(a, env, stride);
            let rb = eval_at(b, env, stride);
            match op {
                BinOp::Add => Some(ra?.add(rb?)),
                BinOp::Sub => Some(ra?.add(rb?.neg())),
                BinOp::Mul => {
                    // One side must be a known constant to stay within
                    // the `a*S + k` domain (S*S is not representable).
                    if let Some(c) = ra.and_then(const_point) {
                        Some(rb?.scale(c))
                    } else if let Some(c) = rb.and_then(const_point) {
                        Some(ra?.scale(c))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn const_point(r: SymRange) -> Option<i64> {
    if r.lo == r.hi && r.lo.a == 0 {
        Some(r.lo.k)
    } else {
        None
    }
}

fn contains_tid(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |e| {
        if matches!(e, Expr::ThreadIdx) {
            found = true;
        }
    });
    found
}

/// Decompose an index into `tid_s*(S*tid) + tid_c*tid + offset-interval`
/// by flattening its top-level `+`/`-` terms.
fn decompose(idx: &Expr, env: &Env, stride: StrideRef) -> Option<IndexForm> {
    let mut terms = Vec::new();
    flatten(idx, 1, &mut terms);
    let mut form = IndexForm {
        tid_s: 0,
        tid_c: 0,
        offset: SymRange::point(SymBound::konst(0)),
    };
    for (sign, t) in terms {
        if contains_tid(t) {
            if let Some(lin) = linear_in_tid(t) {
                form.tid_c += sign * lin.coeff;
                form.offset = form
                    .offset
                    .add(SymRange::point(SymBound::konst(sign * lin.offset)));
            } else if let Expr::Binary {
                op: BinOp::Mul,
                a,
                b,
            } = strip_cast(t)
            {
                // `(c1*tid + c2) * S` (either operand order): contributes
                // c1 to the S*tid coefficient and c2*S to the offset.
                let lin = if is_stride_expr(a, stride) {
                    linear_in_tid(b)?
                } else if is_stride_expr(b, stride) {
                    linear_in_tid(a)?
                } else {
                    return None;
                };
                form.tid_s += sign * lin.coeff;
                form.offset = form.offset.add(SymRange::point(SymBound {
                    a: sign * lin.offset,
                    k: 0,
                }));
            } else {
                return None;
            }
        } else {
            let r = eval_at(t, env, stride)?;
            form.offset = form.offset.add(if sign < 0 { r.neg() } else { r });
        }
    }
    Some(form)
}

fn is_stride_expr(e: &Expr, stride: StrideRef) -> bool {
    match (strip_cast(e), stride) {
        (Expr::Local(l), StrideRef::Sym(sl)) => *l == sl,
        (Expr::Imm(Value::I32(v)), StrideRef::Const(s)) => *v as i64 == s,
        _ => false,
    }
}

pub(crate) fn flatten<'a>(e: &'a Expr, sign: i64, out: &mut Vec<(i64, &'a Expr)>) {
    match e {
        Expr::Binary { op: BinOp::Add, a, b } => {
            flatten(a, sign, out);
            flatten(b, sign, out);
        }
        Expr::Binary { op: BinOp::Sub, a, b } => {
            flatten(a, sign, out);
            flatten(b, -sign, out);
        }
        Expr::Unary { op: UnOp::Neg, a } => flatten(a, -sign, out),
        Expr::Cast { ty: Ty::I32, a } => flatten(a, sign, out),
        _ => out.push((sign, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_kernel_ir::{BufId, LocalId};

    const S: StrideRef = StrideRef::Sym(LocalId(0));

    fn sb(a: i64, k: i64) -> SymBound {
        SymBound { a, k }
    }

    #[test]
    fn symbolic_ordering_uses_stride_lower_bound() {
        // 0 <= S-1 for all S >= 1; S-1 < S; 1 <= S-1 NOT provable (S=1).
        assert!(sb(0, 0).le(sb(1, -1), S));
        assert!(sb(1, -1).lt(sb(1, 0), S));
        assert!(!sb(0, 1).le(sb(1, -1), S));
        // Exact stride settles it: with S = 4, 1 <= S-1.
        assert!(sb(0, 1).le(sb(1, -1), StrideRef::Const(4)));
        // Growing gap never provable symbolically: S <= 5 fails for S=6.
        assert!(!sb(1, 0).le(sb(0, 5), S));
    }

    // Build `tid*S + j` style indices against buf 0, stride local 0.
    fn tid_s_plus(extra: Expr) -> Expr {
        Expr::add(Expr::mul(Expr::ThreadIdx, Expr::Local(LocalId(0))), extra)
    }

    #[test]
    fn proves_symbolic_stride_with_inner_loop() {
        // j = 0; while (j < S) { b[tid*S + j] = 0; j = j + 1; }
        let body = vec![
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::imm_i32(0),
            },
            Stmt::While {
                cond: Expr::bin(BinOp::Lt, Expr::Local(LocalId(1)), Expr::Local(LocalId(0))),
                body: vec![
                    Stmt::Store {
                        buf: BufId(0),
                        idx: tid_s_plus(Expr::Local(LocalId(1))),
                        value: Expr::imm_i32(0),
                        dirty: false,
                        checked: false,
                    },
                    Stmt::Assign {
                        local: LocalId(1),
                        value: Expr::add(Expr::Local(LocalId(1)), Expr::imm_i32(1)),
                    },
                ],
            },
        ];
        let sites = collect(&body, 2, BufId(0), S);
        assert_eq!(sites.stores.len(), 1);
        assert!(stores_proved_local(&sites, S));
    }

    #[test]
    fn escaping_offset_not_proved() {
        // b[tid*S + j] with j in [0, S]  (loop `j <= S`): j == S escapes.
        let body = vec![
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::imm_i32(0),
            },
            Stmt::While {
                cond: Expr::bin(BinOp::Le, Expr::Local(LocalId(1)), Expr::Local(LocalId(0))),
                body: vec![
                    Stmt::Store {
                        buf: BufId(0),
                        idx: tid_s_plus(Expr::Local(LocalId(1))),
                        value: Expr::imm_i32(0),
                        dirty: false,
                        checked: false,
                    },
                    Stmt::Assign {
                        local: LocalId(1),
                        value: Expr::add(Expr::Local(LocalId(1)), Expr::imm_i32(1)),
                    },
                ],
            },
        ];
        let sites = collect(&body, 2, BufId(0), S);
        assert!(!stores_proved_local(&sites, S));
    }

    #[test]
    fn non_monotone_induction_is_rejected() {
        // j reassigned arbitrarily inside the loop: range unknown.
        let body = vec![
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::imm_i32(0),
            },
            Stmt::While {
                cond: Expr::bin(BinOp::Lt, Expr::Local(LocalId(1)), Expr::Local(LocalId(0))),
                body: vec![
                    Stmt::Assign {
                        local: LocalId(1),
                        value: Expr::mul(Expr::Local(LocalId(1)), Expr::imm_i32(2)),
                    },
                    Stmt::Store {
                        buf: BufId(0),
                        idx: tid_s_plus(Expr::Local(LocalId(1))),
                        value: Expr::imm_i32(0),
                        dirty: false,
                        checked: false,
                    },
                ],
            },
        ];
        let sites = collect(&body, 2, BufId(0), S);
        assert!(!stores_proved_local(&sites, S));
    }

    #[test]
    fn const_stride_matches_strict_prover() {
        // out[3*tid + 1]: provable for stride 3, not 2.
        let body = vec![Stmt::Store {
            buf: BufId(0),
            idx: Expr::add(Expr::mul(Expr::imm_i32(3), Expr::ThreadIdx), Expr::imm_i32(1)),
            value: Expr::imm_i32(0),
            dirty: false,
            checked: false,
        }];
        let sites = collect(&body, 1, BufId(0), StrideRef::Const(3));
        assert!(stores_proved_local(&sites, StrideRef::Const(3)));
        let sites = collect(&body, 1, BufId(0), StrideRef::Const(2));
        assert!(!stores_proved_local(&sites, StrideRef::Const(2)));
    }

    #[test]
    fn branch_merge_unions_ranges() {
        // if (c) j = 1; else j = 3;  b[tid*S + j] — j in [1,3] escapes
        // [0, S-1] symbolically (S could be 2).
        let body = vec![
            Stmt::If {
                cond: Expr::Imm(Value::Bool(true)),
                then_: vec![Stmt::Assign {
                    local: LocalId(1),
                    value: Expr::imm_i32(1),
                }],
                else_: vec![Stmt::Assign {
                    local: LocalId(1),
                    value: Expr::imm_i32(3),
                }],
            },
            Stmt::Store {
                buf: BufId(0),
                idx: tid_s_plus(Expr::Local(LocalId(1))),
                value: Expr::imm_i32(0),
                dirty: false,
                checked: false,
            },
        ];
        let sites = collect(&body, 2, BufId(0), S);
        assert!(!stores_proved_local(&sites, S));
        // With a constant stride of 8 the union [1,3] fits [0,7].
        let sites = collect(&body, 2, BufId(0), StrideRef::Const(8));
        // (stride local slot unused in const mode; idx has S=Local(0)...)
        // Local(0) is not the stride here, so decomposition fails — and
        // that is the correct conservative answer.
        assert!(!stores_proved_local(&sites, StrideRef::Const(8)));
    }

    #[test]
    fn halo_reads_checked_against_window() {
        // loads at tid*S + j and (tid-1)*S + j, j in [0, S-1].
        let body = vec![
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::imm_i32(0),
            },
            Stmt::While {
                cond: Expr::bin(BinOp::Lt, Expr::Local(LocalId(1)), Expr::Local(LocalId(0))),
                body: vec![
                    Stmt::Assign {
                        local: LocalId(2),
                        value: Expr::add(
                            Expr::load(BufId(0), tid_s_plus(Expr::Local(LocalId(1)))),
                            Expr::load(
                                BufId(0),
                                Expr::add(
                                    Expr::mul(
                                        Expr::sub(Expr::ThreadIdx, Expr::imm_i32(1)),
                                        Expr::Local(LocalId(0)),
                                    ),
                                    Expr::Local(LocalId(1)),
                                ),
                            ),
                        ),
                    },
                    Stmt::Assign {
                        local: LocalId(1),
                        value: Expr::add(Expr::Local(LocalId(1)), Expr::imm_i32(1)),
                    },
                ],
            },
        ];
        let sites = collect(&body, 3, BufId(0), S);
        assert_eq!(sites.loads.len(), 2);
        // left(S) covers the previous row: no violations.
        let ok = check_load_windows(&sites, S, Some(SymBound::stride()), Some(SymBound::konst(0)));
        assert_eq!(ok, WindowCheck { checked: 2, violations: 0 });
        // left(0): the (tid-1)*S read provably escapes.
        let bad = check_load_windows(&sites, S, Some(SymBound::konst(0)), Some(SymBound::konst(0)));
        assert_eq!(bad, WindowCheck { checked: 2, violations: 1 });
        // Unknown left bound: nothing provable on that side.
        let unk = check_load_windows(&sites, S, None, Some(SymBound::konst(0)));
        assert_eq!(unk.violations, 0);
    }

    #[test]
    fn window_bounds_from_host_exprs() {
        let stride = Expr::Local(LocalId(4));
        assert_eq!(window_bound(&Expr::imm_i32(2), &stride), Some(SymBound::konst(2)));
        assert_eq!(window_bound(&stride.clone(), &stride), Some(SymBound::stride()));
        assert_eq!(window_bound(&Expr::Local(LocalId(5)), &stride), None);
    }
}
