//! Inter-launch communication elision (the whole-program half of the
//! dataflow analysis).
//!
//! After every kernel wave the runtime reconciles the replicas of each
//! replicated, written array (the comm phase). That sync is *observable*
//! only if some GPU later reads bytes another GPU wrote. This module
//! proves, per array, that no GPU can ever observe a peer's write
//! before the next host-visible synchronization point, and records the
//! proof as a per-launch [`ElideFact`] the runtime uses to skip the
//! replica sync and dirty-bit scan.
//!
//! The predicate is whole-program and per-array. Array `a` is elidable
//! when:
//!
//! 1. every kernel accessing `a` keeps it **replicated** (distributed
//!    arrays have no replica sync to elide);
//! 2. some kernel writes it (otherwise there is nothing to skip);
//! 3. every accessing launch has **syntactically identical** iteration
//!    bounds, built only from host locals that are never reassigned —
//!    so with the default equal-split schedule every launch partitions
//!    the iteration space identically;
//! 4. a **common partition stride** `S` exists (from
//!    [`crate::config::ArrayConfig::own_strides`]) under which *every*
//!    access of `a`, in *every* accessing kernel, provably stays inside
//!    the iteration's own partition `[S*i, S*(i+1) - 1]` — so GPU `g`
//!    only ever touches `[S*lo_g, S*hi_g)`, which holds its own writes
//!    and otherwise the initial load;
//! 5. `a` is never the target of an `update device` and is never stored
//!    by host code while device-present (either would make the host the
//!    writer of record mid-region, invalidating the replica-divergence
//!    bookkeeping the runtime's deferred-sync paths rely on).
//!
//! Host-visible sync points (region exit copy-out, `update host`) are
//! *not* analyzed away: the runtime keeps per-GPU dirty runs armed and
//! materializes the merged image lazily there (see `acc-runtime`).
//! Under `SanitizeLevel::Full` the runtime re-arms the skipped sync and
//! audits every dirty run against the static claim `[S*lo_g, S*hi_g)`.

use std::collections::{BTreeMap, BTreeSet};

use acc_kernel_ir as ir;

use crate::config::Placement;
use crate::hostgen::HostOp;
use crate::CompiledKernel;

/// The static proof that one launch's replica sync for one buffer may
/// be skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct ElideFact {
    /// Host-frame partition stride: GPU `g` running iterations
    /// `[lo_g, hi_g)` claims exactly elements `[S*lo_g, S*hi_g)`.
    pub stride: ir::Expr,
    /// Human-readable proof summary (reports, `--explain`).
    pub reason: String,
}

/// Per-launch, per-buffer comm-elision facts for one compiled program;
/// `kernels[k][kbuf]` is `Some` when the replica sync of kernel `k`'s
/// buffer `kbuf` is statically proven unobservable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommPlan {
    pub kernels: Vec<Vec<Option<ElideFact>>>,
}

impl CommPlan {
    /// An all-`None` plan shaped like `kernels`.
    pub fn empty(kernels: &[CompiledKernel]) -> CommPlan {
        CommPlan {
            kernels: kernels.iter().map(|k| vec![None; k.configs.len()]).collect(),
        }
    }

    /// The fact for one launch × kernel-buffer, if any.
    pub fn fact(&self, kernel: usize, kbuf: usize) -> Option<&ElideFact> {
        self.kernels.get(kernel)?.get(kbuf)?.as_ref()
    }

    /// Total number of elision facts in the plan.
    pub fn n_facts(&self) -> usize {
        self.kernels
            .iter()
            .map(|k| k.iter().filter(|f| f.is_some()).count())
            .sum()
    }
}

/// The static proof that one launch's halo fill for one distributed
/// buffer may be double-buffered: priced concurrently with the same
/// launch's compute instead of on the loader critical path.
///
/// The premise is the boundary-last schedule: each GPU's interior
/// iterations touch only its own partition, so while the freshly
/// fetched halo is in flight the GPU has interior work to run, and the
/// halo bytes are only needed by the boundary iterations scheduled
/// last. That is performance-realistic exactly when
///
/// 1. the array is **distributed** with a declared (or inferred)
///    `localaccess` halo window — so the halo region is statically
///    known and the fill is a bounded edge exchange, not a gather;
/// 2. every kernel×array verdict in the launch is **race-free**
///    ([`crate::DependVerdict::race_free`]) *or* a carried dependence
///    the distance analysis proved local
///    ([`crate::config::ArrayLint::carried_fits_halo`]) — no cross-GPU
///    write conflict can force an early synchronization, and every
///    carried value lands inside the halo exchange;
/// 3. the kernel does **not write** the array, *or* writes it under a
///    halo-fitting `CarriedLocal` verdict — then the double-buffered
///    halo holds exactly the carried values, so the fill still commutes
///    with interior compute under the wavefront GPU order.
///
/// Functionally nothing moves: the runtime still performs the fill
/// before the kernel's functional execution, so arrays are
/// unconditionally bit-identical; the fact only licenses the pricing
/// overlap, and `SanitizeLevel::Full` re-arms the synchronous path.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapFact {
    /// Human-readable proof summary (reports, traces).
    pub reason: String,
}

/// Per-launch, per-buffer overlap-safety facts; `kernels[k][kbuf]` is
/// `Some` when kernel `k`'s halo fill of buffer `kbuf` may overlap the
/// same wave's compute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverlapPlan {
    pub kernels: Vec<Vec<Option<OverlapFact>>>,
}

impl OverlapPlan {
    /// An all-`None` plan shaped like `kernels`.
    pub fn empty(kernels: &[CompiledKernel]) -> OverlapPlan {
        OverlapPlan {
            kernels: kernels.iter().map(|k| vec![None; k.configs.len()]).collect(),
        }
    }

    /// The fact for one launch × kernel-buffer, if any.
    pub fn fact(&self, kernel: usize, kbuf: usize) -> Option<&OverlapFact> {
        self.kernels.get(kernel)?.get(kbuf)?.as_ref()
    }

    /// Total number of overlap facts in the plan.
    pub fn n_facts(&self) -> usize {
        self.kernels
            .iter()
            .map(|k| k.iter().filter(|f| f.is_some()).count())
            .sum()
    }
}

/// True when this kernel×array's verdict cannot force an early
/// cross-GPU synchronization: race-free, or a carried dependence whose
/// proved distance fits the declared halo (and no load escapes the
/// declared window, which would invalidate the halo claim).
fn overlap_benign(cfg: &crate::config::ArrayConfig) -> bool {
    cfg.lint.verdict.race_free()
        || (cfg.lint.carried_fits_halo() && cfg.lint.window_violations == 0)
}

/// Derive the overlap-safety facts for every launch.
pub fn overlap_plan(kernels: &[CompiledKernel]) -> OverlapPlan {
    let mut plan = OverlapPlan::empty(kernels);
    for (ki, k) in kernels.iter().enumerate() {
        // Any racy verdict in the launch defeats overlap for the whole
        // wave: the scheduler can no longer reorder boundary work last.
        // A halo-fitting CarriedLocal verdict is benign — the wavefront
        // GPU order serializes exactly the carried values.
        if !k.configs.iter().all(overlap_benign) {
            continue;
        }
        for (kbuf, cfg) in k.configs.iter().enumerate() {
            if cfg.placement != Placement::Distributed || cfg.localaccess.is_none() {
                continue;
            }
            let carried_fits =
                cfg.lint.carried_fits_halo() && cfg.lint.window_violations == 0;
            if cfg.mode.writes() && !carried_fits {
                continue;
            }
            let basis = if cfg.mode.writes() {
                "written under a carried dependence proved to fit the \
                 double-buffered halo (wavefront GPU order)"
            } else {
                "read-only in this launch"
            };
            plan.kernels[ki][kbuf] = Some(OverlapFact {
                reason: format!(
                    "halo fill of `{}` may overlap kernel `{}`'s compute: \
                     distributed with a declared halo window, {basis}, every \
                     verdict race-free or carried-local (boundary-last \
                     schedule)",
                    cfg.name, k.kernel.name
                ),
            });
        }
    }
    plan
}

/// True when every written, distributed array of the kernel carries a
/// halo-fitting [`crate::DependVerdict::CarriedLocal`] verdict and
/// nothing else in the wave is racy: the premise under which the
/// runtime may pick a [`wavefront`] schedule (sequential GPU order with
/// predecessor boundary forwarding) and still produce arrays
/// bit-identical to the 1-GPU run.
///
/// [`wavefront`]: https://en.wikipedia.org/wiki/Wavefront_parallelism
pub fn wavefront_eligible(k: &CompiledKernel) -> bool {
    let mut any_carried = false;
    for cfg in &k.configs {
        if !overlap_benign(cfg) {
            return false;
        }
        if cfg.lint.verdict.carried_distance().is_some() {
            // Carried arrays must be distributed with the halo declared:
            // the forwarding region is the halo itself.
            if cfg.placement != Placement::Distributed || cfg.localaccess.is_none() {
                return false;
            }
            any_carried = true;
        }
    }
    any_carried
}

/// Run the whole-program analysis over the launch sequence.
pub fn comm_plan(kernels: &[CompiledKernel], host: &[HostOp]) -> CommPlan {
    let mut plan = CommPlan::empty(kernels);
    if kernels.is_empty() {
        return plan;
    }
    let assigned = host_assigned_locals(host, kernels);
    let mut walk = HostWalk {
        present: Vec::new(),
        update_device: BTreeSet::new(),
        host_stored_present: BTreeSet::new(),
    };
    walk.walk(host);

    // Program array -> accessing (kernel, kbuf) sites.
    let mut by_array: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for (ki, k) in kernels.iter().enumerate() {
        for (kbuf, &arr) in k.buf_map.iter().enumerate() {
            by_array.entry(arr).or_default().push((ki, kbuf));
        }
    }

    'arrays: for (arr, uses) in &by_array {
        if walk.update_device.contains(arr) || walk.host_stored_present.contains(arr) {
            continue;
        }
        let mut any_writer = false;
        for &(ki, kbuf) in uses {
            let cfg = &kernels[ki].configs[kbuf];
            if cfg.placement != Placement::Replicated {
                continue 'arrays;
            }
            any_writer |= cfg.mode.writes();
        }
        if !any_writer {
            continue;
        }
        // Identical, stable iteration bounds across every accessing launch.
        let (lo0, hi0) = (&kernels[uses[0].0].lo, &kernels[uses[0].0].hi);
        if !expr_stable(lo0, &assigned) || !expr_stable(hi0, &assigned) {
            continue;
        }
        for &(ki, _) in uses {
            if kernels[ki].lo != *lo0 || kernels[ki].hi != *hi0 {
                continue 'arrays;
            }
        }
        // A common, stable own-partition stride across every accessing kernel.
        let mut common: Option<Vec<ir::Expr>> = None;
        for &(ki, kbuf) in uses {
            let own = &kernels[ki].configs[kbuf].own_strides;
            common = Some(match common {
                None => own.clone(),
                Some(c) => c.into_iter().filter(|e| own.contains(e)).collect(),
            });
        }
        let Some(stride) = common
            .unwrap_or_default()
            .into_iter()
            .find(|e| expr_stable(e, &assigned))
        else {
            continue;
        };
        let name = &kernels[uses[0].0].configs[uses[0].1].name;
        let reason = format!(
            "every access of `{name}` stays in the owner partition in all \
             {} accessing launch(es) (common stride, identical bounds); \
             no update-device or device-present host store"
        , uses.len());
        for &(ki, kbuf) in uses {
            if kernels[ki].configs[kbuf].needs_replica_sync() {
                plan.kernels[ki][kbuf] = Some(ElideFact {
                    stride: stride.clone(),
                    reason: reason.clone(),
                });
            }
        }
    }
    plan
}

/// Every host local that can change between launches: targets of host
/// `Assign` statements plus scalar-reduction merge targets.
fn host_assigned_locals(host: &[HostOp], kernels: &[CompiledKernel]) -> BTreeSet<ir::LocalId> {
    let mut out = BTreeSet::new();
    fn walk(ops: &[HostOp], out: &mut BTreeSet<ir::LocalId>) {
        for op in ops {
            match op {
                HostOp::Plain(stmt) => {
                    stmt.visit(&mut |s| {
                        if let ir::Stmt::Assign { local, .. } = s {
                            out.insert(*local);
                        }
                    });
                }
                HostOp::If { then_, else_, .. } => {
                    walk(then_, out);
                    walk(else_, out);
                }
                HostOp::While { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    walk(host, &mut out);
    for k in kernels {
        out.extend(k.red_targets.iter().copied());
    }
    out
}

/// True when `e` evaluates to the same value at every launch: no memory
/// reads, no thread index, and only never-reassigned locals.
fn expr_stable(e: &ir::Expr, assigned: &BTreeSet<ir::LocalId>) -> bool {
    let mut ok = true;
    e.visit(&mut |e| match e {
        ir::Expr::Load { .. } | ir::Expr::ThreadIdx => ok = false,
        ir::Expr::Local(l) if assigned.contains(l) => ok = false,
        _ => {}
    });
    ok
}

/// Linear walk collecting `update device` targets and arrays stored by
/// host code while device-present. `DataEnter`/`DataExit` are balanced
/// flat ops, so a region stack over the op sequence is exact.
struct HostWalk {
    /// Stack of `(region id, arrays)` for open data regions.
    present: Vec<(usize, BTreeSet<usize>)>,
    update_device: BTreeSet<usize>,
    host_stored_present: BTreeSet<usize>,
}

impl HostWalk {
    fn walk(&mut self, ops: &[HostOp]) {
        for op in ops {
            match op {
                HostOp::DataEnter { region, clauses } => {
                    let arrays = clauses
                        .iter()
                        .flat_map(|c| c.sections.iter().map(|s| s.array))
                        .collect();
                    self.present.push((*region, arrays));
                }
                HostOp::DataExit { region } => {
                    self.present.retain(|(r, _)| r != region);
                }
                HostOp::Update { to_device, .. } => {
                    self.update_device.extend(to_device.iter().map(|s| s.array));
                }
                HostOp::Plain(stmt) => {
                    stmt.visit(&mut |s| {
                        if let ir::Stmt::Store { buf, .. } | ir::Stmt::AtomicRmw { buf, .. } = s {
                            let arr = buf.0 as usize;
                            if self.present.iter().any(|(_, a)| a.contains(&arr)) {
                                self.host_stored_present.insert(arr);
                            }
                        }
                    });
                }
                HostOp::If { then_, else_, .. } => {
                    self.walk(then_);
                    self.walk(else_);
                }
                HostOp::While { body, .. } => self.walk(body),
                HostOp::Launch { .. } | HostOp::Return => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_source, CompileOptions};

    fn plan_of(src: &str) -> (crate::CompiledProgram, CommPlan) {
        let p = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
        let plan = p.comm_plan.clone();
        (p, plan)
    }

    #[test]
    fn own_partition_writes_and_reads_are_elided() {
        // Two launches; `y` is written then read, both strictly at `[i]`.
        let (p, plan) = plan_of(
            "void f(int n, int iters, double *x, double *y, double *z) {\n\
             int t;\n\
             t = 0;\n\
             #pragma acc data copyin(x[0:n]) copy(y[0:n], z[0:n])\n\
             {\n\
             while (t < iters) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = x[i] + 1.0;\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) z[i] = y[i] * 2.0;\n\
             t = t + 1;\n\
             }\n\
             }\n\
             }",
        );
        let y = p.array_index("y").unwrap();
        let z = p.array_index("z").unwrap();
        // y written by kernel 0 (kbuf of y in kernel 0).
        let ky = p.kernels[0].buf_map.iter().position(|&a| a == y).unwrap();
        let kz = p.kernels[1].buf_map.iter().position(|&a| a == z).unwrap();
        assert!(plan.fact(0, ky).is_some(), "{plan:?}");
        assert!(plan.fact(1, kz).is_some(), "{plan:?}");
        assert_eq!(
            plan.fact(0, ky).unwrap().stride,
            acc_kernel_ir::Expr::imm_i32(1)
        );
        assert_eq!(plan.n_facts(), 2);
    }

    #[test]
    fn halo_read_defeats_elision() {
        // The second launch reads y[i+1]: GPU g observes GPU g+1's write.
        let (_, plan) = plan_of(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc data copyin(x[0:n]) copy(y[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n - 1; i++) y[i] = x[i];\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n - 1; i++) y[i] = y[i] + y[i + 1];\n\
             }\n\
             }",
        );
        assert_eq!(plan.n_facts(), 0, "{plan:?}");
    }

    #[test]
    fn differing_bounds_defeat_elision() {
        let (_, plan) = plan_of(
            "void f(int n, double *y) {\n\
             #pragma acc data copy(y[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = 1.0;\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n - 1; i++) y[i] = y[i] * 2.0;\n\
             }\n\
             }",
        );
        assert_eq!(plan.n_facts(), 0, "{plan:?}");
    }

    #[test]
    fn update_device_defeats_elision() {
        let (_, plan) = plan_of(
            "void f(int n, double *y) {\n\
             #pragma acc data copy(y[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = 1.0;\n\
             #pragma acc update device(y[0:n])\n\
             }\n\
             }",
        );
        assert_eq!(plan.n_facts(), 0, "{plan:?}");
    }

    #[test]
    fn device_present_host_store_defeats_elision() {
        let (_, plan) = plan_of(
            "void f(int n, double *y) {\n\
             #pragma acc data copy(y[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = 1.0;\n\
             y[0] = 7.0;\n\
             }\n\
             }",
        );
        assert_eq!(plan.n_facts(), 0, "{plan:?}");
    }

    #[test]
    fn scatter_write_defeats_elision() {
        let (_, plan) = plan_of(
            "void f(int n, int *m, int *y) {\n\
             #pragma acc parallel loop copyin(m[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[m[i]] = 1;\n\
             }",
        );
        assert_eq!(plan.n_facts(), 0, "{plan:?}");
    }

    #[test]
    fn unstable_bound_defeats_elision() {
        // `n` is reassigned between launches: partitions may differ.
        let (_, plan) = plan_of(
            "void f(int n, double *y) {\n\
             #pragma acc data copy(y[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = 1.0;\n\
             n = n - 1;\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = y[i] + 1.0;\n\
             }\n\
             }",
        );
        assert_eq!(plan.n_facts(), 0, "{plan:?}");
    }

    #[test]
    fn overlap_fact_for_read_only_distributed_halo() {
        // A 1-D stencil: `a` is distributed with a declared halo and
        // only read — its halo fill may overlap the wave's compute.
        // `b` is written, so it gets no fact.
        let p = compile_source(
            "void f(int n, double *a, double *b) {\n\
             #pragma acc data copyin(a[0:n]) copy(b[0:n])\n\
             {\n\
             #pragma acc localaccess(a) stride(1) left(1) right(1)\n\
             #pragma acc localaccess(b) stride(1)\n\
             #pragma acc parallel loop\n\
             for (int i = 1; i < n - 1; i++) b[i] = a[i - 1] + a[i + 1];\n\
             }\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let plan = &p.overlap_plan;
        assert_eq!(plan.n_facts(), 1, "{plan:?}");
        let a = p.array_index("a").unwrap();
        let ka = p.kernels[0].buf_map.iter().position(|&x| x == a).unwrap();
        let fact = plan.fact(0, ka).unwrap();
        assert!(fact.reason.contains("halo fill of `a`"), "{}", fact.reason);
    }

    #[test]
    fn racy_wave_defeats_overlap() {
        // The scatter write `y[m[i]]` has an Unknown verdict, which
        // defeats overlap for every array in the wave — including the
        // distributed read-only `a`.
        let p = compile_source(
            "void f(int n, int *m, int *a, int *y) {\n\
             #pragma acc localaccess(a) stride(1) left(1) right(1)\n\
             #pragma acc parallel loop copyin(m[0:n], a[0:n]) copy(y[0:n])\n\
             for (int i = 1; i < n - 1; i++) y[m[i]] = a[i - 1] + a[i + 1];\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        assert_eq!(p.overlap_plan.n_facts(), 0, "{:?}", p.overlap_plan);
    }

    #[test]
    fn carried_local_written_array_gets_overlap_fact() {
        // In-place first-order recurrence: `y` is written AND read at
        // distance 1, which fits the declared left(1) halo — the
        // CarriedLocal verdict now licenses overlap and wavefront.
        let p = compile_source(
            "void f(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1) left(1)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 1; i < n; i++) y[i] = y[i - 1] + 1.0;\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let plan = &p.overlap_plan;
        assert_eq!(plan.n_facts(), 1, "{plan:?}");
        let y = p.array_index("y").unwrap();
        let ky = p.kernels[0].buf_map.iter().position(|&x| x == y).unwrap();
        let fact = plan.fact(0, ky).unwrap();
        assert!(fact.reason.contains("wavefront"), "{}", fact.reason);
        assert!(wavefront_eligible(&p.kernels[0]), "{:?}", p.kernels[0].configs);
    }

    #[test]
    fn carried_distance_exceeding_halo_defeats_overlap_and_wavefront() {
        // Distance 2 against a 1-window halo: the carried value never
        // reaches the neighbor's halo, so neither overlap nor wavefront
        // is licensed.
        let p = compile_source(
            "void f(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1) left(1)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 2; i < n; i++) y[i] = y[i - 2] + 1.0;\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        assert_eq!(p.overlap_plan.n_facts(), 0, "{:?}", p.overlap_plan);
        assert!(!wavefront_eligible(&p.kernels[0]));
    }

    #[test]
    fn race_free_kernels_are_not_wavefront_eligible() {
        // No carried dependence at all → nothing to pipeline; the plain
        // parallel schedule is strictly better.
        let p = compile_source(
            "void f(int n, double *a, double *b) {\n\
             #pragma acc localaccess(a) stride(1) left(1) right(1)\n\
             #pragma acc localaccess(b) stride(1)\n\
             #pragma acc parallel loop copyin(a[0:n]) copy(b[0:n])\n\
             for (int i = 1; i < n - 1; i++) b[i] = a[i - 1] + a[i + 1];\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        assert!(!wavefront_eligible(&p.kernels[0]));
    }

    #[test]
    fn replicated_arrays_get_no_overlap_facts() {
        // No localaccess → replicated → loads are whole-array, not a
        // bounded halo exchange.
        let p = compile_source(
            "void f(int n, double *a, double *b) {\n\
             #pragma acc parallel loop copyin(a[0:n]) copy(b[0:n])\n\
             for (int i = 0; i < n; i++) b[i] = a[i];\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        assert_eq!(p.overlap_plan.n_facts(), 0, "{:?}", p.overlap_plan);
    }

    #[test]
    fn distributed_arrays_have_no_facts() {
        let (_, plan) = plan_of(
            "void f(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = 1.0;\n\
             }",
        );
        assert_eq!(plan.n_facts(), 0, "{plan:?}");
    }
}
