//! # acc-compiler — the multi-GPU OpenACC translator
//!
//! This crate is the paper's *translator* (§IV-B): it consumes the typed
//! HIR produced by the `acc-minic` frontend and emits, per function,
//!
//! 1. one [`CompiledKernel`] per combined parallel loop — the "generated
//!    CUDA kernel": extracted body with the induction variable replaced by
//!    the thread index, captured host scalars turned into launch
//!    parameters, dirty-bit / write-miss instrumentation applied per the
//!    placement decisions, and a static memory-coalescing estimate
//!    (`mem_efficiency`) that the 2-D layout transform (§IV-B4) improves;
//! 2. the *array configuration information* (§IV-B5): per kernel × array,
//!    the access mode, placement policy (replica vs distribution vs
//!    reduction-private), `localaccess` parameters, and whether the
//!    write-miss check could be statically elided (§IV-D2);
//! 3. the host program ([`HostOp`] tree): the original sequential control
//!    flow with parallel loops replaced by launch operations and data
//!    directives replaced by runtime calls — "the translator just inserts
//!    the statements to call the runtime functions" (§IV-B1).
//!
//! The runtime in `acc-runtime` executes the host program against the
//! simulated machine of `acc-gpusim`.

pub mod affine;
pub mod analysis;
pub mod config;
pub mod dataflow;
pub mod depend;
pub mod extract;
pub mod hostgen;
pub mod infer;
pub mod lint;
pub mod range;

use acc_kernel_ir as ir;
use acc_minic::hir;

pub use analysis::AccessMode;
pub use config::{
    ArrayConfig, ArrayLint, ElisionProof, LocalAccessParams, MonotoneWindowInfo, Placement,
};
pub use dataflow::{wavefront_eligible, CommPlan, ElideFact, OverlapFact, OverlapPlan};
pub use depend::{BufDepend, DependVerdict, Direction, DisjointProof, Distance};
pub use hostgen::HostOp;
pub use infer::{render_annotation, render_reduction};
pub use lint::{lint_function, lint_source, lint_source_with};

/// Compiler options selecting which paper features are active. The
/// evaluation's program versions map to:
///
/// * **Proposal** — `CompileOptions::proposal()` (everything on);
/// * **PGI OpenACC baseline** — `CompileOptions::pgi_like()` (extensions
///   ignored, single-GPU replica semantics);
/// * **hand-written CUDA** — `CompileOptions::cuda_expert()` (no runtime
///   instrumentation at all; only valid for single-GPU execution).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOptions {
    /// Honor the `localaccess` / `reductiontoarray` extensions. When off,
    /// every array is placed replica-style and array reductions fall back
    /// to plain device atomics (single-GPU only).
    pub honor_extensions: bool,
    /// Apply the 2-D data-layout transform for coalescing (§IV-B4) to
    /// read-only affine `localaccess` arrays.
    pub layout_transform: bool,
    /// Insert dirty-bit marks and write-miss checks. Off for the expert
    /// single-GPU CUDA baseline.
    pub instrument: bool,
    /// Consume *inferred* `localaccess` annotations for arrays the
    /// source does not annotate (the whole-program dataflow analysis of
    /// [`infer`]). Off by default so unannotated sources keep the
    /// paper's replica semantics unless explicitly opted in.
    pub infer_localaccess: bool,
    /// Execute kernels through the SSA-optimizing register VM
    /// (`acc_kernel_ir::regvm`) instead of the fused bytecode
    /// interpreter. `OpCounters` are priced from the pre-optimization IR,
    /// so simulated times are identical either way; only host wall time
    /// changes. Off by default; kernels the optimizer cannot statically
    /// type fall back to bytecode.
    pub optimize_kernels: bool,
    /// Consume *inferred* `reductiontoarray` annotations: rewrite
    /// unannotated read-modify-write scatters into the exact atomic-RMW
    /// form the annotated source lowers to (the [`depend`] matcher,
    /// diagnostic `ACC-I002`). Off by default for the same reason as
    /// `infer_localaccess`.
    pub infer_reductions: bool,
}

impl CompileOptions {
    /// The proposed system, all features enabled.
    pub fn proposal() -> CompileOptions {
        CompileOptions {
            honor_extensions: true,
            layout_transform: true,
            instrument: true,
            infer_localaccess: false,
            optimize_kernels: false,
            infer_reductions: false,
        }
    }

    /// A stand-in for the commercial single-GPU OpenACC compiler the paper
    /// compares against: extensions parsed but ignored.
    pub fn pgi_like() -> CompileOptions {
        CompileOptions {
            honor_extensions: false,
            layout_transform: false,
            instrument: false,
            infer_localaccess: false,
            optimize_kernels: false,
            infer_reductions: false,
        }
    }

    /// Hand-written CUDA: no translator-added overhead (single GPU only).
    pub fn cuda_expert() -> CompileOptions {
        CompileOptions {
            honor_extensions: true,
            layout_transform: true,
            instrument: false,
            infer_localaccess: false,
            optimize_kernels: false,
            infer_reductions: false,
        }
    }
}

/// Compilation errors (frontend diagnostics are reported earlier; these
/// are translator-level).
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The requested entry function does not exist.
    NoSuchFunction(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NoSuchFunction(n) => write!(f, "no function named `{n}`"),
        }
    }
}
impl std::error::Error for CompileError {}

/// Where a kernel scalar parameter's value comes from at launch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamSrc {
    /// Captured from a host local (includes scalar function parameters).
    HostLocal(ir::LocalId),
}

/// One translated parallel loop.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The generated kernel.
    pub kernel: ir::Kernel,
    /// Static coalescing estimate in `(0, 1]` fed to the device timing
    /// model; the layout transform raises it.
    pub mem_efficiency: f64,
    /// Array configuration information, one entry per kernel buffer
    /// parameter (same order as `kernel.bufs`).
    pub configs: Vec<ArrayConfig>,
    /// Kernel buffer parameter index → program array index.
    pub buf_map: Vec<usize>,
    /// Kernel scalar parameter index → host value source.
    pub param_src: Vec<ParamSrc>,
    /// Host-evaluated iteration bounds (inclusive `lo`, exclusive `hi`).
    pub lo: ir::Expr,
    pub hi: ir::Expr,
    /// Host locals each scalar-reduction result merges back into
    /// (parallel to `kernel.reductions`).
    pub red_targets: Vec<ir::LocalId>,
    /// Source span of the originating parallel loop (diagnostics).
    pub span: acc_minic::diag::Span,
}

/// A fully translated function: kernels + host program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub name: String,
    /// By-value inputs, in order (host local slots `0..n`).
    pub scalar_params: Vec<(String, ir::Ty)>,
    /// Array inputs/outputs, in order (program array indices).
    pub array_params: Vec<(String, ir::Ty)>,
    /// The host frame layout (scalar params first).
    pub locals: Vec<(String, ir::Ty)>,
    pub kernels: Vec<CompiledKernel>,
    pub host: Vec<HostOp>,
    /// Per-launch comm-elision facts from the whole-program dataflow
    /// analysis ([`dataflow`]). The runtime consults it (when its
    /// `comm_elision` knob is on) to skip provably unobservable replica
    /// syncs.
    pub comm_plan: CommPlan,
    /// Per-launch halo-overlap safety facts ([`dataflow::overlap_plan`]).
    /// The runtime consults it (when its `overlap` knob is on and
    /// sanitize is not `Full`) to price double-buffered halo fills
    /// concurrently with the same wave's compute.
    pub overlap_plan: OverlapPlan,
    /// Program array indices whose elementwise monotonicity (values
    /// non-decreasing with the index) is a *load-bearing premise* of
    /// some kernel's `Disjoint(MonotoneWindow)` dependence verdict. The
    /// runtime validates each at launch when sanitizing and rejects
    /// violating inputs with `ACC-R011` ([`depend`]).
    pub monotone_premises: Vec<usize>,
    /// Options the program was compiled with.
    pub options: CompileOptions,
}

impl CompiledProgram {
    /// Number of parallel loops (Table II column B).
    pub fn n_parallel_loops(&self) -> usize {
        self.kernels.len()
    }

    /// `(#arrays with localaccess, #arrays used in parallel loops)` —
    /// Table II column D.
    pub fn localaccess_ratio(&self) -> (usize, usize) {
        let mut used = std::collections::BTreeSet::new();
        let mut with_la = std::collections::BTreeSet::new();
        for k in &self.kernels {
            for c in &k.configs {
                used.insert(c.array);
                if c.localaccess.is_some() {
                    with_la.insert(c.array);
                }
            }
        }
        (with_la.len(), used.len())
    }

    /// Look up a program array index by name.
    pub fn array_index(&self, name: &str) -> Option<usize> {
        self.array_params.iter().position(|(n, _)| n == name)
    }
}

/// Translate one function of a type-checked program.
pub fn compile(
    program: &hir::TypedProgram,
    function: &str,
    options: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let f = program
        .function(function)
        .ok_or_else(|| CompileError::NoSuchFunction(function.to_string()))?;

    let mut kernels = Vec::new();
    let host = hostgen::lower_host(&f.body, f, options, &mut kernels);
    let comm_plan = dataflow::comm_plan(&kernels, &host);
    let overlap_plan = dataflow::overlap_plan(&kernels);

    // Premises the runtime must discharge: bound arrays of every
    // verdict that *rests* on a monotone window.
    let mut monotone_premises: Vec<usize> = Vec::new();
    for k in &kernels {
        for cfg in &k.configs {
            if cfg.lint.verdict == DependVerdict::Disjoint(DisjointProof::MonotoneWindow) {
                if let Some(w) = cfg.monotone_window {
                    if !monotone_premises.contains(&w.ptr_array) {
                        monotone_premises.push(w.ptr_array);
                    }
                }
            }
        }
    }

    Ok(CompiledProgram {
        name: f.name.clone(),
        scalar_params: f.scalar_params.clone(),
        array_params: f.array_params.clone(),
        locals: f.locals.clone(),
        kernels,
        host,
        comm_plan,
        overlap_plan,
        monotone_premises,
        options: options.clone(),
    })
}

/// Re-arm the runtime write-miss check on every distributed array whose
/// check the prover elided. Used by audit tooling and the property tests
/// to cross-check static elision verdicts against observed miss records:
/// a correct proof implies a forced-checked run records zero misses and
/// identical results.
pub fn force_miss_checks(p: &mut CompiledProgram) {
    for k in &mut p.kernels {
        for (kbuf, cfg) in k.configs.iter_mut().enumerate() {
            if cfg.placement == Placement::Distributed
                && cfg.mode.writes()
                && cfg.miss_check_elided
            {
                cfg.miss_check_elided = false;
                extract::set_store_flags(&mut k.kernel.body, kbuf as u32, false, true);
            }
        }
    }
}

/// Fault injection — the dual of [`force_miss_checks`]: drop the runtime
/// write-miss check from every distributed array, as if the prover had
/// (wrongly) elided it. Stores that leave the owner partition then land
/// in the local replica and are silently lost at flush time. Exists to
/// audit the runtime sanitizer: a `SanitizeLevel::Stores` run must catch
/// exactly the programs this function breaks.
pub fn force_elide_checks(p: &mut CompiledProgram) {
    for k in &mut p.kernels {
        for (kbuf, cfg) in k.configs.iter_mut().enumerate() {
            if cfg.placement == Placement::Distributed
                && cfg.mode.writes()
                && !cfg.miss_check_elided
            {
                cfg.miss_check_elided = true;
                extract::set_store_flags(&mut k.kernel.body, kbuf as u32, false, false);
            }
        }
    }
}

/// Fault injection for the comm-elision audit: claim a unit-stride
/// elision fact for every replicated written buffer the analysis did
/// *not* prove safe. GPUs then keep mutually stale replicas whose dirty
/// runs escape the claimed partitions; a `SanitizeLevel::Full` run must
/// reject exactly the programs this function breaks.
pub fn force_comm_elision(p: &mut CompiledProgram) {
    for (ki, k) in p.kernels.iter().enumerate() {
        for (kbuf, cfg) in k.configs.iter().enumerate() {
            if cfg.needs_replica_sync() && p.comm_plan.kernels[ki][kbuf].is_none() {
                p.comm_plan.kernels[ki][kbuf] = Some(dataflow::ElideFact {
                    stride: ir::Expr::imm_i32(1),
                    reason: "forced (fault injection)".to_string(),
                });
            }
        }
    }
}

/// Fault injection for the dependence audit: strip the declared halo
/// from every distributed `localaccess` array, as if the programmer had
/// declared a zero-width window. Legitimate neighbor loads — exactly the
/// loads a loop-carried dependence (`ACC-W006`) reads other iterations'
/// elements through — then escape the declared window, and a
/// `SanitizeLevel::Full` run must reject the program with a
/// `LoadOutsideWindow` violation. Together with [`force_elide_checks`]
/// this is the dynamic half of the static/dynamic correspondence
/// protocol in `docs/analysis.md`.
pub fn force_local_windows(p: &mut CompiledProgram) {
    for k in &mut p.kernels {
        for cfg in &mut k.configs {
            if cfg.placement == Placement::Distributed {
                if let Some(la) = &mut cfg.localaccess {
                    la.left = ir::Expr::imm_i32(0);
                    la.right = ir::Expr::imm_i32(0);
                }
            }
        }
    }
}

/// Fault injection for the carried-distance audit: shrink every proved
/// `CarriedLocal` distance to at most one window in either direction,
/// mislabeling deep carried reads (`y[i] = y[i-2]` claims distance 1).
/// The kernel's actual loads are untouched, so they escape the shrunken
/// claim, and a `SanitizeLevel::Full` run must reject the program with
/// `CarriedDistanceViolated` (`ACC-R012`) before any corrupted array
/// escapes — the wavefront half of the static/dynamic correspondence
/// protocol in `docs/analysis.md`.
pub fn force_carried_local(p: &mut CompiledProgram) {
    for k in &mut p.kernels {
        for cfg in &mut k.configs {
            if let Some((lo, hi)) = cfg.lint.verdict.carried_distance().and_then(|d| d.bounds())
            {
                if hi > 1 || lo < -1 {
                    cfg.lint.verdict = DependVerdict::CarriedLocal {
                        distance: Distance::of_range(lo.clamp(-1, 1), hi.clamp(-1, 1)),
                    };
                }
            }
        }
    }
}

/// Convenience: frontend + translate in one call.
pub fn compile_source(
    src: &str,
    function: &str,
    options: &CompileOptions,
) -> Result<CompiledProgram, String> {
    let typed = acc_minic::frontend(src).map_err(|ds| {
        ds.iter()
            .map(|d| d.render_verbose(src))
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    compile(&typed, function, options).map_err(|e| e.to_string())
}
