//! Kernel-body array-access analysis.
//!
//! For every buffer parameter of a kernel the translator records how it is
//! accessed: read/write mode, the affine structure of store indices (for
//! the §IV-D2 miss-check elision) and the coalescing class of every access
//! site weighted by loop depth (for the timing model and the §IV-B4
//! layout-transform decision).

use acc_kernel_ir::{Expr, Stmt};

use crate::affine::{classify, linear_in_tid, AccessPattern, Linear};

/// Read/write mode of one array in one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    Read,
    Write,
    ReadWrite,
}

impl AccessMode {
    /// Whether the kernel may read the array.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Whether the kernel may write the array.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }
}

/// Per-buffer usage facts collected from a kernel body.
#[derive(Debug, Clone, Default)]
pub struct BufUsage {
    pub reads: bool,
    pub writes: bool,
    /// The buffer is the target of atomic RMW (reductiontoarray lowering).
    pub atomics: bool,
    /// One entry per textual store site: affine form (if any) and the
    /// loop depth the site sits at.
    pub store_sites: Vec<(Option<Linear>, u32)>,
    /// One entry per textual load site: coalescing class and loop depth.
    pub load_sites: Vec<(AccessPattern, u32)>,
    /// One entry per atomic site.
    pub atomic_sites: Vec<(AccessPattern, u32)>,
}

impl BufUsage {
    /// The combined access mode, or `None` if the array is unused.
    pub fn mode(&self) -> Option<AccessMode> {
        match (self.reads, self.writes || self.atomics) {
            (false, false) => None,
            (true, false) => Some(AccessMode::Read),
            (false, true) => Some(AccessMode::Write),
            (true, true) => Some(AccessMode::ReadWrite),
        }
    }

    /// All load sites are affine in the thread index (the precondition for
    /// the layout transform).
    pub fn all_loads_affine(&self) -> bool {
        self.load_sites.iter().all(|(p, _)| p.is_affine())
    }

    /// Every store is `stride*tid + c` with `0 <= c < stride` — i.e.
    /// provably inside the iteration's own partition for a distribution
    /// with that (constant) stride.
    pub fn stores_within_own_stride(&self, stride: i64) -> bool {
        !self.store_sites.is_empty()
            && self.store_sites.iter().all(|(l, _)| match l {
                Some(l) => l.coeff == stride && l.offset >= 0 && l.offset < stride,
                None => false,
            })
    }
}

/// Analyze a kernel body over `n_bufs` buffer parameters.
pub fn analyze_body(body: &[Stmt], n_bufs: usize) -> Vec<BufUsage> {
    let mut usage = vec![BufUsage::default(); n_bufs];
    walk_block(body, 0, &mut usage);
    usage
}

fn walk_block(stmts: &[Stmt], depth: u32, usage: &mut [BufUsage]) {
    for s in stmts {
        walk_stmt(s, depth, usage);
    }
}

fn walk_stmt(s: &Stmt, depth: u32, usage: &mut [BufUsage]) {
    match s {
        Stmt::Assign { value, .. } => walk_expr(value, depth, usage),
        Stmt::Store { buf, idx, value, .. } => {
            walk_expr(idx, depth, usage);
            walk_expr(value, depth, usage);
            let u = &mut usage[buf.0 as usize];
            u.writes = true;
            u.store_sites.push((linear_in_tid(idx), depth));
        }
        Stmt::AtomicRmw {
            buf, idx, value, ..
        } => {
            walk_expr(idx, depth, usage);
            walk_expr(value, depth, usage);
            let u = &mut usage[buf.0 as usize];
            u.atomics = true;
            u.atomic_sites.push((classify(idx), depth));
        }
        Stmt::ReduceScalar { value, .. } => walk_expr(value, depth, usage),
        Stmt::If { cond, then_, else_ } => {
            walk_expr(cond, depth, usage);
            walk_block(then_, depth, usage);
            walk_block(else_, depth, usage);
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, depth + 1, usage);
            walk_block(body, depth + 1, usage);
        }
        Stmt::Break | Stmt::Continue => {}
    }
}

fn walk_expr(e: &Expr, depth: u32, usage: &mut [BufUsage]) {
    e.visit(&mut |e| {
        if let Expr::Load { buf, idx } = e {
            let u = &mut usage[buf.0 as usize];
            u.reads = true;
            u.load_sites.push((classify(idx), depth));
        }
    });
}

/// Per-site effective-bandwidth fraction for the roofline model. These are
/// calibration constants for Fermi-class GPUs: coalesced/broadcast
/// accesses reach full effective bandwidth; a stride-`s` access wastes all
/// but one of the `s` words a transaction fetches; irregular gathers reach
/// roughly 1/8 of peak.
pub fn pattern_efficiency(p: AccessPattern) -> f64 {
    match p {
        AccessPattern::Broadcast | AccessPattern::Coalesced => 1.0,
        AccessPattern::Strided(s) => 1.0 / (s.min(32) as f64),
        // Runtime stride: assume a moderate stride (the KMEANS feature
        // matrix has nfeatures ≈ 34, i.e. far from coalesced).
        AccessPattern::StridedDyn => 1.0 / 8.0,
        AccessPattern::Irregular => 0.125,
    }
}

/// Loop-depth weight: sites inside loops execute more often; without
/// dynamic counts we weight a site 8× per nesting level (capped).
pub fn depth_weight(depth: u32) -> f64 {
    8f64.powi(depth.min(3) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_kernel_ir::{BufId, Expr, LocalId, RmwOp, Stmt};

    #[test]
    fn classifies_read_write_modes() {
        // buf0: read; buf1: written; buf2: read+write; buf3: atomic
        let body = vec![
            Stmt::Assign {
                local: LocalId(0),
                value: Expr::load(BufId(0), Expr::ThreadIdx),
            },
            Stmt::Store {
                buf: BufId(1),
                idx: Expr::ThreadIdx,
                value: Expr::load(BufId(2), Expr::ThreadIdx),
                dirty: false,
                checked: false,
            },
            Stmt::Store {
                buf: BufId(2),
                idx: Expr::ThreadIdx,
                value: Expr::imm_i32(0),
                dirty: false,
                checked: false,
            },
            Stmt::AtomicRmw {
                buf: BufId(3),
                idx: Expr::imm_i32(0),
                op: RmwOp::Add,
                value: Expr::imm_i32(1),
            },
        ];
        let u = analyze_body(&body, 4);
        assert_eq!(u[0].mode(), Some(AccessMode::Read));
        assert_eq!(u[1].mode(), Some(AccessMode::Write));
        assert_eq!(u[2].mode(), Some(AccessMode::ReadWrite));
        assert_eq!(u[3].mode(), Some(AccessMode::Write));
        assert!(u[3].atomics);
    }

    #[test]
    fn unused_buffer_has_no_mode() {
        let u = analyze_body(&[], 1);
        assert_eq!(u[0].mode(), None);
    }

    #[test]
    fn store_affinity_detected() {
        // out[3*tid + 1] = 0  → within stride 3
        let body = vec![Stmt::Store {
            buf: BufId(0),
            idx: Expr::add(
                Expr::mul(Expr::imm_i32(3), Expr::ThreadIdx),
                Expr::imm_i32(1),
            ),
            value: Expr::imm_i32(0),
            dirty: false,
            checked: false,
        }];
        let u = analyze_body(&body, 1);
        assert!(u[0].stores_within_own_stride(3));
        assert!(!u[0].stores_within_own_stride(2));
    }

    #[test]
    fn irregular_store_not_provable() {
        let body = vec![Stmt::Store {
            buf: BufId(0),
            idx: Expr::load(BufId(1), Expr::ThreadIdx),
            value: Expr::imm_i32(0),
            dirty: false,
            checked: false,
        }];
        let u = analyze_body(&body, 2);
        assert!(!u[0].stores_within_own_stride(1));
    }

    #[test]
    fn depth_weights_inner_loops() {
        // while (...) { t = x[tid*8]; }
        let body = vec![Stmt::While {
            cond: Expr::Imm(acc_kernel_ir::Value::Bool(false)),
            body: vec![Stmt::Assign {
                local: LocalId(0),
                value: Expr::load(BufId(0), Expr::mul(Expr::ThreadIdx, Expr::imm_i32(8))),
            }],
        }];
        let u = analyze_body(&body, 1);
        assert_eq!(u[0].load_sites.len(), 1);
        assert_eq!(u[0].load_sites[0], (AccessPattern::Strided(8), 1));
        assert!(u[0].all_loads_affine());
    }

    #[test]
    fn efficiency_constants_ordered() {
        assert!(pattern_efficiency(AccessPattern::Coalesced) > pattern_efficiency(AccessPattern::Strided(4)));
        assert!(
            pattern_efficiency(AccessPattern::Strided(4))
                > pattern_efficiency(AccessPattern::Strided(32))
        );
        assert_eq!(
            pattern_efficiency(AccessPattern::Strided(64)),
            pattern_efficiency(AccessPattern::Strided(32))
        );
        assert!(pattern_efficiency(AccessPattern::Irregular) <= 0.25);
        assert!(depth_weight(2) > depth_weight(1));
        assert_eq!(depth_weight(3), depth_weight(9)); // capped
    }
}
