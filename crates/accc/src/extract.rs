//! Kernel extraction: turn one [`ParallelLoopNode`] into a
//! [`CompiledKernel`].
//!
//! This is §IV-B2/B3/B4 of the paper in one pass:
//!
//! * the loop body becomes the kernel body, with the induction variable
//!   replaced by the thread index;
//! * host scalars the body reads are captured as launch parameters
//!   (OpenACC firstprivate semantics) and copied into kernel locals in a
//!   generated prologue;
//! * per-array placement is decided (replica / distribution /
//!   reduction-private) and the matching instrumentation is applied to
//!   stores: dirty-bit marks on replicated arrays, miss checks on
//!   distributed arrays unless statically elided;
//! * a coalescing estimate is computed, with the 2-D layout transform
//!   applied where legal (read-only, all-affine, `localaccess` arrays).

use std::collections::BTreeMap;

use acc_kernel_ir as ir;
use acc_minic::hir::{ParallelLoopNode, TypedFunction};

use crate::analysis::{self, depth_weight, pattern_efficiency, AccessMode};
use crate::config::{ArrayConfig, ArrayLint, ElisionProof, LocalAccessParams, Placement};
use crate::{depend, infer, lint, range, CompileOptions, CompiledKernel, ParamSrc};

/// Extract and instrument the kernel for one parallel loop.
pub fn extract_kernel(
    node: &ParallelLoopNode,
    f: &TypedFunction,
    options: &CompileOptions,
) -> CompiledKernel {
    // ---- discover used locals and buffers ----
    let mut used_locals: BTreeMap<u32, bool> = BTreeMap::new(); // id -> is_read
    let mut used_bufs: BTreeMap<u32, ()> = BTreeMap::new();
    scan_block(&node.body, node.var, &mut used_locals, &mut used_bufs);

    // ---- dense remaps ----
    let local_map: BTreeMap<u32, u32> = used_locals
        .keys()
        .enumerate()
        .map(|(i, id)| (*id, i as u32))
        .collect();
    let buf_map_fwd: BTreeMap<u32, u32> = used_bufs
        .keys()
        .enumerate()
        .map(|(i, id)| (*id, i as u32))
        .collect();
    let buf_map: Vec<usize> = used_bufs.keys().map(|id| *id as usize).collect();

    // ---- captured scalar params (locals read anywhere in the body) ----
    let mut params = Vec::new();
    let mut param_src = Vec::new();
    let mut prologue = Vec::new();
    for (&fid, &is_read) in &used_locals {
        if !is_read {
            continue;
        }
        let (name, ty) = f.locals[fid as usize].clone();
        let pid = ir::ParamId(params.len() as u32);
        params.push(ir::ScalarParam {
            name: format!("{name}$cap"),
            ty,
        });
        param_src.push(ParamSrc::HostLocal(ir::LocalId(fid)));
        prologue.push(ir::Stmt::Assign {
            local: ir::LocalId(local_map[&fid]),
            value: ir::Expr::Param(pid),
        });
    }

    // ---- remap body ----
    let mut body: Vec<ir::Stmt> = node
        .body
        .iter()
        .map(|s| remap_stmt(s, node.var, &local_map, &buf_map_fwd))
        .collect();

    // ---- reductiontoarray inference (rewrites matched stores into the
    // exact atomic-RMW form the annotated source lowers to, *before* the
    // access analysis so every downstream decision sees reduction IR) ----
    let mut inferred_reds: Vec<Option<ir::RmwOp>> = vec![None; buf_map.len()];
    if options.honor_extensions && options.infer_reductions {
        for (kbuf, &arr) in buf_map.iter().enumerate() {
            let annotated = node
                .array_reductions
                .iter()
                .any(|r| r.buf.0 as usize == arr)
                || node.localaccess.iter().any(|l| l.buf.0 as usize == arr);
            if !annotated {
                inferred_reds[kbuf] = depend::infer_reduction(&mut body, ir::BufId(kbuf as u32));
            }
        }
    }

    // ---- access analysis (on the remapped body) ----
    let usage = analysis::analyze_body(&body, buf_map.len());

    // ---- placement decisions & array configs ----
    let honor = options.honor_extensions;
    let mut configs = Vec::new();
    for (kbuf, &arr) in buf_map.iter().enumerate() {
        let u = &usage[kbuf];
        let mode = u.mode().unwrap_or(AccessMode::Read);
        let la = if honor {
            node.localaccess
                .iter()
                .find(|l| l.buf.0 as usize == arr)
                .map(|l| LocalAccessParams {
                    stride: l.stride.clone(),
                    left: l.left.clone(),
                    right: l.right.clone(),
                })
        } else {
            None
        };
        let is_reduction = honor
            && (node
                .array_reductions
                .iter()
                .any(|r| r.buf.0 as usize == arr)
                || inferred_reds[kbuf].is_some());
        // Whole-program dataflow, static half: always derive what the
        // analysis *would* annotate (feeds ACC-I001 and the `--infer`
        // golden checks), and the partition-key strides the comm-elision
        // analysis may rely on. Consume the inferred annotation only
        // when asked and the source has none.
        let inferred = if honor && !is_reduction {
            infer::infer_for_buf(&body, local_map.len(), ir::BufId(kbuf as u32), &local_map)
        } else {
            None
        };
        let own_strides = if honor && !is_reduction {
            infer::own_partition_strides(
                &body,
                local_map.len(),
                ir::BufId(kbuf as u32),
                &local_map,
            )
        } else {
            Vec::new()
        };
        let inferred_used = options.infer_localaccess && la.is_none() && inferred.is_some();
        let la = if inferred_used { inferred.clone() } else { la };
        let placement = if is_reduction {
            let op = node
                .array_reductions
                .iter()
                .find(|r| r.buf.0 as usize == arr)
                .map(|r| r.op)
                .or(inferred_reds[kbuf])
                .unwrap();
            Placement::ReductionPrivate(op)
        } else if la.is_some() {
            Placement::Distributed
        } else {
            Placement::Replicated
        };

        // Miss-check elision (§IV-D2): first the strict constant-stride
        // prover, then the broadened interval/symbolic prover, which also
        // handles runtime strides and nested-loop offsets. The same
        // decomposition feeds the `localaccess` window check (ACC-W003).
        let stride_sym = la
            .as_ref()
            .and_then(|p| stride_ref(&p.stride, &local_map, &body));
        let sites = stride_sym
            .map(|sr| range::collect(&body, local_map.len(), ir::BufId(kbuf as u32), sr));
        let (miss_check_elided, elision) = match (&placement, &la) {
            (Placement::Distributed, Some(p)) => {
                if !u.writes {
                    (false, ElisionProof::NoStores)
                } else if matches!(const_i32(&p.stride),
                    Some(s) if s > 0 && u.stores_within_own_stride(s as i64))
                {
                    (true, ElisionProof::ConstStride)
                } else if matches!((stride_sym, &sites),
                    (Some(sr), Some(sites)) if range::stores_proved_local(sites, sr))
                {
                    (true, ElisionProof::Interval)
                } else {
                    (false, ElisionProof::Unproven)
                }
            }
            _ => (!u.writes, ElisionProof::NotApplicable), // nothing to check
        };

        // Declared-window audit of the loads (ACC-W003) and the
        // store-hazard scan (ACC-W001 / ACC-W002).
        let window = match (&la, stride_sym, &sites) {
            (Some(p), Some(sr), Some(sites)) => range::check_load_windows(
                sites,
                sr,
                range::window_bound(&p.left, &p.stride),
                range::window_bound(&p.right, &p.stride),
            ),
            _ => range::WindowCheck::default(),
        };
        // Cross-GPU dependence verdict (ACC-W005/W006, and the monotone
        // indirect-window proof). A monotone bound array is only trusted
        // when the function never writes it.
        let dep = depend::analyze_buf(
            &body,
            local_map.len(),
            ir::BufId(kbuf as u32),
            stride_sym,
            &|p: ir::BufId| {
                buf_map
                    .get(p.0 as usize)
                    .is_some_and(|&orig| !depend::array_written_in_function(f, orig))
            },
        );
        let monotone_proof =
            dep.verdict == depend::DependVerdict::Disjoint(depend::DisjointProof::MonotoneWindow);
        let (overlap_stores, unannotated_rmw) =
            if matches!(placement, Placement::ReductionPrivate(_)) || monotone_proof {
                // Reduction placement and a monotone disjointness proof
                // both subsume the heuristic overlap counts.
                (0, 0)
            } else {
                lint::store_hazards(&body, ir::BufId(kbuf as u32))
            };
        // The declared halo measured in stride windows: the currency the
        // carried-distance verdict is compared against (ACC-I003 vs
        // ACC-W006, wavefront eligibility, the Full-sanitize claim).
        let halo_windows = match (&la, stride_sym) {
            (Some(p), Some(sr)) => (
                range::halo_windows(range::window_bound(&p.left, &p.stride), sr),
                range::halo_windows(range::window_bound(&p.right, &p.stride), sr),
            ),
            _ => (0, 0),
        };
        let alint = ArrayLint {
            elision,
            window_checked: window.checked,
            window_violations: window.violations,
            overlap_stores,
            unannotated_rmw,
            verdict: dep.verdict,
            halo_windows,
        };

        // Layout transform: read-only + localaccess + all loads affine.
        let layout_transformed = options.layout_transform
            && la.is_some()
            && mode == AccessMode::Read
            && u.all_loads_affine()
            && u.load_sites.iter().any(|(p, _)| {
                matches!(
                    p,
                    crate::affine::AccessPattern::Strided(_)
                        | crate::affine::AccessPattern::StridedDyn
                )
            });

        // Worst-case (least efficient) patterns for the runtime's
        // per-array memory pricing.
        let worst = |pats: Vec<crate::affine::AccessPattern>| {
            pats.into_iter().min_by(|a, b| {
                pattern_efficiency(*a)
                    .partial_cmp(&pattern_efficiency(*b))
                    .unwrap()
            })
        };
        let read_pattern = worst(u.load_sites.iter().map(|(p, _)| *p).collect())
            .unwrap_or(crate::affine::AccessPattern::Coalesced);
        let write_pattern = worst(
            u.store_sites
                .iter()
                .map(|(l, _)| match l {
                    Some(l) if l.coeff == 0 || l.coeff.unsigned_abs() == 1 => {
                        crate::affine::AccessPattern::Coalesced
                    }
                    Some(l) => crate::affine::AccessPattern::Strided(l.coeff.unsigned_abs()),
                    None => crate::affine::AccessPattern::Irregular,
                })
                .chain(u.atomic_sites.iter().map(|(p, _)| *p))
                .collect(),
        )
        .unwrap_or(crate::affine::AccessPattern::Coalesced);

        configs.push(ArrayConfig {
            array: arr,
            name: f.array_params[arr].0.clone(),
            mode,
            placement,
            localaccess: la,
            inferred,
            inferred_used,
            own_strides,
            miss_check_elided,
            layout_transformed,
            read_pattern,
            write_pattern,
            inferred_reduction: inferred_reds[kbuf],
            monotone_window: dep.monotone.map(|m| crate::config::MonotoneWindowInfo {
                ptr_array: buf_map[m.ptr.0 as usize],
                coeff: m.coeff,
                lo_off: m.lo_off,
                span: m.span,
            }),
            lint: alint,
        });
    }

    // ---- instrumentation ----
    if options.instrument {
        for (kbuf, cfg) in configs.iter().enumerate() {
            let kbuf = kbuf as u32;
            match cfg.placement {
                Placement::Replicated if cfg.mode.writes() => {
                    set_store_flags(&mut body, kbuf, true, false);
                }
                Placement::Distributed if cfg.mode.writes() && !cfg.miss_check_elided => {
                    set_store_flags(&mut body, kbuf, false, true);
                }
                _ => {}
            }
        }
    }

    // ---- coalescing estimate ----
    let mem_efficiency = estimate_mem_efficiency(&usage, &configs);

    // ---- assemble ----
    let kernel_locals: Vec<ir::Ty> = used_locals
        .keys()
        .map(|id| f.locals[*id as usize].1)
        .collect();
    let bufs: Vec<ir::BufParam> = buf_map
        .iter()
        .enumerate()
        .map(|(kbuf, &arr)| {
            let u = &usage[kbuf];
            let access = if u.atomics {
                ir::BufAccess::Reduction(
                    node.array_reductions
                        .iter()
                        .find(|r| r.buf.0 as usize == arr)
                        .map(|r| r.op)
                        .or(inferred_reds[kbuf])
                        .unwrap_or(ir::RmwOp::Add),
                )
            } else {
                match u.mode().unwrap_or(AccessMode::Read) {
                    AccessMode::Read => ir::BufAccess::Read,
                    AccessMode::Write => ir::BufAccess::Write,
                    AccessMode::ReadWrite => ir::BufAccess::ReadWrite,
                }
            };
            ir::BufParam {
                name: f.array_params[arr].0.clone(),
                ty: f.array_params[arr].1,
                access,
            }
        })
        .collect();

    let reductions: Vec<ir::ScalarReduction> = node
        .reductions
        .iter()
        .map(|r| ir::ScalarReduction {
            var: r.name.clone(),
            ty: r.ty,
            op: r.op,
        })
        .collect();
    let red_targets: Vec<ir::LocalId> = node.reductions.iter().map(|r| r.local).collect();

    let mut full_body = prologue;
    full_body.extend(body);

    let kernel = ir::Kernel {
        name: node.name.clone(),
        params,
        bufs,
        locals: kernel_locals,
        reductions,
        body: full_body,
    };
    kernel
        .validate()
        .unwrap_or_else(|e| panic!("translator produced invalid kernel {}: {e}", node.name));

    CompiledKernel {
        kernel,
        mem_efficiency,
        configs,
        buf_map,
        param_src,
        lo: node.lo.clone(),
        hi: node.hi.clone(),
        red_targets,
        span: node.span,
    }
}

fn const_i32(e: &ir::Expr) -> Option<i32> {
    match ir::fold::fold_expr(e.clone()) {
        ir::Expr::Imm(ir::Value::I32(v)) => Some(v),
        _ => None,
    }
}

/// Resolve the `localaccess` stride (a host-frame expression) to a stride
/// reference usable inside the remapped kernel body: a positive constant,
/// or a kernel local that is never assigned in the body (so its symbolic
/// identity is stable).
fn stride_ref(
    stride: &ir::Expr,
    local_map: &BTreeMap<u32, u32>,
    body: &[ir::Stmt],
) -> Option<range::StrideRef> {
    if let Some(s) = const_i32(stride) {
        return (s > 0).then_some(range::StrideRef::Const(s as i64));
    }
    let mut e = stride;
    while let ir::Expr::Cast { ty: ir::Ty::I32, a } = e {
        e = a;
    }
    if let ir::Expr::Local(fid) = e {
        let kid = ir::LocalId(*local_map.get(&fid.0)?);
        if !range::assigned_locals(body).contains(&kid) {
            return Some(range::StrideRef::Sym(kid));
        }
    }
    None
}

fn estimate_mem_efficiency(
    usage: &[analysis::BufUsage],
    configs: &[ArrayConfig],
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (u, cfg) in usage.iter().zip(configs) {
        for (p, d) in &u.load_sites {
            let w = depth_weight(*d);
            let eff = if cfg.layout_transformed {
                // Transformed arrays are accessed coalesced.
                1.0
            } else {
                pattern_efficiency(*p)
            };
            num += eff * w;
            den += w;
        }
        for (lin, d) in &u.store_sites {
            let w = depth_weight(*d);
            let p = match lin {
                Some(l) if l.coeff == 0 || l.coeff.unsigned_abs() == 1 => {
                    crate::affine::AccessPattern::Coalesced
                }
                Some(l) => crate::affine::AccessPattern::Strided(l.coeff.unsigned_abs()),
                None => crate::affine::AccessPattern::Irregular,
            };
            num += pattern_efficiency(p) * w;
            den += w;
        }
        for (p, d) in &u.atomic_sites {
            let w = depth_weight(*d);
            num += pattern_efficiency(*p) * w;
            den += w;
        }
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

// ---------- body scanning and remapping ----------

fn scan_block(
    stmts: &[ir::Stmt],
    loop_var: ir::LocalId,
    locals: &mut BTreeMap<u32, bool>,
    bufs: &mut BTreeMap<u32, ()>,
) {
    for s in stmts {
        // Reads (all expressions).
        s.visit_exprs(&mut |e| {
            e.visit(&mut |e| match e {
                ir::Expr::Local(l) if *l != loop_var => {
                    locals.insert(l.0, true);
                }
                ir::Expr::Load { buf, .. } => {
                    bufs.insert(buf.0, ());
                }
                _ => {}
            });
        });
        // Writes.
        s.visit(&mut |s| match s {
            ir::Stmt::Assign { local, .. } if *local != loop_var => {
                locals.entry(local.0).or_insert(false);
            }
            ir::Stmt::Store { buf, .. } | ir::Stmt::AtomicRmw { buf, .. } => {
                bufs.insert(buf.0, ());
            }
            _ => {}
        });
    }
}

fn remap_expr(
    e: &ir::Expr,
    loop_var: ir::LocalId,
    locals: &BTreeMap<u32, u32>,
    bufs: &BTreeMap<u32, u32>,
) -> ir::Expr {
    e.clone().map(&mut |e| match e {
        ir::Expr::Local(l) if l == loop_var => ir::Expr::ThreadIdx,
        ir::Expr::Local(l) => ir::Expr::Local(ir::LocalId(locals[&l.0])),
        ir::Expr::Load { buf, idx } => ir::Expr::Load {
            buf: ir::BufId(bufs[&buf.0]),
            idx,
        },
        other => other,
    })
}

fn remap_stmt(
    s: &ir::Stmt,
    loop_var: ir::LocalId,
    locals: &BTreeMap<u32, u32>,
    bufs: &BTreeMap<u32, u32>,
) -> ir::Stmt {
    let re = |e: &ir::Expr| remap_expr(e, loop_var, locals, bufs);
    match s {
        ir::Stmt::Assign { local, value } => ir::Stmt::Assign {
            local: ir::LocalId(locals[&local.0]),
            value: re(value),
        },
        ir::Stmt::Store {
            buf,
            idx,
            value,
            dirty,
            checked,
        } => ir::Stmt::Store {
            buf: ir::BufId(bufs[&buf.0]),
            idx: re(idx),
            value: re(value),
            dirty: *dirty,
            checked: *checked,
        },
        ir::Stmt::AtomicRmw {
            buf,
            idx,
            op,
            value,
        } => ir::Stmt::AtomicRmw {
            buf: ir::BufId(bufs[&buf.0]),
            idx: re(idx),
            op: *op,
            value: re(value),
        },
        ir::Stmt::ReduceScalar { slot, op, value } => ir::Stmt::ReduceScalar {
            slot: *slot,
            op: *op,
            value: re(value),
        },
        ir::Stmt::If { cond, then_, else_ } => ir::Stmt::If {
            cond: re(cond),
            then_: then_
                .iter()
                .map(|s| remap_stmt(s, loop_var, locals, bufs))
                .collect(),
            else_: else_
                .iter()
                .map(|s| remap_stmt(s, loop_var, locals, bufs))
                .collect(),
        },
        ir::Stmt::While { cond, body } => ir::Stmt::While {
            cond: re(cond),
            body: body
                .iter()
                .map(|s| remap_stmt(s, loop_var, locals, bufs))
                .collect(),
        },
        ir::Stmt::Break => ir::Stmt::Break,
        ir::Stmt::Continue => ir::Stmt::Continue,
    }
}

/// Set the instrumentation flags on every store to kernel buffer `kbuf`.
pub(crate) fn set_store_flags(stmts: &mut [ir::Stmt], kbuf: u32, dirty: bool, checked: bool) {
    for s in stmts {
        match s {
            ir::Stmt::Store {
                buf,
                dirty: d,
                checked: c,
                ..
            } if buf.0 == kbuf => {
                *d = dirty;
                *c = checked;
            }
            ir::Stmt::If { then_, else_, .. } => {
                set_store_flags(then_, kbuf, dirty, checked);
                set_store_flags(else_, kbuf, dirty, checked);
            }
            ir::Stmt::While { body, .. } => set_store_flags(body, kbuf, dirty, checked),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    #[test]
    fn extracts_saxpy_kernel() {
        let p = compile_source(
            "void saxpy(int n, float a, float *x, float *y) {\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = a * x[i] + y[i];\n\
             }",
            "saxpy",
            &CompileOptions::proposal(),
        )
        .unwrap();
        assert_eq!(p.kernels.len(), 1);
        let k = &p.kernels[0];
        // `a` is captured (`n` only appears in the bound, not the body).
        assert_eq!(k.kernel.params.len(), 1);
        assert_eq!(k.kernel.params[0].name, "a$cap");
        assert_eq!(k.kernel.bufs.len(), 2);
        assert_eq!(k.buf_map, vec![0, 1]);
        // No localaccess → both replicated; y written → dirty-marked.
        assert!(matches!(k.configs[1].placement, Placement::Replicated));
        let mut saw_dirty = false;
        for s in &k.kernel.body {
            s.visit(&mut |s| {
                if let ir::Stmt::Store { dirty, .. } = s {
                    saw_dirty |= dirty;
                }
            });
        }
        assert!(saw_dirty);
    }

    #[test]
    fn localaccess_makes_distribution_and_elides_checks() {
        let p = compile_source(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc localaccess(x) stride(1)\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = x[i] * 2.0;\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let k = &p.kernels[0];
        let cy = k.configs.iter().find(|c| c.name == "y").unwrap();
        assert!(matches!(cy.placement, Placement::Distributed));
        assert!(cy.miss_check_elided);
        // No checked stores in the body.
        let mut saw_checked = false;
        for s in &k.kernel.body {
            s.visit(&mut |s| {
                if let ir::Stmt::Store { checked, .. } = s {
                    saw_checked |= checked;
                }
            });
        }
        assert!(!saw_checked);
    }

    #[test]
    fn irregular_write_to_distributed_gets_checked() {
        let p = compile_source(
            "void f(int n, int *m, double *y) {\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[m[i]] = 1.0;\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let k = &p.kernels[0];
        let cy = k.configs.iter().find(|c| c.name == "y").unwrap();
        assert!(!cy.miss_check_elided);
        let mut saw_checked = false;
        for s in &k.kernel.body {
            s.visit(&mut |s| {
                if let ir::Stmt::Store { checked, .. } = s {
                    saw_checked |= checked;
                }
            });
        }
        assert!(saw_checked);
    }

    #[test]
    fn pgi_mode_ignores_extensions() {
        let p = compile_source(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc localaccess(x) stride(1)\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             }",
            "f",
            &CompileOptions::pgi_like(),
        )
        .unwrap();
        for c in &p.kernels[0].configs {
            assert!(matches!(c.placement, Placement::Replicated));
            assert!(c.localaccess.is_none());
        }
        assert_eq!(p.localaccess_ratio(), (0, 2));
    }

    #[test]
    fn cuda_expert_mode_has_no_instrumentation() {
        let p = compile_source(
            "void f(int n, int *m, double *y) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[m[i]] = 1.0;\n\
             }",
            "f",
            &CompileOptions::cuda_expert(),
        )
        .unwrap();
        for s in &p.kernels[0].kernel.body {
            s.visit(&mut |s| {
                if let ir::Stmt::Store { dirty, checked, .. } = s {
                    assert!(!dirty && !checked);
                }
            });
        }
    }

    #[test]
    fn layout_transform_applies_to_strided_readonly() {
        let src = "void f(int n, double *x, double *y) {\n\
             #pragma acc localaccess(x) stride(8)\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) {\n\
             double s = 0.0;\n\
             for (int j = 0; j < 8; j++) s += x[i*8+j];\n\
             y[i] = s;\n\
             }\n\
             }";
        let with = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
        let without = compile_source(
            src,
            "f",
            &CompileOptions {
                layout_transform: false,
                ..CompileOptions::proposal()
            },
        )
        .unwrap();
        let cx = with.kernels[0].configs.iter().find(|c| c.name == "x").unwrap();
        assert!(cx.layout_transformed);
        assert!(with.kernels[0].mem_efficiency > without.kernels[0].mem_efficiency);
    }

    #[test]
    fn reduction_kernel_carries_slots_and_targets() {
        let p = compile_source(
            "void f(int n, double *x, double s) {\n\
             #pragma acc parallel loop reduction(+:s)\n\
             for (int i = 0; i < n; i++) s += x[i];\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let k = &p.kernels[0];
        assert_eq!(k.kernel.reductions.len(), 1);
        assert_eq!(k.red_targets.len(), 1);
        // `s` is the reduction accumulator, not a captured parameter.
        assert!(k.kernel.params.iter().all(|p| p.name != "s$cap"));
    }

    #[test]
    fn reductiontoarray_buffer_is_reduction_private() {
        let p = compile_source(
            "void f(int n, int *m, double *e, double *v) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) {\n\
             #pragma acc reductiontoarray(+: e[8])\n\
             e[m[i]] += v[i];\n\
             }\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let ce = p.kernels[0].configs.iter().find(|c| c.name == "e").unwrap();
        assert!(matches!(
            ce.placement,
            Placement::ReductionPrivate(ir::RmwOp::Add)
        ));
        assert_eq!(
            p.kernels[0]
                .kernel
                .bufs
                .iter()
                .find(|b| b.name == "e")
                .unwrap()
                .access,
            ir::BufAccess::Reduction(ir::RmwOp::Add)
        );
    }

    #[test]
    fn captured_params_map_to_host_locals() {
        let p = compile_source(
            "void f(int n, int k, double *x) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) x[i] = (double)(i + k);\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let k = &p.kernels[0];
        assert_eq!(k.param_src.len(), 1);
        // `k` is host local slot 1 (after `n`).
        assert_eq!(k.param_src[0], ParamSrc::HostLocal(ir::LocalId(1)));
    }

    #[test]
    fn mem_efficiency_between_zero_and_one() {
        let p = compile_source(
            "void f(int n, int *m, double *y) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = (double)m[m[i]];\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let e = p.kernels[0].mem_efficiency;
        assert!(e > 0.0 && e <= 1.0);
        // Irregular read drags it below full.
        assert!(e < 0.9);
    }
}
