//! Array configuration information (paper §IV-B5).
//!
//! "The translator generates the array configuration information, which is
//! used by the data loader and the inter-GPU communication manager. [...]
//! It is generated for every parallel loops and for every device arrays
//! used in the loop."

use acc_kernel_ir as ir;

use crate::affine::AccessPattern;
use crate::analysis::AccessMode;
use crate::depend::DependVerdict;

/// Placement policy the data loader will use for one array in one kernel
/// (paper §IV-C).
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Replica-based policy: every GPU holds the whole array. Default for
    /// arrays without `localaccess`. Writes are tracked with two-level
    /// dirty bits and reconciled by the communication manager.
    Replicated,
    /// Distribution-based policy: each GPU holds only the sub-array its
    /// assigned iterations access, per the `localaccess` parameters.
    /// Writes outside the owned partition go through the write-miss path.
    Distributed,
    /// Destination of a `reductiontoarray`: each GPU accumulates into a
    /// private full copy; the communication manager merges the copies
    /// with the operator after the kernel wave (paper §IV-B4 hierarchical
    /// reduction, final inter-GPU level).
    ReductionPrivate(ir::RmwOp),
}

/// Host-evaluated `localaccess` parameters: iteration `i` reads
/// `[stride*i - left, stride*(i+1) - 1 + right]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalAccessParams {
    pub stride: ir::Expr,
    pub left: ir::Expr,
    pub right: ir::Expr,
}

/// Outcome of the §IV-D2 write-locality proof for one array in one
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElisionProof {
    /// The array is not distributed: no per-store miss check exists.
    NotApplicable,
    /// Distributed but never stored to by this kernel.
    NoStores,
    /// Proved by the strict constant-stride prover (`s*tid + c`,
    /// `0 <= c < s`).
    ConstStride,
    /// Proved by the interval/symbolic prover (runtime stride and/or
    /// loop-bounded offsets, [`crate::range`]).
    Interval,
    /// Not provable: the runtime miss check stays on every store.
    Unproven,
}

/// Static linter verdicts recorded per array per kernel; materialized
/// into `ACC-W00x` diagnostics by [`crate::lint`] and audited at runtime
/// by the sanitizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayLint {
    /// How (whether) the write-miss check was elided.
    pub elision: ElisionProof,
    /// Load sites whose index was comparable against the declared
    /// `localaccess` window.
    pub window_checked: usize,
    /// Load sites provably outside the declared window for every
    /// admissible stride (`ACC-W003`).
    pub window_violations: usize,
    /// Stores with thread-variant values at overlapping (broadcast or
    /// irregular) indices (`ACC-W001`).
    pub overlap_stores: usize,
    /// Read-modify-write stores at overlapping indices missing a
    /// `reductiontoarray` annotation (`ACC-W002`).
    pub unannotated_rmw: usize,
    /// Cross-GPU dependence verdict from [`crate::depend`]: the basis of
    /// `ACC-W005` (definite race) and `ACC-W006` (loop-carried
    /// dependence), and — when the verdict is a monotone-window proof —
    /// the *suppressor* of the heuristic `ACC-W001`/`ACC-W002` counts.
    pub verdict: DependVerdict,
    /// Whole stride windows the declared (or inferred) `localaccess`
    /// halo spans on each side (`left`, `right`), per
    /// [`crate::range::halo_windows`] — the currency
    /// [`crate::depend::Distance`] is measured in. `(0, 0)` when no
    /// halo is declared or it is not expressible over the stride.
    pub halo_windows: (i64, i64),
}

impl ArrayLint {
    /// True when the verdict is `CarriedLocal` with a bounded distance
    /// that fits entirely inside the declared halo — the premise of the
    /// `ACC-W006 → ACC-I003` downgrade and of wavefront scheduling.
    pub fn carried_fits_halo(&self) -> bool {
        self.verdict
            .carried_distance()
            .is_some_and(|d| d.fits_halo(self.halo_windows.0, self.halo_windows.1))
    }
}

impl Default for ArrayLint {
    fn default() -> ArrayLint {
        ArrayLint {
            elision: ElisionProof::NotApplicable,
            window_checked: 0,
            window_violations: 0,
            overlap_stores: 0,
            unannotated_rmw: 0,
            verdict: DependVerdict::Unknown,
            halo_windows: (0, 0),
        }
    }
}

/// Per-kernel, per-array configuration record.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayConfig {
    /// Program array index.
    pub array: usize,
    /// Source-level array name (diagnostics / reports).
    pub name: String,
    /// Whether the kernel reads and/or writes the array.
    pub mode: AccessMode,
    /// Placement policy chosen by the translator.
    pub placement: Placement,
    /// The `localaccess` annotation, when present and honored. With
    /// `CompileOptions::infer_localaccess` this may be an inferred
    /// annotation (then `inferred_used` is set).
    pub localaccess: Option<LocalAccessParams>,
    /// The annotation the whole-program analysis *inferred* for this
    /// array (computed whenever extensions are honored, independent of
    /// whether a hand-written annotation exists). Basis of the
    /// `ACC-I001` diagnostic and the `--infer` golden checks.
    pub inferred: Option<LocalAccessParams>,
    /// True when `localaccess` was filled in from `inferred` because the
    /// source had no annotation and inference was enabled.
    pub inferred_used: bool,
    /// Host-frame stride expressions under which *every* access of this
    /// array provably stays inside the iteration's own partition
    /// `[S*i, S*(i+1) - 1]` — the partition keys the inter-launch
    /// comm-elision analysis may rely on.
    pub own_strides: Vec<ir::Expr>,
    /// True when every store to this (distributed) array was statically
    /// proven to land in the local partition, so the generated code
    /// carries no miss checks (paper §IV-D2).
    pub miss_check_elided: bool,
    /// True when the 2-D layout transform was applied to this array's
    /// accesses in this kernel (paper §IV-B4).
    pub layout_transformed: bool,
    /// Worst (least-coalesced) read-site pattern, for the runtime's
    /// per-array memory pricing. `Coalesced` when the array is not read.
    pub read_pattern: AccessPattern,
    /// Worst write-site pattern. `Coalesced` when not written.
    pub write_pattern: AccessPattern,
    /// The `reductiontoarray` operator the dependence analysis inferred
    /// and applied for this array (only set when
    /// `CompileOptions::infer_reductions` rewrote the kernel; basis of
    /// the `ACC-I002` diagnostic).
    pub inferred_reduction: Option<ir::RmwOp>,
    /// The monotone indirect window confining this array's accesses,
    /// when one was recognized (`row_ptr[i]`-bounded inner loops). For
    /// written arrays this window is what the
    /// `DependVerdict::Disjoint(MonotoneWindow)` verdict rests on.
    pub monotone_window: Option<MonotoneWindowInfo>,
    /// Static linter verdicts for this array in this kernel.
    pub lint: ArrayLint,
}

/// A recognized monotone indirect window, with the bound array resolved
/// to its *program* array index: iteration `t` touches exactly
/// `[p[coeff*t + lo_off], p[coeff*t + lo_off + span])`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonotoneWindowInfo {
    /// Program array index of the bound array `p`.
    pub ptr_array: usize,
    pub coeff: i64,
    pub lo_off: i64,
    pub span: i64,
}

impl ArrayConfig {
    /// True when the communication manager must reconcile replicas of
    /// this array after the kernel (replicated and written).
    pub fn needs_replica_sync(&self) -> bool {
        self.placement == Placement::Replicated && self.mode.writes()
    }
}
