//! Affine (linear-in-thread-index) analysis of index expressions.
//!
//! The translator needs to know, per buffer access site, the shape of the
//! index as a function of the thread index `tid`:
//!
//! * stores of the strict form `s*tid + c` (both constant) with
//!   `0 <= c < s` are provably inside the iteration's own `localaccess`
//!   partition, so the write-miss check can be elided (paper §IV-D2, last
//!   paragraph);
//! * loads of the loose form `A*tid + B` — where `A`/`B` may be
//!   thread-invariant runtime values such as `i*nfeatures + j` in KMEANS —
//!   are *affine*: coalesced when `|A| == 1`, strided otherwise; these are
//!   exactly the accesses the 2-D layout transform (§IV-B4) can fix;
//! * anything involving a memory load in the index (`a[idx[i]]`) is
//!   irregular/gather.

use acc_kernel_ir::{BinOp, Expr, Ty, UnOp, Value};

/// A coefficient or offset in a linear form: a compile-time constant or a
/// thread-invariant runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coef {
    Const(i64),
    /// Thread-invariant but not known at compile time (locals, params).
    Dyn,
}

impl Coef {
    fn add(self, o: Coef) -> Option<Coef> {
        match (self, o) {
            (Coef::Const(a), Coef::Const(b)) => Some(Coef::Const(a + b)),
            (Coef::Const(0), d) | (d, Coef::Const(0)) => Some(d),
            // Dyn + Dyn or Dyn + nonzero-const is still thread-invariant
            // for offsets, but ambiguous for coefficients; callers decide.
            _ => Some(Coef::Dyn),
        }
    }

    fn neg(self) -> Coef {
        match self {
            Coef::Const(v) => Coef::Const(-v),
            Coef::Dyn => Coef::Dyn,
        }
    }

    fn mul(self, o: Coef) -> Coef {
        match (self, o) {
            (Coef::Const(a), Coef::Const(b)) => Coef::Const(a * b),
            (Coef::Const(0), _) | (_, Coef::Const(0)) => Coef::Const(0),
            _ => Coef::Dyn,
        }
    }

    fn is_zero(self) -> bool {
        self == Coef::Const(0)
    }
}

/// `coeff * tid + offset`, where each part is constant or thread-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinForm {
    pub coeff: Coef,
    pub offset: Coef,
}

/// Strict linear form with compile-time-constant coefficients (for the
/// miss-check elision proof).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Linear {
    pub coeff: i64,
    pub offset: i64,
}

/// Try to express `e` as `A*tid + B` with thread-invariant `A`, `B`.
/// Returns `None` when the index involves memory loads, calls, or
/// non-linear uses of `tid`.
pub fn linear_form(e: &Expr) -> Option<LinForm> {
    match e {
        Expr::Imm(Value::I32(v)) => Some(LinForm {
            coeff: Coef::Const(0),
            offset: Coef::Const(*v as i64),
        }),
        Expr::Imm(_) => None,
        Expr::Local(_) | Expr::Param(_) => Some(LinForm {
            coeff: Coef::Const(0),
            offset: Coef::Dyn,
        }),
        Expr::ThreadIdx => Some(LinForm {
            coeff: Coef::Const(1),
            offset: Coef::Const(0),
        }),
        Expr::Cast { ty: Ty::I32, a } => linear_form(a),
        Expr::Cast { .. } => None,
        Expr::Unary { op: UnOp::Neg, a } => {
            let l = linear_form(a)?;
            Some(LinForm {
                coeff: l.coeff.neg(),
                offset: l.offset.neg(),
            })
        }
        Expr::Unary { .. } => None,
        Expr::Binary { op, a, b } => {
            let la = linear_form(a)?;
            let lb = linear_form(b)?;
            match op {
                BinOp::Add => Some(LinForm {
                    coeff: la.coeff.add(lb.coeff)?,
                    offset: la.offset.add(lb.offset)?,
                }),
                BinOp::Sub => Some(LinForm {
                    coeff: la.coeff.add(lb.coeff.neg())?,
                    offset: la.offset.add(lb.offset.neg())?,
                }),
                BinOp::Mul => {
                    // Linear only when at least one side is tid-free.
                    if la.coeff.is_zero() {
                        multiply(la, lb)
                    } else if lb.coeff.is_zero() {
                        multiply(lb, la)
                    } else {
                        None
                    }
                }
                // Other integer ops on tid-free operands are still
                // thread-invariant; with tid involved they are non-linear.
                _ => {
                    if la.coeff.is_zero() && lb.coeff.is_zero() {
                        Some(LinForm {
                            coeff: Coef::Const(0),
                            offset: Coef::Dyn,
                        })
                    } else {
                        None
                    }
                }
            }
        }
        _ => None,
    }
}

/// `factor` is tid-free; multiply it into `lin`.
fn multiply(factor: LinForm, lin: LinForm) -> Option<LinForm> {
    Some(LinForm {
        coeff: factor.offset.mul(lin.coeff),
        offset: factor.offset.mul(lin.offset),
    })
}

/// Strict constant linear form, used by the miss-check elision proof.
pub fn linear_in_tid(e: &Expr) -> Option<Linear> {
    match linear_form(e)? {
        LinForm {
            coeff: Coef::Const(a),
            offset: Coef::Const(b),
        } => Some(Linear { coeff: a, offset: b }),
        _ => None,
    }
}

/// Classification of one buffer-access site for the coalescing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// `A == 0`: every thread touches the same (or a thread-invariant)
    /// element; served from cache.
    Broadcast,
    /// `|A| == 1`: fully coalesced.
    Coalesced,
    /// Constant `|A| > 1`: strided with that stride.
    Strided(u64),
    /// Affine with a runtime stride (e.g. `i*nfeatures + j`).
    StridedDyn,
    /// Not affine in the thread index: random/gather.
    Irregular,
}

impl AccessPattern {
    /// Affine patterns are eligible for the 2-D layout transform.
    pub fn is_affine(self) -> bool {
        !matches!(self, AccessPattern::Irregular)
    }
}

/// Classify an index expression.
pub fn classify(e: &Expr) -> AccessPattern {
    match linear_form(e) {
        Some(l) => match l.coeff {
            Coef::Const(0) => AccessPattern::Broadcast,
            Coef::Const(a) if a.unsigned_abs() == 1 => AccessPattern::Coalesced,
            Coef::Const(a) => AccessPattern::Strided(a.unsigned_abs()),
            Coef::Dyn => AccessPattern::StridedDyn,
        },
        None => AccessPattern::Irregular,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_kernel_ir::{BufId, Expr, LocalId};

    #[test]
    fn recognizes_plain_tid() {
        assert_eq!(
            linear_in_tid(&Expr::ThreadIdx),
            Some(Linear { coeff: 1, offset: 0 })
        );
    }

    #[test]
    fn recognizes_affine_combinations() {
        // 3*tid + 2
        let e = Expr::add(
            Expr::mul(Expr::imm_i32(3), Expr::ThreadIdx),
            Expr::imm_i32(2),
        );
        assert_eq!(linear_in_tid(&e), Some(Linear { coeff: 3, offset: 2 }));
        // tid*4 - 1
        let e = Expr::sub(
            Expr::mul(Expr::ThreadIdx, Expr::imm_i32(4)),
            Expr::imm_i32(1),
        );
        assert_eq!(linear_in_tid(&e), Some(Linear { coeff: 4, offset: -1 }));
        // (tid + 1) * 2
        let e = Expr::mul(
            Expr::add(Expr::ThreadIdx, Expr::imm_i32(1)),
            Expr::imm_i32(2),
        );
        assert_eq!(linear_in_tid(&e), Some(Linear { coeff: 2, offset: 2 }));
    }

    #[test]
    fn dynamic_offset_is_still_affine() {
        // tid*8 + j  (j a local) — the 2-D access pattern.
        let e = Expr::add(
            Expr::mul(Expr::ThreadIdx, Expr::imm_i32(8)),
            Expr::Local(LocalId(3)),
        );
        assert_eq!(linear_in_tid(&e), None); // not strictly constant
        assert_eq!(classify(&e), AccessPattern::Strided(8));
    }

    #[test]
    fn dynamic_stride_detected() {
        // tid*nf + j  (nf, j locals) — KMEANS features.
        let e = Expr::add(
            Expr::mul(Expr::ThreadIdx, Expr::Local(LocalId(1))),
            Expr::Local(LocalId(3)),
        );
        assert_eq!(classify(&e), AccessPattern::StridedDyn);
        assert!(classify(&e).is_affine());
    }

    #[test]
    fn rejects_nonlinear_and_loads() {
        // tid * tid
        let e = Expr::mul(Expr::ThreadIdx, Expr::ThreadIdx);
        assert_eq!(classify(&e), AccessPattern::Irregular);
        // a[idx[tid]]
        let e = Expr::load(BufId(0), Expr::ThreadIdx);
        assert_eq!(classify(&e), AccessPattern::Irregular);
    }

    #[test]
    fn thread_invariant_is_broadcast() {
        assert_eq!(classify(&Expr::imm_i32(7)), AccessPattern::Broadcast);
        assert_eq!(
            classify(&Expr::Local(LocalId(0))),
            AccessPattern::Broadcast
        );
        // j % 4 — nonlinear but tid-free.
        let e = Expr::bin(
            acc_kernel_ir::BinOp::Rem,
            Expr::Local(LocalId(0)),
            Expr::imm_i32(4),
        );
        assert_eq!(classify(&e), AccessPattern::Broadcast);
    }

    #[test]
    fn negation_flips_sign() {
        let e = Expr::Unary {
            op: UnOp::Neg,
            a: Box::new(Expr::ThreadIdx),
        };
        assert_eq!(linear_in_tid(&e), Some(Linear { coeff: -1, offset: 0 }));
        assert_eq!(classify(&e), AccessPattern::Coalesced);
    }

    #[test]
    fn rem_of_tid_is_irregular() {
        let e = Expr::bin(
            acc_kernel_ir::BinOp::Rem,
            Expr::ThreadIdx,
            Expr::imm_i32(4),
        );
        assert_eq!(classify(&e), AccessPattern::Irregular);
    }

    #[test]
    fn cast_to_i32_is_transparent() {
        let e = Expr::Cast {
            ty: Ty::I32,
            a: Box::new(Expr::ThreadIdx),
        };
        assert_eq!(linear_in_tid(&e), Some(Linear { coeff: 1, offset: 0 }));
    }
}
