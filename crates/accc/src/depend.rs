//! Cross-GPU dependence analysis (the static half of §IV-D's
//! correctness story).
//!
//! The paper distributes a kernel's iteration space across GPUs and
//! reconciles memory afterwards, which is only sound when, per array,
//! cross-iteration accesses are *disjoint*, *convergent* (every
//! conflicting write stores the same thread-invariant value), or
//! *reduction-shaped*. The existing analyses check annotations; this
//! module proves (or refutes) the property itself, per kernel × array:
//!
//! 1. every access site is summarized into a symbolic access relation
//!    (the [`crate::range`] decomposition `tid_s*(S*tid) + tid_c*tid +
//!    offset-interval`, plus *monotone indirect-window* claims for
//!    `row_ptr[i]`-bounded inner loops);
//! 2. a GCD/interval hybrid pair test decides, for every pair of sites,
//!    whether two distinct iterations can touch the same element — and,
//!    when they can, *how far apart* those iterations are: each conflict
//!    carries a [`Distance`] (exact constant, bounded interval,
//!    direction-only, or unknown), measured in stride windows;
//! 3. the verdict lattice below folds the pair results, separating
//!    cross-partition races ([`DependVerdict::Race`], diagnostic
//!    `ACC-W005`) from loop-carried flow dependences. Carried
//!    dependences whose distance vector is known land in
//!    [`DependVerdict::CarriedLocal`]; only a distance the analysis
//!    cannot describe at all degrades to
//!    [`DependVerdict::LoopCarried`] (`ACC-W006`). Bounded carried
//!    distances that fit the declared halo downgrade the diagnostic to
//!    `ACC-I003` and license the runtime's wavefront schedule (see
//!    `docs/analysis.md`, "Distance & direction vectors").
//!
//! The same access summary drives `reductiontoarray` *inference*
//! ([`infer_reduction`]): a scatter whose every store is
//! `a[i] = a[i] op v` with no other reads of `a` is rewritten to the
//! exact atomic-RMW IR the annotated source would lower to, so inferred
//! and hand-annotated programs are bit-identical (diagnostic
//! `ACC-I002`, applied under `acc-lint --infer`).
//!
//! Verdicts are *cross-validated dynamically*: every statically flagged
//! race must reproduce as a `SanitizeLevel::Full` violation under fault
//! injection, and every proved-race-free app kernel must run clean (see
//! `docs/analysis.md` and the `acc-apps` dependence tests). The one
//! premise the monotone lattice leaves open — the bound array is
//! elementwise non-decreasing — is discharged at launch time by the
//! runtime (`ACC-R011`).

use std::collections::BTreeSet;

use acc_kernel_ir::{self as ir, BinOp, Builtin, Expr, Stmt};
use acc_minic::hir;

use crate::range::{self, IndexForm, MonoSig, StrideRef, SymBound};

/// Per kernel × array dependence verdict, ordered from strongest
/// guarantee to definite hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DependVerdict {
    /// The kernel never writes the array.
    ReadOnly,
    /// Distinct iterations touch provably disjoint elements.
    Disjoint(DisjointProof),
    /// Iterations may write the same element, but every such write
    /// stores the same thread-invariant value — any interleaving and any
    /// replica-merge order converges.
    ConvergentWrites,
    /// All writes are atomic read-modify-writes with one associative
    /// operator and the array is not otherwise read: safe under
    /// reduction-private placement.
    Reduction(ir::RmwOp),
    /// The analysis could not decide.
    #[default]
    Unknown,
    /// A definite cross-iteration flow dependence whose distance vector
    /// is known: every conflicting (writer, reader) iteration pair is
    /// separated by a distance inside `distance` (in stride windows).
    /// Bounded distances that fit the declared halo downgrade `ACC-W006`
    /// to `ACC-I003` and license `Schedule::Wavefront`.
    CarriedLocal { distance: Distance },
    /// A definite cross-iteration flow dependence the analysis cannot
    /// bound or orient: some iteration reads an element another
    /// iteration writes, arbitrarily far away (diagnostic `ACC-W006`).
    LoopCarried,
    /// A definite write-write conflict with diverging values: under
    /// distribution the result depends on the partition (diagnostic
    /// `ACC-W005`).
    Race,
}

impl DependVerdict {
    /// Verdicts that prove the kernel safe to distribute for this array.
    pub fn race_free(self) -> bool {
        matches!(
            self,
            DependVerdict::ReadOnly
                | DependVerdict::Disjoint(_)
                | DependVerdict::ConvergentWrites
                | DependVerdict::Reduction(_)
        )
    }

    /// The carried distance vector, when the verdict carries one.
    pub fn carried_distance(self) -> Option<Distance> {
        match self {
            DependVerdict::CarriedLocal { distance } => Some(distance),
            _ => None,
        }
    }
}

/// Sign of a direction-only carried distance (`<` / `>` in classic
/// direction-vector notation; `=` never reaches a verdict — same-iteration
/// accesses are not carried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Every carried distance is positive: the reading iteration runs
    /// after the writing one (`<`, flow-shaped).
    Forward,
    /// Every carried distance is negative: the reading iteration runs
    /// before the writing one (`>`, anti-shaped).
    Backward,
}

/// Carried dependence distance, measured in *stride windows* of the
/// array's distribution stride (plain iterations for `stride(1)`
/// arrays). Positive distances are flow-shaped: the reading iteration
/// runs after the writing one (`y[i] = y[i-1]` is `Exact(1)`;
/// `y[i] = y[i+1]` is `Exact(-1)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distance {
    /// Every conflicting pair is exactly this many windows apart.
    Exact(i64),
    /// Every conflicting pair is `lo..=hi` windows apart.
    Bounded { lo: i64, hi: i64 },
    /// Only the sign of the distance is known.
    Dir(Direction),
    /// Nothing is known about the separation.
    #[default]
    Unknown,
}

impl Distance {
    /// The bounding interval, when the distance is bounded.
    pub fn bounds(self) -> Option<(i64, i64)> {
        match self {
            Distance::Exact(d) => Some((d, d)),
            Distance::Bounded { lo, hi } => Some((lo, hi)),
            Distance::Dir(_) | Distance::Unknown => None,
        }
    }

    /// The interval `[lo, hi]` as a `Distance`, collapsing to `Exact`.
    pub fn of_range(lo: i64, hi: i64) -> Distance {
        if lo == hi {
            Distance::Exact(lo)
        } else {
            Distance::Bounded { lo, hi }
        }
    }

    /// The sign of the distance, when determinate.
    pub fn direction(self) -> Option<Direction> {
        match self {
            Distance::Dir(d) => Some(d),
            _ => match self.bounds()? {
                (lo, _) if lo > 0 => Some(Direction::Forward),
                (_, hi) if hi < 0 => Some(Direction::Backward),
                _ => None,
            },
        }
    }

    /// Least upper bound in the distance lattice: interval hull of
    /// bounded distances, common sign of directional ones, `Unknown`
    /// otherwise.
    pub fn join(self, other: Distance) -> Distance {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => Distance::of_range(a.min(c), b.max(d)),
            _ => match (self.direction(), other.direction()) {
                (Some(x), Some(y)) if x == y => Distance::Dir(x),
                _ => Distance::Unknown,
            },
        }
    }

    /// The halo each side must span to cover every carried distance:
    /// `(left, right)` in stride windows. `None` when unbounded.
    pub fn halo_need(self) -> Option<(i64, i64)> {
        let (lo, hi) = self.bounds()?;
        Some((hi.max(0), (-lo).max(0)))
    }

    /// Does every carried distance fit inside a halo of `left` /
    /// `right` stride windows? Forward distances read *leftward* (the
    /// reader trails the writer, so the read lands below the reader's
    /// own window — covered by the left halo); backward distances read
    /// rightward. Unbounded distances never fit.
    pub fn fits_halo(self, left_windows: i64, right_windows: i64) -> bool {
        match self.bounds() {
            Some((lo, hi)) => hi.max(0) <= left_windows && (-lo).max(0) <= right_windows,
            None => false,
        }
    }
}

/// How disjointness was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisjointProof {
    /// All sites affine in `tid` with point offsets; the GCD test
    /// excludes every cross-iteration collision.
    Affine,
    /// Sites carry symbolic per-partition offset intervals that fit
    /// strictly inside one stride window.
    StrideWindow,
    /// All sites are confined to a monotone indirect window
    /// `[p[c*t+o], p[c*t+o+d])` — disjoint across iterations provided
    /// the bound array `p` is elementwise non-decreasing (validated at
    /// launch, `ACC-R011`).
    MonotoneWindow,
}

impl std::fmt::Display for Distance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Distance::Exact(d) => write!(f, "{d}"),
            Distance::Bounded { lo, hi } => write!(f, "[{lo}, {hi}]"),
            Distance::Dir(Direction::Forward) => write!(f, ">0 (direction-only)"),
            Distance::Dir(Direction::Backward) => write!(f, "<0 (direction-only)"),
            Distance::Unknown => write!(f, "unknown"),
        }
    }
}

/// Result of [`analyze_buf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufDepend {
    pub verdict: DependVerdict,
    /// The monotone window confining this array's accesses, when every
    /// claimed site shares one signature (also set for read-only arrays
    /// whose loads ride a monotone loop — the "inferred indirect
    /// window" of CSR traversals).
    pub monotone: Option<MonoSig>,
}

/// Per-site classification after folding monotone claims into the
/// decomposed forms.
#[derive(Clone, Copy)]
enum Site {
    Claim(MonoSig),
    Form(IndexForm),
    Opaque,
}

/// Outcome of the pairwise cross-iteration collision test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairRes {
    /// Two distinct iterations definitely can touch the same element;
    /// the payload bounds how many stride windows apart they can be
    /// (positive: the `b` site's iteration runs after the `a` site's).
    Conflict(Distance),
    /// They provably cannot.
    Clean,
    /// Undecided.
    Unknown,
}

/// Analyze every access to `buf` in `body` and fold the sites into a
/// [`DependVerdict`]. `stride` is the array's own declared (or resolved)
/// distribution stride; unannotated arrays use the trivial `Const(1)`
/// domain. `ptr_ok` must return whether a candidate monotone bound array
/// (a kernel buffer id) is never written anywhere in the enclosing
/// function — the host-side construction fact the monotone lattice
/// builds on.
pub fn analyze_buf(
    body: &[Stmt],
    n_locals: usize,
    buf: ir::BufId,
    stride: Option<StrideRef>,
    ptr_ok: &dyn Fn(ir::BufId) -> bool,
) -> BufDepend {
    let unknown = BufDepend {
        verdict: DependVerdict::Unknown,
        monotone: None,
    };

    // -- 1. Atomic-RMW-only buffers are reduction-shaped. --------------
    let mut atomic_ops: Vec<ir::RmwOp> = Vec::new();
    let mut store_values: Vec<&Expr> = Vec::new();
    let mut n_loads = 0usize;
    scan(body, &mut |s| match s {
        Stmt::AtomicRmw { buf: b, op, .. } if *b == buf => atomic_ops.push(*op),
        Stmt::Store { buf: b, value, .. } if *b == buf => store_values.push(value),
        _ => {}
    });
    for_each_expr(body, &mut |e| {
        if matches!(e, Expr::Load { buf: b, .. } if *b == buf) {
            n_loads += 1;
        }
    });
    if let Some(&op) = atomic_ops.first() {
        if atomic_ops.iter().all(|&o| o == op) && store_values.is_empty() && n_loads == 0 {
            return BufDepend {
                verdict: DependVerdict::Reduction(op),
                monotone: None,
            };
        }
        // Mixed atomic/plain access: beyond this lattice.
        return unknown;
    }

    // -- 2. Summarize every site. ---------------------------------------
    let dom = stride.unwrap_or(StrideRef::Const(1));
    let sites = range::collect(body, n_locals, buf, dom);
    if sites.stores.len() != store_values.len() || sites.store_mono.len() != sites.stores.len() {
        return unknown; // traversal mismatch — refuse to reason
    }
    let assigned = range::assigned_locals(body);
    let uniform: Vec<bool> = store_values
        .iter()
        .map(|v| value_uniform(v, &assigned))
        .collect();

    let fold = |form: &Option<IndexForm>, claim: &Option<MonoSig>| -> Site {
        if let Some(sig) = claim {
            if ptr_ok(sig.ptr) {
                return Site::Claim(*sig);
            }
        }
        match form {
            Some(f) => Site::Form(*f),
            None => Site::Opaque,
        }
    };
    let stores: Vec<Site> = sites
        .stores
        .iter()
        .zip(&sites.store_mono)
        .map(|(f, c)| fold(f, c))
        .collect();
    let loads: Vec<Site> = sites
        .loads
        .iter()
        .zip(&sites.load_mono)
        .map(|(f, c)| fold(f, c))
        .collect();

    // -- 3. Read-only arrays: record the window metadata and stop. ------
    if stores.is_empty() {
        return BufDepend {
            verdict: DependVerdict::ReadOnly,
            monotone: common_claim(&loads),
        };
    }

    // -- 4. Monotone-confined writes. -----------------------------------
    if stores.iter().any(|s| matches!(s, Site::Claim(_))) {
        // Mixing monotone claims with other site kinds (or with claims
        // of a different signature) defeats the window argument.
        let sig = match common_claim(&stores) {
            Some(sig) => sig,
            None => return unknown,
        };
        if loads
            .iter()
            .all(|l| matches!(l, Site::Claim(s) if *s == sig))
        {
            return BufDepend {
                verdict: DependVerdict::Disjoint(DisjointProof::MonotoneWindow),
                monotone: Some(sig),
            };
        }
        return unknown;
    }

    // -- 5. Pairwise collision tests over the decomposed forms. ---------
    let mut race = false;
    let mut loop_carried = false;
    let mut carried: Option<Distance> = None;
    let mut convergent = false;
    let mut undecided = false;

    for (i, a) in stores.iter().enumerate() {
        // store × store (including the self pair: a broadcast store
        // conflicts with itself across iterations).
        for (j, b) in stores.iter().enumerate().skip(i) {
            let (fa, fb) = match (a, b) {
                (Site::Form(fa), Site::Form(fb)) => (fa, fb),
                _ => continue,
            };
            let both_uniform = uniform[i] && uniform[j];
            match pair_test(fa, fb, dom) {
                PairRes::Conflict(_) if both_uniform => convergent = true,
                PairRes::Conflict(_) => race = true,
                PairRes::Unknown if both_uniform => convergent = true,
                PairRes::Unknown => undecided = true,
                PairRes::Clean => {}
            }
        }
        // store × load: a cross-iteration read of a written element.
        // The conflict distance is writer-to-reader: positive when the
        // reading iteration runs after the writing one.
        for l in &loads {
            let (fa, fl) = match (a, l) {
                (Site::Form(fa), Site::Form(fl)) => (fa, fl),
                _ => continue,
            };
            match pair_test(fa, fl, dom) {
                PairRes::Conflict(_) if uniform[i] => convergent = true,
                PairRes::Conflict(d) => {
                    loop_carried = true;
                    carried = Some(match carried {
                        None => d,
                        Some(prev) => prev.join(d),
                    });
                }
                PairRes::Unknown if uniform[i] => convergent = true,
                PairRes::Unknown => undecided = true,
                PairRes::Clean => {}
            }
        }
    }

    // Opaque sites: writes of a thread-invariant value stay convergent
    // no matter where they land; anything else is beyond the lattice.
    let all_uniform = uniform.iter().all(|&u| u);
    for (i, s) in stores.iter().enumerate() {
        if matches!(s, Site::Opaque) {
            if uniform[i] && all_uniform {
                convergent = true;
            } else {
                undecided = true;
            }
        }
    }
    if loads.iter().any(|l| matches!(l, Site::Opaque)) {
        if all_uniform {
            convergent = true;
        } else {
            undecided = true;
        }
    }

    let verdict = if race {
        DependVerdict::Race
    } else if loop_carried {
        // An undecided pair could hide a conflict at arbitrary distance,
        // so it poisons any bounded claim from the decided pairs.
        match (undecided, carried.unwrap_or_default()) {
            (true, _) | (false, Distance::Unknown) => DependVerdict::LoopCarried,
            (false, distance) => DependVerdict::CarriedLocal { distance },
        }
    } else if undecided {
        DependVerdict::Unknown
    } else if convergent {
        DependVerdict::ConvergentWrites
    } else {
        let points = stores.iter().chain(&loads).all(|s| match s {
            Site::Form(f) => f.offset.lo == f.offset.hi,
            _ => true,
        });
        let proof = if matches!(dom, StrideRef::Const(_)) && points {
            DisjointProof::Affine
        } else {
            DisjointProof::StrideWindow
        };
        DependVerdict::Disjoint(proof)
    };
    BufDepend {
        verdict,
        monotone: None,
    }
}

/// The single monotone signature shared by a non-empty all-claims site
/// list, else `None`.
fn common_claim(sites: &[Site]) -> Option<MonoSig> {
    let mut sig = None;
    for s in sites {
        match (s, sig) {
            (Site::Claim(c), None) => sig = Some(*c),
            (Site::Claim(c), Some(prev)) if *c == prev => {}
            _ => return None,
        }
    }
    sig
}

/// A store value is *uniform* when it cannot diverge across the threads
/// that execute the store: no thread index, no memory loads, no local
/// assigned inside the kernel (mirrors the `ACC-W001` value test).
fn value_uniform(e: &Expr, assigned: &BTreeSet<ir::LocalId>) -> bool {
    let mut uni = true;
    e.visit(&mut |e| match e {
        Expr::ThreadIdx | Expr::Load { .. } => uni = false,
        Expr::Local(l) if assigned.contains(l) => uni = false,
        _ => {}
    });
    uni
}

// ---------- the GCD/interval pair test ----------

/// Can two *distinct* iterations `t1 != t2 >= 0` touch the same element
/// through sites `a` and `b`? Decomposed indices are
/// `c*t + [lo, hi]`; the test solves `c_a*t1 - c_b*t2 ∈ D` with
/// `D = [b.lo - a.hi, b.hi - a.lo]` (every value of `D` is attained —
/// offsets range over their whole intervals).
fn pair_test(a: &IndexForm, b: &IndexForm, dom: StrideRef) -> PairRes {
    match dom {
        StrideRef::Const(s) => pair_const(a, b, s),
        StrideRef::Sym(_) => pair_sym(a, b, dom),
    }
}

fn pair_const(a: &IndexForm, b: &IndexForm, s: i64) -> PairRes {
    let ca = a.tid_s * s + a.tid_c;
    let cb = b.tid_s * s + b.tid_c;
    let (alo, ahi) = (
        a.offset.lo.a * s + a.offset.lo.k,
        a.offset.hi.a * s + a.offset.hi.k,
    );
    let (blo, bhi) = (
        b.offset.lo.a * s + b.offset.lo.k,
        b.offset.hi.a * s + b.offset.hi.k,
    );
    if alo > ahi || blo > bhi {
        return PairRes::Unknown;
    }
    let (dlo, dhi) = (blo - ahi, bhi - alo);
    match (ca, cb) {
        // Both broadcast: constant in `t`, conflict iff intervals meet —
        // between *any* two iterations, so the distance is unbounded.
        (0, 0) => {
            if dlo <= 0 && 0 <= dhi {
                PairRes::Conflict(Distance::Unknown)
            } else {
                PairRes::Clean
            }
        }
        // One side broadcast: need a non-negative multiple of the other
        // coefficient inside the difference interval (the broadcast side
        // supplies the distinct iteration for free — at any separation,
        // so no distance bound exists).
        (c, 0) => nonneg_multiple_in(c, dlo, dhi),
        (0, c) => nonneg_multiple_in(c, -dhi, -dlo),
        // Equal coefficients: `c*(t1 - t2) ∈ D` with `t1 != t2` — a
        // *non-zero* multiple of `c` inside `D`. The solutions
        // `k = t1 - t2 ∈ [kmin, kmax]` bound the distance exactly:
        // `b`'s iteration minus `a`'s is `-k` (sign-flipped again when
        // the shared coefficient is negative).
        (c1, c2) if c1 == c2 => {
            let c = c1.abs();
            let kmin = div_ceil(dlo, c);
            let kmax = div_floor(dhi, c);
            if kmin <= kmax && !(kmin == 0 && kmax == 0) {
                let (mut lo, mut hi) = if c1 > 0 {
                    (-kmax, -kmin)
                } else {
                    (kmin, kmax)
                };
                // Zero separation is not a carried conflict; trim it
                // off the interval endpoints.
                if lo == 0 {
                    lo = 1;
                }
                if hi == 0 {
                    hi = -1;
                }
                PairRes::Conflict(Distance::of_range(lo, hi))
            } else {
                PairRes::Clean
            }
        }
        // Distinct same-sign coefficients: `{c_a*t1 - c_b*t2}` over
        // unbounded `t >= 0` is exactly the multiples of `gcd`; a
        // witness with `t1 != t2` always exists (shift by `c_b/g, c_a/g`)
        // at every sufficiently large separation — no bound.
        (c1, c2) if (c1 > 0) == (c2 > 0) => {
            let g = gcd(c1.unsigned_abs(), c2.unsigned_abs()) as i64;
            if div_ceil(dlo, g) <= div_floor(dhi, g) {
                PairRes::Conflict(Distance::Unknown)
            } else {
                PairRes::Clean
            }
        }
        // Opposite signs: the attainable set is a numerical semigroup
        // (Frobenius gaps) — only the empty case is decidable cheaply.
        (c1, c2) => {
            let g = gcd(c1.unsigned_abs(), c2.unsigned_abs()) as i64;
            if div_ceil(dlo, g) > div_floor(dhi, g) {
                PairRes::Clean
            } else {
                PairRes::Unknown
            }
        }
    }
}

/// Is some `c*t`, `t >= 0`, inside `[dlo, dhi]`?
fn nonneg_multiple_in(c: i64, dlo: i64, dhi: i64) -> PairRes {
    let (c, dlo, dhi) = if c < 0 { (-c, -dhi, -dlo) } else { (c, dlo, dhi) };
    let tmin = div_ceil(dlo, c).max(0);
    let tmax = div_floor(dhi, c);
    if tmin <= tmax {
        PairRes::Conflict(Distance::Unknown)
    } else {
        PairRes::Clean
    }
}

fn pair_sym(a: &IndexForm, b: &IndexForm, dom: StrideRef) -> PairRes {
    let kind = |f: &IndexForm| -> Option<bool> {
        // true: stride-coefficient site `S*t + off`; false: broadcast.
        if f.tid_s == 1 && f.tid_c == 0 {
            Some(true)
        } else if f.tid_s == 0 && f.tid_c == 0 {
            Some(false)
        } else {
            None
        }
    };
    let (ka, kb) = match (kind(a), kind(b)) {
        (Some(ka), Some(kb)) => (ka, kb),
        _ => return PairRes::Unknown,
    };
    let dlo = b.offset.lo + (-a.offset.hi);
    let dhi = b.offset.hi + (-a.offset.lo);
    match (ka, kb) {
        (false, false) => {
            if dlo.le(SymBound::konst(0), dom) && SymBound::konst(0).le(dhi, dom) {
                // Broadcast sites conflict at any separation.
                PairRes::Conflict(Distance::Unknown)
            } else if dhi.lt(SymBound::konst(0), dom) || SymBound::konst(0).lt(dlo, dom) {
                PairRes::Clean
            } else {
                PairRes::Unknown
            }
        }
        (true, true) => {
            // Need a non-zero multiple of `S` in `[dlo, dhi]`. Classify
            // each candidate multiplier `k` (so `t1 - t2 = k`, distance
            // `-k`) as a definite hit, definitely excluded, or open;
            // `|k| > K` is settled wholesale by the boundedness probes.
            const K: i64 = 8;
            let mult = |k: i64| SymBound::stride().scale(k);
            let hit = |m: SymBound| dlo.le(m, dom) && m.le(dhi, dom);
            let excluded = |m: SymBound| dhi.lt(m, dom) || m.lt(dlo, dom);
            let mut any_hit = false;
            let mut any_open = false;
            // Multipliers not provably excluded, as distances `-k`.
            let mut dists: Vec<i64> = Vec::new();
            for k in -K..=K {
                if k == 0 {
                    continue;
                }
                let m = mult(k);
                if hit(m) {
                    any_hit = true;
                    dists.push(-k);
                } else if !excluded(m) {
                    any_open = true;
                    dists.push(-k);
                }
            }
            // `S >= 1`, so excluding `±(K+1)·S` excludes everything
            // further out on that side.
            let lo_bounded = mult(-(K + 1)).lt(dlo, dom);
            let hi_bounded = dhi.lt(mult(K + 1), dom);
            if any_hit {
                let dist = if lo_bounded && hi_bounded {
                    let lo = *dists.iter().min().unwrap();
                    let hi = *dists.iter().max().unwrap();
                    Distance::of_range(lo, hi)
                } else if hi_bounded && dists.iter().all(|&d| d > 0) {
                    // Positive-`k` multipliers may run unboundedly low,
                    // i.e. distances unboundedly positive — and dually.
                    Distance::Dir(Direction::Forward)
                } else if lo_bounded && dists.iter().all(|&d| d < 0) {
                    Distance::Dir(Direction::Backward)
                } else {
                    Distance::Unknown
                };
                PairRes::Conflict(dist)
            } else if !any_open && lo_bounded && hi_bounded {
                // Every multiple of `S` is provably outside `[dlo, dhi]`.
                PairRes::Clean
            } else {
                PairRes::Unknown
            }
        }
        _ => PairRes::Unknown,
    }
}

fn div_floor(a: i64, b: i64) -> i64 {
    a.div_euclid(b)
}

fn div_ceil(a: i64, b: i64) -> i64 {
    -(-a).div_euclid(b)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

// ---------- reductiontoarray inference ----------

/// Infer a `reductiontoarray` annotation for `buf` and, on success,
/// rewrite every matched store into the *exact* atomic-RMW statement the
/// hand-annotated source would lower to (so inferred and annotated
/// programs compile to bit-identical IR). Matches when
///
/// * every store to `buf` is `buf[i] = buf[i] op v` (or `min`/`max`
///   calls) with one operand exactly the read-back of the stored
///   element, all stores agreeing on `op`;
/// * `buf` is not otherwise read anywhere in the kernel;
/// * at least one store index is non-affine or broadcast — coalesced
///   self-updates need no reduction placement and are left alone.
///
/// Returns the inferred operator, surfaced as diagnostic `ACC-I002`.
pub fn infer_reduction(body: &mut [Stmt], buf: ir::BufId) -> Option<ir::RmwOp> {
    // Validation pass (immutable).
    let mut ops: Vec<ir::RmwOp> = Vec::new();
    let mut shape_ok = true;
    let mut needs_reduction = false;
    scan(body, &mut |s| {
        if let Stmt::Store { buf: b, idx, value, .. } = s {
            if *b == buf {
                match split_rmw(value, buf, idx) {
                    Some((op, _)) => ops.push(op),
                    None => shape_ok = false,
                }
                if !matches!(
                    crate::affine::classify(idx),
                    crate::affine::AccessPattern::Coalesced | crate::affine::AccessPattern::Strided(_)
                ) {
                    needs_reduction = true;
                }
            }
        }
    });
    let op = *ops.first()?;
    if !shape_ok || !needs_reduction || ops.iter().any(|&o| o != op) {
        return None;
    }
    // No reads of `buf` beyond the per-store read-backs (one each, plus
    // any loads inside the indices of the read-backs themselves).
    let mut n_loads = 0usize;
    for_each_expr(body, &mut |e| {
        if matches!(e, Expr::Load { buf: b, .. } if *b == buf) {
            n_loads += 1;
        }
    });
    if n_loads != ops.len() {
        return None;
    }
    rewrite_rmw(body, buf, op);
    Some(op)
}

/// If `value` is `self op v` / `op(self, v)` where `self` reads
/// `buf[idx]` back, return the operator and a reference to `v`.
fn split_rmw<'a>(value: &'a Expr, buf: ir::BufId, idx: &Expr) -> Option<(ir::RmwOp, &'a Expr)> {
    let is_self =
        |e: &Expr| matches!(e, Expr::Load { buf: b, idx: i } if *b == buf && **i == *idx);
    match value {
        Expr::Binary { op, a, b } => {
            let rop = match op {
                BinOp::Add => ir::RmwOp::Add,
                BinOp::Mul => ir::RmwOp::Mul,
                _ => return None,
            };
            if is_self(a) {
                Some((rop, b))
            } else if is_self(b) {
                Some((rop, a))
            } else {
                None
            }
        }
        Expr::Call { f, args } if args.len() == 2 => {
            let rop = match f {
                Builtin::Min => ir::RmwOp::Min,
                Builtin::Max => ir::RmwOp::Max,
                _ => return None,
            };
            if is_self(&args[0]) {
                Some((rop, &args[1]))
            } else if is_self(&args[1]) {
                Some((rop, &args[0]))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Rewrite every store to `buf` into its atomic-RMW form (the stores
/// were validated by [`infer_reduction`]).
fn rewrite_rmw(stmts: &mut [Stmt], buf: ir::BufId, op: ir::RmwOp) {
    for s in stmts {
        match s {
            Stmt::Store { buf: b, .. } if *b == buf => {
                if let Stmt::Store { buf: b, idx, value, .. } = std::mem::replace(s, Stmt::Break) {
                    let rhs = match split_rmw(&value, b, &idx) {
                        Some((_, v)) => v.clone(),
                        None => value, // unreachable post-validation
                    };
                    *s = Stmt::AtomicRmw {
                        buf: b,
                        idx,
                        op,
                        value: rhs,
                    };
                }
            }
            Stmt::If { then_, else_, .. } => {
                rewrite_rmw(then_, buf, op);
                rewrite_rmw(else_, buf, op);
            }
            Stmt::While { body, .. } => rewrite_rmw(body, buf, op),
            _ => {}
        }
    }
}

// ---------- host-side construction facts ----------

/// Is the program array `arr` written anywhere in `f` — host statements
/// or any kernel body? The monotone lattice may only trust a bound
/// array (`row_ptr`) that the function never mutates; its runtime
/// monotonicity is then a property of the caller-supplied input,
/// validated at launch (`ACC-R011`).
pub fn array_written_in_function(f: &hir::TypedFunction, arr: usize) -> bool {
    fn stmts_write(stmts: &[ir::Stmt], arr: usize) -> bool {
        let mut hit = false;
        for s in stmts {
            s.visit(&mut |s| match s {
                Stmt::Store { buf, .. } | Stmt::AtomicRmw { buf, .. }
                    if buf.0 as usize == arr =>
                {
                    hit = true;
                }
                _ => {}
            });
        }
        hit
    }
    fn walk(body: &[hir::HostStmt], arr: usize) -> bool {
        body.iter().any(|s| match s {
            hir::HostStmt::Plain(p) => stmts_write(std::slice::from_ref(p), arr),
            hir::HostStmt::ParallelLoop(n) => stmts_write(&n.body, arr),
            hir::HostStmt::If { then_, else_, .. } => walk(then_, arr) || walk(else_, arr),
            hir::HostStmt::While { body, .. } => walk(body, arr),
            hir::HostStmt::DataRegion { body, .. } => walk(body, arr),
            _ => false,
        })
    }
    walk(&f.body, arr)
}

// ---------- traversal helpers ----------

/// Pre-order statement visit over a block (including nested blocks).
fn scan<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in body {
        s.visit(f);
    }
}

/// Visit every expression (recursively) in every statement of `body`.
fn for_each_expr<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    for s in body {
        s.visit_exprs(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::SymRange;
    use crate::{compile_source, CompileOptions, DisjointProof as DP, Placement};

    fn verdict(src: &str, f: &str, array: &str) -> DependVerdict {
        let p = compile_source(src, f, &CompileOptions::proposal()).unwrap();
        let arr = p.array_index(array).unwrap();
        for k in &p.kernels {
            for c in &k.configs {
                if c.array == arr {
                    return c.lint.verdict;
                }
            }
        }
        panic!("array `{array}` not used in any kernel");
    }

    #[test]
    fn affine_stores_are_disjoint_and_pure_reads_read_only() {
        let src = "void saxpy(int n, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = 2.0 * x[i] + y[i];\n\
             }";
        assert_eq!(
            verdict(src, "saxpy", "y"),
            DependVerdict::Disjoint(DP::Affine)
        );
        assert_eq!(verdict(src, "saxpy", "x"), DependVerdict::ReadOnly);
    }

    #[test]
    fn broadcast_store_of_variant_value_is_a_race() {
        let src = "void k(int n, double *v, double *y) {\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop copyin(v[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) { y[i] = v[i]; y[0] = v[i]; }\n\
             }";
        assert_eq!(verdict(src, "k", "y"), DependVerdict::Race);
    }

    #[test]
    fn backward_shift_read_is_carried_local_distance_one() {
        let src = "void k(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1) left(1)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 1; i < n; i++) y[i] = y[i - 1] + 1.0;\n\
             }";
        assert_eq!(
            verdict(src, "k", "y"),
            DependVerdict::CarriedLocal {
                distance: Distance::Exact(1)
            }
        );
    }

    #[test]
    fn deep_backward_shift_gets_exact_distance() {
        let src = "void k(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1) left(3)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 3; i < n; i++) y[i] = y[i - 3] + 1.0;\n\
             }";
        assert_eq!(
            verdict(src, "k", "y"),
            DependVerdict::CarriedLocal {
                distance: Distance::Exact(3)
            }
        );
    }

    #[test]
    fn forward_shift_read_is_carried_local_negative_distance() {
        // `y[i] = y[i+1]`: the reader runs *before* the writer — an
        // anti-shaped carried dependence at distance -1.
        let src = "void k(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1) right(1)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 0; i < n - 1; i++) y[i] = y[i + 1] + 1.0;\n\
             }";
        assert_eq!(
            verdict(src, "k", "y"),
            DependVerdict::CarriedLocal {
                distance: Distance::Exact(-1)
            }
        );
    }

    #[test]
    fn broadcast_read_of_written_array_stays_loop_carried() {
        // Every iteration reads `y[0]`, which iteration 0 writes: the
        // separation is unbounded, so no distance vector exists and the
        // verdict stays at the unbounded `LoopCarried`.
        let src = "void k(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 1; i < n; i++) y[i] = y[0] + 1.0;\n\
             }";
        assert_eq!(verdict(src, "k", "y"), DependVerdict::LoopCarried);
    }

    #[test]
    fn uniform_scatter_converges_variant_scatter_is_unknown() {
        let conv = "void k(int n, int *m, double *y) {\n\
             #pragma acc parallel loop copyin(m[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[m[i]] = 5.0;\n\
             }";
        assert_eq!(verdict(conv, "k", "y"), DependVerdict::ConvergentWrites);
        let unk = "void k(int n, int *m, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(m[0:n], x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[m[i]] = x[i];\n\
             }";
        assert_eq!(verdict(unk, "k", "y"), DependVerdict::Unknown);
    }

    #[test]
    fn annotated_reduction_is_reduction_shaped() {
        let src = "void k(int n, int *m, double *v, double *e) {\n\
             #pragma acc parallel loop copyin(m[0:n], v[0:n]) copy(e[0:8])\n\
             for (int i = 0; i < n; i++) {\n\
             #pragma acc reductiontoarray(+: e)\n\
             e[m[i]] = e[m[i]] + v[i];\n\
             }\n\
             }";
        assert_eq!(
            verdict(src, "k", "e"),
            DependVerdict::Reduction(ir::RmwOp::Add)
        );
    }

    const PUSH: &str = "void push(int n, int nnz, int *row_ptr, double *w, double *msg) {\n\
         #pragma acc localaccess(row_ptr) stride(1) right(1)\n\
         #pragma acc parallel loop copyin(row_ptr[0:n+1], w[0:n]) copy(msg[0:nnz])\n\
         for (int i = 0; i < n; i++) {\n\
             double c = w[i] * 2.0;\n\
             for (int k = row_ptr[i]; k < row_ptr[i + 1]; k = k + 1) {\n\
                 msg[k] = c;\n\
             }\n\
         }\n\
         }";

    #[test]
    fn monotone_window_proves_indirect_push_disjoint() {
        let p = compile_source(PUSH, "push", &CompileOptions::proposal()).unwrap();
        let k = &p.kernels[0];
        let msg = k
            .configs
            .iter()
            .find(|c| c.name == "msg")
            .expect("msg config");
        assert_eq!(
            msg.lint.verdict,
            DependVerdict::Disjoint(DP::MonotoneWindow)
        );
        let w = msg.monotone_window.expect("window recorded");
        assert_eq!(w.ptr_array, p.array_index("row_ptr").unwrap());
        assert_eq!((w.coeff, w.lo_off, w.span), (1, 0, 1));
        // The heuristic W001 counter would have fired on `msg[k] = c`
        // (broadcast-classified index, thread-variant value); the proof
        // suppresses it.
        assert_eq!(msg.lint.overlap_stores, 0);
        // The bound array's monotonicity is registered as a runtime
        // premise of the program.
        assert_eq!(
            p.monotone_premises,
            vec![p.array_index("row_ptr").unwrap()]
        );
    }

    #[test]
    fn monotone_window_needs_an_unwritten_bound_array() {
        // Same loop, but the function itself writes `row_ptr` first: the
        // host-side construction fact is gone, so no window is claimed.
        let src = "void push(int n, int nnz, int *row_ptr, double *w, double *msg) {\n\
             row_ptr[0] = 0;\n\
             #pragma acc localaccess(row_ptr) stride(1) right(1)\n\
             #pragma acc parallel loop copyin(row_ptr[0:n+1], w[0:n]) copy(msg[0:nnz])\n\
             for (int i = 0; i < n; i++) {\n\
                 double c = w[i] * 2.0;\n\
                 for (int k = row_ptr[i]; k < row_ptr[i + 1]; k = k + 1) {\n\
                     msg[k] = c;\n\
                 }\n\
             }\n\
             }";
        let p = compile_source(src, "push", &CompileOptions::proposal()).unwrap();
        let msg = p.kernels[0]
            .configs
            .iter()
            .find(|c| c.name == "msg")
            .unwrap();
        assert_eq!(msg.lint.verdict, DependVerdict::Unknown);
        assert!(msg.monotone_window.is_none());
        assert!(p.monotone_premises.is_empty());
    }

    #[test]
    fn monotone_loads_decorate_read_only_arrays() {
        let src = "void spmv(int n, int nnz, int *row_ptr, double *vals, double *y) {\n\
             #pragma acc localaccess(row_ptr) stride(1) right(1)\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop copyin(row_ptr[0:n+1], vals[0:nnz]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) {\n\
                 double s = 0.0;\n\
                 for (int k = row_ptr[i]; k < row_ptr[i + 1]; k = k + 1) {\n\
                     s = s + vals[k];\n\
                 }\n\
                 y[i] = s;\n\
             }\n\
             }";
        let p = compile_source(src, "spmv", &CompileOptions::proposal()).unwrap();
        let vals = p.kernels[0]
            .configs
            .iter()
            .find(|c| c.name == "vals")
            .unwrap();
        assert_eq!(vals.lint.verdict, DependVerdict::ReadOnly);
        assert!(vals.monotone_window.is_some());
        // A read-only window is metadata, not a load-bearing premise.
        assert!(p.monotone_premises.is_empty());
    }

    #[test]
    fn inferred_reduction_matches_annotated_compilation() {
        let annotated = "void k(int n, int *m, double *v, double *e) {\n\
             #pragma acc parallel loop copyin(m[0:n], v[0:n]) copy(e[0:8])\n\
             for (int i = 0; i < n; i++) {\n\
             #pragma acc reductiontoarray(+: e)\n\
             e[m[i]] = e[m[i]] + v[i];\n\
             }\n\
             }";
        let stripped = "void k(int n, int *m, double *v, double *e) {\n\
             #pragma acc parallel loop copyin(m[0:n], v[0:n]) copy(e[0:8])\n\
             for (int i = 0; i < n; i++) {\n\
             e[m[i]] = e[m[i]] + v[i];\n\
             }\n\
             }";
        let mut opts = CompileOptions::proposal();
        opts.infer_reductions = true;
        let pa = compile_source(annotated, "k", &CompileOptions::proposal()).unwrap();
        let pi = compile_source(stripped, "k", &opts).unwrap();
        let (ka, ki) = (&pa.kernels[0], &pi.kernels[0]);
        // The rewrite reproduces the annotated lowering exactly.
        assert_eq!(ka.kernel.body, ki.kernel.body);
        let ea = ka.configs.iter().find(|c| c.name == "e").unwrap();
        let ei = ki.configs.iter().find(|c| c.name == "e").unwrap();
        assert_eq!(ea.placement, Placement::ReductionPrivate(ir::RmwOp::Add));
        assert_eq!(ei.placement, ea.placement);
        assert_eq!(ei.inferred_reduction, Some(ir::RmwOp::Add));
        assert_eq!(ea.inferred_reduction, None);
        // Without the opt-in, nothing is rewritten.
        let off = compile_source(stripped, "k", &CompileOptions::proposal()).unwrap();
        let eo = off.kernels[0].configs.iter().find(|c| c.name == "e").unwrap();
        assert_eq!(eo.placement, Placement::Replicated);
        assert!(eo.lint.unannotated_rmw > 0);
    }

    #[test]
    fn coalesced_self_update_is_not_rewritten() {
        // `y[i] = y[i] + x[i]` needs no reduction placement; inference
        // must leave the coalesced store alone.
        let src = "void k(int n, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = y[i] + x[i];\n\
             }";
        let mut opts = CompileOptions::proposal();
        opts.infer_reductions = true;
        let p = compile_source(src, "k", &opts).unwrap();
        let y = p.kernels[0].configs.iter().find(|c| c.name == "y").unwrap();
        assert_eq!(y.inferred_reduction, None);
        assert_eq!(y.placement, Placement::Replicated);
        assert_eq!(y.lint.verdict, DependVerdict::Disjoint(DP::Affine));
    }

    // ---------- pair-test unit coverage ----------

    fn form(tid_s: i64, tid_c: i64, lo: i64, hi: i64) -> IndexForm {
        IndexForm {
            tid_s,
            tid_c,
            offset: SymRange {
                lo: SymBound::konst(lo),
                hi: SymBound::konst(hi),
            },
        }
    }

    #[test]
    fn pair_const_equal_coeff_gcd() {
        let d = StrideRef::Const(1);
        // y[2i] vs y[2i]: point offsets, no nonzero multiple of 2 in [0,0].
        assert_eq!(
            pair_test(&form(0, 2, 0, 0), &form(0, 2, 0, 0), d),
            PairRes::Clean
        );
        // y[2i] vs y[2i+2]: element 2t1 = 2t2+2 forces t1 = t2 + 1, so
        // the `b` iteration trails by exactly one.
        assert_eq!(
            pair_test(&form(0, 2, 0, 0), &form(0, 2, 2, 2), d),
            PairRes::Conflict(Distance::Exact(-1))
        );
        // y[2i] vs y[2i+1]: parity keeps them apart.
        assert_eq!(
            pair_test(&form(0, 2, 0, 0), &form(0, 2, 1, 1), d),
            PairRes::Clean
        );
        // Offset interval wider than the coefficient: windows overlap,
        // one iteration in either direction.
        assert_eq!(
            pair_test(&form(0, 2, 0, 2), &form(0, 2, 0, 2), d),
            PairRes::Conflict(Distance::Bounded { lo: -1, hi: 1 })
        );
    }

    #[test]
    fn pair_const_distance_is_exact_for_constant_shifts() {
        let dom = StrideRef::Const(1);
        // Store y[i], load y[i-d]: flow distance exactly d.
        for dist in 1..=8 {
            assert_eq!(
                pair_test(&form(0, 1, 0, 0), &form(0, 1, -dist, -dist), dom),
                PairRes::Conflict(Distance::Exact(dist)),
                "shift {dist}"
            );
        }
        // Store y[i], load y[i+d]: anti distance exactly -d.
        for dist in 1..=8 {
            assert_eq!(
                pair_test(&form(0, 1, 0, 0), &form(0, 1, dist, dist), dom),
                PairRes::Conflict(Distance::Exact(-dist)),
                "shift {dist}"
            );
        }
    }

    #[test]
    fn pair_const_mixed_coeffs() {
        let d = StrideRef::Const(1);
        // Broadcast vs broadcast at distinct constants.
        assert_eq!(
            pair_test(&form(0, 0, 3, 3), &form(0, 0, 4, 4), d),
            PairRes::Clean
        );
        assert_eq!(
            pair_test(&form(0, 0, 3, 3), &form(0, 0, 3, 3), d),
            PairRes::Conflict(Distance::Unknown)
        );
        // y[i] vs y[0]: iteration 0 collides with the broadcast.
        assert_eq!(
            pair_test(&form(0, 1, 0, 0), &form(0, 0, 0, 0), d),
            PairRes::Conflict(Distance::Unknown)
        );
        // y[i+1] vs y[0]: the affine site never reaches element 0.
        assert_eq!(
            pair_test(&form(0, 1, 1, 1), &form(0, 0, 0, 0), d),
            PairRes::Clean
        );
        // y[4i] vs y[6i+3]: gcd 2 never hits the odd offset difference.
        assert_eq!(
            pair_test(&form(0, 4, 0, 0), &form(0, 6, 3, 3), d),
            PairRes::Clean
        );
        // y[4i] vs y[6i+2]: 4*2 = 6*1 + 2.
        assert_eq!(
            pair_test(&form(0, 4, 0, 0), &form(0, 6, 2, 2), d),
            PairRes::Conflict(Distance::Unknown)
        );
    }

    #[test]
    fn pair_sym_stride_windows() {
        let dom = StrideRef::Sym(ir::LocalId(0));
        let sw = |lo: SymBound, hi: SymBound| IndexForm {
            tid_s: 1,
            tid_c: 0,
            offset: SymRange { lo, hi },
        };
        // Offsets within [0, S-1]: strictly inside one stride window.
        let own = sw(SymBound::konst(0), SymBound { a: 1, k: -1 });
        assert_eq!(pair_test(&own, &own, dom), PairRes::Clean);
        // A halo reaching S collides with the next iteration's window —
        // the reader runs one window *before* the writer (anti).
        let halo = sw(SymBound::konst(0), SymBound { a: 1, k: 0 });
        assert_eq!(
            pair_test(&own, &halo, dom),
            PairRes::Conflict(Distance::Exact(-1))
        );
        // A two-window backward halo [-2S, S-1] reaches the previous
        // two writers' windows: flow distances 1..=2.
        let deep = sw(SymBound { a: -2, k: 0 }, SymBound { a: 1, k: -1 });
        assert_eq!(
            pair_test(&own, &deep, dom),
            PairRes::Conflict(Distance::Bounded { lo: 1, hi: 2 })
        );
    }

    #[test]
    fn distance_lattice_join_and_fit() {
        use Distance as D;
        assert_eq!(D::Exact(1).join(D::Exact(2)), D::Bounded { lo: 1, hi: 2 });
        assert_eq!(D::Exact(2).join(D::Exact(2)), D::Exact(2));
        assert_eq!(
            D::Exact(-1).join(D::Bounded { lo: 1, hi: 2 }),
            D::Bounded { lo: -1, hi: 2 }
        );
        assert_eq!(
            D::Exact(3).join(D::Dir(Direction::Forward)),
            D::Dir(Direction::Forward)
        );
        assert_eq!(D::Exact(3).join(D::Dir(Direction::Backward)), D::Unknown);
        assert_eq!(D::Unknown.join(D::Exact(1)), D::Unknown);
        assert!(D::Exact(2).fits_halo(2, 0));
        assert!(!D::Exact(2).fits_halo(1, 4));
        assert!(D::Bounded { lo: -1, hi: 2 }.fits_halo(2, 1));
        assert!(!D::Bounded { lo: -1, hi: 2 }.fits_halo(2, 0));
        assert!(!D::Dir(Direction::Forward).fits_halo(8, 8));
        assert_eq!(D::Bounded { lo: 1, hi: 2 }.direction(), Some(Direction::Forward));
        assert_eq!(D::Bounded { lo: -1, hi: 2 }.direction(), None);
    }
}
