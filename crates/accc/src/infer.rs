//! Automatic `localaccess` inference (the static half of the
//! whole-program dataflow analysis).
//!
//! For one kernel × array, the goal is a *sound* `localaccess`
//! annotation: stride `S` and halos `left`/`right` such that iteration
//! `i` only touches `[S*i - left, S*(i+1) - 1 + right]`. The algorithm:
//!
//! 1. **Candidate strides** are harvested from the array's own index
//!    expressions: a `c*tid` term with constant `c > 0` suggests
//!    `Const(c)`; a `local * (linear-in-tid)` term whose local is never
//!    assigned in the body suggests the symbolic stride `Sym(local)`
//!    (e.g. `features[i*nfeatures + j]` suggests `nfeatures`).
//! 2. Each candidate is **validated** with the interval prover of
//!    [`crate::range`]: *every* load and store site must decompose with
//!    the candidate as its effective thread coefficient, and stores (if
//!    any) must be provably inside the iteration's own partition —
//!    distribution is only proposed when the write-miss path would stay
//!    silent.
//! 3. The **window** is the union of the per-iteration read intervals:
//!    `left = max(-offset.lo)`, `right = max(offset.hi - (S-1))` over
//!    the load sites, each rounded *up* into the annotation vocabulary
//!    `{0, positive constant, S}` (rounding up preserves soundness; the
//!    loader may over-fetch but never under-allocate).
//!
//! The result is expressed in the host frame — exactly the expressions
//! the frontend would have produced for a hand-written pragma — so
//! inference can be compared against (and substituted for) source
//! annotations structurally.

use std::collections::BTreeMap;

use acc_kernel_ir as ir;

use crate::affine::linear_in_tid;
use crate::config::LocalAccessParams;
use crate::range::{self, StrideRef, SymBound};

/// A halo bound rounded into the annotation vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Halo {
    Zero,
    Const(i64),
    /// The stride expression itself (`left(cols)` with `stride(cols)`).
    Stride,
}

/// Infer a sound `localaccess` annotation for kernel buffer `buf` of a
/// remapped (pre-instrumentation) kernel body, or `None` when no
/// candidate stride admits one. `local_map` is the host-local → kernel-
/// local remap used to express the result in the host frame.
pub(crate) fn infer_for_buf(
    body: &[ir::Stmt],
    n_locals: usize,
    buf: ir::BufId,
    local_map: &BTreeMap<u32, u32>,
) -> Option<LocalAccessParams> {
    if has_atomic(body, buf) {
        return None;
    }
    for sr in candidate_strides(body, buf) {
        if let Some((left, right)) = try_window(body, n_locals, buf, sr) {
            if let Some(p) = to_params(sr, left, right, local_map) {
                return Some(p);
            }
        }
    }
    None
}

/// Every candidate stride under which *all* accesses to `buf` provably
/// stay inside the iteration's own partition `[S*i, S*(i+1) - 1]` (no
/// halo), expressed in the host frame. These are the strides the
/// inter-launch comm-elision analysis may treat as partition keys: a GPU
/// running iteration range `[lo, hi)` touches exactly `[S*lo, S*hi)`.
pub(crate) fn own_partition_strides(
    body: &[ir::Stmt],
    n_locals: usize,
    buf: ir::BufId,
    local_map: &BTreeMap<u32, u32>,
) -> Vec<ir::Expr> {
    if has_atomic(body, buf) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for sr in candidate_strides(body, buf) {
        if own_partition_ok(body, n_locals, buf, sr) {
            if let Some(e) = stride_expr(sr, local_map) {
                if !out.contains(&e) {
                    out.push(e);
                }
            }
        }
    }
    out
}

/// Render an inferred annotation as the machine-applyable pragma line
/// `#pragma acc localaccess(name) stride(..) [left(..)] [right(..)]`.
/// Zero halos are omitted (they are the parse-time defaults, so the
/// rendered line round-trips to the same [`LocalAccessParams`]).
pub fn render_annotation(
    name: &str,
    p: &LocalAccessParams,
    locals: &[(String, ir::Ty)],
) -> String {
    let mut s = format!(
        "#pragma acc localaccess({name}) stride({})",
        render_expr(&p.stride, locals)
    );
    if !is_zero(&p.left) {
        s.push_str(&format!(" left({})", render_expr(&p.left, locals)));
    }
    if !is_zero(&p.right) {
        s.push_str(&format!(" right({})", render_expr(&p.right, locals)));
    }
    s
}

/// Render an inferred `reductiontoarray` annotation (from the
/// [`crate::depend`] matcher) as the machine-applyable pragma line. No
/// element range is emitted: the rangeless form covers the whole array,
/// exactly what the inferred rewrite assumes, so the line round-trips to
/// the identical compiled program.
pub fn render_reduction(name: &str, op: ir::RmwOp) -> String {
    let op = match op {
        ir::RmwOp::Add => "+",
        ir::RmwOp::Mul => "*",
        ir::RmwOp::Min => "min",
        ir::RmwOp::Max => "max",
    };
    format!("#pragma acc reductiontoarray({op}: {name})")
}

fn is_zero(e: &ir::Expr) -> bool {
    matches!(e, ir::Expr::Imm(ir::Value::I32(0)))
}

/// Render a host-frame annotation expression (an immediate or a named
/// host scalar — the only forms inference produces) as source text.
fn render_expr(e: &ir::Expr, locals: &[(String, ir::Ty)]) -> String {
    match e {
        ir::Expr::Imm(ir::Value::I32(v)) => v.to_string(),
        ir::Expr::Local(l) => locals
            .get(l.0 as usize)
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| format!("<local{}>", l.0)),
        // Halo expressions like `left(2*cols)` must round-trip to a
        // machine-applyable pragma.
        ir::Expr::Binary { op, a, b } => {
            let sym = match op {
                ir::BinOp::Add => "+",
                ir::BinOp::Sub => "-",
                ir::BinOp::Mul => "*",
                other => return format!("<{other:?}>"),
            };
            format!(
                "{}{sym}{}",
                render_expr(a, locals),
                render_expr(b, locals)
            )
        }
        ir::Expr::Cast { a, .. } => render_expr(a, locals),
        other => format!("<{other:?}>"),
    }
}

// ---------- candidate discovery ----------

/// Harvest candidate strides from the index expressions of every access
/// to `buf`, in deterministic traversal order.
fn candidate_strides(body: &[ir::Stmt], buf: ir::BufId) -> Vec<StrideRef> {
    let assigned = range::assigned_locals(body);
    let mut out: Vec<StrideRef> = Vec::new();
    let mut push = |sr: StrideRef| {
        if !out.contains(&sr) {
            out.push(sr);
        }
    };
    for idx in index_exprs(body, buf) {
        let mut terms = Vec::new();
        range::flatten(idx, 1, &mut terms);
        for (_, t) in terms {
            if !has_tid(t) {
                continue;
            }
            if let Some(lin) = linear_in_tid(t) {
                if lin.coeff > 0 {
                    push(StrideRef::Const(lin.coeff));
                }
            } else if let ir::Expr::Binary {
                op: ir::BinOp::Mul,
                a,
                b,
            } = range::strip_cast(t)
            {
                for (x, y) in [(a, b), (b, a)] {
                    if let ir::Expr::Local(l) = range::strip_cast(x) {
                        if !assigned.contains(l) && has_tid(y) && linear_in_tid(y).is_some() {
                            push(StrideRef::Sym(*l));
                        }
                    }
                }
            }
        }
    }
    out
}

/// All load, store, and atomic index expressions targeting `buf`.
fn index_exprs(body: &[ir::Stmt], buf: ir::BufId) -> Vec<&ir::Expr> {
    let mut out = Vec::new();
    for s in body {
        s.visit(&mut |s| match s {
            ir::Stmt::Store { buf: b, idx, .. } | ir::Stmt::AtomicRmw { buf: b, idx, .. }
                if *b == buf =>
            {
                out.push(idx)
            }
            _ => {}
        });
        s.visit_exprs(&mut |e| {
            e.visit(&mut |e| {
                if let ir::Expr::Load { buf: b, idx } = e {
                    if *b == buf {
                        out.push(idx);
                    }
                }
            });
        });
    }
    out
}

fn has_tid(e: &ir::Expr) -> bool {
    let mut found = false;
    e.visit(&mut |e| {
        if matches!(e, ir::Expr::ThreadIdx) {
            found = true;
        }
    });
    found
}

fn has_atomic(body: &[ir::Stmt], buf: ir::BufId) -> bool {
    let mut found = false;
    for s in body {
        s.visit(&mut |s| {
            if matches!(s, ir::Stmt::AtomicRmw { buf: b, .. } if *b == buf) {
                found = true;
            }
        });
    }
    found
}

// ---------- validation & window derivation ----------

/// Validate candidate `sr` for `buf` and derive the rounded halos.
fn try_window(
    body: &[ir::Stmt],
    n_locals: usize,
    buf: ir::BufId,
    sr: StrideRef,
) -> Option<(Halo, Halo)> {
    let sites = range::collect(body, n_locals, buf, sr);
    if sites.loads.is_empty() && sites.stores.is_empty() {
        return None;
    }
    // Every access site must decompose with the candidate as its
    // effective thread coefficient — a single opaque site (gather,
    // unbounded loop offset) sinks the candidate.
    for f in sites.stores.iter().chain(sites.loads.iter()) {
        if !f.as_ref()?.coeff_is_stride(sr) {
            return None;
        }
    }
    // Stores must stay inside the iteration's own partition: inference
    // only proposes distribution when the write-miss path stays silent.
    if !sites.stores.is_empty() && !range::stores_proved_local(&sites, sr) {
        return None;
    }
    let mut left = SymBound::konst(0);
    let mut right = SymBound::konst(0);
    for f in sites.loads.iter().flatten() {
        left = sym_max(left, -f.offset.lo, sr)?;
        right = sym_max(right, f.offset.hi + SymBound { a: -1, k: 1 }, sr)?;
    }
    Some((round_halo(left, sr)?, round_halo(right, sr)?))
}

/// True when every access to `buf` provably stays in `[S*i, S*(i+1)-1]`.
fn own_partition_ok(body: &[ir::Stmt], n_locals: usize, buf: ir::BufId, sr: StrideRef) -> bool {
    let sites = range::collect(body, n_locals, buf, sr);
    if sites.loads.is_empty() && sites.stores.is_empty() {
        return false;
    }
    let within = |f: &Option<range::IndexForm>| match f {
        Some(f) => {
            f.coeff_is_stride(sr)
                && SymBound::konst(0).le(f.offset.lo, sr)
                && f.offset.hi.le(SymBound { a: 1, k: -1 }, sr)
        }
        None => false,
    };
    sites.loads.iter().all(within) && sites.stores.iter().all(within)
}

/// Least upper bound of two symbolic bounds, `None` when incomparable.
fn sym_max(a: SymBound, b: SymBound, sr: StrideRef) -> Option<SymBound> {
    if a.le(b, sr) {
        Some(b)
    } else if b.le(a, sr) {
        Some(a)
    } else {
        None
    }
}

/// Round a required halo *up* into the annotation vocabulary. With a
/// constant stride the bound is evaluated exactly; with a symbolic
/// stride it must be a non-positive bound (`0`), a positive constant, or
/// at most the stride itself (rounded up to `S`).
fn round_halo(b: SymBound, sr: StrideRef) -> Option<Halo> {
    match sr {
        StrideRef::Const(s) => {
            let v = b.a * s + b.k;
            Some(if v <= 0 { Halo::Zero } else { Halo::Const(v) })
        }
        StrideRef::Sym(_) => {
            if b.le(SymBound::konst(0), sr) {
                Some(Halo::Zero)
            } else if b.a == 0 {
                Some(Halo::Const(b.k))
            } else if b.le(SymBound::stride(), sr) {
                Some(Halo::Stride)
            } else {
                None
            }
        }
    }
}

// ---------- host-frame expression assembly ----------

fn stride_expr(sr: StrideRef, local_map: &BTreeMap<u32, u32>) -> Option<ir::Expr> {
    match sr {
        StrideRef::Const(s) => {
            let v: i32 = s.try_into().ok()?;
            (v > 0).then(|| ir::Expr::imm_i32(v))
        }
        StrideRef::Sym(kid) => {
            // Invert the host-local → kernel-local remap.
            let fid = local_map
                .iter()
                .find(|(_, &k)| k == kid.0)
                .map(|(&f, _)| f)?;
            Some(ir::Expr::Local(ir::LocalId(fid)))
        }
    }
}

fn halo_expr(h: Halo, stride: &ir::Expr) -> Option<ir::Expr> {
    match h {
        Halo::Zero => Some(ir::Expr::imm_i32(0)),
        Halo::Const(k) => {
            let v: i32 = k.try_into().ok()?;
            Some(ir::Expr::imm_i32(v))
        }
        Halo::Stride => Some(stride.clone()),
    }
}

fn to_params(
    sr: StrideRef,
    left: Halo,
    right: Halo,
    local_map: &BTreeMap<u32, u32>,
) -> Option<LocalAccessParams> {
    let stride = stride_expr(sr, local_map)?;
    let left = halo_expr(left, &stride)?;
    let right = halo_expr(right, &stride)?;
    Some(LocalAccessParams {
        stride,
        left,
        right,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;
    use crate::{compile_source, CompileOptions};

    fn infer_opts() -> CompileOptions {
        CompileOptions {
            infer_localaccess: true,
            optimize_kernels: false,
            ..CompileOptions::proposal()
        }
    }

    fn cfg<'a>(
        p: &'a crate::CompiledProgram,
        k: usize,
        name: &str,
    ) -> &'a crate::ArrayConfig {
        p.kernels[k].configs.iter().find(|c| c.name == name).unwrap()
    }

    #[test]
    fn infers_unit_stride_and_distributes() {
        let p = compile_source(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = x[i] * 2.0;\n\
             }",
            "f",
            &infer_opts(),
        )
        .unwrap();
        for name in ["x", "y"] {
            let c = cfg(&p, 0, name);
            assert_eq!(c.placement, Placement::Distributed, "{name}");
            assert!(c.inferred_used, "{name}");
            let la = c.localaccess.as_ref().unwrap();
            assert_eq!(la.stride, ir::Expr::imm_i32(1));
            assert_eq!(la.left, ir::Expr::imm_i32(0));
            assert_eq!(la.right, ir::Expr::imm_i32(0));
        }
        assert!(cfg(&p, 0, "y").miss_check_elided);
    }

    #[test]
    fn infers_halo_from_stencil_reads() {
        let p = compile_source(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 1; i < n - 1; i++) y[i] = x[i - 1] + x[i + 1];\n\
             }",
            "f",
            &infer_opts(),
        )
        .unwrap();
        let la = cfg(&p, 0, "x").localaccess.clone().unwrap();
        assert_eq!(la.stride, ir::Expr::imm_i32(1));
        assert_eq!(la.left, ir::Expr::imm_i32(1));
        assert_eq!(la.right, ir::Expr::imm_i32(1));
    }

    #[test]
    fn infers_symbolic_stride_from_inner_loop() {
        let p = compile_source(
            "void f(int n, int nf, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) {\n\
             double s = 0.0;\n\
             for (int j = 0; j < nf; j++) s += x[i*nf + j];\n\
             y[i] = s;\n\
             }\n\
             }",
            "f",
            &infer_opts(),
        )
        .unwrap();
        let la = cfg(&p, 0, "x").localaccess.clone().unwrap();
        // `nf` is host local slot 1.
        assert_eq!(la.stride, ir::Expr::Local(ir::LocalId(1)));
        assert_eq!(la.left, ir::Expr::imm_i32(0));
        assert_eq!(la.right, ir::Expr::imm_i32(0));
    }

    #[test]
    fn rounds_symbolic_halo_up_to_stride() {
        // Row stencil: reads of rows i-1 and i+1 need left/right of one
        // whole stride, expressed as the stride symbol itself.
        let p = compile_source(
            "void f(int rows, int cols, double *a, double *b) {\n\
             #pragma acc parallel loop copyin(a[0:rows*cols]) copy(b[0:rows*cols])\n\
             for (int i = 1; i < rows - 1; i++) {\n\
             for (int j = 0; j < cols; j++) {\n\
             b[i*cols + j] = a[(i-1)*cols + j] + a[(i+1)*cols + j];\n\
             }\n\
             }\n\
             }",
            "f",
            &infer_opts(),
        )
        .unwrap();
        let la = cfg(&p, 0, "a").localaccess.clone().unwrap();
        // `cols` is host local slot 1.
        assert_eq!(la.stride, ir::Expr::Local(ir::LocalId(1)));
        assert_eq!(la.left, ir::Expr::Local(ir::LocalId(1)));
        assert_eq!(la.right, ir::Expr::Local(ir::LocalId(1)));
        let lb = cfg(&p, 0, "b").localaccess.clone().unwrap();
        assert_eq!(lb.stride, ir::Expr::Local(ir::LocalId(1)));
        assert_eq!(lb.left, ir::Expr::imm_i32(0));
    }

    #[test]
    fn gather_defeats_inference_for_target_only() {
        let p = compile_source(
            "void f(int n, int *m, double *y) {\n\
             #pragma acc parallel loop copyin(m[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[m[i]] = 1.0;\n\
             }",
            "f",
            &infer_opts(),
        )
        .unwrap();
        // `y` is scattered through `m`: no annotation, stays replicated.
        let cy = cfg(&p, 0, "y");
        assert!(cy.inferred.is_none());
        assert_eq!(cy.placement, Placement::Replicated);
        // `m` itself is read coalesced: inference distributes it.
        assert!(cfg(&p, 0, "m").inferred.is_some());
    }

    #[test]
    fn broadcast_reads_are_not_annotated() {
        let p = compile_source(
            "void f(int n, double *c, double *y) {\n\
             #pragma acc parallel loop copyin(c[0:4]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = c[0] + c[3];\n\
             }",
            "f",
            &infer_opts(),
        )
        .unwrap();
        assert!(cfg(&p, 0, "c").inferred.is_none());
    }

    #[test]
    fn hand_annotation_wins_over_inference() {
        // Hand window is wider than needed; with inference on, the hand
        // annotation must still be honored verbatim.
        let p = compile_source(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc localaccess(x) stride(1) left(2) right(2)\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             }",
            "f",
            &infer_opts(),
        )
        .unwrap();
        let cx = cfg(&p, 0, "x");
        assert!(!cx.inferred_used);
        assert_eq!(cx.localaccess.as_ref().unwrap().left, ir::Expr::imm_i32(2));
        // Inference still ran and derived the tight window.
        assert_eq!(
            cx.inferred.as_ref().unwrap().left,
            ir::Expr::imm_i32(0)
        );
    }

    #[test]
    fn inference_off_by_default_keeps_replication() {
        let p = compile_source(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let cy = cfg(&p, 0, "y");
        assert_eq!(cy.placement, Placement::Replicated);
        assert!(!cy.inferred_used);
        // ... but the inferred parameters are still recorded for lint.
        assert!(cy.inferred.is_some());
    }

    #[test]
    fn strided_const_reads_get_wide_stride() {
        let p = compile_source(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(x[0:3*n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = x[3*i] + x[3*i + 2];\n\
             }",
            "f",
            &infer_opts(),
        )
        .unwrap();
        let la = cfg(&p, 0, "x").localaccess.clone().unwrap();
        assert_eq!(la.stride, ir::Expr::imm_i32(3));
        assert_eq!(la.left, ir::Expr::imm_i32(0));
        assert_eq!(la.right, ir::Expr::imm_i32(0));
    }

    #[test]
    fn renders_round_trippable_pragma() {
        let locals = vec![
            ("n".to_string(), ir::Ty::I32),
            ("cols".to_string(), ir::Ty::I32),
        ];
        let p = LocalAccessParams {
            stride: ir::Expr::Local(ir::LocalId(1)),
            left: ir::Expr::Local(ir::LocalId(1)),
            right: ir::Expr::imm_i32(0),
        };
        assert_eq!(
            render_annotation("a", &p, &locals),
            "#pragma acc localaccess(a) stride(cols) left(cols)"
        );
        let q = LocalAccessParams {
            stride: ir::Expr::imm_i32(1),
            left: ir::Expr::imm_i32(0),
            right: ir::Expr::imm_i32(1),
        };
        assert_eq!(
            render_annotation("row_ptr", &q, &locals),
            "#pragma acc localaccess(row_ptr) stride(1) right(1)"
        );
    }
}
