//! Host-program generation.
//!
//! "The translator replaces the original loop with the call statement for
//! the kernel function \[and\] generates the CUDA host code which includes
//! the control codes to initialize the devices, to call the kernel
//! functions, and to control the data movement among the distributed
//! memories" (§IV-B). Here the host program is a small op tree the
//! `acc-runtime` executor walks; data movement is delegated to the runtime
//! (§IV-B1) through the `DataEnter`/`DataExit`/`Update` ops.

use acc_kernel_ir as ir;
use acc_minic::directive::DataClauseKind;
use acc_minic::hir::{HostStmt, TypedDataClause, TypedFunction, TypedSection};

use crate::extract::extract_kernel;
use crate::{CompileOptions, CompiledKernel};

/// A resolved array (sub)section in a host op. Ranges are host-evaluated
/// `(start, len)` expressions; `None` = whole array.
#[derive(Debug, Clone)]
pub struct Section {
    pub array: usize,
    pub range: Option<(ir::Expr, ir::Expr)>,
}

/// A compiled data clause.
#[derive(Debug, Clone)]
pub struct CompiledClause {
    pub kind: DataClauseKind,
    pub sections: Vec<Section>,
}

/// One host operation.
#[derive(Debug, Clone)]
pub enum HostOp {
    /// Plain scalar/array statement executed on the (simulated) CPU.
    Plain(ir::Stmt),
    If {
        cond: ir::Expr,
        then_: Vec<HostOp>,
        else_: Vec<HostOp>,
    },
    While {
        cond: ir::Expr,
        body: Vec<HostOp>,
    },
    /// Enter a data region: the runtime allocates/loads per the clauses.
    DataEnter {
        region: usize,
        clauses: Vec<CompiledClause>,
    },
    /// Exit the region opened with the same id: copy-out and free.
    DataExit { region: usize },
    /// Launch compiled kernel `kernels[idx]` as one BSP superstep.
    Launch { kernel: usize },
    /// `#pragma acc update`.
    Update {
        to_host: Vec<Section>,
        to_device: Vec<Section>,
    },
    /// Stop executing the host program.
    Return,
}

fn lower_sections(secs: &[TypedSection]) -> Vec<Section> {
    secs.iter()
        .map(|s| Section {
            array: s.buf.0 as usize,
            range: s.range.clone(),
        })
        .collect()
}

fn lower_clauses(clauses: &[TypedDataClause]) -> Vec<CompiledClause> {
    clauses
        .iter()
        .map(|c| CompiledClause {
            kind: c.kind,
            sections: lower_sections(&c.sections),
        })
        .collect()
}

/// Lower a host statement block, extracting kernels as they are found.
pub fn lower_host(
    body: &[HostStmt],
    f: &TypedFunction,
    options: &CompileOptions,
    kernels: &mut Vec<CompiledKernel>,
) -> Vec<HostOp> {
    let mut region_counter = kernels.len() * 1000; // distinct per call tree
    lower_block(body, f, options, kernels, &mut region_counter)
}

fn lower_block(
    body: &[HostStmt],
    f: &TypedFunction,
    options: &CompileOptions,
    kernels: &mut Vec<CompiledKernel>,
    region_counter: &mut usize,
) -> Vec<HostOp> {
    let mut out = Vec::new();
    for s in body {
        match s {
            HostStmt::Plain(st) => out.push(HostOp::Plain(st.clone())),
            HostStmt::If {
                cond,
                then_,
                else_,
            } => {
                let then_ = lower_block(then_, f, options, kernels, region_counter);
                let else_ = lower_block(else_, f, options, kernels, region_counter);
                out.push(HostOp::If {
                    cond: cond.clone(),
                    then_,
                    else_,
                });
            }
            HostStmt::While { cond, body } => {
                let body = lower_block(body, f, options, kernels, region_counter);
                out.push(HostOp::While {
                    cond: cond.clone(),
                    body,
                });
            }
            HostStmt::DataRegion { clauses, body } => {
                let region = *region_counter;
                *region_counter += 1;
                out.push(HostOp::DataEnter {
                    region,
                    clauses: lower_clauses(clauses),
                });
                out.extend(lower_block(body, f, options, kernels, region_counter));
                out.push(HostOp::DataExit { region });
            }
            HostStmt::ParallelLoop(node) => {
                let ck = extract_kernel(node, f, options);
                let idx = kernels.len();
                kernels.push(ck);
                // Data clauses on the combined directive form an implicit
                // region around the single launch.
                if node.data_clauses.is_empty() {
                    out.push(HostOp::Launch { kernel: idx });
                } else {
                    let region = *region_counter;
                    *region_counter += 1;
                    out.push(HostOp::DataEnter {
                        region,
                        clauses: lower_clauses(&node.data_clauses),
                    });
                    out.push(HostOp::Launch { kernel: idx });
                    out.push(HostOp::DataExit { region });
                }
            }
            HostStmt::Update { host, device } => out.push(HostOp::Update {
                to_host: lower_sections(host),
                to_device: lower_sections(device),
            }),
            HostStmt::Return => out.push(HostOp::Return),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    #[test]
    fn data_region_brackets_launch() {
        let p = compile_source(
            "void f(int n, double *x) {\n\
             #pragma acc data copy(x[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) x[i] = 0.0;\n\
             }\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        assert!(matches!(p.host[0], HostOp::DataEnter { .. }));
        assert!(matches!(p.host[1], HostOp::Launch { kernel: 0 }));
        assert!(matches!(p.host[2], HostOp::DataExit { .. }));
    }

    #[test]
    fn directive_clauses_make_implicit_region() {
        let p = compile_source(
            "void f(int n, double *x) {\n\
             #pragma acc parallel loop copy(x[0:n])\n\
             for (int i = 0; i < n; i++) x[i] = 0.0;\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        assert_eq!(p.host.len(), 3);
        assert!(matches!(p.host[0], HostOp::DataEnter { .. }));
        assert!(matches!(p.host[1], HostOp::Launch { .. }));
        assert!(matches!(p.host[2], HostOp::DataExit { .. }));
    }

    #[test]
    fn launches_inside_host_loop() {
        let p = compile_source(
            "void f(int n, int iters, double *x) {\n\
             #pragma acc data copy(x[0:n])\n\
             {\n\
             int t = 0;\n\
             while (t < iters) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) x[i] = x[i] + 1.0;\n\
             t = t + 1;\n\
             }\n\
             }\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        assert_eq!(p.kernels.len(), 1);
        let HostOp::While { body, .. } = &p.host[2] else {
            panic!("{:?}", p.host)
        };
        assert!(body.iter().any(|op| matches!(op, HostOp::Launch { .. })));
    }

    #[test]
    fn two_loops_two_kernels() {
        let p = compile_source(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) x[i] = 1.0;\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        assert_eq!(p.kernels.len(), 2);
        assert_eq!(p.kernels[0].kernel.name, "f_k0");
        assert_eq!(p.kernels[1].kernel.name, "f_k1");
        assert_eq!(p.n_parallel_loops(), 2);
    }

    #[test]
    fn update_lowered() {
        let p = compile_source(
            "void f(int n, double *x) {\n\
             #pragma acc update host(x[0:n])\n\
             }",
            "f",
            &CompileOptions::proposal(),
        )
        .unwrap();
        let HostOp::Update { to_host, to_device } = &p.host[0] else {
            panic!()
        };
        assert_eq!(to_host.len(), 1);
        assert!(to_device.is_empty());
        assert_eq!(to_host[0].array, 0);
    }
}
