//! `acc-lint`: the static multi-GPU consistency linter.
//!
//! Materializes the per-array verdicts the translator records in
//! [`crate::config::ArrayLint`] — plus a host-side staleness walk — into
//! structured [`Diagnostic`]s with stable codes:
//!
//! * **ACC-W001 overlapping-stores** — a kernel stores thread-dependent
//!   values at overlapping (broadcast or irregular) indices; with the
//!   array on several GPUs the replica reconciliation order decides which
//!   value survives.
//! * **ACC-W002 unannotated-rmw** — a read-modify-write of an array
//!   element at an overlapping index without `reductiontoarray`; per-GPU
//!   partial updates are lost instead of merged.
//! * **ACC-W003 localaccess-range-mismatch** — the declared `localaccess`
//!   window is provably narrower than the per-iteration read range the
//!   interval analysis infers; the data loader will under-allocate.
//! * **ACC-W004 stale-replica-read** — host code reads an array a prior
//!   kernel wrote on the device, with no intervening `update host` or
//!   flushing region exit; the host silently sees pre-kernel data.
//! * **ACC-W005 cross-gpu-race** — the dependence analysis
//!   ([`crate::depend`]) *proved* that distinct iterations write
//!   diverging values to the same element of a distributed array; the
//!   result depends on the partition boundary. Subsumes W001/W002 for
//!   that array.
//! * **ACC-W006 loop-carried-dependence** — the dependence analysis
//!   proved some iteration reads an element another iteration writes;
//!   distributing (or reordering) the loop changes which value is seen.
//!   When the distance analysis bounded the carried distance but the
//!   declared halo is too narrow, the message reports the shortfall.
//! * **ACC-I003 carried-dependence-local** — the distance/direction
//!   analysis *bounded* the carried dependence and the bound fits inside
//!   the declared (or inferred) `localaccess` halo: every carried value
//!   a GPU needs already lands in its halo exchange. The dependence is
//!   real — sequential-semantics users still must opt in — but the
//!   runtime can license a wavefront schedule and double-buffered
//!   overlap instead of refusing to distribute.
//! * **ACC-I001 inferable-annotation** — (only with
//!   `CompileOptions::infer_localaccess`) the whole-program analysis
//!   derived a sound `localaccess` window for an unannotated array; the
//!   diagnostic carries the machine-applyable pragma line.
//! * **ACC-I002 inferable-reduction** — (only with
//!   `CompileOptions::infer_reductions`) every write of an unannotated
//!   array is a uniform read-modify-write; the diagnostic carries the
//!   machine-applyable `reductiontoarray` pragma, and the compiled
//!   program already uses the exact atomic-RMW IR the annotation would
//!   produce.
//!
//! Parse-time `localaccess` validation (`ACC-E001`/`ACC-E002`) lives in
//! the frontend (`acc_minic::directive`); the runtime sanitizer
//! (`SanitizeLevel` in `acc-runtime`) audits these verdicts dynamically.

use std::collections::{BTreeMap, BTreeSet};

use acc_kernel_ir as ir;
use acc_minic::diag::{Diagnostic, Span};
use acc_minic::directive::DataClauseKind;
use acc_minic::hir::{self, HostStmt, TypedDataClause};

use crate::affine::{classify, AccessPattern};
use crate::{extract, range, CompileOptions};

/// Count the store-hazard sites for one buffer of a (remapped) kernel
/// body: `(overlapping-stores, unannotated-rmw)`. A store is hazardous
/// when its index is not thread-disjoint (broadcast or irregular) and its
/// value is thread-dependent; a self-load of the same buffer at the same
/// index makes it an unannotated RMW instead (ACC-W002 subsumes W001).
pub(crate) fn store_hazards(body: &[ir::Stmt], buf: ir::BufId) -> (usize, usize) {
    let assigned = range::assigned_locals(body);
    let mut overlap = 0;
    let mut rmw = 0;
    for s in body {
        s.visit(&mut |s| {
            if let ir::Stmt::Store {
                buf: b, idx, value, ..
            } = s
            {
                if *b != buf
                    || !matches!(
                        classify(idx),
                        AccessPattern::Broadcast | AccessPattern::Irregular
                    )
                {
                    return;
                }
                let mut self_rmw = false;
                value.visit(&mut |e| {
                    if let ir::Expr::Load { buf: lb, idx: lidx } = e {
                        if *lb == buf && **lidx == *idx {
                            self_rmw = true;
                        }
                    }
                });
                if self_rmw {
                    rmw += 1;
                    return;
                }
                let mut variant = false;
                value.visit(&mut |e| match e {
                    ir::Expr::ThreadIdx | ir::Expr::Load { .. } => variant = true,
                    ir::Expr::Local(l) if assigned.contains(l) => variant = true,
                    _ => {}
                });
                if variant {
                    overlap += 1;
                }
            }
        });
    }
    (overlap, rmw)
}

/// Lint one function: extract every kernel (with the given options),
/// materialize the per-array verdicts, and run the host staleness walk.
pub fn lint_function(f: &hir::TypedFunction, options: &CompileOptions) -> Vec<Diagnostic> {
    let mut l = HostLint {
        f,
        options,
        present: Vec::new(),
        stale: BTreeMap::new(),
        emitted: BTreeSet::new(),
        kernel_seen: BTreeSet::new(),
        diags: Vec::new(),
    };
    l.walk_block(&f.body);
    l.diags
}

/// Lint every function of a source file with the full proposal options.
/// `Err` carries frontend diagnostics (the program did not compile).
pub fn lint_source(src: &str) -> Result<Vec<Diagnostic>, Vec<Diagnostic>> {
    lint_source_with(src, &CompileOptions::proposal())
}

/// Like [`lint_source`] but with explicit compile options; the `--infer`
/// mode of `acc-lint` enables `infer_localaccess` here to surface
/// `ACC-I001` inferable-annotation diagnostics.
pub fn lint_source_with(
    src: &str,
    options: &CompileOptions,
) -> Result<Vec<Diagnostic>, Vec<Diagnostic>> {
    let typed = acc_minic::frontend(src)?;
    Ok(typed
        .functions
        .iter()
        .flat_map(|f| lint_function(f, options))
        .collect())
}

struct HostLint<'a> {
    f: &'a hir::TypedFunction,
    options: &'a CompileOptions,
    /// Arrays made device-present by enclosing data regions (a nested
    /// `copy` clause on a present array is a no-op, so it does not flush
    /// at the inner exit).
    present: Vec<BTreeSet<usize>>,
    /// Device-written arrays whose host copy is stale, with the writing
    /// kernel's span and name.
    stale: BTreeMap<usize, (Span, String)>,
    /// `(array, span.start, span.end)` of already-emitted W004s (the
    /// while-body double walk would otherwise duplicate them).
    emitted: BTreeSet<(usize, usize, usize)>,
    /// Kernel spans whose per-array verdict diagnostics were already
    /// emitted — the double walk of host loop bodies (see
    /// [`HostLint::walk_stmt`]) revisits each launch site, but the
    /// dependence verdicts are per-kernel statics and must not repeat.
    kernel_seen: BTreeSet<(usize, usize)>,
    diags: Vec<Diagnostic>,
}

impl HostLint<'_> {
    fn walk_block(&mut self, stmts: &[HostStmt]) {
        for s in stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_stmt(&mut self, s: &HostStmt) {
        match s {
            HostStmt::Plain(stmt) => self.check_host_reads_stmt(stmt),
            HostStmt::If { cond, then_, else_ } => {
                self.check_host_reads_expr(cond);
                let entry = self.stale.clone();
                self.walk_block(then_);
                let after_then = std::mem::replace(&mut self.stale, entry);
                self.walk_block(else_);
                // Either branch may have run: union of staleness.
                self.stale.extend(after_then);
            }
            HostStmt::While { cond, body } => {
                self.check_host_reads_expr(cond);
                // Walk twice so a kernel write late in the body is seen
                // by host reads early in the next iteration; `emitted`
                // dedups the repeated sites.
                let entry = self.stale.clone();
                self.walk_block(body);
                self.check_host_reads_expr(cond);
                self.walk_block(body);
                // The loop may have run zero times.
                self.stale.extend(entry);
            }
            HostStmt::DataRegion { clauses, body } => {
                self.present.push(clause_arrays(clauses));
                self.walk_block(body);
                self.present.pop();
                self.flush_on_exit(clauses);
            }
            HostStmt::ParallelLoop(node) => self.visit_kernel(node),
            HostStmt::Update { host, .. } => {
                for sec in host {
                    self.stale.remove(&(sec.buf.0 as usize));
                }
            }
            HostStmt::Return => {}
        }
    }

    fn visit_kernel(&mut self, node: &hir::ParallelLoopNode) {
        let ck = extract::extract_kernel(node, self.f, self.options);
        let fresh = self.kernel_seen.insert((node.span.start, node.span.end));
        for cfg in &ck.configs {
            let kname = &ck.kernel.name;
            let aname = &cfg.name;
            if !fresh {
                // Revisit from an enclosing host loop's second walk:
                // only the staleness tracking repeats.
                if cfg.mode.writes() {
                    self.stale
                        .insert(cfg.array, (node.span, ck.kernel.name.clone()));
                }
                continue;
            }
            // Definite dependence verdicts first: a proven race subsumes
            // the heuristic overlap counts (W001/W002) for this array.
            let mut race_reported = false;
            if cfg.lint.verdict == crate::depend::DependVerdict::Race
                && cfg.placement == crate::config::Placement::Distributed
            {
                race_reported = true;
                self.diags.push(
                    Diagnostic::warning(
                        node.span,
                        format!(
                            "kernel `{kname}`: cross-GPU race on distributed \
                             `{aname}` — distinct iterations provably write \
                             diverging values to the same element, so the \
                             result depends on the partition boundary"
                        ),
                    )
                    .with_code("ACC-W005"),
                );
            }
            match cfg.lint.verdict {
                crate::depend::DependVerdict::LoopCarried => {
                    self.diags.push(
                        Diagnostic::warning(
                            node.span,
                            format!(
                                "kernel `{kname}`: loop-carried dependence on \
                                 `{aname}` — some iteration reads an element \
                                 another iteration writes; distributed (or even \
                                 reordered) execution changes which value is seen"
                            ),
                        )
                        .with_code("ACC-W006"),
                    );
                }
                crate::depend::DependVerdict::CarriedLocal { distance }
                    if cfg.lint.carried_fits_halo() =>
                {
                    let pragma = cfg
                        .localaccess
                        .as_ref()
                        .map(|la| crate::infer::render_annotation(aname, la, &self.f.locals))
                        .unwrap_or_default();
                    self.diags.push(
                        Diagnostic::warning(
                            node.span,
                            format!(
                                "kernel `{kname}`: loop-carried dependence on \
                                 `{aname}` proved local — carried distance \
                                 {distance} window(s) fits the declared halo \
                                 ({} left, {} right); `{pragma}` licenses a \
                                 wavefront schedule with halo-overlapped \
                                 transfers",
                                cfg.lint.halo_windows.0, cfg.lint.halo_windows.1
                            ),
                        )
                        .with_code("ACC-I003"),
                    );
                }
                crate::depend::DependVerdict::CarriedLocal { distance } => {
                    let shortfall = match distance.halo_need() {
                        Some((need_l, need_r)) => format!(
                            "the declared halo spans only ({} left, {} right) of \
                             the ({need_l} left, {need_r} right) window(s) the \
                             distance needs; widen the halo to prove the \
                             dependence local",
                            cfg.lint.halo_windows.0, cfg.lint.halo_windows.1
                        ),
                        None => "only its direction is known, so no finite halo \
                                 can prove it local"
                            .to_string(),
                    };
                    self.diags.push(
                        Diagnostic::warning(
                            node.span,
                            format!(
                                "kernel `{kname}`: loop-carried dependence on \
                                 `{aname}` with carried distance {distance} \
                                 window(s), but {shortfall}"
                            ),
                        )
                        .with_code("ACC-W006"),
                    );
                }
                _ => {}
            }
            if cfg.lint.unannotated_rmw > 0 && !race_reported {
                self.diags.push(
                    Diagnostic::warning(
                        node.span,
                        format!(
                            "kernel `{kname}`: read-modify-write of `{aname}` at \
                             overlapping indices without `reductiontoarray`; \
                             per-GPU partial updates would be lost \
                             ({} site(s))",
                            cfg.lint.unannotated_rmw
                        ),
                    )
                    .with_code("ACC-W002"),
                );
            }
            if cfg.lint.overlap_stores > 0 && !race_reported {
                self.diags.push(
                    Diagnostic::warning(
                        node.span,
                        format!(
                            "kernel `{kname}`: stores thread-dependent values to \
                             `{aname}` at overlapping indices; replica \
                             reconciliation order decides which value survives \
                             ({} site(s))",
                            cfg.lint.overlap_stores
                        ),
                    )
                    .with_code("ACC-W001"),
                );
            }
            if cfg.lint.window_violations > 0 {
                self.diags.push(
                    Diagnostic::warning(
                        node.span,
                        format!(
                            "kernel `{kname}`: loads of `{aname}` provably escape \
                             the declared localaccess window for every stride \
                             ({} of {} comparable site(s)); the data loader \
                             will under-allocate",
                            cfg.lint.window_violations, cfg.lint.window_checked
                        ),
                    )
                    .with_code("ACC-W003"),
                );
            }
            if self.options.infer_localaccess && cfg.inferred_used {
                let la = cfg.localaccess.as_ref().unwrap();
                let pragma = crate::infer::render_annotation(aname, la, &self.f.locals);
                self.diags.push(
                    Diagnostic::warning(
                        node.span,
                        format!(
                            "kernel `{kname}`: every access of `{aname}` fits a \
                             provable localaccess window; add `{pragma}` to \
                             distribute the array instead of replicating it"
                        ),
                    )
                    .with_code("ACC-I001"),
                );
            }
            if self.options.infer_reductions {
                if let Some(op) = cfg.inferred_reduction {
                    let pragma = crate::infer::render_reduction(aname, op);
                    self.diags.push(
                        Diagnostic::warning(
                            node.span,
                            format!(
                                "kernel `{kname}`: every write of `{aname}` is a \
                                 uniform read-modify-write; add `{pragma}` inside \
                                 the loop to merge per-GPU partials instead of \
                                 racing on replicas"
                            ),
                        )
                        .with_code("ACC-I002"),
                    );
                }
            }
            if cfg.mode.writes() {
                self.stale
                    .insert(cfg.array, (node.span, ck.kernel.name.clone()));
            }
        }
        // A combined directive's data clauses form an implicit region
        // around the single launch: copy/copyout flush at its exit.
        self.flush_on_exit(&node.data_clauses);
    }

    fn flush_on_exit(&mut self, clauses: &[TypedDataClause]) {
        let outer: BTreeSet<usize> = self.present.iter().flatten().copied().collect();
        for c in clauses {
            if matches!(c.kind, DataClauseKind::Copy | DataClauseKind::CopyOut) {
                for sec in &c.sections {
                    let arr = sec.buf.0 as usize;
                    if !outer.contains(&arr) {
                        self.stale.remove(&arr);
                    }
                }
            }
        }
    }

    fn check_host_reads_stmt(&mut self, stmt: &ir::Stmt) {
        let mut reads = Vec::new();
        stmt.visit_exprs(&mut |e| collect_reads(e, &mut reads));
        self.report_stale_reads(&reads);
    }

    fn check_host_reads_expr(&mut self, e: &ir::Expr) {
        let mut reads = Vec::new();
        collect_reads(e, &mut reads);
        self.report_stale_reads(&reads);
    }

    fn report_stale_reads(&mut self, reads: &[usize]) {
        for &arr in reads {
            if let Some((span, kname)) = self.stale.get(&arr).cloned() {
                if self.emitted.insert((arr, span.start, span.end)) {
                    let aname = &self.f.array_params[arr].0;
                    self.diags.push(
                        Diagnostic::warning(
                            span,
                            format!(
                                "host code reads `{aname}` after kernel `{kname}` \
                                 wrote it on the device, with no intervening \
                                 `update host` or flushing region exit; the host \
                                 sees pre-kernel data"
                            ),
                        )
                        .with_code("ACC-W004"),
                    );
                }
            }
        }
    }
}

fn collect_reads(e: &ir::Expr, out: &mut Vec<usize>) {
    e.visit(&mut |e| {
        if let ir::Expr::Load { buf, .. } = e {
            out.push(buf.0 as usize);
        }
    });
}

fn clause_arrays(clauses: &[TypedDataClause]) -> BTreeSet<usize> {
    clauses
        .iter()
        .flat_map(|c| c.sections.iter().map(|s| s.buf.0 as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source(src).expect("source must compile")
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().filter_map(|d| d.code).collect()
    }

    #[test]
    fn w001_fires_on_scatter_of_thread_dependent_values() {
        let d = lint(
            "void f(int n, int *m, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(m[0:n], x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[m[i]] = x[i];\n\
             }",
        );
        assert_eq!(codes(&d), vec!["ACC-W001"], "{d:?}");
        assert!(d[0].message.contains("`y`"), "{}", d[0].message);
    }

    #[test]
    fn w001_quiet_on_thread_invariant_scatter_value() {
        // BFS-style: every GPU that writes an element writes the same value.
        let d = lint(
            "void f(int n, int level, int *m, int *y) {\n\
             #pragma acc parallel loop copyin(m[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[m[i]] = level + 1;\n\
             }",
        );
        assert!(codes(&d).is_empty(), "{d:?}");
    }

    #[test]
    fn w002_fires_on_unannotated_rmw_and_suppresses_w001() {
        let d = lint(
            "void f(int n, int *m, double *v, double *e) {\n\
             #pragma acc parallel loop copyin(m[0:n], v[0:n]) copy(e[0:8])\n\
             for (int i = 0; i < n; i++) e[m[i]] = e[m[i]] + v[i];\n\
             }",
        );
        assert_eq!(codes(&d), vec!["ACC-W002"], "{d:?}");
    }

    #[test]
    fn w002_quiet_with_reductiontoarray() {
        let d = lint(
            "void f(int n, int *m, double *v, double *e) {\n\
             #pragma acc parallel loop copyin(m[0:n], v[0:n]) copy(e[0:8])\n\
             for (int i = 0; i < n; i++) {\n\
             #pragma acc reductiontoarray(+: e[8])\n\
             e[m[i]] += v[i];\n\
             }\n\
             }",
        );
        assert!(codes(&d).is_empty(), "{d:?}");
    }

    #[test]
    fn w005_fires_on_distributed_race_and_suppresses_w001() {
        let src = "void f(int n, double *v, double *y) {\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop copyin(v[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) { y[i] = v[i]; y[0] = v[i]; }\n\
             }";
        let d = lint(src);
        assert_eq!(codes(&d), vec!["ACC-W005"], "{d:?}");
        assert!(d[0].message.contains("`y`"), "{}", d[0].message);
    }

    #[test]
    fn i003_downgrades_w006_when_distance_fits_halo() {
        // Carried distance exactly 1 window; the declared left(1) halo
        // covers it, so the dependence is proved local (ACC-I003).
        let d = lint(
            "void f(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1) left(1)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 1; i < n; i++) y[i] = y[i - 1] + 1.0;\n\
             }",
        );
        assert_eq!(codes(&d), vec!["ACC-I003"], "{d:?}");
        assert!(d[0].message.contains("`y`"), "{}", d[0].message);
        assert!(d[0].message.contains("distance 1"), "{}", d[0].message);
        assert!(d[0].message.contains("wavefront"), "{}", d[0].message);
    }

    #[test]
    fn infer_surfaces_halo_pragma_for_carried_local_array() {
        // Unannotated first-order recurrence: inference derives the
        // `left(1)` window, the distance analysis proves the carried
        // dependence fits it, and both the I001 and I003 diagnostics
        // carry the machine-applyable pragma.
        let src = "void f(int n, double *y) {\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 1; i < n; i++) y[i] = y[i - 1] + 1.0;\n\
             }";
        let opts = CompileOptions {
            infer_localaccess: true,
            optimize_kernels: false,
            ..CompileOptions::proposal()
        };
        let d = lint_source_with(src, &opts).unwrap();
        let c = codes(&d);
        assert!(c.contains(&"ACC-I001"), "{d:?}");
        assert!(c.contains(&"ACC-I003"), "{d:?}");
        let i003 = d.iter().find(|d| d.code == Some("ACC-I003")).unwrap();
        assert!(
            i003.message
                .contains("#pragma acc localaccess(y) stride(1) left(1)"),
            "{}",
            i003.message
        );
    }

    #[test]
    fn w006_reports_shortfall_when_halo_too_narrow() {
        // Distance 2 but only one halo window declared: still W006, with
        // the shortfall spelled out (plus W003: the loads escape the
        // declared window).
        let d = lint(
            "void f(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1) left(1)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 2; i < n; i++) y[i] = y[i - 2] + 1.0;\n\
             }",
        );
        let c = codes(&d);
        assert!(c.contains(&"ACC-W006"), "{d:?}");
        assert!(c.contains(&"ACC-W003"), "{d:?}");
        let w006 = d.iter().find(|d| d.code == Some("ACC-W006")).unwrap();
        assert!(w006.message.contains("distance 2"), "{}", w006.message);
        assert!(
            w006.message.contains("(2 left, 0 right)"),
            "{}",
            w006.message
        );
    }

    #[test]
    fn w006_unchanged_for_unbounded_carried_dependence() {
        // Broadcast read of a written element: no distance bound exists,
        // so the classic W006 message stays.
        let d = lint(
            "void f(int n, double *y) {\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = 1; i < n; i++) y[i] = y[0] + 1.0;\n\
             }",
        );
        let c = codes(&d);
        assert!(c.contains(&"ACC-W006"), "{d:?}");
        let w006 = d.iter().find(|d| d.code == Some("ACC-W006")).unwrap();
        assert!(
            w006.message.contains("distributed (or even"),
            "{}",
            w006.message
        );
    }

    #[test]
    fn i002_fires_only_with_reduction_inference_enabled() {
        let src = "void f(int n, int *m, double *v, double *e) {\n\
             #pragma acc parallel loop copyin(m[0:n], v[0:n]) copy(e[0:8])\n\
             for (int i = 0; i < n; i++) e[m[i]] = e[m[i]] + v[i];\n\
             }";
        // Default options: the heuristic W002 nudge.
        let d = lint(src);
        assert_eq!(codes(&d), vec!["ACC-W002"], "{d:?}");
        // With inference on, the rewrite is applied and announced instead.
        let mut opts = CompileOptions::proposal();
        opts.infer_reductions = true;
        let d = lint_source_with(src, &opts).unwrap();
        assert_eq!(codes(&d), vec!["ACC-I002"], "{d:?}");
        assert!(
            d[0].message.contains("#pragma acc reductiontoarray(+: e)"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn w003_fires_on_window_narrower_than_reads() {
        let d = lint(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc localaccess(x) stride(1)\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n - 1; i++) y[i] = x[i] + x[i + 1];\n\
             }",
        );
        assert_eq!(codes(&d), vec!["ACC-W003"], "{d:?}");
        assert!(d[0].message.contains("`x`"), "{}", d[0].message);
    }

    #[test]
    fn w003_quiet_with_sufficient_halo() {
        let d = lint(
            "void f(int n, double *x, double *y) {\n\
             #pragma acc localaccess(x) stride(1) right(1)\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n - 1; i++) y[i] = x[i] + x[i + 1];\n\
             }",
        );
        assert!(codes(&d).is_empty(), "{d:?}");
    }

    #[test]
    fn w004_fires_on_host_read_of_device_written_array() {
        let d = lint(
            "void f(int n, double *x, double *y) {\n\
             double t;\n\
             #pragma acc data copyin(x[0:n]) copy(y[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             t = y[0];\n\
             }\n\
             }",
        );
        assert_eq!(codes(&d), vec!["ACC-W004"], "{d:?}");
        assert!(d[0].message.contains("`y`"), "{}", d[0].message);
    }

    #[test]
    fn w004_quiet_with_update_host_or_after_region_exit() {
        let d = lint(
            "void f(int n, double *x, double *y) {\n\
             double t;\n\
             double u;\n\
             #pragma acc data copyin(x[0:n]) copy(y[0:n])\n\
             {\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             #pragma acc update host(y[0:n])\n\
             t = y[0];\n\
             }\n\
             u = y[1];\n\
             }",
        );
        assert!(codes(&d).is_empty(), "{d:?}");
    }

    #[test]
    fn w004_fires_across_host_loop_iterations() {
        // The read precedes the kernel textually but follows it in
        // iteration order; the implicit flush never happens because the
        // outer data region keeps `y` present.
        let d = lint(
            "void f(int n, int iters, double *x, double *y) {\n\
             int t;\n\
             double acc;\n\
             t = 0;\n\
             acc = 0.0;\n\
             #pragma acc data copy(y[0:n]) copyin(x[0:n])\n\
             {\n\
             while (t < iters) {\n\
             acc = acc + y[0];\n\
             #pragma acc parallel loop\n\
             for (int i = 0; i < n; i++) y[i] = y[i] + x[i];\n\
             t = t + 1;\n\
             }\n\
             }\n\
             }",
        );
        assert_eq!(codes(&d), vec!["ACC-W004"], "{d:?}");
    }

    #[test]
    fn implicit_region_flush_clears_staleness() {
        // Combined-directive copy clause flushes at the implicit region
        // exit: the later host read is fine.
        let d = lint(
            "void f(int n, double *x, double *y) {\n\
             double t;\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = x[i];\n\
             t = y[0];\n\
             }",
        );
        assert!(codes(&d).is_empty(), "{d:?}");
    }

    #[test]
    fn i001_fires_only_with_inference_enabled() {
        let src = "void f(int n, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = x[i] + x[i + 1];\n\
             }";
        // Default options: inference is not consumed, no I001.
        assert!(codes(&lint(src)).is_empty());
        let opts = CompileOptions {
            infer_localaccess: true,
            optimize_kernels: false,
            ..CompileOptions::proposal()
        };
        let d = lint_source_with(src, &opts).unwrap();
        assert_eq!(codes(&d), vec!["ACC-I001", "ACC-I001"], "{d:?}");
        let msg_x = d.iter().find(|d| d.message.contains("`x`")).unwrap();
        assert!(
            msg_x
                .message
                .contains("#pragma acc localaccess(x) stride(1) right(1)"),
            "{}",
            msg_x.message
        );
    }

    #[test]
    fn i001_quiet_when_annotation_present() {
        let src = "void f(int n, double *x, double *y) {\n\
             #pragma acc localaccess(x) stride(1) right(1)\n\
             #pragma acc localaccess(y) stride(1)\n\
             #pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[i] = x[i] + x[i + 1];\n\
             }";
        let opts = CompileOptions {
            infer_localaccess: true,
            optimize_kernels: false,
            ..CompileOptions::proposal()
        };
        let d = lint_source_with(src, &opts).unwrap();
        assert!(codes(&d).is_empty(), "{d:?}");
    }

    #[test]
    fn diagnostics_carry_spans_and_render() {
        let src = "void f(int n, int *m, double *x, double *y) {\n\
             #pragma acc parallel loop copyin(m[0:n], x[0:n]) copy(y[0:n])\n\
             for (int i = 0; i < n; i++) y[m[i]] = x[i];\n\
             }";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        let rendered = d[0].render(src);
        assert!(rendered.starts_with("warning[ACC-W001] at 2:"), "{rendered}");
    }
}
