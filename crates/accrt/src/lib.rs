//! # acc-runtime — the multi-GPU OpenACC runtime system
//!
//! The paper's runtime (§IV-A, Fig. 5) has two components that this crate
//! implements against the simulated machine of `acc-gpusim`:
//!
//! * the **data loader** (§IV-C, [`loader`]) — called at data-region
//!   entry/exit, on `update` directives, and before every kernel launch;
//!   it materialises each array on each GPU under the placement policy
//!   the translator chose (replica-based by default, distribution-based
//!   for `localaccess` arrays) and skips reloads when the access pattern
//!   is unchanged between kernel calls;
//! * the **inter-GPU communication manager** (§IV-D, [`comm`]) — called
//!   just after every kernel wave; it reconciles replicated arrays using
//!   the two-level dirty-bit maps, replays buffered write-miss records on
//!   the owning GPUs, and performs the final inter-GPU level of the
//!   hierarchical reduction for `reductiontoarray` destinations.
//!
//! Execution follows the BSP model of §III-A: the iteration space is
//! equally divided, every GPU runs its sub-range concurrently (one OS
//! thread per simulated GPU), then communication and a global barrier.
//!
//! Time is simulated: kernel durations come from the interpreter's work
//! counters through the device models, transfer durations from the PCIe
//! bus model; the [`Profiler`] splits the total into the KERNELS /
//! CPU-GPU / GPU-GPU categories of the paper's Fig. 8.

pub mod comm;
pub mod engine;
pub mod exec;
pub mod loader;
pub mod mapper;
pub mod profiler;
pub mod ranges;
pub mod state;

use acc_compiler::CompiledProgram;
use acc_gpusim::{Machine, MemError};
use acc_kernel_ir::{Buffer, ExecError, Value};

pub use acc_obs::{Trace, TraceLevel};
pub use engine::{CompiledKernel, Engine, EngineStats};
pub use profiler::{Profiler, TimeBreakdown};
pub use ranges::RangeSet;

/// The names most programs driving the runtime need:
/// `use acc_runtime::prelude::*;`.
pub mod prelude {
    pub use crate::{
        run_program, CompiledKernel, Engine, EngineStats, Exec, ExecConfig, ExecMode, RunError,
        RunReport, SanitizeLevel, Schedule, Trace, TraceLevel,
    };
}

/// How to execute the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Offload parallel loops to `ngpus` simulated GPUs (the proposal and
    /// the single-GPU OpenACC/CUDA baselines).
    Gpu,
    /// Run parallel loops as OpenMP-style CPU parallel regions (the
    /// paper's baseline). Data directives become no-ops.
    CpuParallel,
}

/// How much runtime auditing of the compiler's multi-GPU consistency
/// verdicts to perform during GPU-mode interpretation.
///
/// The sanitizer is a pure observer: it never changes buffers, simulated
/// times or work counters. Violations surface as
/// [`RunError::SanitizeViolation`] and as typed `acc-obs` events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SanitizeLevel {
    /// No runtime auditing (the default).
    #[default]
    Off,
    /// Audit elided-miss-check stores: every unchecked store to a
    /// distributed array must land in the executing GPU's owned
    /// partition, or the static write-locality proof was unsound.
    Stores,
    /// `Stores` plus load auditing: every read of a distributed array
    /// must stay inside the thread's declared `localaccess` window
    /// `[stride*i - left, stride*(i+1) + right)`. Catches annotations
    /// that under-declare the true read footprint — which run silently
    /// (but wrong on >1 GPU) because small GPU counts keep the whole
    /// array resident.
    Full,
}

impl SanitizeLevel {
    /// Whether elided-store auditing is on.
    pub fn checks_stores(self) -> bool {
        !matches!(self, SanitizeLevel::Off)
    }

    /// Whether `localaccess`-window load auditing is on.
    pub fn checks_loads(self) -> bool {
        matches!(self, SanitizeLevel::Full)
    }
}

/// How the task mapper divides each parallel loop's iteration space
/// among the GPUs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Schedule {
    /// The paper's equal static division (§IV-B2). The default; runs are
    /// bit-identical to a runtime without the mapper.
    #[default]
    Equal,
    /// Counter-feedback proportional splitting: each kernel's previous
    /// launch supplies measured per-GPU cost (interpreter work counters
    /// priced through the device model), and the next launch's ranges
    /// are cut so every GPU gets an equal share of the predicted cost.
    /// The first launch of a kernel falls back to the equal division.
    /// See `docs/scheduling.md`.
    CostModel,
    /// Pipelined wavefront over the equal static division: for launches
    /// whose every loop-carried dependence the compiler proved *local*
    /// (`CarriedLocal` with a distance inside the declared halo), the
    /// GPUs run in partition order, each fed its left halo with the rows
    /// its predecessors just wrote. Functional results stay bit-identical
    /// to the sequential loop; launches the proof does not license fall
    /// back to the parallel equal division. See `docs/analysis.md`.
    Wavefront,
}

/// Runtime configuration.
///
/// Construct with [`ExecConfig::gpus`] or [`ExecConfig::openmp`] and
/// refine with the builder methods:
///
/// ```
/// use acc_runtime::prelude::*;
///
/// let cfg = ExecConfig::gpus(3)
///     .chunk_bytes(1 << 20)
///     .loader_reuse(false)
///     .tracing(TraceLevel::Spans);
/// ```
///
/// The struct is `#[non_exhaustive]`: fields stay readable, but new
/// options can be added without breaking downstream constructors.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ExecConfig {
    /// Number of GPUs to use (must not exceed the machine's).
    pub ngpus: usize,
    pub mode: ExecMode,
    /// Second-level dirty-bit chunk size in bytes (paper default: 1 MB).
    pub chunk_bytes: usize,
    /// Write-miss buffer capacity, in records, per GPU per launch.
    pub miss_capacity: usize,
    /// Ablation switch: when false, the data loader reloads every
    /// required range before every launch instead of skipping ranges that
    /// are already resident (paper §IV-C: "the data loader can avoid
    /// additional data movement ... when the read memory access pattern
    /// in the next kernel call is the same").
    pub loader_reuse: bool,
    /// How much structured-event detail the run retains in
    /// [`RunReport::trace`]. Phase totals and counters are accumulated
    /// regardless.
    pub tracing: TraceLevel,
    /// Run the functional half of the communication phase (replica-run
    /// application, miss replay, reduction merge) on one host thread per
    /// destination GPU instead of serially. Simulated times, transfer
    /// events and array contents are identical either way — the serial
    /// path exists as the reference for equivalence tests and as an
    /// ablation switch.
    pub parallel_comm: bool,
    /// Runtime auditing of static elision verdicts and `localaccess`
    /// windows (GPU mode only; the OpenMP baseline has no partitions to
    /// audit against).
    pub sanitize: SanitizeLevel,
    /// How the task mapper divides each parallel loop among the GPUs.
    pub schedule: Schedule,
    /// Consume the compiler's static inter-launch comm-elision facts
    /// ([`acc_compiler::CommPlan`]): replica syncs the whole-program
    /// dataflow analysis proved unobservable are skipped, their dirty
    /// bits kept accumulating, and the reconciliation deferred to the
    /// next operation that can actually observe the array (a host flush,
    /// an `update`, or a loader fill). Off by default. Under
    /// [`SanitizeLevel::Full`] elision is re-armed: the sync runs
    /// normally and the accumulated dirty runs are first audited against
    /// the fact's claimed per-GPU partitions
    /// ([`RunError::ElisionUnsound`] on escape), so a Full-sanitize run
    /// is bit-identical to one with elision off.
    pub comm_elision: bool,
    /// Which kernel interpreter executes launch bodies. Simulated times,
    /// counters, and array contents are bit-identical across engines (the
    /// register VM prices blocks from the pre-optimization IR); this only
    /// trades host wall time. The per-program compiler option
    /// `optimize_kernels` also opts launches of that program into the
    /// register VM regardless of this knob.
    pub kernel_vm: KernelVm,
    /// Double-buffered halo overlap: loader-phase peer halo fills of
    /// arrays the compiler's [`acc_compiler::OverlapPlan`] proved safe
    /// (distributed, read-only this launch, every verdict race-free) are
    /// priced concurrently with the same wave's kernel phase instead of
    /// extending the synchronous loader critical path. Purely a pricing
    /// change: the functional copies still happen in program order, so
    /// array contents are unconditionally identical with the knob on or
    /// off. Off by default. Under [`SanitizeLevel::Full`] the
    /// synchronous path is re-armed, so a Full-sanitize run is
    /// bit-identical (arrays *and* event stream) to one with overlap
    /// off.
    pub overlap: bool,
}

/// Kernel execution engine selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelVm {
    /// The fused stack-bytecode interpreter (reference fast path).
    #[default]
    Bytecode,
    /// The SSA-optimized, register-allocated VM
    /// ([`acc_kernel_ir::regvm`]); kernels it cannot statically type
    /// fall back to bytecode per launch.
    Register,
}

impl ExecConfig {
    /// GPU execution on `n` GPUs with paper defaults.
    pub fn gpus(n: usize) -> ExecConfig {
        ExecConfig {
            ngpus: n,
            mode: ExecMode::Gpu,
            chunk_bytes: acc_kernel_ir::dirty::DEFAULT_CHUNK_BYTES,
            miss_capacity: 1 << 22,
            loader_reuse: true,
            tracing: TraceLevel::Off,
            parallel_comm: true,
            sanitize: SanitizeLevel::Off,
            schedule: Schedule::Equal,
            comm_elision: false,
            kernel_vm: KernelVm::Bytecode,
            overlap: false,
        }
    }

    /// The OpenMP baseline.
    pub fn openmp() -> ExecConfig {
        ExecConfig {
            ngpus: 0,
            mode: ExecMode::CpuParallel,
            ..ExecConfig::gpus(0)
        }
    }

    /// Set the second-level dirty-bit chunk size in bytes.
    pub fn chunk_bytes(mut self, bytes: usize) -> ExecConfig {
        self.chunk_bytes = bytes;
        self
    }

    /// Set the per-GPU write-miss buffer capacity, in records.
    pub fn miss_capacity(mut self, records: usize) -> ExecConfig {
        self.miss_capacity = records;
        self
    }

    /// Enable or disable loader reuse of resident ranges (ablation).
    pub fn loader_reuse(mut self, reuse: bool) -> ExecConfig {
        self.loader_reuse = reuse;
        self
    }

    /// Set the event-retention level for [`RunReport::trace`].
    pub fn tracing(mut self, level: TraceLevel) -> ExecConfig {
        self.tracing = level;
        self
    }

    /// Enable or disable host-parallel execution of the communication
    /// phase's functional work (simulated results are unaffected).
    pub fn parallel_comm(mut self, parallel: bool) -> ExecConfig {
        self.parallel_comm = parallel;
        self
    }

    /// Set the runtime-sanitizer level.
    pub fn sanitize(mut self, level: SanitizeLevel) -> ExecConfig {
        self.sanitize = level;
        self
    }

    /// Set the task-mapper schedule.
    pub fn schedule(mut self, schedule: Schedule) -> ExecConfig {
        self.schedule = schedule;
        self
    }

    /// Enable or disable static inter-launch communication elision.
    pub fn comm_elision(mut self, on: bool) -> ExecConfig {
        self.comm_elision = on;
        self
    }

    /// Select the kernel execution engine.
    pub fn kernel_vm(mut self, vm: KernelVm) -> ExecConfig {
        self.kernel_vm = vm;
        self
    }

    /// Enable or disable double-buffered halo-fill/compute overlap.
    pub fn overlap(mut self, on: bool) -> ExecConfig {
        self.overlap = on;
        self
    }
}

/// Runtime errors.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure modes can be reported without a breaking change.
///
/// Every variant carries a stable diagnostic code (`ACC-RNNN`,
/// [`RunError::code`]) in the same family as `acc-lint`'s `ACC-E/W/I`
/// scheme and `acc-serve`'s `ACC-SNNN` — tools print `[code] message`
/// so scripts can match on the code while the prose stays free to
/// improve.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunError {
    /// Source-to-IR compilation failed ([`Engine::compile`]).
    Compile(String),
    /// Kernel or host interpretation failed.
    Exec(ExecError),
    /// Device memory error (including out-of-memory).
    Mem(MemError),
    /// Wrong number or type of inputs.
    BadInputs(String),
    /// A `localaccess` parameter evaluated to an invalid value.
    BadLocalAccess(String),
    /// A buffered write-miss record targets an element no GPU's window
    /// covers.
    MissOutsideCoverage { array: String, idx: i64 },
    /// `present` clause for an array that is not device-resident.
    NotPresent(String),
    /// More GPUs requested than the machine has.
    TooManyGpus { requested: usize, available: usize },
    /// The runtime sanitizer observed an access that contradicts the
    /// static analysis (an elided store left its owner partition) or the
    /// program's annotations (a load left its `localaccess` window).
    /// Carries the first violation; `hits` counts all of them.
    SanitizeViolation {
        array: String,
        gpu: usize,
        record: acc_kernel_ir::SanitizeRecord,
        hits: u64,
    },
    /// The `SanitizeLevel::Full` comm-elision audit caught a dirty run
    /// outside the partition the elision fact claimed for its GPU — the
    /// static inter-launch dataflow proof was unsound (or a fact was
    /// fault-injected), and skipping the sync would have left observably
    /// stale replicas.
    ElisionUnsound {
        array: String,
        gpu: usize,
        /// The escaping dirty element run `[lo, hi)`.
        run: (i64, i64),
        /// The per-GPU partition the fact claimed all writes stay in.
        claim: (i64, i64),
    },
    /// A runtime premise of a static dependence proof does not hold: the
    /// compiler proved a kernel's indirect accesses disjoint on the
    /// condition that the bound array (e.g. a CSR `row_ptr`) is
    /// elementwise non-decreasing, and the actual input is not. Running
    /// anyway could silently race, so the launch is refused.
    PremiseViolated {
        array: String,
        /// First offending element index `i` with `a[i] > a[i+1]`.
        idx: usize,
    },
    /// The `SanitizeLevel::Full` carried-distance audit caught a load
    /// outside the window the compiler's `CarriedLocal { distance }`
    /// verdict claimed: the proved distance interval (or a fault-injected
    /// one) under-states the dependence, so the wavefront/overlap
    /// decisions it licensed are unsound. The launch is refused before
    /// any GPU's writes are synchronised, so no corrupted array escapes.
    CarriedDistanceViolated {
        array: String,
        gpu: usize,
        /// The offending access, with the claimed per-thread window.
        record: acc_kernel_ir::SanitizeRecord,
        /// Total carried-claim violations this launch (uncapped).
        hits: u64,
    },
}

impl RunError {
    /// The stable diagnostic code for this error (`ACC-RNNN`).
    pub fn code(&self) -> &'static str {
        match self {
            RunError::Compile(_) => "ACC-R010",
            RunError::Exec(_) => "ACC-R001",
            RunError::Mem(_) => "ACC-R002",
            RunError::BadInputs(_) => "ACC-R003",
            RunError::BadLocalAccess(_) => "ACC-R004",
            RunError::MissOutsideCoverage { .. } => "ACC-R005",
            RunError::NotPresent(_) => "ACC-R006",
            RunError::TooManyGpus { .. } => "ACC-R007",
            RunError::SanitizeViolation { .. } => "ACC-R008",
            RunError::ElisionUnsound { .. } => "ACC-R009",
            RunError::PremiseViolated { .. } => "ACC-R011",
            RunError::CarriedDistanceViolated { .. } => "ACC-R012",
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Compile(m) => write!(f, "compile error: {m}"),
            RunError::Exec(e) => write!(f, "execution error: {e}"),
            RunError::Mem(e) => write!(f, "device memory error: {e}"),
            RunError::BadInputs(m) => write!(f, "bad inputs: {m}"),
            RunError::BadLocalAccess(m) => write!(f, "invalid localaccess: {m}"),
            RunError::MissOutsideCoverage { array, idx } => write!(
                f,
                "write-miss to `{array}`[{idx}] is outside every GPU's resident window"
            ),
            RunError::NotPresent(a) => write!(f, "present({a}) but `{a}` is not on the device"),
            RunError::TooManyGpus {
                requested,
                available,
            } => write!(f, "requested {requested} GPUs, machine has {available}"),
            RunError::SanitizeViolation {
                array,
                gpu,
                record,
                hits,
            } => {
                let what = match record.kind {
                    acc_kernel_ir::SanitizeKind::LoadOutsideWindow => {
                        "read outside its declared localaccess window"
                    }
                    acc_kernel_ir::SanitizeKind::StoreOutsideOwn => {
                        "unchecked store outside the owner partition"
                    }
                    // Carried escapes surface as `CarriedDistanceViolated`;
                    // this arm only renders if a caller builds the generic
                    // variant by hand.
                    acc_kernel_ir::SanitizeKind::CarriedDistanceEscape => {
                        "load outside the claimed carried-distance window"
                    }
                };
                write!(
                    f,
                    "sanitizer: {what}: `{array}`[{}] by thread {} on gpu {gpu}, allowed [{}, {}) ({hits} violation{} total)",
                    record.idx,
                    record.tid,
                    record.window.0,
                    record.window.1,
                    if *hits == 1 { "" } else { "s" }
                )
            }
            RunError::ElisionUnsound {
                array,
                gpu,
                run,
                claim,
            } => write!(
                f,
                "comm-elision audit: `{array}` gpu {gpu} dirtied [{}, {}) outside its claimed partition [{}, {})",
                run.0, run.1, claim.0, claim.1
            ),
            RunError::PremiseViolated { array, idx } => write!(
                f,
                "dependence premise violated: `{array}` must be elementwise non-decreasing \
                 (monotone-window disjointness proof), but `{array}`[{idx}] > `{array}`[{}]",
                idx + 1
            ),
            RunError::CarriedDistanceViolated {
                array,
                gpu,
                record,
                hits,
            } => write!(
                f,
                "carried-distance audit: `{array}`[{}] loaded by thread {} on gpu {gpu} escapes \
                 the claimed carried window [{}, {}) ({hits} violation{} total) — the \
                 `CarriedLocal` distance is mislabeled",
                record.idx,
                record.tid,
                record.window.0,
                record.window.1,
                if *hits == 1 { "" } else { "s" }
            ),
        }
    }
}
impl std::error::Error for RunError {}

impl From<ExecError> for RunError {
    fn from(e: ExecError) -> RunError {
        RunError::Exec(e)
    }
}
impl From<MemError> for RunError {
    fn from(e: MemError) -> RunError {
        RunError::Mem(e)
    }
}

/// Per-GPU peak memory report (Fig. 9): user arrays vs runtime metadata.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuMemReport {
    pub user_peak: u64,
    pub system_peak: u64,
}

/// The outcome of one program run.
#[derive(Debug)]
pub struct RunReport {
    /// Final host arrays (same order as the program's array parameters).
    pub arrays: Vec<Buffer>,
    /// Final host scalar frame (useful for scalar outputs/diagnostics).
    pub locals: Vec<Value>,
    /// Simulated-time breakdown and transfer/work statistics (derived
    /// from the structured event stream in [`RunReport::trace`]).
    pub profile: Profiler,
    /// Per-GPU peak device-memory usage.
    pub mem: Vec<GpuMemReport>,
    /// The structured event stream (detail set by
    /// [`ExecConfig::tracing`]); export with
    /// [`Trace::chrome_trace`] / [`Trace::summary_table`].
    pub trace: Trace,
}

impl RunReport {
    /// Fetch a final array by program index.
    pub fn array(&self, idx: usize) -> &Buffer {
        &self.arrays[idx]
    }

    /// Total simulated time (Fig. 7 measures the parallel-region part).
    pub fn total_time(&self) -> f64 {
        self.profile.time.total()
    }
}

/// Run a compiled program on a machine.
///
/// `scalars` are the by-value inputs (program scalar-parameter order),
/// `arrays` the host arrays (program array-parameter order; returned,
/// possibly modified, in the report). The machine is reset first.
///
/// This is the historical one-shot entry point: every call gets a fresh
/// scratch pool and a fresh mapper history, so repeated calls are
/// independent and bit-identical. A long-running service should hold an
/// [`Engine`] instead, which shares the compilation cache, the scratch
/// pools and (under [`Schedule::CostModel`]) the mapper history across
/// jobs — see [`Engine::launch`].
pub fn run_program(
    machine: &mut Machine,
    cfg: &ExecConfig,
    prog: &CompiledProgram,
    scalars: Vec<Value>,
    arrays: Vec<Buffer>,
) -> Result<RunReport, RunError> {
    let mut pool = comm::StagingPool::default();
    run_with(
        machine,
        cfg,
        prog,
        scalars,
        arrays,
        mapper::TaskMapper::shared(prog.kernels.len()),
        &mut pool,
    )
}

/// The shared core under [`run_program`] and [`Engine::launch`]: input
/// validation, machine reset, then one [`exec::Run`] with the mapper
/// history and scratch pool the caller lends.
pub(crate) fn run_with(
    machine: &mut Machine,
    cfg: &ExecConfig,
    prog: &CompiledProgram,
    scalars: Vec<Value>,
    arrays: Vec<Buffer>,
    mapper: mapper::SharedMapper,
    pool: &mut comm::StagingPool,
) -> Result<RunReport, RunError> {
    if cfg.mode == ExecMode::Gpu && (cfg.ngpus == 0 || cfg.ngpus > machine.n_gpus()) {
        return Err(RunError::TooManyGpus {
            requested: cfg.ngpus,
            available: machine.n_gpus(),
        });
    }
    if scalars.len() != prog.scalar_params.len() {
        return Err(RunError::BadInputs(format!(
            "expected {} scalar inputs, got {}",
            prog.scalar_params.len(),
            scalars.len()
        )));
    }
    if arrays.len() != prog.array_params.len() {
        return Err(RunError::BadInputs(format!(
            "expected {} array inputs, got {}",
            prog.array_params.len(),
            arrays.len()
        )));
    }
    for (v, (name, ty)) in scalars.iter().zip(&prog.scalar_params) {
        if v.ty() != *ty {
            return Err(RunError::BadInputs(format!(
                "scalar `{name}` expects {ty}, got {}",
                v.ty()
            )));
        }
    }
    for (b, (name, ty)) in arrays.iter().zip(&prog.array_params) {
        if b.ty() != *ty {
            return Err(RunError::BadInputs(format!(
                "array `{name}` expects {ty} elements, got {}",
                b.ty()
            )));
        }
    }

    // Dependence-proof premises: a kernel was proved race-free on the
    // condition that these (i32) bound arrays are elementwise
    // non-decreasing. Auditing the inputs costs one linear scan per
    // premise array, so it rides the sanitizer switch; `Off` trusts the
    // caller the same way it trusts the elision facts.
    if cfg.mode == ExecMode::Gpu && cfg.sanitize.checks_stores() {
        for &arr in &prog.monotone_premises {
            let (name, _) = &prog.array_params[arr];
            let vals = arrays[arr].to_i32_vec();
            if let Some(idx) = vals.windows(2).position(|w| w[0] > w[1]) {
                return Err(RunError::PremiseViolated {
                    array: name.clone(),
                    idx,
                });
            }
        }
    }

    machine.reset();
    // At `Spans` level the bus keeps its own transfer journal, so tests
    // can cross-check the recorder's spans against what the bus actually
    // scheduled.
    machine.bus.set_journal(cfg.tracing.keeps_spans());
    let run = exec::Run::new(machine, cfg, prog, scalars, arrays, mapper, pool);
    run.run()
}

/// Thin compatibility wrapper preserving the consuming one-shot shape
/// (`Exec::new(...).run(...)`) on top of [`run_program`].
///
/// Kept so code written against the pre-[`Engine`] API keeps compiling
/// and stays bit-identical; new code should hold an [`Engine`] (for
/// compile-once/run-many and pooling) or call [`run_program`] directly.
pub struct Exec<'m> {
    machine: &'m mut Machine,
    cfg: ExecConfig,
}

impl<'m> Exec<'m> {
    /// Bind a machine and a runtime configuration.
    pub fn new(machine: &'m mut Machine, cfg: ExecConfig) -> Exec<'m> {
        Exec { machine, cfg }
    }

    /// Run one program, consuming the executor. Exactly equivalent to
    /// [`run_program`] with the same arguments.
    pub fn run(
        self,
        prog: &CompiledProgram,
        scalars: Vec<Value>,
        arrays: Vec<Buffer>,
    ) -> Result<RunReport, RunError> {
        run_program(self.machine, &self.cfg, prog, scalars, arrays)
    }
}
