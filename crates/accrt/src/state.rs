//! Device-residency state the data loader maintains per array.
//!
//! OpenACC keeps two logical copies of every array inside a data region:
//! the host copy (always directly accessible to host code) and the device
//! copy (here: spread or replicated over the simulated GPUs). The loader
//! tracks, per GPU, which global element ranges of the device copy are
//! materialised and current (`valid`); the communication manager updates
//! these sets after every kernel wave. `update` directives and region-exit
//! copy-outs move data between the two logical copies explicitly.

use acc_gpusim::BufferHandle;
use acc_kernel_ir::{DirtyMap, Ty};

use crate::ranges::RangeSet;

/// Per-GPU residency state of one array.
#[derive(Debug, Default)]
pub(crate) struct GpuArr {
    /// Device allocation holding `window`, if materialised.
    pub handle: Option<BufferHandle>,
    /// Global element range the allocation covers `[lo, hi)`.
    pub window: (i64, i64),
    /// Ranges whose device-copy content this GPU holds (coherence
    /// metadata: a valid range can serve as a transfer source).
    pub valid: RangeSet,
    /// Two-level dirty bits for replicated arrays the current kernel
    /// writes (lives host-side; its footprint is charged to the GPU via
    /// `dirty_acct`).
    pub dirty: Option<DirtyMap>,
    /// Device "System" allocation accounting for the dirty-bit arrays.
    pub dirty_acct: Option<BufferHandle>,
    /// Device "System" allocation accounting for the write-miss buffer.
    pub miss_acct: Option<BufferHandle>,
    /// This GPU holds an identity-initialised reduction-private copy (not
    /// a coherence source).
    pub red_private: bool,
}

/// Residency state of one program array.
#[derive(Debug)]
pub(crate) struct ArrayState {
    pub ty: Ty,
    pub len: usize,
    /// Data-region nesting depth; 0 = not device-resident.
    pub region_depth: u32,
    /// Whether missing device ranges may be faulted in from the host copy
    /// (`copy`/`copyin`) or must materialise as zeros (`create`/`copyout`).
    pub init_from_host: bool,
    /// Set once a kernel has written the array on the device: the host
    /// copy no longer reflects the device copy, so the loader must source
    /// missing ranges from peer GPUs (the paper's loader otherwise always
    /// loads from CPU memory, §IV-C).
    pub host_stale: bool,
    /// Copy-out obligations: `(region id, section)` — at the matching
    /// `DataExit`, the section (or the whole array for `None`) is flushed
    /// to the host copy.
    pub exit_stack: Vec<(usize, Option<(i64, i64)>)>,
    pub gpu: Vec<GpuArr>,
}

impl ArrayState {
    pub fn new(ty: Ty, len: usize, ngpus: usize) -> ArrayState {
        ArrayState {
            ty,
            len,
            region_depth: 0,
            init_from_host: true,
            host_stale: false,
            exit_stack: Vec::new(),
            gpu: (0..ngpus).map(|_| GpuArr::default()).collect(),
        }
    }

    /// Element size in bytes.
    pub fn elem(&self) -> usize {
        self.ty.size_bytes()
    }

}

/// Equal static division of the iteration space `[lo, hi)` over `n` GPUs
/// (paper §IV-B2: "the tasks in the parallel loop are equally divided
/// among the GPUs"). Returns per-GPU `[lo_g, hi_g)`.
pub(crate) fn split_tasks(lo: i64, hi: i64, n: usize) -> Vec<(i64, i64)> {
    let total = (hi - lo).max(0);
    let n_i = n as i64;
    let chunk = total / n_i;
    let rem = total % n_i;
    let mut out = Vec::with_capacity(n);
    let mut cur = lo;
    for g in 0..n_i {
        let sz = chunk + if g < rem { 1 } else { 0 };
        out.push((cur, cur + sz));
        cur += sz;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even() {
        assert_eq!(split_tasks(0, 12, 3), vec![(0, 4), (4, 8), (8, 12)]);
    }

    #[test]
    fn split_with_remainder() {
        assert_eq!(split_tasks(0, 10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        let s = split_tasks(5, 12, 2);
        assert_eq!(s, vec![(5, 9), (9, 12)]);
    }

    #[test]
    fn split_fewer_tasks_than_gpus() {
        assert_eq!(split_tasks(0, 2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
    }

    #[test]
    fn split_empty() {
        assert_eq!(split_tasks(3, 3, 2), vec![(3, 3), (3, 3)]);
    }
}
