//! Device-residency state the data loader maintains per array.
//!
//! OpenACC keeps two logical copies of every array inside a data region:
//! the host copy (always directly accessible to host code) and the device
//! copy (here: spread or replicated over the simulated GPUs). The loader
//! tracks, per GPU, which global element ranges of the device copy are
//! materialised and current (`valid`); the communication manager updates
//! these sets after every kernel wave. `update` directives and region-exit
//! copy-outs move data between the two logical copies explicitly.

use acc_gpusim::BufferHandle;
use acc_kernel_ir::{DirtyMap, Ty};

use crate::ranges::RangeSet;

/// Per-GPU residency state of one array.
#[derive(Debug, Default)]
pub(crate) struct GpuArr {
    /// Device allocation holding `window`, if materialised.
    pub handle: Option<BufferHandle>,
    /// Global element range the allocation covers `[lo, hi)`.
    pub window: (i64, i64),
    /// Ranges whose device-copy content this GPU holds (coherence
    /// metadata: a valid range can serve as a transfer source).
    pub valid: RangeSet,
    /// Two-level dirty bits for replicated arrays the current kernel
    /// writes (lives host-side; its footprint is charged to the GPU via
    /// `dirty_acct`).
    pub dirty: Option<DirtyMap>,
    /// Device "System" allocation accounting for the dirty-bit arrays.
    pub dirty_acct: Option<BufferHandle>,
    /// Device "System" allocation accounting for the write-miss buffer.
    pub miss_acct: Option<BufferHandle>,
    /// This GPU holds an identity-initialised reduction-private copy (not
    /// a coherence source).
    pub red_private: bool,
}

/// Residency state of one program array.
#[derive(Debug)]
pub(crate) struct ArrayState {
    pub ty: Ty,
    pub len: usize,
    /// Data-region nesting depth; 0 = not device-resident.
    pub region_depth: u32,
    /// Whether missing device ranges may be faulted in from the host copy
    /// (`copy`/`copyin`) or must materialise as zeros (`create`/`copyout`).
    pub init_from_host: bool,
    /// Set once a kernel has written the array on the device: the host
    /// copy no longer reflects the device copy, so the loader must source
    /// missing ranges from peer GPUs (the paper's loader otherwise always
    /// loads from CPU memory, §IV-C).
    pub host_stale: bool,
    /// Copy-out obligations: `(region id, section)` — at the matching
    /// `DataExit`, the section (or the whole array for `None`) is flushed
    /// to the host copy.
    pub exit_stack: Vec<(usize, Option<(i64, i64)>)>,
    /// Set when a replica sync was elided on a static comm-elision fact:
    /// the replicas are mutually stale outside each GPU's own partition
    /// and the accumulated dirty bits are still armed. Any operation that
    /// could observe the divergence (host flush, `update`, loader fill
    /// from peers) must reconcile first (`Engine::ensure_synced`).
    pub sync_pending: bool,
    pub gpu: Vec<GpuArr>,
}

impl ArrayState {
    pub fn new(ty: Ty, len: usize, ngpus: usize) -> ArrayState {
        ArrayState {
            ty,
            len,
            region_depth: 0,
            init_from_host: true,
            host_stale: false,
            exit_stack: Vec::new(),
            sync_pending: false,
            gpu: (0..ngpus).map(|_| GpuArr::default()).collect(),
        }
    }

    /// Element size in bytes.
    pub fn elem(&self) -> usize {
        self.ty.size_bytes()
    }

}

/// Equal static division of the iteration space `[lo, hi)` over `n` GPUs
/// (paper §IV-B2: "the tasks in the parallel loop are equally divided
/// among the GPUs"). Returns per-GPU `[lo_g, hi_g)`.
pub fn split_tasks(lo: i64, hi: i64, n: usize) -> Vec<(i64, i64)> {
    let total = (hi - lo).max(0);
    let n_i = n as i64;
    let chunk = total / n_i;
    let rem = total % n_i;
    let mut out = Vec::with_capacity(n);
    let mut cur = lo;
    for g in 0..n_i {
        let sz = chunk + if g < rem { 1 } else { 0 };
        out.push((cur, cur + sz));
        cur += sz;
    }
    out
}

/// Piecewise-constant per-iteration cost density over `[lo, hi)` built
/// from a previous launch's `(range, measured seconds)` history. Returns
/// `(seg_lo, seg_hi, seconds-per-iteration)` segments exactly covering
/// `[lo, hi)`; iterations no history range covers are priced at the
/// average density, so a moved or grown iteration space stays covered.
///
/// Returns `None` when the history is unusable — empty, zero or
/// non-finite total cost, no overlap with `[lo, hi)`, or overlapping
/// ranges — in which case callers fall back to [`split_tasks`].
pub fn cost_segments(lo: i64, hi: i64, hist: &[((i64, i64), f64)]) -> Option<Vec<(i64, i64, f64)>> {
    if hi <= lo {
        return None;
    }
    let mut segs: Vec<(i64, i64, f64)> = Vec::new();
    let mut covered = 0i64;
    let mut cost_sum = 0.0f64;
    for &((a, b), c) in hist {
        if !c.is_finite() || c < 0.0 {
            return None;
        }
        let (a, b) = (a.max(lo), b.min(hi));
        if a >= b {
            continue;
        }
        segs.push((a, b, c / (b - a) as f64));
        covered += b - a;
        cost_sum += c;
    }
    if covered == 0 || cost_sum <= 0.0 || !cost_sum.is_finite() {
        return None;
    }
    segs.sort_by_key(|s| s.0);
    if segs.windows(2).any(|w| w[0].1 > w[1].0) {
        return None;
    }
    let avg = cost_sum / covered as f64;
    let mut full = Vec::with_capacity(segs.len() * 2 + 1);
    let mut cur = lo;
    for (a, b, d) in segs {
        if cur < a {
            full.push((cur, a, avg));
        }
        full.push((a, b, d));
        cur = b;
    }
    if cur < hi {
        full.push((cur, hi, avg));
    }
    Some(full)
}

/// Predicted cost of `[rlo, rhi)` under a density from [`cost_segments`].
pub fn integrate_cost(segs: &[(i64, i64, f64)], rlo: i64, rhi: i64) -> f64 {
    let mut acc = 0.0;
    for &(a, b, d) in segs {
        let (a, b) = (a.max(rlo), b.min(rhi));
        if a < b {
            acc += (b - a) as f64 * d;
        }
    }
    acc
}

/// Cost-proportional division of `[lo, hi)` over `n` GPUs: boundaries
/// sit at the cost quantiles of the density [`cost_segments`] builds
/// from `hist`, each rounded up to a whole iteration. Like
/// [`split_tasks`], the result is a contiguous covering partition whose
/// empty ranges (more GPUs than distinguishable work) occupy the tail —
/// under a uniform density the two splitters agree exactly.
///
/// Falls back to [`split_tasks`] when the history is unusable.
pub fn split_tasks_weighted(lo: i64, hi: i64, n: usize, hist: &[((i64, i64), f64)]) -> Vec<(i64, i64)> {
    let Some(segs) = cost_segments(lo, hi, hist) else {
        return split_tasks(lo, hi, n);
    };
    let w_total = integrate_cost(&segs, lo, hi);
    if w_total <= 0.0 || !w_total.is_finite() {
        return split_tasks(lo, hi, n);
    }
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(lo);
    let mut seg_idx = 0usize;
    let mut cum = 0.0f64; // cost integral up to segs[seg_idx].0
    for g in 0..n.saturating_sub(1) {
        let target = w_total * (g + 1) as f64 / n as f64;
        loop {
            let (a, b, d) = segs[seg_idx];
            let seg_cost = (b - a) as f64 * d;
            if cum + seg_cost < target && seg_idx + 1 < segs.len() {
                cum += seg_cost;
                seg_idx += 1;
            } else {
                break;
            }
        }
        let (a, b, d) = segs[seg_idx];
        let x = if d > 0.0 {
            // Shave a relative epsilon before rounding up so a quantile
            // that is mathematically a whole iteration count does not
            // ceil past it on accumulated float error.
            let v = (target - cum) / d;
            a + ((v - v.abs() * 1e-12 - 1e-12).ceil() as i64).max(0)
        } else {
            b
        };
        let prev = *bounds.last().unwrap();
        bounds.push(x.clamp(prev, hi));
    }
    bounds.push(hi);
    // Compact empty ranges to the tail so the partition keeps the
    // non-empty-prefix shape `split_tasks` guarantees (ownership routing
    // and the reduction-merge tree rely on it).
    let mut out: Vec<(i64, i64)> = bounds
        .windows(2)
        .filter(|w| w[0] < w[1])
        .map(|w| (w[0], w[1]))
        .collect();
    out.resize(n, (hi, hi));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even() {
        assert_eq!(split_tasks(0, 12, 3), vec![(0, 4), (4, 8), (8, 12)]);
    }

    #[test]
    fn split_with_remainder() {
        assert_eq!(split_tasks(0, 10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        let s = split_tasks(5, 12, 2);
        assert_eq!(s, vec![(5, 9), (9, 12)]);
    }

    #[test]
    fn split_fewer_tasks_than_gpus() {
        assert_eq!(split_tasks(0, 2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
    }

    #[test]
    fn split_empty() {
        assert_eq!(split_tasks(3, 3, 2), vec![(3, 3), (3, 3)]);
    }

    #[test]
    fn weighted_matches_equal_on_uniform_history() {
        for (lo, hi, n) in [(0, 12, 3), (0, 10, 3), (5, 12, 2), (0, 2, 4), (0, 100, 3)] {
            let hist: Vec<((i64, i64), f64)> = split_tasks(lo, hi, n)
                .into_iter()
                .filter(|r| r.0 < r.1)
                .map(|r| (r, (r.1 - r.0) as f64 * 1e-6))
                .collect();
            assert_eq!(
                split_tasks_weighted(lo, hi, n, &hist),
                split_tasks(lo, hi, n),
                "lo={lo} hi={hi} n={n}"
            );
        }
    }

    #[test]
    fn weighted_shifts_work_toward_cheap_iterations() {
        // First half of the space cost 4x the second half: the first GPU
        // should take far fewer iterations than the equal split's 50.
        let hist = [((0i64, 50i64), 4.0), ((50, 100), 1.0)];
        let s = split_tasks_weighted(0, 100, 2, &hist);
        assert_eq!(s[0].0, 0);
        assert_eq!(s[1].1, 100);
        assert_eq!(s[0].1, s[1].0, "contiguous");
        // Half the total cost (2.5) sits at iteration 31.25 → ceil 32.
        assert_eq!(s[0].1, 32);
    }

    #[test]
    fn weighted_falls_back_without_usable_history() {
        assert_eq!(split_tasks_weighted(0, 10, 3, &[]), split_tasks(0, 10, 3));
        // Zero-cost history is unusable.
        let zero = [((0i64, 10i64), 0.0)];
        assert_eq!(split_tasks_weighted(0, 10, 3, &zero), split_tasks(0, 10, 3));
        // History from a disjoint iteration space is unusable.
        let off = [((100i64, 200i64), 1.0)];
        assert_eq!(split_tasks_weighted(0, 10, 3, &off), split_tasks(0, 10, 3));
    }

    #[test]
    fn weighted_covers_gaps_at_average_density() {
        // History covers only the middle; the gaps get the average
        // density, and the result still exactly covers [0, 90).
        let hist = [((30i64, 60i64), 3.0)];
        let s = split_tasks_weighted(0, 90, 3, &hist);
        assert_eq!(s.first().unwrap().0, 0);
        assert_eq!(s.last().unwrap().1, 90);
        for w in s.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // Uniform average everywhere → equal thirds.
        assert_eq!(s, vec![(0, 30), (30, 60), (60, 90)]);
    }

    #[test]
    fn weighted_pushes_empty_ranges_to_the_tail() {
        // One iteration holds nearly all the cost: GPUs beyond the
        // distinguishable work get empty tail ranges at `hi`.
        let hist = [((0i64, 1i64), 100.0), ((1, 4), 0.003)];
        let s = split_tasks_weighted(0, 4, 4, &hist);
        assert_eq!(s.iter().map(|r| (r.1 - r.0).max(0)).sum::<i64>(), 4);
        let first_empty = s.iter().position(|r| r.0 >= r.1);
        if let Some(k) = first_empty {
            assert!(s[k..].iter().all(|r| r.0 >= r.1), "empties form the tail");
            assert!(s[k..].iter().all(|&r| r == (4, 4)));
        }
    }
}
