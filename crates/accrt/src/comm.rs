//! The inter-GPU communication manager (paper §IV-D).
//!
//! Called "just after the kernel functions executed on the GPUs", it
//! performs three reconciliations:
//!
//! 1. **replicated arrays** — using the two-level dirty bits, every GPU
//!    ships only the chunks whose second-level bit is set to every other
//!    GPU; receivers apply the dirty element runs. Clean chunks move no
//!    bytes — the point of the two-level scheme (§IV-D1);
//! 2. **distributed arrays** — buffered write-miss records are routed to
//!    the GPU owning the destination element and replayed there
//!    (§IV-D2); halo copies are invalidated so the loader refreshes them;
//! 3. **reduction-private arrays** — the per-GPU private copies are
//!    combined pairwise in a binary tree (the inter-GPU level of the
//!    §IV-B4 hierarchical reduction); GPU 0 ends up with the result.

use acc_compiler::{CompiledKernel, Placement};
use acc_gpusim::Endpoint;
use acc_kernel_ir::interp::rmw_apply;
use acc_kernel_ir::{MissRecord, RmwOp, Value};
use acc_obs::{CommRound, MissReplay, ReductionMerge, TransferKind, TransferSpan};

use crate::exec::{ArrLaunch, Engine};
use crate::RunError;

impl<'a> Engine<'a> {
    /// Run the communication phase; transfers are scheduled from `t2`.
    /// Returns the phase end time.
    pub(crate) fn comm_phase(
        &mut self,
        ck: &CompiledKernel,
        binfo: &[ArrLaunch],
        misses: Vec<Vec<MissRecord>>,
        t2: f64,
    ) -> Result<f64, RunError> {
        let ngpus = self.cfg.ngpus;
        let mut end = t2;

        for (kbuf, bi) in binfo.iter().enumerate() {
            match &bi.placement {
                Placement::Replicated if bi.writes && ngpus > 1 => {
                    let e = self.sync_replicas(bi, t2)?;
                    end = end.max(e);
                }
                Placement::Replicated | Placement::Distributed
                    if bi.writes && ngpus == 1 =>
                {
                    // Single GPU: nothing to reconcile; host copy is
                    // refreshed on demand by update/copy-out.
                }
                Placement::Distributed if bi.writes => {
                    let e = self.replay_misses(ck, kbuf, bi, &misses, t2)?;
                    end = end.max(e);
                    // Halos are stale now; keep only owned ranges valid.
                    for g in 0..ngpus {
                        let own = crate::ranges::RangeSet::of(bi.own[g].0, bi.own[g].1);
                        self.arrays[bi.arr].gpu[g].valid.intersect(&own);
                    }
                }
                Placement::ReductionPrivate(op) if ngpus > 1 => {
                    let e = self.merge_reduction_copies(bi, *op, t2)?;
                    end = end.max(e);
                }
                Placement::ReductionPrivate(_) => {
                    // Single GPU: atomics already accumulated in place.
                    self.arrays[bi.arr].gpu[0].red_private = false;
                }
                _ => {}
            }
        }
        Ok(end)
    }

    /// §IV-D1: replica reconciliation via two-level dirty bits.
    fn sync_replicas(&mut self, bi: &ArrLaunch, t2: f64) -> Result<f64, RunError> {
        let ngpus = self.cfg.ngpus;
        let elem = self.arrays[bi.arr].elem();
        let mut end = t2;

        // Collect each GPU's dirty runs and per-chunk payloads first
        // (immutable pass).
        let mut per_gpu_runs: Vec<Vec<(usize, usize)>> = Vec::with_capacity(ngpus);
        let mut per_gpu_chunk_sizes: Vec<Vec<u64>> = Vec::with_capacity(ngpus);
        for g in 0..ngpus {
            let ga = &self.arrays[bi.arr].gpu[g];
            match ga.dirty.as_ref() {
                Some(dm) if !dm.is_clean() => {
                    let mut runs = Vec::new();
                    let mut sizes = Vec::new();
                    for c in dm.dirty_chunks() {
                        let (clo, chi) = dm.chunk_range(c);
                        // The mechanism ships whole chunks plus their
                        // first-level bits; receivers apply per-element.
                        sizes.push(
                            ((chi - clo) * elem) as u64 + ((chi - clo) as u64).div_ceil(8),
                        );
                        runs.extend(dm.dirty_runs_in_chunk(c));
                    }
                    per_gpu_runs.push(runs);
                    per_gpu_chunk_sizes.push(sizes);
                }
                _ => {
                    per_gpu_runs.push(Vec::new());
                    per_gpu_chunk_sizes.push(Vec::new());
                }
            }
        }

        // Ship and apply. Each dirty chunk is its own asynchronous
        // transfer (per-chunk latency is the cost of choosing small
        // chunks — the other side of the §IV-D1 trade-off). Applying in
        // GPU order makes conflicting writes (a program-level race under
        // BSP) deterministic.
        for g in 0..ngpus {
            if per_gpu_runs[g].is_empty() {
                continue;
            }
            for h in 0..ngpus {
                if h == g {
                    continue;
                }
                // Functional application of the dirty runs; the priced
                // bytes are the whole dirty chunks (the mechanism cannot
                // know the exact runs without reading the bits remotely).
                for &(lo, hi) in &per_gpu_runs[g] {
                    self.copy_elements_between_gpus(bi.arr, g, h, lo as i64, hi as i64)?;
                }
                let mut pair_start = f64::INFINITY;
                let mut pair_end = t2;
                let mut pair_bytes = 0u64;
                for &bytes in &per_gpu_chunk_sizes[g] {
                    let (s, e) =
                        self.machine
                            .bus
                            .transfer(Endpoint::Gpu(g), Endpoint::Gpu(h), bytes, t2);
                    self.rec.transfer(TransferSpan {
                        kind: TransferKind::P2P,
                        array: self.prog.array_params[bi.arr].0.clone(),
                        bytes,
                        src: Some(g),
                        dst: Some(h),
                        why: "sync",
                        start: s,
                        end: e,
                    });
                    pair_start = pair_start.min(s);
                    pair_end = pair_end.max(e);
                    pair_bytes += bytes;
                }
                end = end.max(pair_end);
                self.rec.comm_round(CommRound {
                    launch: self.cur_launch,
                    array: self.prog.array_params[bi.arr].0.clone(),
                    src: g,
                    dst: h,
                    chunks: per_gpu_chunk_sizes[g].len() as u64,
                    bytes: pair_bytes,
                    start: pair_start.min(pair_end),
                    end: pair_end,
                });
            }
        }

        // All replicas are consistent again; clear the bits.
        for g in 0..ngpus {
            if let Some(dm) = self.arrays[bi.arr].gpu[g].dirty.as_mut() {
                dm.clear();
            }
        }
        Ok(end)
    }

    /// §IV-D2: route buffered write-miss records to their owners and
    /// replay them there.
    fn replay_misses(
        &mut self,
        ck: &CompiledKernel,
        kbuf: usize,
        bi: &ArrLaunch,
        misses: &[Vec<MissRecord>],
        t2: f64,
    ) -> Result<f64, RunError> {
        let ngpus = self.cfg.ngpus;
        let elem = self.arrays[bi.arr].elem();
        let mut end = t2;
        for g in 0..ngpus {
            // Records for this buffer from GPU g, grouped by owner.
            let mut by_owner: Vec<Vec<&MissRecord>> = vec![Vec::new(); ngpus];
            for r in misses.get(g).map(|v| v.as_slice()).unwrap_or(&[]) {
                if r.buf as usize != kbuf {
                    continue;
                }
                let owner = (0..ngpus)
                    .find(|&h| bi.own[h].0 <= r.idx && r.idx < bi.own[h].1)
                    .ok_or_else(|| RunError::MissOutsideCoverage {
                        array: ck.configs[kbuf].name.clone(),
                        idx: r.idx,
                    })?;
                by_owner[owner].push(r);
            }
            for (owner, recs) in by_owner.iter().enumerate() {
                if recs.is_empty() {
                    continue;
                }
                // Apply on the owner.
                let (wlo, handle) = {
                    let ga = &self.arrays[bi.arr].gpu[owner];
                    (ga.window.0, ga.handle.expect("owner window"))
                };
                {
                    let buf = self.machine.gpus[owner].memory.get_mut(handle)?;
                    for r in recs {
                        let local = r.idx - wlo;
                        if local < 0 || local as usize >= buf.len() {
                            return Err(RunError::MissOutsideCoverage {
                                array: ck.configs[kbuf].name.clone(),
                                idx: r.idx,
                            });
                        }
                        let v: Value = r.value.cast(buf.ty());
                        buf.set(local as usize, v);
                    }
                }
                if owner == g {
                    // Shouldn't happen (local writes don't miss), but be
                    // robust: applied with no transfer.
                    self.rec.miss_replay(MissReplay {
                        launch: self.cur_launch,
                        array: ck.configs[kbuf].name.clone(),
                        src: g,
                        dst: owner,
                        records: recs.len() as u64,
                        bytes: 0,
                        start: t2,
                        end: t2,
                    });
                    continue;
                }
                let bytes = (recs.len() * (8 + elem)) as u64;
                let (s, e) =
                    self.machine
                        .bus
                        .transfer(Endpoint::Gpu(g), Endpoint::Gpu(owner), bytes, t2);
                self.rec.transfer(TransferSpan {
                    kind: TransferKind::P2P,
                    array: ck.configs[kbuf].name.clone(),
                    bytes,
                    src: Some(g),
                    dst: Some(owner),
                    why: "miss",
                    start: s,
                    end: e,
                });
                // Completing the writes is a small kernel on the owner.
                let apply = self.machine.gpus[owner]
                    .spec
                    .local_copy_time((recs.len() * elem) as u64);
                self.rec.miss_replay(MissReplay {
                    launch: self.cur_launch,
                    array: ck.configs[kbuf].name.clone(),
                    src: g,
                    dst: owner,
                    records: recs.len() as u64,
                    bytes,
                    start: s,
                    end: e + apply,
                });
                end = end.max(e + apply);
            }
        }
        Ok(end)
    }

    /// Inter-GPU level of the hierarchical reduction: binary-tree merge of
    /// the private copies into GPU 0.
    fn merge_reduction_copies(
        &mut self,
        bi: &ArrLaunch,
        op: RmwOp,
        t2: f64,
    ) -> Result<f64, RunError> {
        let ngpus = self.cfg.ngpus;
        let n = self.arrays[bi.arr].len;
        let elem = self.arrays[bi.arr].elem();
        let mut round_start = t2;
        let mut stride = 1usize;
        while stride < ngpus {
            let mut round_end = round_start;
            let mut g = 0;
            while g + stride < ngpus {
                let src = g + stride;
                // Pull src's private copy into g and combine.
                let staged: Vec<Value> = {
                    let ga = &self.arrays[bi.arr].gpu[src];
                    let sb = self.machine.gpus[src].memory.get(ga.handle.expect("src"))?;
                    sb.iter().collect()
                };
                {
                    let ga = &self.arrays[bi.arr].gpu[g];
                    let db = self.machine.gpus[g]
                        .memory
                        .get_mut(ga.handle.expect("dst"))?;
                    for (i, v) in staged.iter().enumerate() {
                        let merged = rmw_apply(op, db.get(i), *v)?;
                        db.set(i, merged);
                    }
                }
                let bytes = (n * elem) as u64;
                let (s, e) =
                    self.machine
                        .bus
                        .transfer(Endpoint::Gpu(src), Endpoint::Gpu(g), bytes, round_start);
                self.rec.transfer(TransferSpan {
                    kind: TransferKind::P2P,
                    array: self.prog.array_params[bi.arr].0.clone(),
                    bytes,
                    src: Some(src),
                    dst: Some(g),
                    why: "reduce",
                    start: s,
                    end: e,
                });
                let combine = self.machine.gpus[g].spec.local_copy_time(bytes);
                self.rec.reduction_merge(ReductionMerge {
                    launch: self.cur_launch,
                    array: self.prog.array_params[bi.arr].0.clone(),
                    src,
                    dst: g,
                    bytes,
                    start: s,
                    end: e + combine,
                });
                round_end = round_end.max(e + combine);
                g += stride * 2;
            }
            round_start = round_end;
            stride *= 2;
        }
        // GPU 0 now holds the merged result; other copies are garbage.
        let whole = crate::ranges::RangeSet::of(0, n as i64);
        for g in 0..ngpus {
            let ga = &mut self.arrays[bi.arr].gpu[g];
            ga.red_private = false;
            if g == 0 {
                ga.valid = whole.clone();
            } else {
                ga.valid.clear();
            }
        }
        Ok(round_start)
    }

    /// Copy elements `[lo, hi)` (global) of an array from GPU `src`'s
    /// buffer into GPU `dst`'s buffer — the functional half of a replica
    /// update (bytes are priced separately at chunk granularity).
    fn copy_elements_between_gpus(
        &mut self,
        arr: usize,
        src: usize,
        dst: usize,
        lo: i64,
        hi: i64,
    ) -> Result<(), RunError> {
        let elem = self.arrays[arr].elem();
        let staged: Vec<u8> = {
            let ga = &self.arrays[arr].gpu[src];
            let sb = self.machine.gpus[src].memory.get(ga.handle.expect("src"))?;
            let off = (lo - ga.window.0) as usize * elem;
            sb.bytes()[off..off + (hi - lo) as usize * elem].to_vec()
        };
        let ga = &self.arrays[arr].gpu[dst];
        let db = self.machine.gpus[dst]
            .memory
            .get_mut(ga.handle.expect("dst"))?;
        let off = (lo - ga.window.0) as usize * elem;
        db.bytes_mut()[off..off + staged.len()].copy_from_slice(&staged);
        Ok(())
    }
}
