//! The inter-GPU communication manager (paper §IV-D).
//!
//! Called "just after the kernel functions executed on the GPUs", it
//! performs three reconciliations:
//!
//! 1. **replicated arrays** — using the two-level dirty bits, every GPU
//!    ships only the chunks whose second-level bit is set to every other
//!    GPU; receivers apply the dirty element runs. Clean chunks move no
//!    bytes — the point of the two-level scheme (§IV-D1);
//! 2. **distributed arrays** — buffered write-miss records are routed to
//!    the GPU owning the destination element and replayed there
//!    (§IV-D2); halo copies are invalidated so the loader refreshes them;
//! 3. **reduction-private arrays** — the per-GPU private copies are
//!    combined pairwise in a binary tree (the inter-GPU level of the
//!    §IV-B4 hierarchical reduction); GPU 0 ends up with the result.
//!
//! Each reconciliation has two independent halves:
//!
//! * the **functional half** mutates simulated device buffers. With
//!   [`ExecConfig::parallel_comm`](crate::ExecConfig) set (the default)
//!   it runs on one host thread per destination GPU — destinations touch
//!   disjoint buffers, so this is safe — and moves data as typed byte
//!   windows (`copy_from_slice` / [`acc_kernel_ir::rmw_apply_slice`])
//!   rather than
//!   element-at-a-time `get`/`set`. The serial per-element path is kept
//!   as the reference implementation and equivalence tests hold the two
//!   bit-identical;
//! * the **pricing half** walks the per-link PCIe bus timelines and
//!   emits [`TransferSpan`]/[`CommRound`]/…​ events. Bus timelines are
//!   order-dependent, so this half always runs serially, in a fixed
//!   order, on the coordinating thread — which is why *simulated* times
//!   never depend on the host-parallelism switch.

use acc_compiler::{CompiledKernel, Placement};
use acc_gpusim::{BufferHandle, Endpoint, Gpu};
use acc_kernel_ir::interp::{rmw_apply, rmw_apply_slice};
use acc_kernel_ir::{MissRecord, RmwOp, Value};
use acc_obs::{
    CollectiveRound, CommElided, CommRound, MissReplay, ReductionMerge, TransferKind, TransferSpan,
};

use crate::exec::{ArrLaunch, Run};
use crate::{RunError, SanitizeLevel};

/// Reusable scratch buffers for the runtime's functional halves.
///
/// Every sync round used to allocate one fresh `Vec<u8>` per dirty
/// source; iterative programs re-stage nearly identical footprints each
/// launch, so the pool hands back the previous round's buffers instead.
/// `allocs` counts the times a replica-sync staging buffer actually had
/// to be created or grown — for a steady-state iterative run it stays
/// near the GPU count.
///
/// The pool outlives a single run: [`run_program`](crate::run_program)
/// creates a fresh one per call (the historical behaviour), while a
/// long-lived [`Engine`](crate::Engine) checks pools out per job and
/// back in afterwards, so a busy server stops allocating once warm.
/// Three buffer classes are kept apart so their reuse patterns (and
/// counters) don't interfere:
///
/// * `bufs` — replica-sync staging ([`Run::apply_replica_runs_parallel`]),
///   counted in `allocs` / `Profiler::staging_allocs`;
/// * `scratch` — loader window-grow / peer-copy staging, counted in
///   `scratch_allocs` / `Profiler::scratch_allocs`;
/// * `miss_bufs` — per-GPU write-miss record buffers, reclaimed after
///   every communication phase (BFS-style apps fill these every launch).
#[derive(Debug, Default)]
pub(crate) struct StagingPool {
    bufs: Vec<Vec<u8>>,
    pub allocs: u64,
    scratch: Vec<Vec<u8>>,
    pub scratch_allocs: u64,
    miss_bufs: Vec<Vec<acc_kernel_ir::MissRecord>>,
}

impl StagingPool {
    /// Hand out a cleared replica-staging buffer with at least `cap`
    /// bytes of capacity.
    pub(crate) fn take(&mut self, cap: usize) -> Vec<u8> {
        let mut b = self.bufs.pop().unwrap_or_default();
        b.clear();
        if b.capacity() < cap {
            self.allocs += 1;
            b.reserve_exact(cap);
        }
        b
    }

    /// Return used replica-staging buffers to the pool (empty
    /// placeholders are dropped).
    pub(crate) fn put_back(&mut self, bufs: impl IntoIterator<Item = Vec<u8>>) {
        self.bufs.extend(bufs.into_iter().filter(|b| b.capacity() > 0));
    }

    /// Hand out a cleared loader/copy scratch buffer with at least `cap`
    /// bytes of capacity.
    pub(crate) fn take_scratch(&mut self, cap: usize) -> Vec<u8> {
        let mut b = self.scratch.pop().unwrap_or_default();
        b.clear();
        if b.capacity() < cap {
            self.scratch_allocs += 1;
            b.reserve_exact(cap);
        }
        b
    }

    /// Return a scratch buffer to the pool.
    pub(crate) fn put_back_scratch(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 {
            self.scratch.push(buf);
        }
    }

    /// Hand out a cleared write-miss record buffer.
    pub(crate) fn take_misses(&mut self) -> Vec<acc_kernel_ir::MissRecord> {
        let mut b = self.miss_bufs.pop().unwrap_or_default();
        b.clear();
        b
    }

    /// Reclaim per-GPU miss buffers after the communication phase.
    pub(crate) fn put_back_misses(
        &mut self,
        bufs: impl IntoIterator<Item = Vec<acc_kernel_ir::MissRecord>>,
    ) {
        self.miss_bufs
            .extend(bufs.into_iter().filter(|b| b.capacity() > 0));
    }
}

/// O(1) owner lookup over a per-GPU `own` partition.
///
/// `resolve_bindings` derives the owned ranges of a distributed array
/// from the equal static division of the iteration space: the non-empty
/// ranges form an ascending, gap-free partition occupying a prefix of
/// the GPU list. That structure lets a write-miss destination index be
/// routed by partition arithmetic — guess `idx * k / span`, then walk at
/// most a step or two to correct for the clamp-induced size wobble —
/// instead of the linear scan the manager previously did per record.
///
/// If the ranges ever violate that shape (a custom binding, a future
/// placement policy), the router detects it at construction and falls
/// back to the scan, so routing results never depend on the fast path.
pub(crate) struct OwnerRouter<'o> {
    own: &'o [(i64, i64)],
    /// Number of leading non-empty ranges when `contiguous`.
    k: usize,
    /// Covered span `[own[0].0, own[k-1].1)` when `contiguous`.
    lo: i64,
    hi: i64,
    contiguous: bool,
}

impl<'o> OwnerRouter<'o> {
    pub fn new(own: &'o [(i64, i64)]) -> OwnerRouter<'o> {
        let k = own.iter().take_while(|r| r.1 > r.0).count();
        let contiguous = k > 0
            && own[..k].windows(2).all(|w| w[0].1 == w[1].0)
            && own[k..].iter().all(|r| r.1 <= r.0);
        let (lo, hi) = if contiguous {
            (own[0].0, own[k - 1].1)
        } else {
            (0, 0)
        };
        OwnerRouter {
            own,
            k,
            lo,
            hi,
            contiguous,
        }
    }

    /// The GPU owning `idx`, or `None` if no owned range covers it.
    pub fn route(&self, idx: i64) -> Option<usize> {
        if !self.contiguous {
            return (0..self.own.len()).find(|&h| self.own[h].0 <= idx && idx < self.own[h].1);
        }
        if idx < self.lo || idx >= self.hi {
            return None;
        }
        let span = (self.hi - self.lo) as u128;
        let mut j =
            (((idx - self.lo) as u128 * self.k as u128) / span) as usize;
        j = j.min(self.k - 1);
        // The guess is off by at most the clamp wobble; each step moves
        // monotonically toward the owner and the range checks above
        // guarantee termination inside [0, k).
        while idx < self.own[j].0 {
            j -= 1;
        }
        while idx >= self.own[j].1 {
            j += 1;
        }
        Some(j)
    }
}

impl<'a> Run<'a> {
    /// Run the communication phase; transfers are scheduled from `t2`.
    /// Returns the phase end time.
    pub(crate) fn comm_phase(
        &mut self,
        ck: &CompiledKernel,
        binfo: &[ArrLaunch],
        misses: &[Vec<MissRecord>],
        t2: f64,
    ) -> Result<f64, RunError> {
        let ngpus = self.cfg.ngpus;
        let mut end = t2;

        for (kbuf, bi) in binfo.iter().enumerate() {
            match &bi.placement {
                Placement::Replicated if bi.writes && ngpus > 1 => {
                    if let Some(claims) = &bi.elide {
                        if self.cfg.sanitize == SanitizeLevel::Full {
                            // Audit path: the accumulated dirty runs must
                            // stay inside the fact's claimed partitions;
                            // then the skipped sync is re-armed, so a
                            // Full-sanitize run is bit-identical (arrays
                            // *and* simulated times) to elision off.
                            self.audit_elision(bi.arr, claims)?;
                            let e = self.sync_replicas(bi.arr, t2)?;
                            end = end.max(e);
                        } else {
                            // Skip the sync: keep the dirty maps armed
                            // and accumulating, and defer reconciliation
                            // to the first operation that can observe
                            // another GPU's partition (ensure_synced).
                            let skipped = self.pending_sync_bytes(bi.arr);
                            self.arrays[bi.arr].sync_pending = true;
                            self.rec.comm_elided(CommElided {
                                launch: self.cur_launch,
                                array: self.prog.array_params[bi.arr].0.clone(),
                                skipped_bytes: skipped,
                                at: t2,
                            });
                        }
                    } else {
                        let e = self.sync_replicas(bi.arr, t2)?;
                        end = end.max(e);
                    }
                }
                Placement::Replicated | Placement::Distributed
                    if bi.writes && ngpus == 1 =>
                {
                    // Single GPU: nothing to reconcile; host copy is
                    // refreshed on demand by update/copy-out.
                }
                Placement::Distributed if bi.writes => {
                    let e = self.replay_misses(ck, kbuf, bi, misses, t2)?;
                    end = end.max(e);
                    // Halos are stale now; keep only owned ranges valid.
                    for g in 0..ngpus {
                        let own = crate::ranges::RangeSet::of(bi.own[g].0, bi.own[g].1);
                        self.arrays[bi.arr].gpu[g].valid.intersect(&own);
                    }
                }
                Placement::ReductionPrivate(op) if ngpus > 1 => {
                    let e = self.merge_reduction_copies(bi, *op, t2)?;
                    end = end.max(e);
                }
                Placement::ReductionPrivate(_) => {
                    // Single GPU: atomics already accumulated in place.
                    self.arrays[bi.arr].gpu[0].red_private = false;
                }
                _ => {}
            }
        }
        Ok(end)
    }

    /// Reconcile an array whose replica sync was elided earlier: run the
    /// deferred sync over the accumulated dirty runs, charging its cost
    /// to the caller's phase (the operation that forced the observation).
    /// Cheap no-op when nothing is pending. Returns the time the caller
    /// should continue from.
    pub(crate) fn ensure_synced(&mut self, arr: usize, t: f64) -> Result<f64, RunError> {
        if !self.arrays[arr].sync_pending {
            return Ok(t);
        }
        self.arrays[arr].sync_pending = false;
        let wall = std::time::Instant::now();
        let e = self.sync_replicas(arr, t)?;
        self.comm_wall_s += wall.elapsed().as_secs_f64();
        Ok(e)
    }

    /// `SanitizeLevel::Full` audit of a comm-elision fact: every GPU's
    /// accumulated dirty runs must lie inside the per-GPU partition the
    /// fact claimed; an escaping run proves the static analysis (or a
    /// fault-injected fact) unsound.
    fn audit_elision(&self, arr: usize, claims: &[(i64, i64)]) -> Result<(), RunError> {
        for (g, &claim) in claims.iter().enumerate() {
            let Some(dm) = self.arrays[arr].gpu[g].dirty.as_ref() else {
                continue;
            };
            if dm.is_clean() {
                continue;
            }
            for c in dm.dirty_chunks() {
                for (lo, hi) in dm.dirty_runs_in_chunk(c) {
                    if (lo as i64) < claim.0 || (hi as i64) > claim.1 {
                        return Err(RunError::ElisionUnsound {
                            array: self.prog.array_params[arr].0.clone(),
                            gpu: g,
                            run: (lo as i64, hi as i64),
                            claim,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Estimated bytes a replica sync of `arr` would ship right now: the
    /// accumulated dirty-chunk payloads of every dirty GPU to every other
    /// replica holder (the `CommElided` event's saving estimate).
    fn pending_sync_bytes(&self, arr: usize) -> u64 {
        let ngpus = self.cfg.ngpus;
        let elem = self.arrays[arr].elem();
        let holders = (0..ngpus)
            .filter(|&h| self.arrays[arr].gpu[h].handle.is_some())
            .count() as u64;
        let mut total = 0u64;
        for g in 0..ngpus {
            let Some(dm) = self.arrays[arr].gpu[g].dirty.as_ref() else {
                continue;
            };
            if dm.is_clean() {
                continue;
            }
            let mut bytes = 0u64;
            for c in dm.dirty_chunks() {
                let (clo, chi) = dm.chunk_range(c);
                bytes += ((chi - clo) * elem) as u64 + ((chi - clo) as u64).div_ceil(8);
            }
            total += bytes * holders.saturating_sub(1);
        }
        total
    }

    /// §IV-D1: replica reconciliation via two-level dirty bits.
    fn sync_replicas(&mut self, arr: usize, t2: f64) -> Result<f64, RunError> {
        let ngpus = self.cfg.ngpus;
        let elem = self.arrays[arr].elem();
        let mut end = t2;

        // A GPU idle for this launch (empty partition) that never held a
        // replica has nothing to reconcile: it must receive no transfers
        // and appear in no comm rounds. A GPU that *does* still hold a
        // replica from an earlier launch stays a destination — its valid
        // set claims the data, so it has to keep tracking updates.
        let has_replica: Vec<bool> = (0..ngpus)
            .map(|h| self.arrays[arr].gpu[h].handle.is_some())
            .collect();

        // Collect each GPU's dirty runs and per-chunk payloads first
        // (immutable pass).
        let mut per_gpu_runs: Vec<Vec<(usize, usize)>> = Vec::with_capacity(ngpus);
        let mut per_gpu_chunk_sizes: Vec<Vec<u64>> = Vec::with_capacity(ngpus);
        for g in 0..ngpus {
            let ga = &self.arrays[arr].gpu[g];
            match ga.dirty.as_ref() {
                Some(dm) if !dm.is_clean() => {
                    let mut runs = Vec::new();
                    let mut sizes = Vec::new();
                    for c in dm.dirty_chunks() {
                        let (clo, chi) = dm.chunk_range(c);
                        // The mechanism ships whole chunks plus their
                        // first-level bits; receivers apply per-element.
                        sizes.push(
                            ((chi - clo) * elem) as u64 + ((chi - clo) as u64).div_ceil(8),
                        );
                        runs.extend(dm.dirty_runs_in_chunk(c));
                    }
                    per_gpu_runs.push(runs);
                    per_gpu_chunk_sizes.push(sizes);
                }
                _ => {
                    per_gpu_runs.push(Vec::new());
                    per_gpu_chunk_sizes.push(Vec::new());
                }
            }
        }

        // Functional half: land every dirty run on every other replica.
        // Conflicting writes (a program-level race under BSP) resolve
        // deterministically: the lowest-indexed dirty GPU wins, exactly
        // as under the serial pairwise schedule.
        if per_gpu_runs.iter().any(|r| !r.is_empty()) {
            if self.cfg.parallel_comm {
                self.apply_replica_runs_parallel(arr, elem, &per_gpu_runs)?;
            } else {
                // Reference path: pairwise current-value copies in
                // (src, dst) order.
                #[allow(clippy::needless_range_loop)] // g names a GPU, not a slice position
                for g in 0..ngpus {
                    if per_gpu_runs[g].is_empty() {
                        continue;
                    }
                    for h in 0..ngpus {
                        if h == g || !has_replica[h] {
                            continue;
                        }
                        for &(lo, hi) in &per_gpu_runs[g] {
                            self.copy_elements_between_gpus(arr, g, h, lo as i64, hi as i64)?;
                        }
                    }
                }
            }
        }

        // Pricing half: each dirty chunk is its own asynchronous
        // transfer (per-chunk latency is the cost of choosing small
        // chunks — the other side of the §IV-D1 trade-off). Serial, in
        // fixed order: the per-link bus timelines are order-dependent.
        // On flat topologies that order is the seed's ascending (src,
        // dst); on hierarchical ones each source ships to its near
        // destinations first, so intra-island rounds clear their
        // dedicated links before root- and fabric-bound rounds queue.
        for g in 0..ngpus {
            if per_gpu_runs[g].is_empty() {
                continue;
            }
            let mut dests: Vec<usize> =
                (0..ngpus).filter(|&h| h != g && has_replica[h]).collect();
            if self.machine.bus.is_hierarchical() {
                let bus = &self.machine.bus;
                dests.sort_by_key(|&h| (bus.distance(g, h), h));
            }
            for h in dests {
                if per_gpu_chunk_sizes[g].is_empty() {
                    // A dirty source always has at least one chunk; never
                    // emit an empty round even if that invariant breaks.
                    continue;
                }
                let mut pair_start = f64::INFINITY;
                let mut pair_end = t2;
                let mut pair_bytes = 0u64;
                for &bytes in &per_gpu_chunk_sizes[g] {
                    let (s, e) =
                        self.machine
                            .bus
                            .transfer(Endpoint::Gpu(g), Endpoint::Gpu(h), bytes, t2);
                    self.rec.transfer(TransferSpan {
                        kind: TransferKind::P2P,
                        array: self.prog.array_params[arr].0.clone(),
                        bytes,
                        src: Some(g),
                        dst: Some(h),
                        why: "sync",
                        start: s,
                        end: e,
                    });
                    pair_start = pair_start.min(s);
                    pair_end = pair_end.max(e);
                    pair_bytes += bytes;
                }
                end = end.max(pair_end);
                // `pair_start` is the true start of the round's first
                // transfer; it used to be clamped with `min(pair_end)`,
                // which would silently mask an uninitialised INFINITY as
                // a plausible-looking timestamp.
                debug_assert!(
                    pair_start.is_finite(),
                    "comm round {g}->{h} priced no transfers"
                );
                self.rec.comm_round(CommRound {
                    launch: self.cur_launch,
                    array: self.prog.array_params[arr].0.clone(),
                    src: g,
                    dst: h,
                    chunks: per_gpu_chunk_sizes[g].len() as u64,
                    bytes: pair_bytes,
                    start: pair_start,
                    end: pair_end,
                });
            }
        }

        // All replicas are consistent again; clear the bits.
        for g in 0..ngpus {
            if let Some(dm) = self.arrays[arr].gpu[g].dirty.as_mut() {
                dm.clear();
            }
        }
        Ok(end)
    }

    /// The host-parallel functional half of [`Run::sync_replicas`]:
    /// stage every dirty source's run bytes (pre-sync values), then let
    /// one thread per destination apply all sources' runs to its own
    /// replica, in *descending* source order.
    ///
    /// Element-wise this reproduces the serial pairwise schedule: there
    /// the lowest-indexed dirty GPU's value reaches every replica —
    /// intermediate sources forward it because their own copy has
    /// already been overwritten by the time they ship. Applying staged
    /// pre-sync runs from source `ngpus-1` down to `0` (a destination's
    /// own runs included, restoring its values at its turn) leaves the
    /// lowest dirty source's value last everywhere.
    fn apply_replica_runs_parallel(
        &mut self,
        arr: usize,
        elem: usize,
        runs: &[Vec<(usize, usize)>],
    ) -> Result<(), RunError> {
        let ngpus = self.cfg.ngpus;
        // Staging buffers come from the pool the caller lent the run
        // (engine-lifetime under `Engine`): iterative programs reconcile
        // the same arrays every superstep, and reusing capacity keeps
        // the per-launch allocation count flat.
        let mut pool = std::mem::take(self.staging);
        let mut staged: Vec<Vec<u8>> = vec![Vec::new(); ngpus];
        for g in 0..ngpus {
            if runs[g].is_empty() {
                continue;
            }
            let ga = &self.arrays[arr].gpu[g];
            let wlo = ga.window.0;
            let sb = self.machine.gpus[g]
                .memory
                .get(ga.handle.expect("dirty source window"))?;
            let bytes = sb.bytes();
            let total: usize = runs[g].iter().map(|&(lo, hi)| (hi - lo) * elem).sum();
            let mut buf = pool.take(total);
            for &(lo, hi) in &runs[g] {
                let off = (lo as i64 - wlo) as usize * elem;
                buf.extend_from_slice(&bytes[off..off + (hi - lo) * elem]);
            }
            staged[g] = buf;
        }

        let views: Vec<(i64, Option<BufferHandle>)> = (0..ngpus)
            .map(|h| {
                let ga = &self.arrays[arr].gpu[h];
                (ga.window.0, ga.handle)
            })
            .collect();
        let staged_ref = &staged;
        let gpus = &mut self.machine.gpus[..ngpus];
        let results: Vec<Result<(), RunError>> = std::thread::scope(|s| {
            let workers: Vec<_> = gpus
                .iter_mut()
                .enumerate()
                .map(|(h, gpu)| {
                    let (wlo, handle) = views[h];
                    // Idle GPUs without a replica spawn no worker.
                    handle.map(|handle| {
                        s.spawn(move || -> Result<(), RunError> {
                            let db = gpu.memory.get_mut(handle)?;
                            let dbytes = db.bytes_mut();
                            for g in (0..staged_ref.len()).rev() {
                                if runs[g].is_empty() {
                                    continue;
                                }
                                let mut cursor = 0usize;
                                for &(lo, hi) in &runs[g] {
                                    let nb = (hi - lo) * elem;
                                    let off = (lo as i64 - wlo) as usize * elem;
                                    dbytes[off..off + nb]
                                        .copy_from_slice(&staged_ref[g][cursor..cursor + nb]);
                                    cursor += nb;
                                }
                            }
                            Ok(())
                        })
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| match w {
                    Some(w) => w.join().expect("replica-sync worker panicked"),
                    None => Ok(()),
                })
                .collect()
        });
        pool.put_back(staged);
        *self.staging = pool;
        for r in results {
            r?;
        }
        Ok(())
    }

    /// §IV-D2: route buffered write-miss records to their owners and
    /// replay them there.
    fn replay_misses(
        &mut self,
        ck: &CompiledKernel,
        kbuf: usize,
        bi: &ArrLaunch,
        misses: &[Vec<MissRecord>],
        t2: f64,
    ) -> Result<f64, RunError> {
        let ngpus = self.cfg.ngpus;
        let elem = self.arrays[bi.arr].elem();
        let router = OwnerRouter::new(&bi.own[..ngpus]);
        let mut end = t2;
        for g in 0..ngpus {
            // Records for this buffer from GPU g, batched by owner.
            let mut by_owner: Vec<Vec<&MissRecord>> = vec![Vec::new(); ngpus];
            let mut any = false;
            for r in misses.get(g).map(|v| v.as_slice()).unwrap_or(&[]) {
                if r.buf as usize != kbuf {
                    continue;
                }
                let owner =
                    router
                        .route(r.idx)
                        .ok_or_else(|| RunError::MissOutsideCoverage {
                            array: ck.configs[kbuf].name.clone(),
                            idx: r.idx,
                        })?;
                by_owner[owner].push(r);
                any = true;
            }
            if !any {
                continue;
            }

            // Functional half: replay each owner's batch on its GPU.
            self.apply_miss_batches(&ck.configs[kbuf].name, bi, &by_owner)?;

            // Pricing half, per owner in ascending order.
            for (owner, recs) in by_owner.iter().enumerate() {
                if recs.is_empty() {
                    continue;
                }
                if owner == g {
                    // Shouldn't happen (local writes don't miss), but be
                    // robust: applied with no transfer.
                    self.rec.miss_replay(MissReplay {
                        launch: self.cur_launch,
                        array: ck.configs[kbuf].name.clone(),
                        src: g,
                        dst: owner,
                        records: recs.len() as u64,
                        bytes: 0,
                        start: t2,
                        end: t2,
                    });
                    continue;
                }
                let bytes = (recs.len() * (8 + elem)) as u64;
                let (s, e) =
                    self.machine
                        .bus
                        .transfer(Endpoint::Gpu(g), Endpoint::Gpu(owner), bytes, t2);
                self.rec.transfer(TransferSpan {
                    kind: TransferKind::P2P,
                    array: ck.configs[kbuf].name.clone(),
                    bytes,
                    src: Some(g),
                    dst: Some(owner),
                    why: "miss",
                    start: s,
                    end: e,
                });
                // Completing the writes is a small kernel on the owner.
                let apply = self.machine.gpus[owner]
                    .spec
                    .local_copy_time((recs.len() * elem) as u64);
                self.rec.miss_replay(MissReplay {
                    launch: self.cur_launch,
                    array: ck.configs[kbuf].name.clone(),
                    src: g,
                    dst: owner,
                    records: recs.len() as u64,
                    bytes,
                    start: s,
                    end: e + apply,
                });
                end = end.max(e + apply);
            }
        }
        Ok(end)
    }

    /// Apply per-owner miss batches to their owning GPUs — in parallel
    /// (owners are distinct GPUs, so their buffers are disjoint) or
    /// serially on the reference path. Within an owner, records apply in
    /// arrival order either way.
    fn apply_miss_batches(
        &mut self,
        array_name: &str,
        bi: &ArrLaunch,
        by_owner: &[Vec<&MissRecord>],
    ) -> Result<(), RunError> {
        let ngpus = self.cfg.ngpus;
        let views: Vec<(i64, Option<BufferHandle>)> = (0..ngpus)
            .map(|h| {
                let ga = &self.arrays[bi.arr].gpu[h];
                (ga.window.0, ga.handle)
            })
            .collect();

        let replay_one = |gpu: &mut Gpu,
                          wlo: i64,
                          handle: Option<BufferHandle>,
                          recs: &[&MissRecord]|
         -> Result<(), RunError> {
            let buf = gpu.memory.get_mut(handle.expect("owner window"))?;
            for r in recs {
                let local = r.idx - wlo;
                if local < 0 || local as usize >= buf.len() {
                    return Err(RunError::MissOutsideCoverage {
                        array: array_name.to_string(),
                        idx: r.idx,
                    });
                }
                let v: Value = r.value.cast(buf.ty());
                buf.set(local as usize, v);
            }
            Ok(())
        };

        if self.cfg.parallel_comm {
            let gpus = &mut self.machine.gpus[..ngpus];
            let results: Vec<Result<(), RunError>> = std::thread::scope(|s| {
                let workers: Vec<_> = gpus
                    .iter_mut()
                    .enumerate()
                    .map(|(owner, gpu)| {
                        let (wlo, handle) = views[owner];
                        let recs = &by_owner[owner];
                        (!recs.is_empty())
                            .then(|| s.spawn(move || replay_one(gpu, wlo, handle, recs)))
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| match w {
                        Some(w) => w.join().expect("miss-replay worker panicked"),
                        None => Ok(()),
                    })
                    .collect()
            });
            // First failing owner in ascending order, as the serial
            // schedule would report.
            for r in results {
                r?;
            }
        } else {
            for (owner, recs) in by_owner.iter().enumerate() {
                if recs.is_empty() {
                    continue;
                }
                let (wlo, handle) = views[owner];
                replay_one(&mut self.machine.gpus[owner], wlo, handle, recs)?;
            }
        }
        Ok(())
    }

    /// Inter-GPU level of the hierarchical reduction: binary-tree merge of
    /// the private copies into GPU 0.
    fn merge_reduction_copies(
        &mut self,
        bi: &ArrLaunch,
        op: RmwOp,
        t2: f64,
    ) -> Result<f64, RunError> {
        let ngpus = self.cfg.ngpus;
        let n = self.arrays[bi.arr].len;
        // Only GPUs that actually ran iterations hold a private copy
        // (GPU 0's live value or an identity fill). When the launch has
        // fewer iterations than GPUs the idle tail has neither — merging
        // it would fold never-initialised buffers into the result and
        // price transfers that never happen. Both splitters compact
        // empty ranges to the tail, so the active GPUs are a prefix.
        let k = bi.required[..ngpus]
            .iter()
            .take_while(|r| r.0 < r.1)
            .count();
        if k == 0 {
            return Ok(t2);
        }
        let end = if self.machine.bus.is_hierarchical() {
            self.merge_reduction_hierarchical(bi, op, t2, k)?
        } else {
            self.merge_reduction_flat(bi, op, t2, k)?
        };
        // GPU 0 now holds the merged result; other copies are garbage.
        let whole = crate::ranges::RangeSet::of(0, n as i64);
        for g in 0..ngpus {
            let ga = &mut self.arrays[bi.arr].gpu[g];
            ga.red_private = false;
            if g == 0 {
                ga.valid = whole.clone();
            } else {
                ga.valid.clear();
            }
        }
        Ok(end)
    }

    /// The seed's single-level stride-doubling tree over the active
    /// prefix — the schedule every flat (one-island) topology keeps.
    fn merge_reduction_flat(
        &mut self,
        bi: &ArrLaunch,
        op: RmwOp,
        t2: f64,
        k: usize,
    ) -> Result<f64, RunError> {
        let n = self.arrays[bi.arr].len;
        let elem = self.arrays[bi.arr].elem();
        let mut round_start = t2;
        let mut stride = 1usize;
        while stride < k {
            // Functional half: this round's (dst, src) = (g, g+stride)
            // pairs touch disjoint GPUs, so they can merge concurrently,
            // each as one typed slice pass over the private copies.
            if self.cfg.parallel_comm {
                self.merge_round_parallel(bi, op, stride, k)?;
            } else {
                // Reference path: staged per-element merge.
                let mut g = 0;
                while g + stride < k {
                    let src = g + stride;
                    let staged: Vec<Value> = {
                        let ga = &self.arrays[bi.arr].gpu[src];
                        let sb = self.machine.gpus[src].memory.get(ga.handle.expect("src"))?;
                        sb.iter().collect()
                    };
                    let ga = &self.arrays[bi.arr].gpu[g];
                    let db = self.machine.gpus[g]
                        .memory
                        .get_mut(ga.handle.expect("dst"))?;
                    for (i, v) in staged.iter().enumerate() {
                        let merged = rmw_apply(op, db.get(i), *v)?;
                        db.set(i, merged);
                    }
                    g += stride * 2;
                }
            }

            // Pricing half, serial in pair order.
            let mut round_end = round_start;
            let mut g = 0;
            while g + stride < k {
                let src = g + stride;
                let bytes = (n * elem) as u64;
                let (s, e) =
                    self.machine
                        .bus
                        .transfer(Endpoint::Gpu(src), Endpoint::Gpu(g), bytes, round_start);
                self.rec.transfer(TransferSpan {
                    kind: TransferKind::P2P,
                    array: self.prog.array_params[bi.arr].0.clone(),
                    bytes,
                    src: Some(src),
                    dst: Some(g),
                    why: "reduce",
                    start: s,
                    end: e,
                });
                let combine = self.machine.gpus[g].spec.local_copy_time(bytes);
                self.rec.reduction_merge(ReductionMerge {
                    launch: self.cur_launch,
                    array: self.prog.array_params[bi.arr].0.clone(),
                    src,
                    dst: g,
                    bytes,
                    start: s,
                    end: e + combine,
                });
                round_end = round_end.max(e + combine);
                g += stride * 2;
            }
            round_start = round_end;
            stride *= 2;
        }
        Ok(round_start)
    }

    /// Topology-aware reduction merge: a stride-doubling tree within
    /// each island onto the island leader (its lowest GPU), then across
    /// each node's island leaders onto the node leader, then across node
    /// leaders onto GPU 0 — so only one transfer per island crosses the
    /// root complex and only one per node crosses the fabric, instead of
    /// the flat tree's root-saturating first round. Groups at the same
    /// level occupy disjoint GPUs and price concurrently from the level
    /// barrier. Combine order differs from the flat tree, which is
    /// observable only as floating-point rounding; the schedule is gated
    /// on [`Topology::is_hierarchical`], so flat presets stay
    /// bit-identical to the seed.
    ///
    /// [`Topology::is_hierarchical`]: acc_gpusim::Topology::is_hierarchical
    fn merge_reduction_hierarchical(
        &mut self,
        bi: &ArrLaunch,
        op: RmwOp,
        t2: f64,
        k: usize,
    ) -> Result<f64, RunError> {
        let gpi = self.machine.bus.gpus_per_island;
        let gpn = self.machine.bus.gpus_per_node;
        // Level 1: each island's active members fold onto its leader.
        let mut island_leaders: Vec<usize> = Vec::new();
        let mut level_end = t2;
        let mut start = 0usize;
        while start < k {
            let members: Vec<usize> = (start..k.min(start.saturating_add(gpi))).collect();
            island_leaders.push(members[0]);
            if members.len() > 1 {
                let e = self.merge_group(bi, op, &members, "intra-island", t2)?;
                level_end = level_end.max(e);
            }
            start = start.saturating_add(gpi);
        }
        // Level 2: each node's island leaders fold onto the node leader.
        let t = level_end;
        let mut node_leaders: Vec<usize> = Vec::new();
        let mut level_end = t;
        let mut i = 0usize;
        while i < island_leaders.len() {
            let node = island_leaders[i] / gpn;
            let mut group = Vec::new();
            while i < island_leaders.len() && island_leaders[i] / gpn == node {
                group.push(island_leaders[i]);
                i += 1;
            }
            node_leaders.push(group[0]);
            if group.len() > 1 {
                let e = self.merge_group(bi, op, &group, "inter-island", t)?;
                level_end = level_end.max(e);
            }
        }
        // Level 3: node leaders fold onto GPU 0 over the fabric.
        if node_leaders.len() > 1 {
            level_end = self.merge_group(bi, op, &node_leaders, "inter-node", level_end)?;
        }
        Ok(level_end)
    }

    /// Stride-doubling tree merge of the private copies on `gpus` (all
    /// active) onto `gpus[0]`, priced from `t`. Each pairwise merge is a
    /// typed-slice [`rmw_apply_slice`] pass plus one bus transfer, and
    /// emits a [`CollectiveRound`] tagged with the topology `level`.
    fn merge_group(
        &mut self,
        bi: &ArrLaunch,
        op: RmwOp,
        gpus: &[usize],
        level: &'static str,
        t: f64,
    ) -> Result<f64, RunError> {
        let n = self.arrays[bi.arr].len;
        let elem = self.arrays[bi.arr].elem();
        let bytes = (n * elem) as u64;
        let name = self.prog.array_params[bi.arr].0.clone();
        let mut round_start = t;
        let mut stride = 1usize;
        while stride < gpus.len() {
            let mut round_end = round_start;
            let mut i = 0usize;
            while i + stride < gpus.len() {
                let (dst, src) = (gpus[i], gpus[i + stride]);
                // Functional half: same typed-slice pass under either
                // `parallel_comm` setting — the hierarchical schedule is
                // new, so it has no serial reference order to reproduce.
                let staged: Vec<u8> = {
                    let ga = &self.arrays[bi.arr].gpu[src];
                    let sb = self.machine.gpus[src].memory.get(ga.handle.expect("src"))?;
                    let mut buf = self.staging.take_scratch(sb.bytes().len());
                    buf.extend_from_slice(sb.bytes());
                    buf
                };
                {
                    let ga = &self.arrays[bi.arr].gpu[dst];
                    let db = self.machine.gpus[dst]
                        .memory
                        .get_mut(ga.handle.expect("dst"))?;
                    let ty = db.ty();
                    rmw_apply_slice(op, ty, db.bytes_mut(), &staged);
                }
                self.staging.put_back_scratch(staged);
                // Pricing half.
                let (s, e) = self.machine.bus.transfer(
                    Endpoint::Gpu(src),
                    Endpoint::Gpu(dst),
                    bytes,
                    round_start,
                );
                self.rec.transfer(TransferSpan {
                    kind: TransferKind::P2P,
                    array: name.clone(),
                    bytes,
                    src: Some(src),
                    dst: Some(dst),
                    why: "reduce",
                    start: s,
                    end: e,
                });
                let combine = self.machine.gpus[dst].spec.local_copy_time(bytes);
                self.rec.collective_round(CollectiveRound {
                    launch: self.cur_launch,
                    array: name.clone(),
                    level,
                    src,
                    dst,
                    bytes,
                    start: s,
                    end: e + combine,
                });
                round_end = round_end.max(e + combine);
                i += stride * 2;
            }
            round_start = round_end;
            stride *= 2;
        }
        Ok(round_start)
    }

    /// One binary-tree round of reduction merges, host-parallel: split
    /// the GPU slice into `2*stride`-wide chunks; each chunk's leading
    /// pair merges on its own thread through disjoint `&mut` borrows,
    /// with `rmw_apply_slice` doing the element math in one typed pass.
    fn merge_round_parallel(
        &mut self,
        bi: &ArrLaunch,
        op: RmwOp,
        stride: usize,
        k: usize,
    ) -> Result<(), RunError> {
        let handles: Vec<Option<BufferHandle>> = (0..k)
            .map(|g| self.arrays[bi.arr].gpu[g].handle)
            .collect();
        let handles = &handles;
        let gpus = &mut self.machine.gpus[..k];
        let results: Vec<Result<(), RunError>> = std::thread::scope(|s| {
            let workers: Vec<_> = gpus
                .chunks_mut(stride * 2)
                .enumerate()
                .map(|(chunk_idx, chunk)| {
                    if chunk.len() <= stride {
                        return None; // no partner in this round
                    }
                    let g = chunk_idx * stride * 2;
                    let (dhandle, shandle) = (handles[g], handles[g + stride]);
                    Some(s.spawn(move || -> Result<(), RunError> {
                        let (dst_half, src_half) = chunk.split_at_mut(stride);
                        let sb = src_half[0].memory.get(shandle.expect("src"))?;
                        let db = dst_half[0].memory.get_mut(dhandle.expect("dst"))?;
                        let ty = db.ty();
                        debug_assert_eq!(ty, sb.ty(), "private copies disagree on type");
                        rmw_apply_slice(op, ty, db.bytes_mut(), sb.bytes());
                        Ok(())
                    }))
                })
                .collect();
            workers
                .into_iter()
                .map(|w| match w {
                    Some(w) => w.join().expect("reduction-merge worker panicked"),
                    None => Ok(()),
                })
                .collect()
        });
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Copy elements `[lo, hi)` (global) of an array from GPU `src`'s
    /// buffer into GPU `dst`'s buffer — the functional half of a replica
    /// update on the serial reference path (bytes are priced separately
    /// at chunk granularity).
    fn copy_elements_between_gpus(
        &mut self,
        arr: usize,
        src: usize,
        dst: usize,
        lo: i64,
        hi: i64,
    ) -> Result<(), RunError> {
        let elem = self.arrays[arr].elem();
        let staged: Vec<u8> = {
            let ga = &self.arrays[arr].gpu[src];
            let sb = self.machine.gpus[src].memory.get(ga.handle.expect("src"))?;
            let off = (lo - ga.window.0) as usize * elem;
            let bytes = &sb.bytes()[off..off + (hi - lo) as usize * elem];
            let mut buf = self.staging.take_scratch(bytes.len());
            buf.extend_from_slice(bytes);
            buf
        };
        let ga = &self.arrays[arr].gpu[dst];
        let db = self.machine.gpus[dst]
            .memory
            .get_mut(ga.handle.expect("dst"))?;
        let off = (lo - ga.window.0) as usize * elem;
        db.bytes_mut()[off..off + staged.len()].copy_from_slice(&staged);
        self.staging.put_back_scratch(staged);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::OwnerRouter;

    #[test]
    fn router_routes_contiguous_partitions() {
        // Uneven but contiguous: the resolve_bindings shape.
        let own = [(0i64, 34), (34, 67), (67, 100)];
        let r = OwnerRouter::new(&own);
        assert!(r.contiguous);
        for idx in 0..100 {
            let want = own.iter().position(|w| w.0 <= idx && idx < w.1);
            assert_eq!(r.route(idx), want, "idx {idx}");
        }
        assert_eq!(r.route(-1), None);
        assert_eq!(r.route(100), None);
    }

    #[test]
    fn router_handles_empty_suffix() {
        // ngpus > iterations: trailing GPUs own nothing.
        let own = [(0i64, 2), (2, 3), (0, 0), (0, 0)];
        let r = OwnerRouter::new(&own);
        assert!(r.contiguous);
        assert_eq!(r.route(0), Some(0));
        assert_eq!(r.route(2), Some(1));
        assert_eq!(r.route(3), None);
    }

    #[test]
    fn router_falls_back_on_gaps() {
        let own = [(0i64, 2), (5, 9)];
        let r = OwnerRouter::new(&own);
        assert!(!r.contiguous);
        assert_eq!(r.route(1), Some(0));
        assert_eq!(r.route(3), None);
        assert_eq!(r.route(6), Some(1));
    }

    #[test]
    fn router_handles_all_empty() {
        let own = [(0i64, 0), (0, 0)];
        let r = OwnerRouter::new(&own);
        assert_eq!(r.route(0), None);
    }
}
