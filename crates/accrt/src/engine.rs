//! The reusable, `Send`-shareable runtime engine.
//!
//! [`run_program`](crate::run_program) is one-shot: compile elsewhere,
//! run once, throw the runtime state away. A serving workload (the
//! `acc-serve` daemon) instead wants **compile-once / run-many** across
//! many concurrent tenants. [`Engine`] is that handle:
//!
//! * **compilation cache** — [`Engine::compile`] is keyed first on the
//!   `(source, function, options)` request and then on the hash of the
//!   compiled IR, so textually different requests that lower to the same
//!   program still share one [`CompiledKernel`] (and its mapper
//!   history). Repeat requests return the same `Arc` without invoking
//!   the compiler;
//! * **shared mapper history** — each cached program carries one
//!   `TaskMapper` behind a lock. Under
//!   [`Schedule::CostModel`](crate::Schedule) the per-GPU costs one
//!   job measures feed the split of the next job running the same
//!   program — StarPU-style history that only pays off when it is
//!   shared. Under the default [`Schedule::Equal`](crate::Schedule) the
//!   mapper is never consulted, so sharing cannot change results and
//!   every launch stays bit-identical to [`run_program`](crate::run_program);
//! * **allocation pooling** — the per-run scratch
//!   (`comm::StagingPool`: replica staging, loader scratch, write-miss
//!   buffers) is checked out per job and back in afterwards, so a warm
//!   engine stops allocating;
//! * **machine-per-job** — [`Engine::launch`] builds a fresh simulated
//!   [`Machine`] for each job, which is what makes `&self` launches
//!   safe to run from many threads at once.
//!
//! `Engine` is `Send + Sync`; wrap it in an `Arc` and launch from as
//! many threads as you like.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use acc_compiler::{compile_source, CompileOptions, CompiledProgram};
use acc_gpusim::{Machine, MachineKind};

use crate::comm::StagingPool;
use crate::mapper::{SharedMapper, TaskMapper};
use crate::{run_with, ExecConfig, RunError, RunReport};

/// 64-bit FNV-1a — the repo's no-dependency stable hash.
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ("ab","c") and ("a","bc") hash apart.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cached compiled program plus the cross-request state that rides
/// with it: its IR hash (the cache identity) and its shared mapper
/// history.
///
/// Dereferences to [`CompiledProgram`], so anything that inspects a
/// program (`localaccess_ratio()`, `kernels`, …) works on a
/// `CompiledKernel` unchanged.
#[derive(Debug)]
pub struct CompiledKernel {
    prog: CompiledProgram,
    ir_hash: u64,
    mapper: SharedMapper,
}

impl CompiledKernel {
    /// Wrap an already-compiled program (no engine involved — useful
    /// for tests and for adopting programs compiled elsewhere).
    pub fn from_program(prog: CompiledProgram) -> CompiledKernel {
        let ir_hash = ir_hash_of(&prog);
        let mapper = TaskMapper::shared(prog.kernels.len());
        CompiledKernel {
            prog,
            ir_hash,
            mapper,
        }
    }

    /// Hash of the compiled IR — the compilation-cache identity. Two
    /// requests whose sources lower to the same program get the same
    /// hash (and, through an [`Engine`], the same `Arc`).
    pub fn ir_hash(&self) -> u64 {
        self.ir_hash
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    pub(crate) fn mapper(&self) -> SharedMapper {
        Arc::clone(&self.mapper)
    }
}

impl Deref for CompiledKernel {
    type Target = CompiledProgram;
    fn deref(&self) -> &CompiledProgram {
        &self.prog
    }
}

/// Stable hash of a compiled program's IR. The IR types don't implement
/// `Hash`, but they all derive `Debug` with full structural detail, and
/// the `Debug` rendering is deterministic — hash that.
fn ir_hash_of(prog: &CompiledProgram) -> u64 {
    fnv1a64(&[format!("{prog:?}").as_bytes()])
}

/// Cache + pool state behind the engine's lock.
#[derive(Default)]
struct EngineInner {
    /// Request cache: `(source, function, options)` hash → kernel.
    by_request: HashMap<u64, Arc<CompiledKernel>>,
    /// IR cache: compiled-IR hash → kernel (dedups textually different
    /// requests that lower identically).
    by_ir: HashMap<u64, Arc<CompiledKernel>>,
    /// Idle scratch pools, checked out one per in-flight launch.
    pools: Vec<StagingPool>,
}

/// Counters for cache effectiveness and pool behaviour.
///
/// `cache_hit_rate()` is hits over lookups; a serving workload running
/// repeated jobs should sit well above 0.9.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// `compile` calls that invoked the compiler.
    pub compiles: u64,
    /// `compile` calls answered from the request cache.
    pub cache_hits: u64,
    /// Compiler invocations whose output deduplicated against an
    /// already-cached identical IR.
    pub ir_dedups: u64,
    /// Completed `launch` calls (success or failure).
    pub launches: u64,
    /// Launches that reused a warm scratch pool instead of creating one.
    pub pool_reuses: u64,
}

impl EngineStats {
    /// Fraction of `compile` lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.compiles;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// The long-lived, thread-shareable runtime handle (see the module
/// docs). Construct once, share behind an `Arc`, and call
/// [`Engine::compile`] / [`Engine::launch`] from any thread.
pub struct Engine {
    kind: MachineKind,
    cfg: ExecConfig,
    inner: Mutex<EngineInner>,
    compiles: AtomicU64,
    cache_hits: AtomicU64,
    ir_dedups: AtomicU64,
    launches: AtomicU64,
    pool_reuses: AtomicU64,
}

impl Engine {
    /// An engine whose jobs run on fresh machines of `kind` with the
    /// given default configuration (overridable per launch with
    /// [`Engine::launch_with`]).
    pub fn new(kind: MachineKind, cfg: ExecConfig) -> Engine {
        Engine {
            kind,
            cfg,
            inner: Mutex::new(EngineInner::default()),
            compiles: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            ir_dedups: AtomicU64::new(0),
            launches: AtomicU64::new(0),
            pool_reuses: AtomicU64::new(0),
        }
    }

    /// The machine kind each [`Engine::launch`] job runs on.
    pub fn machine_kind(&self) -> MachineKind {
        self.kind
    }

    /// The default launch configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Compile `source`, or return the cached kernel if this request
    /// (or any request lowering to the same IR) was compiled before.
    /// The hit path returns the same `Arc`, so pointer equality holds
    /// across tenants.
    pub fn compile(
        &self,
        source: &str,
        function: &str,
        options: &CompileOptions,
    ) -> Result<Arc<CompiledKernel>, RunError> {
        self.compile_entry(source, function, options).map(|(ck, _)| ck)
    }

    /// [`Engine::compile`] plus a flag saying whether this exact
    /// request was served from the cache (`true`) or had to run the
    /// compiler (`false`, including the IR-dedup case). `acc-serve`
    /// uses the flag for per-job cache-hit accounting.
    pub fn compile_entry(
        &self,
        source: &str,
        function: &str,
        options: &CompileOptions,
    ) -> Result<(Arc<CompiledKernel>, bool), RunError> {
        let key = fnv1a64(&[
            source.as_bytes(),
            function.as_bytes(),
            format!("{options:?}").as_bytes(),
        ]);
        {
            let inner = self.inner.lock().expect("engine lock poisoned");
            if let Some(ck) = inner.by_request.get(&key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(ck), true));
            }
        }
        // Compile outside the lock: concurrent misses on different
        // sources shouldn't serialise on the compiler.
        let prog = compile_source(source, function, options).map_err(RunError::Compile)?;
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let ir_hash = ir_hash_of(&prog);
        let mut inner = self.inner.lock().expect("engine lock poisoned");
        // A racing thread may have finished the same compile first; the
        // IR map keeps exactly one kernel per distinct program either
        // way.
        let ck = match inner.by_ir.get(&ir_hash) {
            Some(existing) => {
                self.ir_dedups.fetch_add(1, Ordering::Relaxed);
                Arc::clone(existing)
            }
            None => {
                let ck = Arc::new(CompiledKernel {
                    mapper: TaskMapper::shared(prog.kernels.len()),
                    ir_hash,
                    prog,
                });
                inner.by_ir.insert(ir_hash, Arc::clone(&ck));
                ck
            }
        };
        inner.by_request.insert(key, Arc::clone(&ck));
        Ok((ck, false))
    }

    /// Adopt an already-compiled program into the cache (deduplicated
    /// by IR hash) — the path for callers that drive the compiler
    /// themselves but still want shared launches.
    pub fn insert(&self, prog: CompiledProgram) -> Arc<CompiledKernel> {
        let ir_hash = ir_hash_of(&prog);
        let mut inner = self.inner.lock().expect("engine lock poisoned");
        match inner.by_ir.get(&ir_hash) {
            Some(existing) => {
                self.ir_dedups.fetch_add(1, Ordering::Relaxed);
                Arc::clone(existing)
            }
            None => {
                let ck = Arc::new(CompiledKernel {
                    mapper: TaskMapper::shared(prog.kernels.len()),
                    ir_hash,
                    prog,
                });
                inner.by_ir.insert(ir_hash, Arc::clone(&ck));
                ck
            }
        }
    }

    /// Run one job on a fresh machine with the engine's default
    /// configuration. Takes `&self`: any number of launches may be in
    /// flight concurrently.
    pub fn launch(
        &self,
        kernel: &CompiledKernel,
        scalars: Vec<acc_kernel_ir::Value>,
        arrays: Vec<acc_kernel_ir::Buffer>,
    ) -> Result<RunReport, RunError> {
        let cfg = self.cfg.clone();
        self.launch_with(kernel, &cfg, scalars, arrays)
    }

    /// [`Engine::launch`] with a per-job configuration override (GPU
    /// count, schedule, tracing, …).
    pub fn launch_with(
        &self,
        kernel: &CompiledKernel,
        cfg: &ExecConfig,
        scalars: Vec<acc_kernel_ir::Value>,
        arrays: Vec<acc_kernel_ir::Buffer>,
    ) -> Result<RunReport, RunError> {
        let mut machine = Machine::with_kind(self.kind);
        self.launch_on(kernel, &mut machine, cfg, scalars, arrays)
    }

    /// [`Engine::launch`] on a caller-provided machine (reset first).
    /// Still draws scratch from the engine's pools and feeds the
    /// kernel's shared mapper history.
    pub fn launch_on(
        &self,
        kernel: &CompiledKernel,
        machine: &mut Machine,
        cfg: &ExecConfig,
        scalars: Vec<acc_kernel_ir::Value>,
        arrays: Vec<acc_kernel_ir::Buffer>,
    ) -> Result<RunReport, RunError> {
        let mut pool = {
            let mut inner = self.inner.lock().expect("engine lock poisoned");
            inner.pools.pop()
        }
        .inspect(|_| {
            self.pool_reuses.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap_or_default();
        let result = run_with(
            machine,
            cfg,
            &kernel.prog,
            scalars,
            arrays,
            kernel.mapper(),
            &mut pool,
        );
        self.inner
            .lock()
            .expect("engine lock poisoned")
            .pools
            .push(pool);
        self.launches.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Snapshot the cache/pool counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            ir_dedups: self.ir_dedups.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            pool_reuses: self.pool_reuses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
void scale(int n, double *a) {
    #pragma acc data copy(a[0:n])
    {
        #pragma acc parallel loop
        for (int i = 0; i < n; i++) {
            a[i] = a[i] * 2.0;
        }
    }
}
"#;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn engine_is_send_and_sync() {
        assert_send_sync::<Engine>();
        assert_send_sync::<CompiledKernel>();
    }

    #[test]
    fn compile_cache_returns_the_same_arc() {
        let eng = Engine::new(MachineKind::Desktop, ExecConfig::gpus(2));
        let opts = CompileOptions::proposal();
        let a = eng.compile(SRC, "scale", &opts).unwrap();
        let b = eng.compile(SRC, "scale", &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.ir_hash(), b.ir_hash());
        let s = eng.stats();
        assert_eq!(s.compiles, 1);
        assert_eq!(s.cache_hits, 1);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn textually_different_requests_dedup_on_ir() {
        let eng = Engine::new(MachineKind::Desktop, ExecConfig::gpus(2));
        let opts = CompileOptions::proposal();
        let a = eng.compile(SRC, "scale", &opts).unwrap();
        // A trailing comment changes the request key but not the IR.
        let src2 = format!("{SRC}\n// cosmetic change\n");
        let b = eng.compile(&src2, "scale", &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same IR must share one kernel");
        assert_eq!(eng.stats().ir_dedups, 1);
    }

    #[test]
    fn compile_errors_are_typed() {
        let eng = Engine::new(MachineKind::Desktop, ExecConfig::gpus(1));
        let err = eng
            .compile("void broken(", "broken", &CompileOptions::proposal())
            .unwrap_err();
        assert!(matches!(err, RunError::Compile(_)));
        assert_eq!(err.code(), "ACC-R010");
    }
}
