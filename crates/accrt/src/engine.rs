//! The reusable, `Send`-shareable runtime engine.
//!
//! [`run_program`](crate::run_program) is one-shot: compile elsewhere,
//! run once, throw the runtime state away. A serving workload (the
//! `acc-serve` daemon) instead wants **compile-once / run-many** across
//! many concurrent tenants. [`Engine`] is that handle:
//!
//! * **compilation cache** — [`Engine::compile`] is keyed first on the
//!   `(source, function, options)` request and then on the hash of the
//!   compiled IR, so textually different requests that lower to the same
//!   program still share one [`CompiledKernel`] (and its mapper
//!   history). Repeat requests return the same `Arc` without invoking
//!   the compiler;
//! * **shared mapper history** — each cached program carries one
//!   `TaskMapper` behind a lock. Under
//!   [`Schedule::CostModel`](crate::Schedule) the per-GPU costs one
//!   job measures feed the split of the next job running the same
//!   program — StarPU-style history that only pays off when it is
//!   shared. Under the default [`Schedule::Equal`](crate::Schedule) the
//!   mapper is never consulted, so sharing cannot change results and
//!   every launch stays bit-identical to [`run_program`](crate::run_program);
//! * **allocation pooling** — the per-run scratch
//!   (`comm::StagingPool`: replica staging, loader scratch, write-miss
//!   buffers) is checked out per job and back in afterwards, so a warm
//!   engine stops allocating;
//! * **machine-per-job** — [`Engine::launch`] builds a fresh simulated
//!   [`Machine`] for each job, which is what makes `&self` launches
//!   safe to run from many threads at once.
//!
//! `Engine` is `Send + Sync`; wrap it in an `Arc` and launch from as
//! many threads as you like.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use acc_compiler::{compile_source, CompileOptions, CompiledProgram};
use acc_gpusim::{Machine, MachineKind};

use crate::comm::StagingPool;
use crate::mapper::{SharedMapper, TaskMapper};
use crate::{run_with, ExecConfig, RunError, RunReport};

/// 64-bit FNV-1a — the repo's no-dependency stable hash.
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ("ab","c") and ("a","bc") hash apart.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cached compiled program plus the cross-request state that rides
/// with it: its IR hash (the cache identity) and its shared mapper
/// history.
///
/// Dereferences to [`CompiledProgram`], so anything that inspects a
/// program (`localaccess_ratio()`, `kernels`, …) works on a
/// `CompiledKernel` unchanged.
#[derive(Debug)]
pub struct CompiledKernel {
    prog: CompiledProgram,
    ir_hash: u64,
    mapper: SharedMapper,
}

impl CompiledKernel {
    /// Wrap an already-compiled program (no engine involved — useful
    /// for tests and for adopting programs compiled elsewhere).
    pub fn from_program(prog: CompiledProgram) -> CompiledKernel {
        let ir_hash = ir_hash_of(&prog);
        let mapper = TaskMapper::shared(prog.kernels.len());
        CompiledKernel {
            prog,
            ir_hash,
            mapper,
        }
    }

    /// Hash of the compiled IR — the compilation-cache identity. Two
    /// requests whose sources lower to the same program get the same
    /// hash (and, through an [`Engine`], the same `Arc`).
    pub fn ir_hash(&self) -> u64 {
        self.ir_hash
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    pub(crate) fn mapper(&self) -> SharedMapper {
        Arc::clone(&self.mapper)
    }
}

impl Deref for CompiledKernel {
    type Target = CompiledProgram;
    fn deref(&self) -> &CompiledProgram {
        &self.prog
    }
}

/// Stable hash of a compiled program's IR. The IR types don't implement
/// `Hash`, but they all derive `Debug` with full structural detail, and
/// the `Debug` rendering is deterministic — hash that.
fn ir_hash_of(prog: &CompiledProgram) -> u64 {
    fnv1a64(&[format!("{prog:?}").as_bytes()])
}

/// One cached kernel plus its recency stamp for LRU eviction.
struct CacheEntry {
    kernel: Arc<CompiledKernel>,
    last_used: u64,
}

/// Cache + pool state behind the engine's lock.
#[derive(Default)]
struct EngineInner {
    /// Request cache: `(source, function, options)` hash → kernel. The
    /// options are part of the key, so e.g. an `optimize_kernels`
    /// recompile of the same source gets its own entry.
    by_request: HashMap<u64, CacheEntry>,
    /// IR cache: compiled-IR hash → kernel (dedups textually different
    /// requests that lower identically).
    by_ir: HashMap<u64, CacheEntry>,
    /// Monotonic recency clock shared by both maps.
    tick: u64,
    /// Idle scratch pools, checked out one per in-flight launch.
    pools: Vec<StagingPool>,
}

impl EngineInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Insert into a bounded cache map, evicting the least-recently-used
/// entry first when at capacity. Eviction only drops the map's `Arc`:
/// tenants still holding the kernel keep using it, and its shared
/// mapper history dies only when the last holder lets go.
fn insert_bounded(
    map: &mut HashMap<u64, CacheEntry>,
    key: u64,
    kernel: Arc<CompiledKernel>,
    tick: u64,
    cap: usize,
    evictions: &AtomicU64,
) {
    if !map.contains_key(&key) && map.len() >= cap.max(1) {
        // O(n) min-scan; the capacity is small (default 256) and
        // insertions only happen on compile misses.
        if let Some((&oldest, _)) = map.iter().min_by_key(|(_, e)| e.last_used) {
            map.remove(&oldest);
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
    map.insert(
        key,
        CacheEntry {
            kernel,
            last_used: tick,
        },
    );
}

/// Counters for cache effectiveness and pool behaviour.
///
/// `cache_hit_rate()` is hits over lookups; a serving workload running
/// repeated jobs should sit well above 0.9.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// `compile` calls that invoked the compiler.
    pub compiles: u64,
    /// `compile` calls answered from the request cache.
    pub cache_hits: u64,
    /// Compiler invocations whose output deduplicated against an
    /// already-cached identical IR.
    pub ir_dedups: u64,
    /// Completed `launch` calls (success or failure).
    pub launches: u64,
    /// Launches that reused a warm scratch pool instead of creating one.
    pub pool_reuses: u64,
    /// Cache entries dropped by the bounded LRU (request and IR maps
    /// together). A steadily climbing value under a steady tenant set
    /// means the capacity ([`Engine::with_cache_capacity`]) is too small
    /// and compiles are being redone.
    pub evictions: u64,
}

impl EngineStats {
    /// Fraction of `compile` lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.compiles;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// The long-lived, thread-shareable runtime handle (see the module
/// docs). Construct once, share behind an `Arc`, and call
/// [`Engine::compile`] / [`Engine::launch`] from any thread.
pub struct Engine {
    kind: MachineKind,
    cfg: ExecConfig,
    cache_capacity: usize,
    inner: Mutex<EngineInner>,
    compiles: AtomicU64,
    cache_hits: AtomicU64,
    ir_dedups: AtomicU64,
    launches: AtomicU64,
    pool_reuses: AtomicU64,
    evictions: AtomicU64,
}

/// Default bound on each compilation-cache map (requests and IRs are
/// capped independently).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

impl Engine {
    /// An engine whose jobs run on fresh machines of `kind` with the
    /// given default configuration (overridable per launch with
    /// [`Engine::launch_with`]).
    pub fn new(kind: MachineKind, cfg: ExecConfig) -> Engine {
        Engine {
            kind,
            cfg,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            inner: Mutex::new(EngineInner::default()),
            compiles: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            ir_dedups: AtomicU64::new(0),
            launches: AtomicU64::new(0),
            pool_reuses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Bound each compilation-cache map at `cap` entries (least
    /// recently used evicted first; clamped to at least 1). The default
    /// is [`DEFAULT_CACHE_CAPACITY`].
    pub fn with_cache_capacity(mut self, cap: usize) -> Engine {
        self.cache_capacity = cap.max(1);
        self
    }

    /// The machine kind each [`Engine::launch`] job runs on.
    pub fn machine_kind(&self) -> MachineKind {
        self.kind
    }

    /// The default launch configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Compile `source`, or return the cached kernel if this request
    /// (or any request lowering to the same IR) was compiled before.
    /// The hit path returns the same `Arc`, so pointer equality holds
    /// across tenants.
    pub fn compile(
        &self,
        source: &str,
        function: &str,
        options: &CompileOptions,
    ) -> Result<Arc<CompiledKernel>, RunError> {
        self.compile_entry(source, function, options).map(|(ck, _)| ck)
    }

    /// [`Engine::compile`] plus a flag saying whether this exact
    /// request was served from the cache (`true`) or had to run the
    /// compiler (`false`, including the IR-dedup case). `acc-serve`
    /// uses the flag for per-job cache-hit accounting.
    pub fn compile_entry(
        &self,
        source: &str,
        function: &str,
        options: &CompileOptions,
    ) -> Result<(Arc<CompiledKernel>, bool), RunError> {
        let key = fnv1a64(&[
            source.as_bytes(),
            function.as_bytes(),
            format!("{options:?}").as_bytes(),
        ]);
        {
            let mut inner = self.inner.lock().expect("engine lock poisoned");
            let tick = inner.next_tick();
            if let Some(e) = inner.by_request.get_mut(&key) {
                e.last_used = tick;
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&e.kernel), true));
            }
        }
        // Compile outside the lock: concurrent misses on different
        // sources shouldn't serialise on the compiler.
        let prog = compile_source(source, function, options).map_err(RunError::Compile)?;
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let ir_hash = ir_hash_of(&prog);
        let mut inner = self.inner.lock().expect("engine lock poisoned");
        let tick = inner.next_tick();
        // A racing thread may have finished the same compile first; the
        // IR map keeps exactly one kernel per distinct program either
        // way.
        let ck = match inner.by_ir.get_mut(&ir_hash) {
            Some(existing) => {
                existing.last_used = tick;
                self.ir_dedups.fetch_add(1, Ordering::Relaxed);
                Arc::clone(&existing.kernel)
            }
            None => {
                let ck = Arc::new(CompiledKernel {
                    mapper: TaskMapper::shared(prog.kernels.len()),
                    ir_hash,
                    prog,
                });
                insert_bounded(
                    &mut inner.by_ir,
                    ir_hash,
                    Arc::clone(&ck),
                    tick,
                    self.cache_capacity,
                    &self.evictions,
                );
                ck
            }
        };
        insert_bounded(
            &mut inner.by_request,
            key,
            Arc::clone(&ck),
            tick,
            self.cache_capacity,
            &self.evictions,
        );
        Ok((ck, false))
    }

    /// Adopt an already-compiled program into the cache (deduplicated
    /// by IR hash) — the path for callers that drive the compiler
    /// themselves but still want shared launches.
    pub fn insert(&self, prog: CompiledProgram) -> Arc<CompiledKernel> {
        let ir_hash = ir_hash_of(&prog);
        let mut inner = self.inner.lock().expect("engine lock poisoned");
        let tick = inner.next_tick();
        match inner.by_ir.get_mut(&ir_hash) {
            Some(existing) => {
                existing.last_used = tick;
                self.ir_dedups.fetch_add(1, Ordering::Relaxed);
                Arc::clone(&existing.kernel)
            }
            None => {
                let ck = Arc::new(CompiledKernel {
                    mapper: TaskMapper::shared(prog.kernels.len()),
                    ir_hash,
                    prog,
                });
                insert_bounded(
                    &mut inner.by_ir,
                    ir_hash,
                    Arc::clone(&ck),
                    tick,
                    self.cache_capacity,
                    &self.evictions,
                );
                ck
            }
        }
    }

    /// Run one job on a fresh machine with the engine's default
    /// configuration. Takes `&self`: any number of launches may be in
    /// flight concurrently.
    pub fn launch(
        &self,
        kernel: &CompiledKernel,
        scalars: Vec<acc_kernel_ir::Value>,
        arrays: Vec<acc_kernel_ir::Buffer>,
    ) -> Result<RunReport, RunError> {
        let cfg = self.cfg.clone();
        self.launch_with(kernel, &cfg, scalars, arrays)
    }

    /// [`Engine::launch`] with a per-job configuration override (GPU
    /// count, schedule, tracing, …).
    pub fn launch_with(
        &self,
        kernel: &CompiledKernel,
        cfg: &ExecConfig,
        scalars: Vec<acc_kernel_ir::Value>,
        arrays: Vec<acc_kernel_ir::Buffer>,
    ) -> Result<RunReport, RunError> {
        let mut machine = Machine::with_kind(self.kind);
        self.launch_on(kernel, &mut machine, cfg, scalars, arrays)
    }

    /// [`Engine::launch`] on a caller-provided machine (reset first).
    /// Still draws scratch from the engine's pools and feeds the
    /// kernel's shared mapper history.
    pub fn launch_on(
        &self,
        kernel: &CompiledKernel,
        machine: &mut Machine,
        cfg: &ExecConfig,
        scalars: Vec<acc_kernel_ir::Value>,
        arrays: Vec<acc_kernel_ir::Buffer>,
    ) -> Result<RunReport, RunError> {
        let mut pool = {
            let mut inner = self.inner.lock().expect("engine lock poisoned");
            inner.pools.pop()
        }
        .inspect(|_| {
            self.pool_reuses.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap_or_default();
        let result = run_with(
            machine,
            cfg,
            &kernel.prog,
            scalars,
            arrays,
            kernel.mapper(),
            &mut pool,
        );
        self.inner
            .lock()
            .expect("engine lock poisoned")
            .pools
            .push(pool);
        self.launches.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Snapshot the cache/pool counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            ir_dedups: self.ir_dedups.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            pool_reuses: self.pool_reuses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
void scale(int n, double *a) {
    #pragma acc data copy(a[0:n])
    {
        #pragma acc parallel loop
        for (int i = 0; i < n; i++) {
            a[i] = a[i] * 2.0;
        }
    }
}
"#;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn engine_is_send_and_sync() {
        assert_send_sync::<Engine>();
        assert_send_sync::<CompiledKernel>();
    }

    #[test]
    fn compile_cache_returns_the_same_arc() {
        let eng = Engine::new(MachineKind::Desktop, ExecConfig::gpus(2));
        let opts = CompileOptions::proposal();
        let a = eng.compile(SRC, "scale", &opts).unwrap();
        let b = eng.compile(SRC, "scale", &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.ir_hash(), b.ir_hash());
        let s = eng.stats();
        assert_eq!(s.compiles, 1);
        assert_eq!(s.cache_hits, 1);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn textually_different_requests_dedup_on_ir() {
        let eng = Engine::new(MachineKind::Desktop, ExecConfig::gpus(2));
        let opts = CompileOptions::proposal();
        let a = eng.compile(SRC, "scale", &opts).unwrap();
        // A trailing comment changes the request key but not the IR.
        let src2 = format!("{SRC}\n// cosmetic change\n");
        let b = eng.compile(&src2, "scale", &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same IR must share one kernel");
        assert_eq!(eng.stats().ir_dedups, 1);
    }

    /// `scale` source specialised per `i` so each request compiles to a
    /// distinct IR (the constant lands in the kernel body).
    fn variant(i: usize) -> String {
        format!(
            "void scale(int n, double *a) {{\n\
             #pragma acc data copy(a[0:n])\n\
             {{\n\
             #pragma acc parallel loop\n\
             for (int j = 0; j < n; j++) a[j] = a[j] * {i}.0;\n\
             }}\n\
             }}"
        )
    }

    #[test]
    fn lru_evicts_oldest_beyond_capacity() {
        let eng =
            Engine::new(MachineKind::Desktop, ExecConfig::gpus(1)).with_cache_capacity(2);
        let opts = CompileOptions::proposal();
        let a = eng.compile(&variant(2), "scale", &opts).unwrap();
        eng.compile(&variant(3), "scale", &opts).unwrap();
        // Touch the oldest so the middle one becomes LRU.
        eng.compile(&variant(2), "scale", &opts).unwrap();
        // Third distinct program: evicts variant(3) from both maps.
        eng.compile(&variant(4), "scale", &opts).unwrap();
        let s = eng.stats();
        assert_eq!(s.compiles, 3);
        assert_eq!(s.evictions, 2, "one request entry + one IR entry");
        // The touched program is still cached (same Arc)...
        let a2 = eng.compile(&variant(2), "scale", &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        // ...and the evicted one recompiles from scratch.
        let before = eng.stats().compiles;
        eng.compile(&variant(3), "scale", &opts).unwrap();
        assert_eq!(eng.stats().compiles, before + 1, "evicted entry must recompile");
    }

    #[test]
    fn optimizer_options_split_the_request_cache() {
        let eng = Engine::new(MachineKind::Desktop, ExecConfig::gpus(1));
        let plain = CompileOptions::proposal();
        let opt = CompileOptions {
            optimize_kernels: true,
            ..CompileOptions::proposal()
        };
        let a = eng.compile(SRC, "scale", &plain).unwrap();
        let b = eng.compile(SRC, "scale", &opt).unwrap();
        // Different options → different request entries and different
        // programs (the option is carried on the compiled program, so
        // the IRs differ too).
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!a.options.optimize_kernels && b.options.optimize_kernels);
        assert_eq!(eng.stats().compiles, 2);
        assert_eq!(eng.stats().ir_dedups, 0);
    }

    #[test]
    fn compile_errors_are_typed() {
        let eng = Engine::new(MachineKind::Desktop, ExecConfig::gpus(1));
        let err = eng
            .compile("void broken(", "broken", &CompileOptions::proposal())
            .unwrap_err();
        assert!(matches!(err, RunError::Compile(_)));
        assert_eq!(err.code(), "ACC-R010");
    }
}
