//! Execution-time breakdown, mirroring Fig. 8's categories.
//!
//! "Each execution time is divided into the time spent on the data
//! transfer between GPUs and GPUs (GPU-GPU), the time spent on the data
//! transfer between CPU and GPUs (CPU-GPU), and the actual execution time
//! of the GPU kernels (KERNELS)."

use acc_kernel_ir::OpCounters;

/// Accumulated simulated time per phase, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Kernel execution on the GPUs (or the CPU parallel regions for the
    /// OpenMP baseline).
    pub kernels: f64,
    /// Data-loader transfers between the CPU memory and GPU memories.
    pub cpu_gpu: f64,
    /// Communication-manager transfers between GPU memories.
    pub gpu_gpu: f64,
    /// Sequential host code between parallel regions.
    pub host: f64,
}

impl TimeBreakdown {
    /// Total simulated wall-clock.
    pub fn total(&self) -> f64 {
        self.kernels + self.cpu_gpu + self.gpu_gpu + self.host
    }

    /// Time inside parallel regions (what the paper's Fig. 7/8 measure):
    /// everything except sequential host code.
    pub fn parallel_region(&self) -> f64 {
        self.kernels + self.cpu_gpu + self.gpu_gpu
    }
}

/// Run-wide profiler: phase times, work counters, transfer volumes.
///
/// Times and event counters are **derived** from the run's structured
/// event stream (`acc_obs::Trace`) by [`Profiler::from_trace`] — the
/// event stream is the single source of truth; this struct is the
/// convenient scalar view of it. The `OpCounters` work totals come from
/// the interpreter and are merged in by the engine.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    pub time: TimeBreakdown,
    /// Aggregated kernel work counters over all launches and GPUs.
    pub kernel_counters: OpCounters,
    /// Aggregated host work counters.
    pub host_counters: OpCounters,
    /// Number of kernel launches (one per GPU per superstep counts once —
    /// this is the paper's Table II column C, "# of kernel executions").
    pub kernel_launches: usize,
    /// Bytes moved host→device and device→host by the data loader.
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    /// Bytes moved GPU→GPU by the communication manager.
    pub p2p_bytes: u64,
    /// Total write-miss records routed between GPUs.
    pub miss_records: u64,
    /// Dirty chunks shipped by the replica-sync path.
    pub dirty_chunks_sent: u64,
    /// Replica syncs skipped on static comm-elision facts.
    pub comm_elisions: u64,
    /// Estimated bytes those skipped syncs would have shipped.
    pub comm_elided_bytes: u64,
    /// `localaccess` annotations the compiler inferred and this run
    /// consumed in place of missing source annotations.
    pub inferred_annotations: u64,
    /// Staging buffers the replica-sync pool actually allocated (or
    /// grew); reuse keeps this near the GPU count for iterative programs.
    pub staging_allocs: u64,
    /// Loader/copy scratch buffers the pool actually allocated (or
    /// grew) during this run — window-grow moves, peer-sourced fills and
    /// the serial replica-copy reference path all draw from it.
    pub scratch_allocs: u64,
    /// Host wall-clock seconds spent inside the communication phase
    /// (functional work + pricing), as opposed to the *simulated*
    /// `time.gpu_gpu`. Filled by the engine, not derived from the trace.
    pub comm_wall_s: f64,
}

impl Profiler {
    /// Reset everything.
    pub fn reset(&mut self) {
        *self = Profiler::default();
    }

    /// Derive the time breakdown and event counters from a finished
    /// event stream. Work counters (`kernel_counters`/`host_counters`)
    /// are not in the stream and start at their defaults.
    pub fn from_trace(trace: &acc_obs::Trace) -> Profiler {
        let totals = trace.totals();
        let c = trace.counters();
        Profiler {
            time: TimeBreakdown {
                kernels: totals.kernels,
                cpu_gpu: totals.cpu_gpu,
                gpu_gpu: totals.gpu_gpu,
                host: totals.host,
            },
            kernel_counters: OpCounters::default(),
            host_counters: OpCounters::default(),
            kernel_launches: c.kernel_launches as usize,
            h2d_bytes: c.h2d_bytes,
            d2h_bytes: c.d2h_bytes,
            p2p_bytes: c.p2p_bytes,
            miss_records: c.miss_records,
            dirty_chunks_sent: c.dirty_chunks_sent,
            comm_elisions: c.comm_elisions,
            comm_elided_bytes: c.comm_elided_bytes,
            inferred_annotations: c.inferred_annotations,
            staging_allocs: 0,
            scratch_allocs: 0,
            comm_wall_s: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = TimeBreakdown {
            kernels: 1.0,
            cpu_gpu: 2.0,
            gpu_gpu: 3.0,
            host: 0.5,
        };
        assert_eq!(t.total(), 6.5);
        assert_eq!(t.parallel_region(), 6.0);
    }
}
