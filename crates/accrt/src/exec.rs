//! The host-program executor: walks the translated [`HostOp`] tree,
//! interprets sequential host code, and orchestrates BSP kernel launches
//! (loader phase → parallel kernel phase → communication phase → barrier,
//! paper §III-A Fig. 3).

use acc_compiler::{ArrayConfig, CompiledKernel, CompiledProgram, HostOp, ParamSrc, Placement};
use acc_compiler::affine::AccessPattern;
use acc_compiler::hostgen::CompiledClause;
use acc_gpusim::{Gpu, Machine};
use acc_kernel_ir as ir;
use acc_obs::{
    InferredAnnotation, LaunchSpan, MapperDecision, PhaseKind, Recorder, SanitizeEvent,
    WavefrontRound,
};
use ir::interp::{eval_host_expr, rmw_apply, run_host_block, run_kernel_range};
use ir::regvm::{launch_types_match, run_compiled, RegCompiled};
use ir::{
    BufSanitize, Buffer, BufSlot, DirtyMap, ExecCtx, Kernel, MissRecord, OpCounters,
    SanitizeKind, SanitizeRecord, Value,
};

use crate::mapper::SharedMapper;
use crate::profiler::Profiler;
use crate::state::{split_tasks, ArrayState};
use crate::{
    ExecConfig, ExecMode, GpuMemReport, KernelVm, RunError, RunReport, SanitizeLevel, Schedule,
};

/// Host-level control flow signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

/// Per-launch, per-array resolved placement information.
pub(crate) struct ArrLaunch {
    /// Program array index.
    pub arr: usize,
    /// Resolved placement for this launch.
    pub placement: Placement,
    /// Per-GPU required (to-load) global ranges.
    pub required: Vec<(i64, i64)>,
    /// Per-GPU owned global ranges (covering partition; used for checked
    /// stores and write-miss routing).
    pub own: Vec<(i64, i64)>,
    /// Per-GPU window to materialise.
    pub window: Vec<(i64, i64)>,
    /// Whether this kernel writes the array.
    pub writes: bool,
    /// Whether replica-sync dirty maps are needed.
    pub needs_dirty: bool,
    /// Runtime-sanitizer checks for this array (same on every GPU).
    pub sanitize: BufSanitize,
    /// Per-GPU element partitions a static comm-elision fact claims all
    /// of this launch's writes stay inside (`None`: no applicable fact —
    /// the replica sync runs normally).
    pub elide: Option<Vec<(i64, i64)>>,
    /// Whether this launch's loader-phase peer halo fills of the array
    /// are priced concurrently with the kernel phase (double-buffered
    /// overlap): the overlap knob is on, the sanitizer is not re-arming
    /// the synchronous path, and a compiler [`OverlapFact`] licensed it.
    pub overlap: bool,
}

/// What one GPU returns from its kernel job.
#[derive(Default)]
struct JobOut {
    counters: OpCounters,
    per_buf_bytes: Vec<(u64, u64)>,
    partials: Vec<Value>,
    misses: Vec<MissRecord>,
    dirty_back: Vec<Option<DirtyMap>>,
    sanitize_log: Vec<SanitizeRecord>,
    sanitize_hits: u64,
    ran: bool,
}


/// One GPU's kernel job: everything the worker thread needs, with the
/// dirty maps temporarily moved out of the engine state.
struct Job {
    tasks: (i64, i64),
    params: Vec<Value>,
    binds: Vec<JobBind>,
    miss_capacity: usize,
    /// Pooled write-miss buffer (capacity recycled across launches).
    miss_buf: Vec<MissRecord>,
    /// Per-buffer sanitizer config; empty disables sanitizing.
    sanitize: Vec<BufSanitize>,
}

struct JobBind {
    handle: acc_gpusim::BufferHandle,
    window_lo: i64,
    own: (i64, i64),
    dirty: Option<DirtyMap>,
}

/// One program execution in flight. Short-lived: borrows the machine,
/// the config and (since the [`Engine`](crate::Engine) redesign) the
/// scratch pool and the per-program mapper history from its caller —
/// [`run_program`](crate::run_program) lends fresh ones per call, a
/// long-lived `Engine` lends pooled/shared ones across jobs.
pub(crate) struct Run<'a> {
    pub machine: &'a mut Machine,
    pub cfg: &'a ExecConfig,
    pub prog: &'a CompiledProgram,
    pub locals: Vec<Value>,
    pub host_arrays: Vec<Buffer>,
    pub arrays: Vec<ArrayState>,
    /// The structured event stream; times and event counters are derived
    /// from it at the end of the run.
    pub rec: Recorder,
    /// Aggregated interpreter work counters (not part of the stream).
    pub kernel_counters: OpCounters,
    pub host_counters: OpCounters,
    /// Id of the launch currently executing (valid inside `launch`).
    pub cur_launch: u64,
    pub now: f64,
    /// Per-kernel split history for [`Schedule::CostModel`]; unused (and
    /// never consulted) under [`Schedule::Equal`]. Shared behind a lock
    /// so an `Engine` can carry one history across requests.
    mapper: SharedMapper,
    /// Reusable staging/scratch/miss buffers, lent by the caller (the
    /// replica-staging allocation count surfaces as
    /// `Profiler::staging_allocs`).
    pub(crate) staging: &'a mut crate::comm::StagingPool,
    /// Pool counter values at run start, so the profile reports this
    /// run's allocations even when the pool is warm from earlier jobs.
    base_staging_allocs: u64,
    base_scratch_allocs: u64,
    /// Host wall-clock seconds spent inside communication phases
    /// (including deferred elided syncs).
    pub(crate) comm_wall_s: f64,
    /// Per-kernel register-VM code, compiled lazily on the first launch
    /// that wants it and reused for the rest of the run (BFS-style apps
    /// relaunch the same kernel every iteration). Outer `None` = not yet
    /// attempted; `Some(None)` = the optimizer declined this kernel, use
    /// the bytecode path. `Arc` because GPU worker threads share it.
    reg_cache: Vec<Option<Option<std::sync::Arc<RegCompiled>>>>,
}

impl<'a> Run<'a> {
    pub fn new(
        machine: &'a mut Machine,
        cfg: &'a ExecConfig,
        prog: &'a CompiledProgram,
        scalars: Vec<Value>,
        host_arrays: Vec<Buffer>,
        mapper: SharedMapper,
        staging: &'a mut crate::comm::StagingPool,
    ) -> Run<'a> {
        let ngpus = if cfg.mode == ExecMode::Gpu {
            cfg.ngpus
        } else {
            0
        };
        let arrays = host_arrays
            .iter()
            .map(|b| ArrayState::new(b.ty(), b.len(), ngpus))
            .collect();
        let mut locals: Vec<Value> = prog.locals.iter().map(|(_, t)| t.zero()).collect();
        for (i, v) in scalars.into_iter().enumerate() {
            locals[i] = v;
        }
        let (base_staging_allocs, base_scratch_allocs) = (staging.allocs, staging.scratch_allocs);
        Run {
            machine,
            cfg,
            prog,
            locals,
            host_arrays,
            arrays,
            rec: Recorder::new(cfg.tracing),
            kernel_counters: OpCounters::default(),
            host_counters: OpCounters::default(),
            cur_launch: 0,
            now: 0.0,
            mapper,
            staging,
            base_staging_allocs,
            base_scratch_allocs,
            comm_wall_s: 0.0,
            reg_cache: vec![None; prog.kernels.len()],
        }
    }

    pub fn run(mut self) -> Result<RunReport, RunError> {
        let prog = self.prog;
        // Surface every inferred-and-consumed `localaccess` annotation as
        // a typed event up front: placement is a compile-time fact.
        for ck in &prog.kernels {
            for cfg in &ck.configs {
                if cfg.inferred_used {
                    let la = cfg
                        .localaccess
                        .as_ref()
                        .expect("inferred_used implies a localaccess");
                    self.rec.inferred_annotation(InferredAnnotation {
                        kernel: ck.kernel.name.clone(),
                        array: cfg.name.clone(),
                        pragma: acc_compiler::render_annotation(&cfg.name, la, &prog.locals),
                        at: 0.0,
                    });
                }
            }
        }
        self.exec_ops(&prog.host)?;
        // Sequential host time from the aggregate host counters, appended
        // to the timeline as one phase span (host statements interleave
        // with the simulated phases but are priced in aggregate).
        let host_time = self.machine.cpu.serial_time(&self.host_counters);
        self.rec
            .phase(None, PhaseKind::Host, self.now, self.now + host_time);
        let trace = self.rec.finish();
        let mut profile = Profiler::from_trace(&trace);
        profile.kernel_counters = self.kernel_counters;
        profile.host_counters = self.host_counters;
        profile.staging_allocs = self.staging.allocs - self.base_staging_allocs;
        profile.scratch_allocs = self.staging.scratch_allocs - self.base_scratch_allocs;
        profile.comm_wall_s = self.comm_wall_s;
        debug_assert_eq!(profile.h2d_bytes, self.machine.bus.h2d_bytes);
        debug_assert_eq!(profile.d2h_bytes, self.machine.bus.d2h_bytes);
        debug_assert_eq!(profile.p2p_bytes, self.machine.bus.p2p_bytes);
        let mem = self
            .machine
            .gpus
            .iter()
            .map(|g| {
                let (user_peak, system_peak) = g.memory.peak_by_class();
                GpuMemReport {
                    user_peak,
                    system_peak,
                }
            })
            .collect();
        Ok(RunReport {
            arrays: self.host_arrays,
            locals: self.locals,
            profile,
            mem,
            trace,
        })
    }

    // ---------------- host interpretation ----------------

    fn host_ctx<'b>(host_arrays: &'b mut [Buffer]) -> ExecCtx<'b> {
        let bufs: Vec<BufSlot<'b>> = host_arrays.iter_mut().map(BufSlot::whole).collect();
        let n = bufs.len();
        ExecCtx {
            params: Vec::new(),
            bufs,
            reduction_partials: Vec::new(),
            miss_buf: Vec::new(),
            miss_capacity: usize::MAX,
            counters: OpCounters::default(),
            per_buf_bytes: vec![(0, 0); n],
            sanitize: Vec::new(),
            sanitize_log: Vec::new(),
            sanitize_hits: 0,
        }
    }

    pub(crate) fn eval_host(&mut self, e: &ir::Expr) -> Result<Value, RunError> {
        let mut ctx = Self::host_ctx(&mut self.host_arrays);
        let v = eval_host_expr(e, &mut self.locals, &mut ctx)?;
        self.host_counters.merge(&ctx.counters);
        Ok(v)
    }

    pub(crate) fn eval_host_i64(&mut self, e: &ir::Expr) -> Result<i64, RunError> {
        self.eval_host(e)?
            .as_index()
            .ok_or_else(|| RunError::BadInputs("non-integer bound expression".into()))
    }

    fn eval_host_bool(&mut self, e: &ir::Expr) -> Result<bool, RunError> {
        self.eval_host(e)?
            .as_bool()
            .ok_or_else(|| RunError::BadInputs("non-boolean condition".into()))
    }

    fn exec_plain(&mut self, s: &ir::Stmt) -> Result<(), RunError> {
        let mut ctx = Self::host_ctx(&mut self.host_arrays);
        run_host_block(std::slice::from_ref(s), &mut self.locals, &mut ctx)?;
        self.host_counters.merge(&ctx.counters);
        Ok(())
    }

    fn exec_ops(&mut self, ops: &[HostOp]) -> Result<Flow, RunError> {
        for op in ops {
            match op {
                HostOp::Plain(ir::Stmt::Break) => return Ok(Flow::Break),
                HostOp::Plain(ir::Stmt::Continue) => return Ok(Flow::Continue),
                HostOp::Plain(s) => self.exec_plain(s)?,
                HostOp::If { cond, then_, else_ } => {
                    let c = self.eval_host_bool(cond)?;
                    let f = self.exec_ops(if c { then_ } else { else_ })?;
                    if f != Flow::Normal {
                        return Ok(f);
                    }
                }
                HostOp::While { cond, body } => loop {
                    if !self.eval_host_bool(cond)? {
                        break;
                    }
                    match self.exec_ops(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                    }
                },
                HostOp::DataEnter { region, clauses } => self.data_enter(*region, clauses)?,
                HostOp::DataExit { region } => self.data_exit(*region)?,
                HostOp::Launch { kernel } => self.launch(*kernel)?,
                HostOp::Update {
                    to_host,
                    to_device,
                } => self.update(to_host, to_device)?,
                HostOp::Return => return Ok(Flow::Return),
            }
        }
        Ok(Flow::Normal)
    }

    // ---------------- data regions / update ----------------

    fn data_enter(&mut self, region: usize, clauses: &[CompiledClause]) -> Result<(), RunError> {
        if self.cfg.mode == ExecMode::CpuParallel {
            return Ok(());
        }
        use acc_minic::directive::DataClauseKind as K;
        for c in clauses {
            for s in &c.sections {
                let range = match &s.range {
                    None => None,
                    Some((a, b)) => {
                        let lo = self.eval_host_i64(a)?;
                        let len = self.eval_host_i64(b)?;
                        Some((lo, lo + len))
                    }
                };
                let st = &mut self.arrays[s.array];
                if c.kind == K::Present && st.region_depth == 0 {
                    return Err(RunError::NotPresent(
                        self.prog.array_params[s.array].0.clone(),
                    ));
                }
                if st.region_depth == 0 {
                    st.init_from_host = matches!(c.kind, K::Copy | K::CopyIn | K::Present);
                }
                st.region_depth += 1;
                // Entries without a section only balance the depth at
                // exit; `copy`/`copyout` entries also flush the section
                // back to the host.
                let copyout_range = if matches!(c.kind, K::Copy | K::CopyOut) {
                    Some(range.unwrap_or((0, st.len as i64)))
                } else {
                    None
                };
                st.exit_stack.push((region, copyout_range));
            }
        }
        Ok(())
    }

    fn data_exit(&mut self, region: usize) -> Result<(), RunError> {
        if self.cfg.mode == ExecMode::CpuParallel {
            return Ok(());
        }
        let t0 = self.now;
        let mut end = t0;
        for arr in 0..self.arrays.len() {
            // Pop every obligation this region registered for the array.
            loop {
                let st = &mut self.arrays[arr];
                let Some(pos) = st.exit_stack.iter().rposition(|(r, _)| *r == region) else {
                    break;
                };
                let (_, copyout) = st.exit_stack.remove(pos);
                if let Some((lo, hi)) = copyout {
                    let e = self.flush_to_host(arr, lo, hi, t0)?;
                    end = end.max(e);
                }
                let st = &mut self.arrays[arr];
                st.region_depth -= 1;
                if st.region_depth == 0 {
                    self.free_array_devices(arr)?;
                }
            }
        }
        self.rec.phase(None, PhaseKind::Data, t0, end);
        self.now = end;
        Ok(())
    }

    fn update(
        &mut self,
        to_host: &[acc_compiler::hostgen::Section],
        to_device: &[acc_compiler::hostgen::Section],
    ) -> Result<(), RunError> {
        if self.cfg.mode == ExecMode::CpuParallel {
            return Ok(());
        }
        let t0 = self.now;
        let mut end = t0;
        for s in to_host {
            let (lo, hi) = self.resolve_section(s)?;
            let e = self.flush_to_host(s.array, lo, hi, t0)?;
            end = end.max(e);
        }
        for s in to_device {
            let (lo, hi) = self.resolve_section(s)?;
            let e = self.push_to_device(s.array, lo, hi, t0)?;
            end = end.max(e);
        }
        self.rec.phase(None, PhaseKind::Data, t0, end);
        self.now = end;
        Ok(())
    }

    fn resolve_section(
        &mut self,
        s: &acc_compiler::hostgen::Section,
    ) -> Result<(i64, i64), RunError> {
        match &s.range {
            None => Ok((0, self.arrays[s.array].len as i64)),
            Some((a, b)) => {
                let lo = self.eval_host_i64(a)?;
                let len = self.eval_host_i64(b)?;
                Ok((lo, lo + len))
            }
        }
    }

    // ---------------- kernel launch ----------------

    /// Whether launches run on the SSA-optimized register VM: opted in
    /// either per run (`ExecConfig::kernel_vm`) or per program
    /// (`CompileOptions::optimize_kernels`). Results and simulated times
    /// are identical either way.
    fn use_register_vm(&self) -> bool {
        self.cfg.kernel_vm == KernelVm::Register || self.prog.options.optimize_kernels
    }

    /// Register-VM code for kernel `kidx`, compiled on first use and
    /// cached for the rest of the run. Returns `None` when the register
    /// VM is not opted in or the optimizer declined the kernel — both
    /// mean "take the bytecode path".
    fn reg_code(&mut self, kidx: usize) -> Option<std::sync::Arc<RegCompiled>> {
        if !self.use_register_vm() {
            return None;
        }
        self.reg_cache[kidx]
            .get_or_insert_with(|| {
                ir::regvm::compile(&self.prog.kernels[kidx].kernel).map(std::sync::Arc::new)
            })
            .clone()
    }

    fn launch(&mut self, kidx: usize) -> Result<(), RunError> {
        let prog = self.prog;
        let ck = &prog.kernels[kidx];
        self.cur_launch = self.rec.launch_begin();
        match self.cfg.mode {
            ExecMode::CpuParallel => self.launch_cpu(kidx, ck),
            ExecMode::Gpu => self.launch_gpu(kidx, ck),
        }
    }

    /// OpenMP-baseline execution: the whole iteration space runs as one
    /// CPU parallel region over the host arrays.
    fn launch_cpu(&mut self, kidx: usize, ck: &CompiledKernel) -> Result<(), RunError> {
        let lo = self.eval_host_i64(&ck.lo)?;
        let hi = self.eval_host_i64(&ck.hi)?;
        let params = self.gather_params(ck)?;
        let reg = self.reg_code(kidx);

        let mut bufs: Vec<&mut Buffer> = Vec::with_capacity(ck.buf_map.len());
        {
            // Disjoint &mut borrows of the selected host arrays.
            let mut rest: &mut [Buffer] = &mut self.host_arrays;
            let mut base = 0usize;
            let mut picks: Vec<(usize, &mut Buffer)> = Vec::new();
            let mut order: Vec<usize> = ck.buf_map.clone();
            order.sort_unstable();
            for arr in order {
                let rel = arr - base;
                let (left, right) = rest.split_at_mut(rel + 1);
                picks.push((arr, &mut left[rel]));
                rest = right;
                base = arr + 1;
            }
            for &arr in &ck.buf_map {
                let pos = picks.iter().position(|(a, _)| *a == arr).unwrap();
                let (_, b) = picks.remove(pos);
                bufs.push(b);
            }
        }
        let slots: Vec<BufSlot> = bufs.into_iter().map(BufSlot::whole).collect();
        let n = slots.len();
        let mut ctx = ExecCtx {
            params,
            bufs: slots,
            reduction_partials: ck
                .kernel
                .reductions
                .iter()
                .map(|r| ir::interp::rmw_identity(r.op, r.ty))
                .collect(),
            miss_buf: Vec::new(),
            miss_capacity: self.cfg.miss_capacity,
            counters: OpCounters::default(),
            per_buf_bytes: vec![(0, 0); n],
            sanitize: Vec::new(),
            sanitize_log: Vec::new(),
            sanitize_hits: 0,
        };
        match &reg {
            Some(rc) if launch_types_match(&ck.kernel, &ctx) => {
                run_compiled(rc, &mut ctx, lo, hi)?
            }
            _ => run_kernel_range(&ck.kernel, &mut ctx, lo, hi)?,
        }
        let counters = ctx.counters;
        let per_buf_bytes = std::mem::take(&mut ctx.per_buf_bytes);
        let partials = std::mem::take(&mut ctx.reduction_partials);
        drop(ctx);

        // Memory pricing: per-buffer efficiency from the translator's
        // classification against the CPU cache.
        let cpu = &self.machine.cpu;
        let mut terms = Vec::new();
        for (kbuf, cfg) in ck.configs.iter().enumerate() {
            let resident = self.host_arrays[cfg.array].size_bytes() as u64;
            let (lb, sb) = per_buf_bytes[kbuf];
            terms.push((lb, cpu_read_eff(cpu, cfg, resident)));
            terms.push((sb, cpu_write_eff(cpu, cfg, resident)));
        }
        let t = cpu.parallel_region_time_split(&counters, &terms);
        self.rec
            .phase(Some(self.cur_launch), PhaseKind::Kernel, self.now, self.now + t);
        self.now += t;
        self.kernel_counters.merge(&counters);
        self.apply_scalar_reductions(ck, &[partials])?;
        Ok(())
    }

    /// Multi-GPU BSP launch: loader phase, parallel kernel phase,
    /// communication phase, barrier.
    fn launch_gpu(&mut self, kidx: usize, ck: &CompiledKernel) -> Result<(), RunError> {
        let ngpus = self.cfg.ngpus;
        let lo = self.eval_host_i64(&ck.lo)?;
        let hi = self.eval_host_i64(&ck.hi)?;
        // Task mapping. `Schedule::Equal` takes the paper's static
        // division directly — the mapper is never consulted and no
        // mapper events are emitted, keeping the default bit-identical
        // to a runtime without the cost model.
        let use_mapper = self.cfg.schedule == Schedule::CostModel;
        let (tasks, predicted_s, from_history) = if use_mapper {
            let plan = self
                .mapper
                .lock()
                .expect("mapper lock poisoned")
                .plan(kidx, lo, hi, ngpus);
            (plan.tasks, plan.predicted_s, plan.from_history)
        } else {
            (split_tasks(lo, hi, ngpus), Vec::new(), false)
        };
        let params = self.gather_params(ck)?;

        // Arrays used by this kernel but not inside any data region get an
        // implicit per-launch `copy` region (OpenACC default behaviour —
        // and the performance trap data regions exist to avoid).
        let mut implicit: Vec<usize> = Vec::new();
        for cfg in &ck.configs {
            if self.arrays[cfg.array].region_depth == 0 {
                implicit.push(cfg.array);
                let st = &mut self.arrays[cfg.array];
                st.init_from_host = true;
                st.region_depth = 1;
            }
        }

        // Resolve per-array launch placement.
        let binfo = self.resolve_bindings(kidx, ck, &tasks)?;

        // ---- loader phase ----
        let t0 = self.now;
        let (t1, bg_end) = self.loader_phase(ck, &binfo, t0)?;
        self.rec
            .phase(Some(self.cur_launch), PhaseKind::Loader, t0, t1);

        // ---- kernel phase ----
        let mut jobs: Vec<Option<Job>> = Vec::with_capacity(ngpus);
        #[allow(clippy::needless_range_loop)] // g indexes several parallel tables
        for g in 0..ngpus {
            if tasks[g].0 >= tasks[g].1 {
                jobs.push(None);
                continue;
            }
            let mut binds = Vec::with_capacity(binfo.len());
            for bi in &binfo {
                let ga = &mut self.arrays[bi.arr].gpu[g];
                binds.push(JobBind {
                    handle: ga.handle.expect("loader materialised the window"),
                    window_lo: ga.window.0,
                    own: bi.own[g],
                    dirty: ga.dirty.take(),
                });
            }
            jobs.push(Some(Job {
                tasks: tasks[g],
                params: params.clone(),
                binds,
                miss_capacity: self.cfg.miss_capacity,
                miss_buf: self.staging.take_misses(),
                sanitize: if self.cfg.sanitize == SanitizeLevel::Off {
                    Vec::new()
                } else {
                    binfo.iter().map(|bi| bi.sanitize).collect()
                },
            }));
        }

        let kernel = &ck.kernel;
        let reg = self.reg_code(kidx);
        // Wavefront schedule: when the compiler proved every carried
        // dependence of this launch *local* (distance inside the declared
        // halo), the GPUs run sequentially in partition order, each fed
        // its left halo with the rows its predecessors just wrote, so
        // dependent outer iterations pipeline across the GPUs with the
        // exact semantics of the sequential loop. Pricing is an honest
        // pipeline: GPU g starts once GPU g-1 finished *and* g's halo
        // feed landed. Launches the proof does not license fall back to
        // the parallel equal division.
        let wavefront = self.cfg.schedule == Schedule::Wavefront
            && ngpus > 1
            && acc_compiler::wavefront_eligible(ck);
        let mut outs: Vec<Result<JobOut, ir::ExecError>> = Vec::with_capacity(ngpus);
        // Per-GPU kernel start times (the barrier `t1` on the parallel
        // path; staggered under the wavefront) and wavefront-priced
        // durations.
        let mut starts = vec![t1; ngpus];
        let mut wf_tg: Option<Vec<f64>> = None;
        if wavefront {
            let mut tgs = vec![0.0f64; ngpus];
            let mut cursor = t1;
            for (g, job) in jobs.into_iter().enumerate() {
                let mut start_g = cursor;
                let mut fed = 0u64;
                if g > 0 {
                    // Refresh this GPU's left halo — [required.0, own.0)
                    // of every written distributed array — from the
                    // predecessors that own those rows. The copies become
                    // ready when the previous GPU's turn ended.
                    for bi in &binfo {
                        if !(bi.writes && matches!(bi.placement, Placement::Distributed)) {
                            continue;
                        }
                        let (halo_lo, halo_hi) = (bi.required[g].0, bi.own[g].0);
                        if halo_lo >= halo_hi {
                            continue;
                        }
                        for h in (0..g).rev() {
                            let lo = halo_lo.max(bi.own[h].0);
                            let hi = halo_hi.min(bi.own[h].1);
                            if lo >= hi {
                                continue;
                            }
                            let end = self.xfer_p2p(bi.arr, h, g, lo, hi, cursor, "wavefront")?;
                            fed += ((hi - lo) as u64) * self.arrays[bi.arr].elem() as u64;
                            start_g = start_g.max(end);
                        }
                    }
                }
                let res = match job {
                    None => Ok(JobOut::default()),
                    Some(job) => {
                        run_gpu_job(&mut self.machine.gpus[g], kernel, job, reg.as_deref())
                    }
                };
                if let Ok(out) = &res {
                    if out.ran {
                        let spec = &self.machine.gpus[g].spec;
                        let mut terms = Vec::new();
                        for (kbuf, cfg) in ck.configs.iter().enumerate() {
                            let w = binfo[kbuf].window[g];
                            let resident =
                                ((w.1 - w.0).max(0) as u64) * self.arrays[cfg.array].elem() as u64;
                            let (lb, sb) = out.per_buf_bytes[kbuf];
                            terms.push((lb, gpu_read_eff(spec, cfg, resident)));
                            terms.push((sb, gpu_write_eff(spec, cfg, resident)));
                        }
                        let tg = spec.kernel_time_split(&out.counters, &terms);
                        self.rec.wavefront_round(WavefrontRound {
                            launch: self.cur_launch,
                            kernel: ck.kernel.name.clone(),
                            gpu: g,
                            round: g,
                            fed_bytes: fed,
                            start: start_g,
                            end: start_g + tg,
                        });
                        starts[g] = start_g;
                        tgs[g] = tg;
                        cursor = start_g + tg;
                    }
                }
                outs.push(res);
            }
            wf_tg = Some(tgs);
        } else {
            let gpus = &mut self.machine.gpus[..ngpus];
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(ngpus);
                for (gpu, job) in gpus.iter_mut().zip(jobs) {
                    let reg = reg.clone();
                    handles.push(s.spawn(move || match job {
                        None => Ok(JobOut::default()),
                        Some(job) => run_gpu_job(gpu, kernel, job, reg.as_deref()),
                    }));
                }
                for h in handles {
                    outs.push(h.join().expect("gpu worker panicked"));
                }
            });
        }

        // Return dirty maps to the state, collect results.
        let mut job_outs = Vec::with_capacity(ngpus);
        for (g, out) in outs.into_iter().enumerate() {
            let mut out = match out {
                Ok(o) => o,
                Err(e) => return Err(RunError::Exec(e)),
            };
            for (bi, dm) in binfo.iter().zip(out.dirty_back.drain(..)) {
                self.arrays[bi.arr].gpu[g].dirty = dm;
            }
            job_outs.push(out);
        }

        // Sanitizer verdicts: every retained violation becomes a typed
        // observability event, then the run fails on the first one (the
        // results would be silently wrong without the audit).
        let mut first_violation: Option<(usize, SanitizeRecord)> = None;
        let mut total_hits = 0u64;
        for (g, out) in job_outs.iter().enumerate() {
            total_hits += out.sanitize_hits;
            for r in &out.sanitize_log {
                self.rec.sanitize(SanitizeEvent {
                    launch: self.cur_launch,
                    array: self.prog.array_params[binfo[r.buf as usize].arr].0.clone(),
                    gpu: g,
                    kind: match r.kind {
                        SanitizeKind::LoadOutsideWindow => "load-outside-window",
                        SanitizeKind::StoreOutsideOwn => "store-outside-own",
                        SanitizeKind::CarriedDistanceEscape => "carried-distance-escape",
                    },
                    tid: r.tid,
                    idx: r.idx,
                    window: r.window,
                    at: t1,
                });
            }
            if first_violation.is_none() {
                if let Some(r) = out.sanitize_log.first() {
                    first_violation = Some((g, *r));
                }
            }
        }
        if let Some((g, r)) = first_violation {
            let array = self.prog.array_params[binfo[r.buf as usize].arr].0.clone();
            // Refusing here — before the communication phase and before
            // any flush — means no array state the violation may have
            // corrupted ever escapes the devices.
            return Err(match r.kind {
                SanitizeKind::CarriedDistanceEscape => RunError::CarriedDistanceViolated {
                    array,
                    gpu: g,
                    record: r,
                    hits: total_hits,
                },
                _ => RunError::SanitizeViolation {
                    array,
                    gpu: g,
                    record: r,
                    hits: total_hits,
                },
            });
        }

        // Kernel-phase duration = slowest GPU; every GPU that ran gets a
        // launch span on its own timeline starting at the barrier `t1`.
        let mut tk = 0.0f64;
        let mut measured_s = vec![0.0f64; ngpus];
        for (g, out) in job_outs.iter().enumerate() {
            if !out.ran {
                continue;
            }
            let tg = match &wf_tg {
                // The wavefront loop already priced this GPU's turn (it
                // needed the duration to schedule the successor's feed).
                Some(tgs) => tgs[g],
                None => {
                    let spec = &self.machine.gpus[g].spec;
                    let mut terms = Vec::new();
                    for (kbuf, cfg) in ck.configs.iter().enumerate() {
                        let w = binfo[kbuf].window[g];
                        let resident =
                            ((w.1 - w.0).max(0) as u64) * self.arrays[cfg.array].elem() as u64;
                        let (lb, sb) = out.per_buf_bytes[kbuf];
                        terms.push((lb, gpu_read_eff(spec, cfg, resident)));
                        terms.push((sb, gpu_write_eff(spec, cfg, resident)));
                    }
                    spec.kernel_time_split(&out.counters, &terms)
                }
            };
            // Kernel-phase duration runs to the last finisher; under the
            // wavefront the staggered starts make that the final GPU.
            tk = tk.max(starts[g] + tg - t1);
            measured_s[g] = tg;
            self.kernel_counters.merge(&out.counters);
            self.rec.launch_span(LaunchSpan {
                launch: self.cur_launch,
                kernel: ck.kernel.name.clone(),
                gpu: g,
                rows: tasks[g],
                start: starts[g],
                end: starts[g] + tg,
            });
        }
        if job_outs.iter().all(|o| !o.ran) {
            // Degenerate empty launch still pays one launch overhead.
            tk = self.machine.gpus[0].spec.launch_overhead_s;
        }
        if use_mapper {
            // One decision per launch: the ranges this launch actually
            // used, the history's prediction, and the measured cost the
            // next launch of this kernel will be cut from.
            self.rec.mapper_decision(MapperDecision {
                launch: self.cur_launch,
                kernel: ck.kernel.name.clone(),
                ranges: tasks.clone(),
                predicted_s,
                measured_s: measured_s.clone(),
                from_history,
                at: t1,
            });
            let overhead = self.machine.gpus[0].spec.launch_overhead_s;
            self.mapper
                .lock()
                .expect("mapper lock poisoned")
                .record(kidx, &tasks, &measured_s, overhead);
        }
        self.rec
            .phase(Some(self.cur_launch), PhaseKind::Kernel, t1, t1 + tk);
        // Background halo fills that the loader priced past the barrier
        // run under the kernel phase; the wave cannot advance until both
        // the slowest kernel and the last in-flight fill are done.
        let t2 = (t1 + tk).max(bg_end);

        // Scalar reductions merge back into host locals.
        let partials: Vec<Vec<Value>> = job_outs
            .iter()
            .filter(|o| o.ran)
            .map(|o| o.partials.clone())
            .collect();
        self.apply_scalar_reductions(ck, &partials)?;

        // Device writes make the host copy stale until flushed.
        for bi in &binfo {
            if bi.writes {
                self.arrays[bi.arr].host_stale = true;
            }
        }

        // ---- communication phase ----
        let misses: Vec<Vec<MissRecord>> = job_outs.into_iter().map(|o| o.misses).collect();
        let wall = std::time::Instant::now();
        let t3 = self.comm_phase(ck, &binfo, &misses, t2)?;
        self.comm_wall_s += wall.elapsed().as_secs_f64();
        // The replay only reads the records; reclaim the buffers so the
        // next launch (or the pool's next job) skips the allocation.
        self.staging.put_back_misses(misses);
        self.rec
            .phase(Some(self.cur_launch), PhaseKind::Comm, t2, t3);
        self.now = t3;

        // Close implicit regions (copy-out + free).
        for arr in implicit {
            let t0 = self.now;
            let st = &self.arrays[arr];
            let writes = ck
                .configs
                .iter()
                .any(|c| c.array == arr && c.mode.writes());
            let end = if writes {
                self.flush_to_host(arr, 0, st.len as i64, t0)?
            } else {
                t0
            };
            self.rec.phase(None, PhaseKind::Data, t0, end);
            self.now = end;
            self.arrays[arr].region_depth = 0;
            self.free_array_devices(arr)?;
        }
        Ok(())
    }

    fn gather_params(&mut self, ck: &CompiledKernel) -> Result<Vec<Value>, RunError> {
        let mut out = Vec::with_capacity(ck.param_src.len());
        for src in &ck.param_src {
            match src {
                ParamSrc::HostLocal(l) => out.push(self.locals[l.0 as usize]),
            }
        }
        Ok(out)
    }

    fn apply_scalar_reductions(
        &mut self,
        ck: &CompiledKernel,
        partials_per_gpu: &[Vec<Value>],
    ) -> Result<(), RunError> {
        for (slot, target) in ck.red_targets.iter().enumerate() {
            let op = ck.kernel.reductions[slot].op;
            let mut acc = self.locals[target.0 as usize];
            for partials in partials_per_gpu {
                acc = rmw_apply(op, acc, partials[slot])?;
            }
            self.locals[target.0 as usize] = acc;
        }
        Ok(())
    }

    /// Resolve per-array placement, windows and ownership for a launch.
    fn resolve_bindings(
        &mut self,
        kidx: usize,
        ck: &CompiledKernel,
        tasks: &[(i64, i64)],
    ) -> Result<Vec<ArrLaunch>, RunError> {
        let ngpus = tasks.len();
        let instrument = self.prog.options.instrument;
        let mut out = Vec::with_capacity(ck.configs.len());
        for (kbuf, cfg) in ck.configs.iter().enumerate() {
            let n = self.arrays[cfg.array].len as i64;
            let clamp = |x: i64| x.clamp(0, n);
            let mut la_params = None;
            let (required, own, window) = match (&cfg.placement, &cfg.localaccess) {
                (Placement::Distributed, Some(la)) => {
                    let stride = self.eval_host_i64(&la.stride)?;
                    let left = self.eval_host_i64(&la.left)?;
                    let right = self.eval_host_i64(&la.right)?;
                    la_params = Some((stride, left, right));
                    if stride < 1 || left < 0 || right < 0 {
                        return Err(RunError::BadLocalAccess(format!(
                            "`{}`: stride({stride}) left({left}) right({right})",
                            cfg.name
                        )));
                    }
                    let mut required = Vec::with_capacity(ngpus);
                    let mut own = Vec::with_capacity(ngpus);
                    let mut window = Vec::with_capacity(ngpus);
                    // Covering partition boundaries: the first owner
                    // reaches down to 0, the last up to n.
                    // Under the cost model the cut points move between
                    // launches, so a tight window would pay one
                    // transfer-latency round for every few-element
                    // boundary shift. Padding the read range by a slice
                    // of its own length keeps small shifts inside
                    // already-valid data; the extra bytes are cheap next
                    // to the per-transfer latency they avoid.
                    let cost_model = self.cfg.schedule == crate::Schedule::CostModel;
                    let slack = |len: i64| {
                        if cost_model {
                            (len / 8).max(left.max(right)).max(1)
                        } else {
                            0
                        }
                    };
                    // A distributed array whose whole footprint is below
                    // the bus's bandwidth·latency product is
                    // latency-dominated: re-slicing it every launch costs
                    // more in transfer rounds than replicating it once.
                    // Under the cost model, read such arrays in full.
                    let bus = &self.machine.bus;
                    let whole_read = cost_model
                        && (n as u64) * self.arrays[cfg.array].elem() as u64
                            <= (bus.h2d_bw * bus.latency) as u64;
                    for (g, &(tlo, thi)) in tasks.iter().enumerate() {
                        if tlo >= thi {
                            required.push((0, 0));
                            own.push((0, 0));
                            window.push((0, 0));
                            continue;
                        }
                        let req = if whole_read {
                            (0, n)
                        } else {
                            let pad = slack(stride * (thi - tlo));
                            (
                                clamp(stride * tlo - left - pad),
                                clamp(stride * thi + right + pad),
                            )
                        };
                        let own_lo = if g == 0 { 0 } else { clamp(stride * tlo) };
                        // Find the next non-empty task to bound ownership.
                        let own_hi = match tasks[g + 1..].iter().find(|(a, b)| a < b) {
                            Some(&(nlo, _)) => clamp(stride * nlo),
                            None => n,
                        };
                        let o = (own_lo, own_hi.max(own_lo));
                        required.push(req);
                        own.push(o);
                        window.push((req.0.min(o.0), req.1.max(o.1)));
                    }
                    (required, own, window)
                }
                (Placement::Distributed, None) => unreachable!("distribution requires localaccess"),
                _ => {
                    // Replicated / reduction-private: active GPUs hold
                    // the whole array. GPUs with an empty partition get
                    // empty windows too — they run no kernel, so
                    // materialising (or syncing) a replica there would
                    // only fabricate allocations and comm traffic.
                    let whole = (0i64, n);
                    let active = |&(a, b): &(i64, i64)| if a < b { whole } else { (0, 0) };
                    (
                        tasks.iter().map(active).collect::<Vec<_>>(),
                        tasks.iter().map(active).collect::<Vec<_>>(),
                        tasks.iter().map(active).collect::<Vec<_>>(),
                    )
                }
            };
            let writes = cfg.mode.writes();
            let needs_dirty = instrument
                && ngpus > 1
                && writes
                && matches!(cfg.placement, Placement::Replicated);
            // The audits only make sense on distributed arrays: checked
            // stores handle their own misses, and replicated arrays own
            // (and keep resident) the whole window.
            let sanitize = BufSanitize {
                load_window: la_params.filter(|_| self.cfg.sanitize.checks_loads()),
                // Carried-distance audit: under `Full`, every
                // `CarriedLocal { distance }` claim is cross-validated at
                // runtime — a load must stay within the proved distance
                // of the loading thread's own stride window, or the
                // verdict (and everything it licensed) was mislabeled.
                carried_window: cfg
                    .lint
                    .verdict
                    .carried_distance()
                    .and_then(|d| d.halo_need())
                    .and_then(|(lw, rw)| la_params.map(|(s, _, _)| (s, lw * s, rw * s)))
                    .filter(|_| self.cfg.sanitize.checks_loads()),
                check_stores: self.cfg.sanitize.checks_stores()
                    && writes
                    && cfg.miss_check_elided
                    && matches!(cfg.placement, Placement::Distributed),
            };
            // Static comm-elision claim: the per-GPU element partitions
            // the fact asserts every write of this launch stays inside.
            // Only materialised when the runtime could act on it — the
            // facts assume the equal static schedule's launch-invariant
            // partitions, and without dirty maps there is no sync to
            // skip.
            let elide = if self.cfg.comm_elision
                && needs_dirty
                && self.cfg.schedule == Schedule::Equal
            {
                let stride = self
                    .prog
                    .comm_plan
                    .fact(kidx, kbuf)
                    .map(|fact| fact.stride.clone());
                match stride {
                    Some(stride) => {
                        let s = self.eval_host_i64(&stride)?;
                        if s >= 1 {
                            Some(
                                tasks
                                    .iter()
                                    .map(|&(a, b)| (clamp(s * a), clamp(s * b.max(a))))
                                    .collect::<Vec<_>>(),
                            )
                        } else {
                            None
                        }
                    }
                    None => None,
                }
            } else {
                None
            };
            // Double-buffered halo overlap: only when the knob is on,
            // `SanitizeLevel::Full` is not re-arming the synchronous
            // path, and the compiler's dataflow pass granted an
            // `OverlapFact` for this (kernel, buffer) — distributed with
            // a declared halo window, read-only this launch, every
            // verdict in the wave race-free.
            let overlap = self.cfg.overlap
                && self.cfg.sanitize != SanitizeLevel::Full
                && matches!(cfg.placement, Placement::Distributed)
                && self.prog.overlap_plan.fact(kidx, kbuf).is_some();
            out.push(ArrLaunch {
                arr: cfg.array,
                placement: cfg.placement.clone(),
                required,
                own,
                window,
                writes,
                needs_dirty,
                sanitize,
                elide,
                overlap,
            });
        }
        Ok(out)
    }
}

/// Execute one GPU's portion of a kernel. Runs on a worker thread with
/// exclusive access to that GPU.
fn run_gpu_job(
    gpu: &mut Gpu,
    kernel: &Kernel,
    mut job: Job,
    reg: Option<&RegCompiled>,
) -> Result<JobOut, ir::ExecError> {
    let handles: Vec<_> = job.binds.iter().map(|b| b.handle).collect();
    let bufs = gpu
        .memory
        .get_many_mut(&handles)
        .expect("loader materialised all windows");
    let mut slots = Vec::with_capacity(bufs.len());
    for (buf, bind) in bufs.into_iter().zip(job.binds.iter_mut()) {
        slots.push(BufSlot {
            data: buf,
            window_lo: bind.window_lo,
            own: bind.own,
            dirty: bind.dirty.as_mut(),
        });
    }
    let n = slots.len();
    let mut ctx = ExecCtx {
        params: std::mem::take(&mut job.params),
        bufs: slots,
        reduction_partials: kernel
            .reductions
            .iter()
            .map(|r| ir::interp::rmw_identity(r.op, r.ty))
            .collect(),
        miss_buf: std::mem::take(&mut job.miss_buf),
        miss_capacity: job.miss_capacity,
        counters: OpCounters::default(),
        per_buf_bytes: vec![(0, 0); n],
        sanitize: std::mem::take(&mut job.sanitize),
        sanitize_log: Vec::new(),
        sanitize_hits: 0,
    };
    match reg {
        Some(rc) if launch_types_match(kernel, &ctx) => {
            run_compiled(rc, &mut ctx, job.tasks.0, job.tasks.1)?
        }
        _ => run_kernel_range(kernel, &mut ctx, job.tasks.0, job.tasks.1)?,
    }
    let out = JobOut {
        counters: ctx.counters,
        per_buf_bytes: std::mem::take(&mut ctx.per_buf_bytes),
        partials: std::mem::take(&mut ctx.reduction_partials),
        misses: std::mem::take(&mut ctx.miss_buf),
        dirty_back: Vec::new(),
        sanitize_log: std::mem::take(&mut ctx.sanitize_log),
        sanitize_hits: ctx.sanitize_hits,
        ran: true,
    };
    drop(ctx);
    let mut out = out;
    out.dirty_back = job.binds.into_iter().map(|b| b.dirty).collect();
    Ok(out)
}

/// Effective-bandwidth fraction for a GPU read of one array.
fn gpu_read_eff(spec: &acc_gpusim::GpuSpec, cfg: &ArrayConfig, resident: u64) -> f64 {
    if cfg.layout_transformed {
        return 1.0;
    }
    match cfg.read_pattern {
        AccessPattern::Broadcast | AccessPattern::Coalesced => 1.0,
        AccessPattern::Strided(s) => 1.0 / (s.min(32) as f64),
        AccessPattern::StridedDyn => 1.0 / 8.0,
        AccessPattern::Irregular => spec.gather_efficiency(resident),
    }
}

/// Effective-bandwidth fraction for a GPU write of one array.
fn gpu_write_eff(spec: &acc_gpusim::GpuSpec, cfg: &ArrayConfig, resident: u64) -> f64 {
    match cfg.write_pattern {
        AccessPattern::Broadcast | AccessPattern::Coalesced => 1.0,
        AccessPattern::Strided(s) => 1.0 / (s.min(32) as f64),
        AccessPattern::StridedDyn => 1.0 / 8.0,
        AccessPattern::Irregular => spec.gather_efficiency(resident),
    }
}

/// CPU-side read efficiency (strides matter less; gathers priced against
/// the LLC).
fn cpu_read_eff(cpu: &acc_gpusim::CpuSpec, cfg: &ArrayConfig, resident: u64) -> f64 {
    match cfg.read_pattern {
        AccessPattern::Broadcast | AccessPattern::Coalesced => 1.0,
        AccessPattern::Strided(_) | AccessPattern::StridedDyn => 0.8,
        AccessPattern::Irregular => cpu.gather_efficiency(resident),
    }
}

/// CPU-side write efficiency.
fn cpu_write_eff(cpu: &acc_gpusim::CpuSpec, cfg: &ArrayConfig, resident: u64) -> f64 {
    match cfg.write_pattern {
        AccessPattern::Broadcast | AccessPattern::Coalesced => 1.0,
        AccessPattern::Strided(_) | AccessPattern::StridedDyn => 0.8,
        AccessPattern::Irregular => cpu.gather_efficiency(resident),
    }
}
